"""Fig. 6 — total execution time of multi-threaded PARSEC C applications:
native x86-64, native aarch64, and Dapper (start on x86-64, migrate to
aarch64 mid-run).

Paper's shape: aarch64 native is slowest (weaker cores), x86-64 native is
fastest, and the Dapper run lies *in between* — the migrated half runs at
aarch64 speed plus the (sub-second) transformation overhead.
"""

from conftest import emit

from repro.apps import apps_by_category
from repro.core.costs import rpi_profile, xeon_profile
from repro.core.migration import MigrationPipeline, exe_path_for, \
    install_program
from repro.isa import ARM_ISA, X86_ISA
from repro.vm import Machine

XEON = xeon_profile()
RPI = rpi_profile()


def native_seconds(spec, arch, profile):
    program = spec.compile("small")
    machine = Machine(X86_ISA if arch == "x86_64" else ARM_ISA)
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(spec.name, arch))
    machine.run_process(process)
    # Scale measured cycles to the nominal class-size instruction count.
    cpi = process.cycle_total / max(1, process.instr_total)
    return (profile.seconds_for_cycles(spec.class_b_instructions * cpi),
            process.stdout())


def dapper_seconds(spec, warmup_fraction=0.5):
    program = spec.compile("small")
    src = Machine(X86_ISA, name="xeon")
    dst = Machine(ARM_ISA, name="rpi")
    pipeline = MigrationPipeline(
        src, dst, program, target_footprint_bytes=spec.class_b_footprint)
    process = pipeline.start()
    # Warm up roughly half the run before migrating.
    probe = Machine(X86_ISA)
    install_program(probe, program)
    probe_proc = probe.spawn_process(exe_path_for(spec.name, "x86_64"))
    probe.run_process(probe_proc)
    total_instrs = probe_proc.instr_total
    src.step_all(int(total_instrs * warmup_fraction))
    result = pipeline.migrate(process)
    dst.run_process(result.process)
    # Simulated wall time: x86 phase + migration + arm phase, each
    # scaled to the nominal class-size instruction count.
    scale = spec.class_b_instructions / total_instrs
    x86_cycles = process.cycle_total   # accumulated before migration
    arm_cycles = result.process.cycle_total
    seconds = (XEON.seconds_for_cycles(x86_cycles * scale)
               + result.total_seconds
               + RPI.seconds_for_cycles(arm_cycles * scale))
    return seconds, result, probe_proc.stdout()


def run_fig06():
    rows = []
    for spec in apps_by_category("parsec"):
        x86_s, x86_out = native_seconds(spec, "x86_64", XEON)
        arm_s, arm_out = native_seconds(spec, "aarch64", RPI)
        dap_s, result, ref_out = dapper_seconds(spec)
        assert x86_out == arm_out == ref_out
        assert result.combined_output() == ref_out
        rows.append((spec.name, x86_s, dap_s, arm_s,
                     result.stats["threads"]))
    return rows


def test_fig06_parsec_total_time(one_shot):
    rows = one_shot(run_fig06)
    for name, x86_s, dap_s, arm_s, _threads in rows:
        assert x86_s < dap_s < arm_s, \
            f"{name}: Dapper total must lie between the natives"
    emit("fig06", "PARSEC total execution time (s, class-B scaled)",
         ["benchmark", "native x86_64", "dapper x86→arm", "native aarch64",
          "threads at migration"],
         rows,
         notes="paper: with DAPPER the total execution time lies between "
               "native x86-64 and native aarch64")
