"""Fig. 9 — breakdown of Dapper's time cost for stack-shuffling process
transformation, on both ISAs.

The shuffle stage's cost is proportional to the size of the code section
in the checkpointed process and the transformed source binary (§IV-B);
the paper measures ≈573 ms average on x86-64 and ≈3.2 s on aarch64.
Stages: checkpoint, shuffle (SBI: disassemble + permute + re-encode +
stackmap update), recode (apply the permutation to the dumped stacks),
restore.
"""

from conftest import emit

from repro.apps import all_apps
from repro.core.costs import profile_for_arch
from repro.core.migration import exe_path_for, install_program
from repro.core.policies.stack_shuffle import StackShufflePolicy
from repro.core.rewriter import ProcessRewriter
from repro.core.runtime import DapperRuntime
from repro.criu.restore import restore_process
from repro.isa import get_isa
from repro.vm import Machine

#: Normalizes our reduced code sections to paper-scale binaries (real
#: nginx/NPB text sections are two to three orders of magnitude larger).
CODE_SCALE = 45.0


def shuffle_once(spec, arch, seed=1234):
    program = spec.compile("small")
    profile = profile_for_arch(arch)
    machine = Machine(get_isa(arch), name="host")
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(spec.name, arch))
    machine.step_all(4000)
    assert not process.exited
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    reference_prefix = process.stdout()
    images = runtime.checkpoint()
    runtime.kill_source()

    policy = StackShufflePolicy(program.binary(arch), seed=seed,
                                dst_exe_path=f"/bin/{spec.name}.shuf")
    report = ProcessRewriter().rewrite(images, policy)[0]
    machine.tmpfs.write(policy.dst_exe_path,
                        policy.shuffled_binary.to_bytes())
    restored = restore_process(machine, images)
    machine.run_process(restored)
    assert restored.exit_code == 0

    stats = policy.shuffle_stats
    byte_scale = spec.class_b_footprint / max(
        1, images.total_bytes())
    checkpoint_s = profile.checkpoint_seconds(
        int(images.total_bytes() * byte_scale), 1)
    shuffle_s = profile.shuffle_seconds(
        int(stats.code_bytes * CODE_SCALE),
        int(stats.instructions_scanned * CODE_SCALE),
        int(images.total_bytes() * byte_scale))
    recode_s = profile.recode_seconds(
        int(images.total_bytes() * byte_scale), report.stats["frames"])
    restore_s = profile.restore_seconds(
        int(images.total_bytes() * byte_scale), 1)
    total = checkpoint_s + shuffle_s + recode_s + restore_s
    return (checkpoint_s * 1e3, shuffle_s * 1e3, recode_s * 1e3,
            restore_s * 1e3, total * 1e3, stats.code_bytes,
            reference_prefix)


def run_fig09():
    rows = []
    for spec in all_apps():
        for arch in ("x86_64", "aarch64"):
            (checkpoint_ms, shuffle_ms, recode_ms, restore_ms, total_ms,
             code_bytes, _prefix) = shuffle_once(spec, arch)
            rows.append((spec.name, arch, checkpoint_ms, shuffle_ms,
                         recode_ms, restore_ms, total_ms, code_bytes))
    return rows


def check_shapes(rows):
    x86_totals = [r[6] for r in rows if r[1] == "x86_64"]
    arm_totals = [r[6] for r in rows if r[1] == "aarch64"]
    x86_avg = sum(x86_totals) / len(x86_totals)
    arm_avg = sum(arm_totals) / len(arm_totals)
    # Paper: ≈573 ms on x86-64, ≈3.2 s on aarch64 — the aarch64 node is
    # several times slower at the same SBI work.
    assert 200 < x86_avg < 1500, x86_avg
    assert 900 < arm_avg < 6500, arm_avg
    assert 2.5 < arm_avg / x86_avg < 7.0
    # Shuffle time tracks code-section size within one ISA.
    x86_rows = sorted((r for r in rows if r[1] == "x86_64"),
                      key=lambda r: r[7])
    assert x86_rows[0][3] < x86_rows[-1][3], \
        "shuffle stage must grow with the code section"


def test_fig09_shuffle_breakdown(one_shot):
    rows = one_shot(run_fig09)
    check_shapes(rows)
    x86_avg = sum(r[6] for r in rows if r[1] == "x86_64") / (len(rows) / 2)
    arm_avg = sum(r[6] for r in rows if r[1] == "aarch64") / (len(rows) / 2)
    rows.append(("average", "x86_64", 0, 0, 0, 0, x86_avg, 0))
    rows.append(("average", "aarch64", 0, 0, 0, 0, arm_avg, 0))
    emit("fig09", "stack-shuffle transformation cost breakdown (ms)",
         ["benchmark", "arch", "checkpoint", "shuffle", "recode",
          "restore", "total", "code bytes"],
         rows,
         notes="paper: averages 573 ms (x86-64) and 3.2 s (aarch64); "
               "shuffle time proportional to code-section size")
