"""Fleet migration-storm benchmark: events/sec, migrations/sec, and
tail latency under a thousand-node storm.

Runs one :class:`~repro.fleet.FleetStorm` at full scale — 1000 nodes,
hundreds of services, a load spike, a rolling-update wave bounded at
128 concurrent migrations, chaos on — and reports:

* **events/sec** — wall-clock throughput of the sharded event core,
* **migrations/sec** — completed live migrations per simulated second,
* **p50/p95/p99 request latency** — from the open-loop traffic
  histograms, plus the p99 *inside* the storm window (spike + wave),
* **complete-or-rollback** — every started migration's fate,
* **replay** — the recorded journal re-executes bit-identically,
* **calibration** — real shared-store pipeline migrations measuring
  the warm-transfer fraction the model uses (``warm_bp``).

Writes ``BENCH_fleet.json`` at the repo root so the trajectory is
tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--smoke]

``--smoke`` runs a small fleet (32 nodes) and asserts the invariants
only — no timing gates, CI-safe.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.chaos import FaultPlan                           # noqa: E402
from repro.fleet import (FleetSpec, FleetStorm,             # noqa: E402
                         run_shared_store_migrations)
from repro.replay.engine import Replayer, record_fleet      # noqa: E402

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")

#: the storm configurations (chaos probabilities are per consultation)
FULL = dict(nodes=1000, shards=8, services=900, duration=60.0,
            max_in_flight=128, update_fraction=0.4)
SMOKE = dict(nodes=32, shards=4, services=0, duration=30.0,
             max_in_flight=8, update_fraction=0.4)
CHAOS = "drop=300,latency=500,pskill=120,crash=250"
SEED = 42


def run_storm(params: dict) -> dict:
    spec = FleetSpec(seed=SEED, **params)
    chaos = f"seed={SEED},{CHAOS}"
    plan = FaultPlan.from_spec(chaos)
    result = FleetStorm(spec, plan).run()
    out = result.to_dict()

    recorded = record_fleet(spec.to_spec(), chaos=chaos)
    replayed = Replayer(recorded.journal).run()
    out["replay_identical"] = (replayed.journal.to_bytes()
                               == recorded.journal.to_bytes())
    out["journal_events"] = len(recorded.journal.events)
    return out


def run_calibration(destinations: int) -> dict:
    calibration = run_shared_store_migrations("nginx",
                                              destinations=destinations)
    return calibration.to_dict()


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true",
                        help="small fleet, invariants only (CI)")
    args = parser.parse_args()

    params = SMOKE if args.smoke else FULL
    storm = run_storm(params)
    calibration = run_calibration(2 if args.smoke else 3)
    out = {"mode": "smoke" if args.smoke else "full",
           "storm": storm, "calibration": calibration}

    m = storm["migrations"]
    lat = storm["latency_ms"]
    print(f"[fleet-bench] {storm['nodes']} nodes / {storm['shards']} "
          f"shards / {storm['services']} services, "
          f"{storm['duration_s']:.0f}s simulated in "
          f"{storm['wall_s']:.2f}s wall")
    print(f"  events/sec (wall):     {storm['events_per_sec_wall']:,.0f}")
    print(f"  migrations:            {m['started']} started / "
          f"{m['completed']} completed / {m['rolled_back']} rolled back "
          f"(peak {m['peak_in_flight']} in flight)")
    print(f"  migrations/sim-sec:    {m['migrations_per_sim_sec']}")
    print(f"  latency ms p50/p95/p99: {lat['p50']} / {lat['p95']} / "
          f"{lat['p99']}  (storm-window p99: {lat['p99_storm']})")
    print(f"  energy: {storm['energy_kj']} kJ   cost: "
          f"${storm['cost_usd']}   chaos: {storm['chaos']}")
    print(f"  invariant: {'OK' if storm['invariant_ok'] else 'VIOLATED'}"
          f"   replay: "
          f"{'identical' if storm['replay_identical'] else 'DIVERGED'}")
    print(f"  calibration ({calibration['app']}): "
          f"{calibration['migrations']} real shared-store migrations, "
          f"warm_bp={calibration['warm_bp']}")

    failures = []
    if not storm["invariant_ok"]:
        failures.append("complete-or-rollback invariant violated")
    if not storm["replay_identical"]:
        failures.append("journal replay diverged")
    if calibration["warm_bp"] <= 0:
        failures.append("calibration measured no warm dedup")
    shipped = [t["shipped"] for t in calibration["transfers"]]
    if len(shipped) > 1 and min(shipped[1:]) >= shipped[0]:
        failures.append("warm migrations did not ship fewer bytes")
    if not args.smoke:
        if m["peak_in_flight"] < 100:
            failures.append(
                f"peak in-flight {m['peak_in_flight']} < 100")
        if storm["nodes"] < 1000:
            failures.append("full run must cover >= 1000 nodes")
        if lat["p99_storm"] <= lat["p50"]:
            failures.append("storm p99 not above baseline p50")

    path = os.path.join(REPO_ROOT, "BENCH_fleet.json")
    with open(path, "w") as handle:
        json.dump(out, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[fleet-bench] wrote {os.path.relpath(path, REPO_ROOT)}")

    for failure in failures:
        print(f"[fleet-bench] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
