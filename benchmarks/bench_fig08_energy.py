"""Fig. 8 — energy efficiency and throughput improvement of dynamically
migrating (evicting) processes to Raspberry Pis.

Paper's testbed: an 8-core Xeon (108 W at 7 job threads) plus three
4-core Raspberry Pis (5.1 W at 3 job threads each), processing an
infinite queue of NPB class-B jobs for 30 minutes. Evicting to the Pi
boards improves energy efficiency by 15–39 % and throughput by 37–52 %
depending on the workload.
"""

from conftest import emit

from repro.apps import get_app
from repro.cluster import BatchExperiment, measure_job_template

BENCHMARKS = ("cg", "mg", "ep", "ft")


def run_fig08():
    rows = []
    for name in BENCHMARKS:
        template = measure_job_template(get_app(name), "B")
        experiment = BatchExperiment(template, duration_s=1800.0)
        results = experiment.sweep([0, 1, 3])
        base = results[0]
        for pis in (1, 3):
            result = results[pis]
            rows.append((name, pis,
                         base.completed, result.completed,
                         result.throughput_gain_over(base),
                         base.jobs_per_kj, result.jobs_per_kj,
                         result.efficiency_gain_over(base),
                         result.evictions))
    return rows


def check_shapes(rows):
    for (name, pis, base_jobs, jobs, thr_gain, _bkj, _kj, eff_gain,
         evictions) in rows:
        assert jobs > base_jobs, f"{name}+{pis}pi must complete more jobs"
        assert thr_gain > 0 and eff_gain > 0
        assert evictions > 0
    three_pi = [r for r in rows if r[1] == 3]
    for row in three_pi:
        # Paper bands (with simulation slack): throughput +37–52 %,
        # efficiency +15–39 %.
        assert 25.0 < row[4] < 60.0, f"{row[0]}: throughput gain {row[4]}"
        assert 10.0 < row[7] < 45.0, f"{row[0]}: efficiency gain {row[7]}"


def test_fig08_energy_and_throughput(one_shot):
    rows = one_shot(run_fig08)
    check_shapes(rows)
    emit("fig08", "energy efficiency & throughput of Pi eviction "
                  "(NPB class-B queue, 30 min)",
         ["benchmark", "pis", "jobs(base)", "jobs", "thr gain %",
          "jobs/kJ(base)", "jobs/kJ", "eff gain %", "evictions"],
         rows,
         notes="paper: +37–52% throughput and +15–39% energy efficiency "
               "when evicting to 3 Pis; Xeon 108W@7 jobs, Pi 5.1W@3 jobs")
