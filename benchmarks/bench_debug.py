"""Time-travel debugger benchmark: reverse-seek cost vs snapshot gap.

The debugger's reverse operations reconstruct state by restoring the
nearest store-backed snapshot at-or-before the target and re-executing
journaled slices forward. The claim to verify is the complexity one:
a reverse step costs **O(snapshot gap)**, not O(run) — walking one
instruction backward from deep inside a long recording re-executes at
most one snapshot interval of slices, however long the recording is.

The cost metric is ``DebugSession.slices_reexecuted`` — a
deterministic counter of scheduling slices replayed by seeks — so the
assertions are exact and CI-safe (no timing gates). For each snapshot
interval the harness records a fixed run, then performs a burst of
reverse steps from the deep end of the timeline plus a reverse-continue
to a breakpoint, and reports slices re-executed per operation.

Writes ``BENCH_debug.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_debug.py [--smoke]

``--smoke`` asserts the bars: per-reverse-step cost bounded by the
snapshot gap (+1 partial slice), growing with the gap, and far below
the run length.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.debug import DebugSession            # noqa: E402
from repro.replay import record_run             # noqa: E402

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")

SOURCE = """
global int acc;
func bump(int i) -> int {
    acc = (acc + i) % 1000003;
    return acc;
}
func main() -> int {
    int i;
    i = 0;
    while (i < 1200) { bump(i); i = i + 1; }
    print(acc);
    return 0;
}
"""

INTERVALS = (8, 32, 128)
REVERSE_STEPS = 24


def measure(journal, snapshot_every: int) -> dict:
    session = DebugSession(journal, snapshot_every=snapshot_every)
    total_slices = session.total_slices

    # burst of reverse steps from the deep end of the timeline
    session.seek_instr(session.total_instructions - 64)
    costs = []
    for _ in range(REVERSE_STEPS):
        before = session.slices_reexecuted
        assert session.step_back() is not None
        costs.append(session.slices_reexecuted - before)

    # reverse-continue from the end to a function breakpoint
    for addr, arch, _line in session.resolve_function("bump"):
        session.pc_breakpoints.add((addr, arch))
    session.seek(session.end_position())
    before = session.slices_reexecuted
    stop = session.reverse_continue()
    reverse_continue_cost = session.slices_reexecuted - before
    assert stop.reason == "breakpoint"

    return {
        "snapshot_every": snapshot_every,
        "snapshots": len(session.snapshots),
        "total_slices": total_slices,
        "total_instructions": session.total_instructions,
        "step_back_avg_slices": round(sum(costs) / len(costs), 2),
        "step_back_max_slices": max(costs),
        "reverse_continue_slices": reverse_continue_cost,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="assert the O(gap) acceptance bars")
    args = parser.parse_args()

    recorded = record_run(SOURCE, "revseek", digest_every=8)
    journal = recorded.journal

    results = [measure(journal, k) for k in INTERVALS]
    for row in results:
        print(f"gap={row['snapshot_every']:>4} slices "
              f"({row['snapshots']} snapshots over "
              f"{row['total_slices']} slices): "
              f"step-back avg={row['step_back_avg_slices']} "
              f"max={row['step_back_max_slices']} "
              f"reverse-continue={row['reverse_continue_slices']}")

    if args.smoke:
        for row in results:
            gap = row["snapshot_every"]
            # bound: one snapshot interval plus the partial slice the
            # seek finishes inside
            assert row["step_back_max_slices"] <= gap + 1, (
                f"gap {gap}: a reverse step re-executed "
                f"{row['step_back_max_slices']} slices — more than "
                f"one snapshot interval")
            assert row["step_back_max_slices"] < \
                row["total_slices"] / 4, (
                f"gap {gap}: reverse-step cost is a constant fraction "
                f"of the whole run — O(run), not O(gap)")
        avgs = [row["step_back_avg_slices"] for row in results]
        assert avgs == sorted(avgs), (
            f"reverse-step cost must grow with the snapshot gap, "
            f"got {avgs} for gaps {list(INTERVALS)}")
        print("smoke OK: reverse-step cost tracks the snapshot gap, "
              "never the run length")

    record = {
        "benchmark": "debug-reverse-seek",
        "mode": "smoke" if args.smoke else "full",
        "reverse_steps_sampled": REVERSE_STEPS,
        "results": results,
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_debug.json")
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
