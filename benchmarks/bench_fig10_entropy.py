"""Fig. 10 — average bits of entropy introduced by Dapper's stack
shuffling, per benchmark and per ISA.

Paper's reference values: on x86-64 Nginx 5.76 bits, Redis 5.38, NPB
3.09, average 4.74; on aarch64 Nginx 4.02, Redis 3.32, NPB 2.65, average
3.33 — aarch64 is lower because slots accessed by ``ldp``/``stp`` pair
instructions are excluded from permutation.

Our absolute values sit below the paper's (DapperC ports carry fewer
locals per frame than the original C), but every *shape* holds: Nginx >
Redis > NPB on both ISAs, and aarch64 < x86-64 throughout.
"""

from conftest import emit

from repro.apps import all_apps, get_app
from repro.core.entropy import (binary_entropy_bits, guess_probability,
                                possible_frames)

NPB = ("cg", "mg", "ep", "ft", "is")


def run_fig10():
    rows = []
    per_arch = {"x86_64": [], "aarch64": []}
    for spec in all_apps():
        program = spec.compile("small")
        x86_bits = binary_entropy_bits(program.binary("x86_64"))
        arm_bits = binary_entropy_bits(program.binary("aarch64"))
        per_arch["x86_64"].append(x86_bits)
        per_arch["aarch64"].append(arm_bits)
        rows.append((spec.name, x86_bits, arm_bits,
                     possible_frames(round(x86_bits)),
                     guess_probability(max(1, round(x86_bits)))))
    averages = {arch: sum(vals) / len(vals)
                for arch, vals in per_arch.items()}
    return rows, averages


def check_shapes(rows, averages):
    by_name = {r[0]: r for r in rows}
    npb_x86 = sum(by_name[n][1] for n in NPB) / len(NPB)
    npb_arm = sum(by_name[n][2] for n in NPB) / len(NPB)
    # Fig. 10 ordering on both ISAs.
    assert by_name["nginx"][1] > by_name["redis"][1] > npb_x86
    assert by_name["nginx"][2] > by_name["redis"][2] > npb_arm
    # aarch64 entropy below x86-64's (ldp/stp exclusion), per benchmark
    # on the headline apps and on the average.
    for name in ("nginx", "redis"):
        assert by_name[name][2] < by_name[name][1]
    assert averages["aarch64"] < averages["x86_64"]


def test_fig10_entropy(one_shot):
    rows, averages = one_shot(run_fig10)
    check_shapes(rows, averages)
    rows = list(rows)
    rows.append(("average", averages["x86_64"], averages["aarch64"], 0, 0))
    emit("fig10", "average bits of stack-shuffle entropy",
         ["benchmark", "x86_64 bits", "aarch64 bits",
          "possible frames (x86)", "guess prob (x86)"],
         rows,
         notes="paper: x86 {nginx 5.76, redis 5.38, npb 3.09, avg 4.74}; "
               "arm {4.02, 3.32, 2.65, avg 3.33}; our absolutes are lower "
               "(smaller ported functions) but all orderings hold")
