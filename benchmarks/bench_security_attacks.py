"""§IV-B (text) — Dapper's stack shuffling against concrete exploits:
the Min-DOP data-oriented attack, BOPC-synthesized payloads on the Nginx
server, and the Redis CVE-2015-4335 / Nginx CVE-2013-2028 exploits.

Each attack is run (a) against an unprotected process — it must succeed —
and (b) repeatedly against freshly shuffled processes — the success rate
must collapse to the analytic (1/2n)^k bound the paper derives.
"""

from conftest import emit

from repro.apps import get_app
from repro.security import run_attack_trials
from repro.security.bopc import build_bopc_attack, nginx_payloads
from repro.security.cves import (build_nginx_cve_2013_2028,
                                 build_redis_cve_2015_4335)
from repro.security.dop import build_min_dop_attack

TRIALS = 8


def build_attacks():
    attacks = [("min-dop", build_min_dop_attack("x86_64"))]
    nginx_program = get_app("nginx").compile("small")
    for payload_name, payload in sorted(nginx_payloads().items()):
        attacks.append((f"bopc-{payload_name}",
                        build_bopc_attack(nginx_program, "x86_64",
                                          "handle_dynamic", payload)))
    attacks.append(("redis-cve-2015-4335", build_redis_cve_2015_4335()))
    attacks.append(("nginx-cve-2013-2028", build_nginx_cve_2013_2028()))
    return attacks


def run_attack_matrix():
    rows = []
    for name, attack in build_attacks():
        baseline = attack.run_trial(shuffle_seed=None)
        successes, rate = run_attack_trials(attack, TRIALS)
        rows.append((name, attack.victim_func,
                     len(attack.target_slots), attack.entropy_bits,
                     "HIT" if baseline.succeeded else "MISS",
                     f"{successes}/{TRIALS}",
                     attack.expected_success_probability()))
    return rows


def check_shapes(rows):
    for (name, _func, _slots, bits, baseline, shuffled, analytic) in rows:
        assert baseline == "HIT", f"{name}: unprotected attack must land"
        hit, total = shuffled.split("/")
        assert int(hit) == 0, f"{name}: shuffled victims must be protected"
        assert analytic < 0.05, f"{name}: analytic bound should be small"
        assert bits >= 2


def test_security_attack_matrix(one_shot):
    rows = one_shot(run_attack_matrix)
    check_shapes(rows)
    emit("sec_attacks", "exploit outcomes: unprotected vs shuffled",
         ["attack", "victim function", "allocations needed",
          "entropy bits", "unprotected", "shuffled hits",
          "analytic P(success)"],
         rows,
         notes="paper: Min-DOP at 4 bits → 0.125³ ≈ 0.19%; BOPC chains "
               "and the Redis/Nginx CVE exploits are all disrupted by "
               "relocating the targeted stack allocations")
