"""Fig. 1 — a comparison of Dapper to competitor techniques in
complexity and extensibility.

The paper's Fig. 1 is a conceptual scatter (complexity ↓, extensibility
↑ favours Dapper). We regenerate its substance from *measurable*
artifacts of this reproduction:

* **in-process transformer footprint** — bytes of transformation code in
  the application's address space (Dapper: zero — the rewriter lives in
  a separate process; Popcorn/H-Container: the inline runtime),
* **system-software stack changes** — which privileged components a
  deployment must modify,
* **extensibility** — transformation policies implementable on the same
  mechanism without touching the substrate.
"""

from conftest import emit

from repro.apps import get_app
from repro.baselines import hcontainer_program, popcorn_program


def run_fig01():
    spec = get_app("cg")
    dapper = spec.compile("small")
    popcorn = popcorn_program(spec)
    hcontainer = hcontainer_program(spec)
    rows = []
    for arch in ("x86_64", "aarch64"):
        app_text = len(dapper.binary(arch).text)
        pop_extra = len(popcorn.binary(arch).text) - app_text
        hc_extra = len(hcontainer.binary(arch).text) - app_text
        rows.append(("dapper", arch, 0, "compiler metadata only",
                     "cross-ISA, shuffle, live-update, rerandomize"))
        rows.append(("h-container", arch, hc_extra,
                     "compiler + inline runtime",
                     "cross-ISA only"))
        rows.append(("popcorn", arch, pop_extra,
                     "compiler + inline runtime + custom kernel",
                     "cross-ISA only"))
    return rows


def test_fig01_complexity_extensibility(one_shot):
    rows = one_shot(run_fig01)
    by_system = {}
    for row in rows:
        by_system.setdefault(row[0], []).append(row)
    # Dapper's in-process transformer footprint is zero; the baselines'
    # is real code, Popcorn's the largest (the Fig. 1 ordering).
    for arch_rows in zip(by_system["dapper"], by_system["h-container"],
                         by_system["popcorn"]):
        dapper_row, hc_row, pop_row = arch_rows
        assert dapper_row[2] == 0
        assert 0 < hc_row[2] < pop_row[2]
    emit("fig01", "complexity vs extensibility (measured stand-ins)",
         ["system", "arch", "in-process transformer bytes",
          "system-software changes", "policies on one mechanism"],
         rows,
         notes="paper Fig. 1: DAPPER sits at low complexity / high "
               "extensibility because the transformer never enters the "
               "target address space")
