"""Fig. 5 — breakdown of Dapper's time cost for cross-architecture
process transformation: checkpoint / recode / scp / restore per benchmark
(x86-64 → aarch64, InfiniBand).

Paper's reference points: checkpoint and restore below ~30 ms; recode
averaging ≈254 ms when run on the x86-64 node vs ≈1005 ms on the
aarch64 node (identical logic, weaker micro-architecture); scp ≈300 ms.
"""

from conftest import emit

from repro.apps import all_apps
from repro.core.costs import rpi_profile, xeon_profile
from repro.core.migration import MigrationPipeline
from repro.isa import ARM_ISA, X86_ISA
from repro.vm import Machine

BENCHMARKS = [s.name for s in all_apps()]


def run_breakdown():
    rows = []
    arm_profile = rpi_profile()
    for spec in all_apps():
        program = spec.compile("small")
        pipeline = MigrationPipeline(
            Machine(X86_ISA, name="xeon"), Machine(ARM_ISA, name="rpi"),
            program, target_footprint_bytes=spec.class_b_footprint)
        result = pipeline.run_and_migrate(warmup_steps=4000)
        assert result.process.exit_code == 0
        stages = result.stage_seconds
        # The paper notes the recode can run on either node; report the
        # aarch64-side cost for the same (footprint-scaled) quantities.
        scale = stages["recode"] * pipeline.recode_profile.recode_bytes_per_s
        recode_on_arm = scale / arm_profile.recode_bytes_per_s
        rows.append((spec.name,
                     stages["checkpoint"] * 1e3,
                     stages["recode"] * 1e3,
                     recode_on_arm * 1e3,
                     stages["scp"] * 1e3,
                     stages["restore"] * 1e3,
                     result.total_seconds * 1e3))
    return rows


def check_shapes(rows):
    recode_x86 = [r[2] for r in rows]
    recode_arm = [r[3] for r in rows]
    for (_n, checkpoint, _rx, _ra, scp, restore, _t) in rows:
        assert checkpoint < 32.0, "checkpoint should be ≈< 30 ms"
        assert restore < 32.0, "restore should be ≈< 30 ms"
        assert 250.0 < scp < 400.0, "InfiniBand scp ≈ 300 ms"
    ratio = (sum(recode_arm) / len(recode_arm)) / \
            (sum(recode_x86) / len(recode_x86))
    assert 3.0 < ratio < 5.0, "recode ≈4× slower on the aarch64 node"


def test_fig05_transformation_breakdown(one_shot):
    rows = one_shot(run_breakdown)
    check_shapes(rows)
    avg = ["average",
           sum(r[1] for r in rows) / len(rows),
           sum(r[2] for r in rows) / len(rows),
           sum(r[3] for r in rows) / len(rows),
           sum(r[4] for r in rows) / len(rows),
           sum(r[5] for r in rows) / len(rows),
           sum(r[6] for r in rows) / len(rows)]
    emit("fig05", "cross-ISA transformation cost breakdown (ms, x86→arm)",
         ["benchmark", "checkpoint", "recode@x86", "recode@arm", "scp",
          "restore", "total"],
         rows + [avg],
         notes=("paper: checkpoint/restore <30ms, recode 253.69ms (x86) "
                "vs 1004.91ms (arm), scp ~300ms (InfiniBand)"))
