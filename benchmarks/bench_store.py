"""Checkpoint-store benchmark: dedup, incremental dumps, delta transfer.

Measures, per app, what the content-addressed store buys over the
plain copy-the-images pipeline:

* **full-copy scp** — bytes a vanilla migration ships (the baseline),
* **cold store** — bytes shipped to a destination store that has never
  seen anything (compression only),
* **warm store** — bytes shipped when the destination has already
  received one migration of the same program (dedup: only genuinely
  new chunks cross the wire),
* **incremental dumps** — physical bytes each successive epoch
  checkpoint adds to the store (dirty pages only),
* **durability** — wall-clock crash-recovery time and scrub
  throughput of the dir-backend store holding the epoch chain, plus
  the crash-point sweep verdict (every durability site of a ``put``
  killed and recovered; deterministic, so asserted under ``--smoke``),
* store fsck (``verify``) must be clean on both sides, and the
  restored output must be byte-identical on every path.

Writes ``BENCH_store.json`` at the repo root so the trajectory is
tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py [--smoke]

``--smoke`` runs the small app size only and *asserts* the acceptance
bar: a warm delta migration ships < 50% of the bytes of a full-copy
scp migration, with identical restored output. Byte counts are
deterministic, so this is CI-safe (no timing gates).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.registry import get_app                     # noqa: E402
from repro.core.migration import MigrationPipeline          # noqa: E402
from repro.core.runtime import DapperRuntime                # noqa: E402
from repro.isa import get_isa                               # noqa: E402
from repro.store import (CheckpointStore,                   # noqa: E402
                         IncrementalCheckpointer)
from repro.vm.kernel import Machine                         # noqa: E402

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
APPS = ("dhrystone", "kmeans")
WARMUP = 5000
EPOCH_STEPS = 3000
EPOCHS = 4


def migrate_once(program, use_store, src_store=None, dst_store=None):
    src = Machine(get_isa("x86_64"), name="src")
    dst = Machine(get_isa("aarch64"), name="dst")
    pipeline = MigrationPipeline(src, dst, program, use_store=use_store,
                                 src_store=src_store, dst_store=dst_store)
    result = pipeline.run_and_migrate(WARMUP)
    return result


def incremental_epochs(program):
    """Physical bytes each epoch checkpoint adds to the store."""
    machine = Machine(get_isa("x86_64"), name="inc")
    from repro.core.migration import exe_path_for, install_program
    install_program(machine, program)
    process = machine.spawn_process(
        exe_path_for(program.name, "x86_64"))
    machine.step_all(WARMUP)
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    store = CheckpointStore()
    checkpointer = IncrementalCheckpointer(store, process,
                                           runtime=runtime)
    epochs = []
    for _ in range(EPOCHS):
        result = checkpointer.checkpoint()
        epochs.append({
            "delta": result.delta,
            "pages_total": result.pages_total,
            "pages_carried": result.pages_carried,
            "new_physical_bytes": result.new_physical_bytes,
            "logical_bytes": result.logical_bytes,
        })
        runtime.resume()
        machine.step_all(EPOCH_STEPS)
        if process.exited:
            break
        runtime.pause_at_equivalence_points()
    problems = store.verify()
    if problems:
        raise SystemExit(f"store verify failed after incremental "
                         f"dumps: {problems}")
    stats = store.stats()
    # gc sanity: unpinning every checkpoint must drain the store
    for cid in reversed(store.chain(checkpointer.last_id)):
        store.delete(cid)
    store.gc()
    if len(store.chunks) != 0:
        raise SystemExit("gc left unreferenced chunks behind")
    return epochs, stats


def durability(program) -> dict:
    """Recovery time, scrub throughput, and the crash-sweep verdict
    for a dir-backend store holding the epoch chain."""
    import time

    from repro.chaos import sweep as crash_sweep
    from repro.core.migration import exe_path_for, install_program
    from repro.criu.dump import dump_process
    from repro.store import DirBackend, SimDisk

    machine = Machine(get_isa("x86_64"), name="dur")
    install_program(machine, program)
    process = machine.spawn_process(
        exe_path_for(program.name, "x86_64"))
    machine.step_all(WARMUP)
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()

    disk = SimDisk(seed=0)
    store = CheckpointStore(backend=DirBackend(disk))
    first_images = None
    for _ in range(EPOCHS):
        images = dump_process(process)
        if first_images is None:
            first_images = images
        store.put(images)
        runtime.resume()
        machine.step_all(EPOCH_STEPS)
        if process.exited:
            break
        runtime.pause_at_equivalence_points()

    start = time.perf_counter()
    recovered, report = CheckpointStore.recover(DirBackend(disk.clone()))
    recover_ms = (time.perf_counter() - start) * 1000.0
    if report.fsck:
        raise SystemExit(f"recovery fsck failed: {report.fsck}")

    start = time.perf_counter()
    scrubbed = store.scrub()
    elapsed = max(time.perf_counter() - start, 1e-9)
    if scrubbed.corrupt:
        raise SystemExit(f"scrub found corruption on a healthy "
                         f"store: {scrubbed.corrupt}")

    swept = crash_sweep(lambda s: None,
                        lambda s, ctx: s.put(first_images),
                        label="put", seed=0, atomic=True)
    return {
        "checkpoints": len(recovered.checkpoint_ids()),
        "chunks": len(recovered.chunks),
        "recover_ms": round(recover_ms, 3),
        "scrub_chunks": scrubbed.scanned,
        "scrub_mb_per_s": round(
            scrubbed.logical_bytes / elapsed / 1e6, 2),
        "crash_sites": len(swept.sites),
        "crash_sweep_ok": swept.ok,
    }


def measure(app_name: str, size: str) -> dict:
    program = get_app(app_name).compile(size)

    plain = migrate_once(program, use_store=False)
    full_bytes = plain.images.total_bytes()

    src_store, dst_store = CheckpointStore(), CheckpointStore()
    cold = migrate_once(program, True, src_store, dst_store)
    warm = migrate_once(program, True, src_store, dst_store)

    for label, result in (("cold", cold), ("warm", warm)):
        if result.combined_output() != plain.combined_output():
            raise SystemExit(f"OUTPUT MISMATCH on {app_name} ({label} "
                             f"store path) — refusing to report sizes "
                             f"for wrong results")
    for label, store in (("src", src_store), ("dst", dst_store)):
        problems = store.verify()
        if problems:
            raise SystemExit(f"{label} store verify failed on "
                             f"{app_name}: {problems}")

    epochs, inc_stats = incremental_epochs(program)
    durable = durability(program)

    cold_bytes = cold.stats["store"]["bytes_shipped"]
    warm_bytes = warm.stats["store"]["bytes_shipped"]
    return {
        "app": app_name,
        "size": size,
        "full_copy_bytes": full_bytes,
        "cold_store_bytes": cold_bytes,
        "warm_store_bytes": warm_bytes,
        "cold_ratio": round(cold_bytes / full_bytes, 4),
        "warm_ratio": round(warm_bytes / full_bytes, 4),
        "store_dedup_ratio": round(
            cold.stats["store"]["dedup_ratio"], 2),
        "plain_total_seconds": round(plain.total_seconds, 6),
        "warm_total_seconds": round(warm.total_seconds, 6),
        "incremental_epochs": epochs,
        "incremental_dedup_ratio": round(
            inc_stats["dedup_ratio"], 2),
        "durability": durable,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small size + assert the <50%% warm-delta "
                             "acceptance bar")
    parser.add_argument("--size", default=None,
                        help="app size override (default: small for "
                             "--smoke, medium otherwise)")
    args = parser.parse_args()
    size = args.size or ("small" if args.smoke else "medium")

    results = []
    for app in APPS:
        row = measure(app, size)
        results.append(row)
        print(f"{app:12} full={row['full_copy_bytes']:8}B "
              f"cold={row['cold_store_bytes']:7}B "
              f"({row['cold_ratio']:.0%}) "
              f"warm={row['warm_store_bytes']:6}B "
              f"({row['warm_ratio']:.0%}) "
              f"dedup={row['store_dedup_ratio']}x")
        for i, epoch in enumerate(row["incremental_epochs"]):
            kind = "delta" if epoch["delta"] else "full "
            print(f"  epoch {i} {kind} pages="
                  f"{epoch['pages_carried']}/{epoch['pages_total']} "
                  f"+{epoch['new_physical_bytes']}B")
        durable = row["durability"]
        print(f"  durability: recover={durable['recover_ms']}ms "
              f"({durable['checkpoints']} ckpts, "
              f"{durable['chunks']} chunks) "
              f"scrub={durable['scrub_mb_per_s']}MB/s "
              f"sweep={durable['crash_sites']} sites "
              f"{'ok' if durable['crash_sweep_ok'] else 'FAILED'}")

    if args.smoke:
        for row in results:
            assert row["warm_store_bytes"] < 0.5 * row["full_copy_bytes"], (
                f"{row['app']}: warm store migration shipped "
                f"{row['warm_store_bytes']}B, not under half of the "
                f"{row['full_copy_bytes']}B full copy")
            assert row["durability"]["crash_sweep_ok"], (
                f"{row['app']}: crash-point sweep failed")
        print("smoke OK: warm delta < 50% of full copy on every app, "
              "crash sweep recovered every site")

    record = {
        "benchmark": "store",
        "mode": "smoke" if args.smoke else "full",
        "results": results,
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_store.json")
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
