"""Fig. 11 — Dapper's attack-surface reduction, measured as the ROP
gadget count of each benchmark binary relative to the Popcorn Linux
baseline (with the H-Container variant alongside).

Paper's reference: Dapper reduces ROP gadgets by an average of 59.28 %
on x86-64 and 71.91 % on aarch64 — because the cross-ISA transformation
logic lives *outside* the target process, while Popcorn links an inline
transformer (plus kernel page-sharing stubs) into every binary.
"""

from conftest import emit

from repro.apps import all_apps
from repro.baselines import hcontainer_program, popcorn_program
from repro.security import count_gadgets, gadget_reduction


def run_fig11():
    rows = []
    sums = {"x86_64": 0.0, "aarch64": 0.0}
    for spec in all_apps():
        dapper = spec.compile("small")
        popcorn = popcorn_program(spec)
        hcontainer = hcontainer_program(spec)
        for arch in ("x86_64", "aarch64"):
            d = count_gadgets(dapper.binary(arch))
            h = count_gadgets(hcontainer.binary(arch))
            p = count_gadgets(popcorn.binary(arch))
            reduction = gadget_reduction(dapper.binary(arch),
                                         popcorn.binary(arch))
            reduction_h = gadget_reduction(dapper.binary(arch),
                                           hcontainer.binary(arch))
            sums[arch] += reduction
            rows.append((spec.name, arch, d, h, p, reduction, reduction_h))
    count = len(all_apps())
    averages = {arch: total / count for arch, total in sums.items()}
    return rows, averages


def check_shapes(rows, averages):
    for (_name, _arch, dapper, hcont, popcorn, red, red_h) in rows:
        assert dapper < hcont < popcorn
        assert red > red_h > 0
    # Paper: 59.28 % (x86-64) / 71.91 % (aarch64), aarch64 higher.
    assert 45.0 < averages["x86_64"] < 75.0
    assert 60.0 < averages["aarch64"] < 85.0
    assert averages["aarch64"] > averages["x86_64"]


def test_fig11_gadget_reduction(one_shot):
    rows, averages = one_shot(run_fig11)
    check_shapes(rows, averages)
    rows = list(rows)
    for arch, avg in sorted(averages.items()):
        rows.append(("average", arch, 0, 0, 0, avg, 0.0))
    emit("fig11", "ROP-gadget attack-surface reduction vs Popcorn Linux",
         ["benchmark", "arch", "dapper", "h-container", "popcorn",
          "reduction vs popcorn %", "reduction vs h-container %"],
         rows,
         notes="paper: average reduction 59.28% (x86-64), 71.91% (aarch64)")
