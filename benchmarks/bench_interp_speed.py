"""Interpreter speed benchmark: per-step vs tier-2 blocks vs tier-3 chains.

Executes a mixed application suite — Dhrystone and K-means plus server
and HPC workloads (nginx, redis, NPB CG, PARSEC Black-Scholes) — on
both ISAs under all three execution tiers:

* ``per_step``  — the per-instruction interpreter baseline
  (``Machine(block_engine=False)``),
* ``tier2``     — per-trace superblock specialization
  (:mod:`repro.vm.blocks`),
* ``tier3``     — linked superblock chains with loop-closing jumps
  (:mod:`repro.vm.chains`),

reports instructions/sec for each, and writes ``BENCH_interp.json`` at
the repo root so the perf trajectory is tracked across PRs.

Methodology: engines are compared at steady state — each measurement
spawns a fresh process (so per-process warmup is included) inside a
warmed interpreter (so one-time global costs — decoding traces,
``compile()``-ing specializations — are not billed to a single run;
they are amortized across every process a long-lived node executes,
which is the deployment model the paper's runtime assumes). All tiers
run under the same scheduling quantum (default 4096; the per-step
baseline's speed is insensitive to it, while fine-grained slicing
would bill the compiled tiers a register spill/reload at every slice
boundary — the comparison is identical-slicing by construction).
Tier timings are interleaved and the best of ``--reps`` runs is taken,
because wall-clock noise on a shared host easily exceeds the effect
being measured. Every run is also checked for bit-identical results
(stdout, exit code, instruction and cycle totals) against the per-step
baseline — a speedup that changes architectural behaviour is a bug,
not a result.

Usage::

    PYTHONPATH=src python benchmarks/bench_interp_speed.py [--smoke]

``--smoke`` is the quick CI signal: every app runs once at the small
size under all three tiers (fingerprint agreement, harness sanity),
then a short timed Dhrystone medium comparison asserts that tier-3 is
at least as fast as tier-2 — the one ordering that must survive even a
noisy shared runner.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.registry import get_app          # noqa: E402
from repro.isa import get_isa                    # noqa: E402
from repro.vm import blocks, chains              # noqa: E402
from repro.vm.kernel import Machine              # noqa: E402

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")

# Steady-state warmup tuning: tier up quickly so the shorter runs
# (Dhrystone medium retires ~284k instructions) measure chain
# throughput rather than threshold warmup. Thresholds only delay
# tier-up — they cannot change results, which the fingerprint check
# below enforces anyway.
blocks.HOT_THRESHOLD = 2
chains.CHAIN_THRESHOLD = 2
APPS = ("dhrystone", "kmeans", "nginx", "redis", "cg", "blackscholes")
ARCHES = ("x86_64", "aarch64")
QUANTUM = 4096

# Timed problem size per app ("medium" unless listed). Dhrystone medium
# retires only ~284k instructions — under 30 ms at chain speed, short
# enough that timer granularity and CPU frequency ramping swamp the
# signal; the large size (~2.1M instructions) keeps every timed region
# in the hundreds of milliseconds.
SIZES = {"dhrystone": "large"}

#: tier name -> Machine engine flags
TIERS = {
    "per_step": dict(block_engine=False, chain_engine=False),
    "tier2": dict(block_engine=True, chain_engine=False),
    "tier3": dict(block_engine=True, chain_engine=True),
}


def run_once(app: str, arch: str, size: str, tier: str) -> tuple:
    """One fresh process run; returns (result fingerprint, seconds)."""
    binary = get_app(app).compile(size).binary(arch)
    machine = Machine(get_isa(arch), quantum=QUANTUM, **TIERS[tier])
    machine.install_binary(binary, f"/bin/{app}")
    process = machine.spawn_process(f"/bin/{app}")
    start = time.perf_counter()
    machine.run_process(process)
    elapsed = time.perf_counter() - start
    fingerprint = (process.stdout(), process.exit_code,
                   process.instr_total, process.cycle_total)
    return fingerprint, elapsed


def check_fingerprints(app: str, arch: str, size: str) -> tuple:
    """All three tiers must retire the same execution, bit for bit."""
    base_fp, _ = run_once(app, arch, size, "per_step")
    for tier in ("tier2", "tier3"):
        fp, _ = run_once(app, arch, size, tier)
        if fp != base_fp:
            raise SystemExit(
                f"ENGINE MISMATCH on {app}/{arch}/{tier}: per-step and "
                f"{tier} runs differ — refusing to report a speed for "
                f"wrong results")
    return base_fp


def measure(app: str, arch: str, size: str, reps: int) -> dict:
    base_fp = check_fingerprints(app, arch, size)
    times = {tier: [] for tier in TIERS}
    for _ in range(reps):                  # interleaved to share the noise
        for tier in TIERS:
            times[tier].append(run_once(app, arch, size, tier)[1])
    instrs = base_fp[2]
    ips = {tier: instrs / min(ts) for tier, ts in times.items()}
    return {
        "app": app,
        "arch": arch,
        "size": size,
        "instructions": instrs,
        "per_step_ips": round(ips["per_step"]),
        "tier2_ips": round(ips["tier2"]),
        "tier3_ips": round(ips["tier3"]),
        "tier2_speedup": round(ips["tier2"] / ips["per_step"], 2),
        "tier3_speedup": round(ips["tier3"] / ips["per_step"], 2),
    }


def smoke() -> int:
    for app in APPS:
        for arch in ARCHES:
            check_fingerprints(app, arch, "small")
            print(f"{app:14s} {arch:8s} fingerprints agree across tiers")
    # One ordering must hold even on a noisy runner: chains beat bare
    # superblocks on Dhrystone at a size past chain warmup.
    best = {"tier2": 0.0, "tier3": 0.0}
    for _ in range(3):
        for tier in ("tier2", "tier3"):
            fp, elapsed = run_once("dhrystone", "x86_64", "medium", tier)
            best[tier] = max(best[tier], fp[2] / elapsed)
    print(f"dhrystone medium x86_64: tier2={best['tier2']/1e6:.2f} M i/s "
          f"tier3={best['tier3']/1e6:.2f} M i/s")
    if best["tier3"] < best["tier2"]:
        print("FAIL: tier-3 chains slower than tier-2 blocks on Dhrystone")
        return 1
    print("OK: tier3 >= tier2 on Dhrystone")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fingerprint check + tier3>=tier2 assertion")
    parser.add_argument("--reps", type=int, default=5,
                        help="timed repetitions per tier (default 5)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required tier-3 speedup on Dhrystone and "
                             "K-means (default 10.0)")
    args = parser.parse_args()

    if args.smoke:
        return smoke()

    reps = max(1, args.reps)
    rows = []
    for app in APPS:
        for arch in ARCHES:
            row = measure(app, arch, SIZES.get(app, "medium"), reps)
            rows.append(row)
            print(f"{app:14s} {arch:8s} "
                  f"per_step={row['per_step_ips']/1e6:5.2f} "
                  f"tier2={row['tier2_ips']/1e6:5.2f} "
                  f"tier3={row['tier3_ips']/1e6:5.2f} M i/s  "
                  f"speedup={row['tier2_speedup']:.2f}x"
                  f"/{row['tier3_speedup']:.2f}x")

    payload = {
        "benchmark": "interp_speed",
        "mode": "full",
        "reps": reps,
        "quantum": QUANTUM,
        "results": rows,
        "trace_cache": blocks.trace_cache_info(),
        "chain_cache": chains.chain_cache_info(),
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_interp.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(out_path)}")

    gated = [r for r in rows if r["app"] in ("dhrystone", "kmeans")]
    failing = [r for r in gated if r["tier3_speedup"] < args.min_speedup]
    if failing:
        print(f"FAIL: tier-3 speedup below {args.min_speedup}x: "
              + ", ".join(f"{r['app']}/{r['arch']}={r['tier3_speedup']}x"
                          for r in failing))
        return 1
    print(f"OK: tier-3 >= {args.min_speedup}x on Dhrystone and K-means, "
          f"both ISAs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
