"""Interpreter speed microbenchmark: superblock engine vs per-step.

Executes Dhrystone and K-means on both ISAs with the per-instruction
baseline (``Machine(block_engine=False)``) and the superblock execution
engine (:mod:`repro.vm.blocks`), reports instructions/sec for each, and
writes ``BENCH_interp.json`` at the repo root so the perf trajectory is
tracked across PRs.

Methodology: engines are compared at steady state — each measurement
spawns a fresh process (so per-process warmup is included) inside a
warmed interpreter (so one-time global costs — decoding traces,
``compile()``-ing specializations — are not billed to a single run;
they are amortized across every process a long-lived node executes,
which is the deployment model the paper's runtime assumes). Baseline
and engine timings are interleaved and the best of ``--reps`` runs is
taken, because wall-clock noise on a shared host easily exceeds the
effect being measured. Every run is also checked for bit-identical
results (stdout, exit code, instruction and cycle totals) against the
baseline — a speedup that changes architectural behaviour is a bug,
not a result.

Usage::

    PYTHONPATH=src python benchmarks/bench_interp_speed.py [--smoke]

``--smoke`` runs the small program size with one reptition — a quick
CI signal that both engines agree and the harness works, without
asserting a speedup (shared CI runners are too noisy for that).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.registry import get_app          # noqa: E402
from repro.isa import get_isa                    # noqa: E402
from repro.vm.kernel import Machine              # noqa: E402

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
APPS = ("dhrystone", "kmeans")
ARCHES = ("x86_64", "aarch64")


def run_once(app: str, arch: str, size: str, block_engine: bool) -> tuple:
    """One fresh process run; returns (result fingerprint, seconds)."""
    binary = get_app(app).compile(size).binary(arch)
    machine = Machine(get_isa(arch), block_engine=block_engine)
    machine.install_binary(binary, f"/bin/{app}")
    process = machine.spawn_process(f"/bin/{app}")
    start = time.perf_counter()
    machine.run_process(process)
    elapsed = time.perf_counter() - start
    fingerprint = (process.stdout(), process.exit_code,
                   process.instr_total, process.cycle_total)
    return fingerprint, elapsed


def measure(app: str, arch: str, size: str, reps: int) -> dict:
    base_fp, _ = run_once(app, arch, size, block_engine=False)
    blk_fp, _ = run_once(app, arch, size, block_engine=True)
    if base_fp != blk_fp:
        raise SystemExit(
            f"ENGINE MISMATCH on {app}/{arch}: baseline and superblock "
            f"runs differ — refusing to report a speed for wrong results")
    base_times, blk_times = [], []
    for _ in range(reps):                  # interleaved to share the noise
        base_times.append(run_once(app, arch, size, False)[1])
        blk_times.append(run_once(app, arch, size, True)[1])
    instrs = base_fp[2]
    base_ips = instrs / min(base_times)
    blk_ips = instrs / min(blk_times)
    return {
        "app": app,
        "arch": arch,
        "size": size,
        "instructions": instrs,
        "baseline_ips": round(base_ips),
        "block_ips": round(blk_ips),
        "speedup": round(blk_ips / base_ips, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small size, one rep, no speedup assertion")
    parser.add_argument("--reps", type=int, default=5,
                        help="timed repetitions per engine (default 5)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required Dhrystone speedup (default 3.0)")
    args = parser.parse_args()

    size = "small" if args.smoke else "medium"
    reps = 1 if args.smoke else max(1, args.reps)

    rows = []
    for app in APPS:
        for arch in ARCHES:
            row = measure(app, arch, size, reps)
            rows.append(row)
            print(f"{app:10s} {arch:8s} base={row['baseline_ips']/1e6:5.2f}"
                  f" M i/s  block={row['block_ips']/1e6:5.2f} M i/s "
                  f" speedup={row['speedup']:.2f}x")

    payload = {
        "benchmark": "interp_speed",
        "mode": "smoke" if args.smoke else "full",
        "reps": reps,
        "results": rows,
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_interp.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(out_path)}")

    if not args.smoke:
        dhry = [r for r in rows if r["app"] == "dhrystone"]
        failing = [r for r in dhry if r["speedup"] < args.min_speedup]
        if failing:
            print(f"FAIL: Dhrystone speedup below {args.min_speedup}x: "
                  + ", ".join(f"{r['arch']}={r['speedup']}x"
                              for r in failing))
            return 1
        print(f"OK: Dhrystone >= {args.min_speedup}x on both ISAs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
