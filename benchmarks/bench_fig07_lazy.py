"""Fig. 7 — vanilla migration vs lazy (post-copy) migration
(x86-64 → aarch64 over InfiniBand).

Paper's shapes: lazy migration collapses the checkpoint and scp stages
(only the minimal task state + stack pages move eagerly), recodes
slightly faster (less stack memory to search), restores almost instantly
(≈8 ms) and pays an *indirect* restoration cost as pages fault in. The
lazy advantage is small when checkpointing at the *beginning* (little
memory populated yet), grows after warm-up, and the indirect cost shrinks
toward the *end* (fewer pages are still needed). CG and MG are
checkpointed at init/mid/end; Redis at three database sizes.
"""

from conftest import emit

from repro.apps import get_app
from repro.compiler import compile_source
from repro.core.costs import infiniband_link
from repro.core.migration import MigrationPipeline, exe_path_for, \
    install_program
from repro.isa import ARM_ISA, X86_ISA
from repro.vm import Machine

LINK = infiniband_link()

#: Fixed image-byte scale for the time-evolution series so that the
#: process's footprint *growth* shows through (a per-run nominal-footprint
#: scale would normalize it away).
SERIES_SCALE = 400.0


def phased_kernel_source(name: str, heap_pages: int = 16,
                         tail_iters: int = 24) -> str:
    """A CG/MG-style kernel with the paper's memory life cycle: a warm-up
    phase that allocates and fills a heap working set, then a tail phase
    whose working set *shrinks* round by round (so a later checkpoint
    leaves fewer pages for the page server to deliver)."""
    words = heap_pages * 512
    return f"""
global int *table;
global int lcg_state;

func lcg_next() -> int {{
    lcg_state = (lcg_state * 1664525 + 1013904223) % 2147483648;
    return lcg_state;
}}

func fill_chunk(int base, int n) {{
    int i;
    i = 0;
    while (i < n) {{
        table[base + i] = lcg_next() % 10000;
        i = i + 1;
    }}
}}

func sweep(int n, int stride) -> int {{
    int i; int acc;
    acc = 0;
    i = 0;
    while (i < n) {{
        acc = (acc + table[i]) % 1000000007;
        i = i + stride;
    }}
    return acc;
}}

func main() -> int {{
    int round; int acc;
    table = sbrk({words} * 8);
    round = 0;
    while (round < 8) {{
        fill_chunk(round * {words // 8}, {words // 8});
        round = round + 1;
    }}
    print(sweep({words}, 1));
    round = 0;
    while (round < {tail_iters}) {{
        acc = sweep({words} - round * {words // 32}, 16);
        round = round + 1;
    }}
    print(acc);
    return 0;
}}
"""


def total_instructions(program):
    machine = Machine(X86_ISA)
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(program.name, "x86_64"))
    machine.run_process(process)
    return process.instr_total, process.stdout()


def one_migration(program, warmup, lazy, byte_scale=None, footprint=None):
    pipeline = MigrationPipeline(
        Machine(X86_ISA, name="xeon"), Machine(ARM_ISA, name="rpi"),
        program, byte_scale=byte_scale or 1.0,
        target_footprint_bytes=footprint)
    result = pipeline.run_and_migrate(warmup_steps=warmup, lazy=lazy)
    indirect = result.indirect_restore_seconds(LINK)
    if lazy and result.page_server is not None:
        scale = byte_scale if byte_scale else \
            max(1.0, (footprint or 0) / 60_000)
        indirect *= scale
    return result, indirect


def _row(label, mode, stages, indirect, total):
    return (label, mode, stages["checkpoint"] * 1e3, stages["recode"] * 1e3,
            stages["scp"] * 1e3, stages["restore"] * 1e3, indirect * 1e3,
            total * 1e3)


def run_fig07():
    rows = []
    # CG- and MG-style phased kernels at init / mid / end.
    for name, heap_pages in (("cg", 24), ("mg", 32)):
        program = compile_source(phased_kernel_source(name, heap_pages),
                                 f"{name}-phased")
        total, reference = total_instructions(program)
        for label, fraction in (("init", 0.02), ("mid", 0.55),
                                ("end", 0.9)):
            warmup = int(total * fraction)
            for lazy in (False, True):
                result, indirect = one_migration(
                    program, warmup, lazy, byte_scale=SERIES_SCALE)
                assert result.combined_output() == reference
                rows.append(_row(f"{name}-{label}",
                                 "lazy" if lazy else "vanilla",
                                 result.stage_seconds, indirect,
                                 result.total_seconds + indirect))
    # Redis at three in-memory database sizes.
    for size, footprint in (("db-small", 2.5e6), ("db-medium", 6.5e6),
                            ("db-large", 16e6)):
        source = get_app("redis").source(size)
        program = compile_source(source, f"redis-{size}")
        total, reference = total_instructions(program)
        for lazy in (False, True):
            result, indirect = one_migration(program, int(total * 0.5),
                                             lazy, footprint=footprint)
            assert result.combined_output() == reference
            rows.append(_row(f"redis-{size}",
                             "lazy" if lazy else "vanilla",
                             result.stage_seconds, indirect,
                             result.total_seconds + indirect))
    return rows


def check_shapes(rows):
    by_key = {}
    for row in rows:
        by_key.setdefault(row[0], {})[row[1]] = row
    for key, pair in by_key.items():
        vanilla, lazy = pair["vanilla"], pair["lazy"]
        assert lazy[2] <= vanilla[2] + 1e-9, f"{key}: lazy checkpoint smaller"
        assert lazy[4] <= vanilla[4] + 1e-9, f"{key}: lazy scp smaller"
        assert lazy[3] <= vanilla[3] + 1e-9, f"{key}: lazy recode no slower"
    for name in ("cg", "mg"):
        # Lazy total advantage grows once the heap is warm...
        gain_init = (by_key[f"{name}-init"]["vanilla"][7]
                     - by_key[f"{name}-init"]["lazy"][7])
        gain_mid = (by_key[f"{name}-mid"]["vanilla"][7]
                    - by_key[f"{name}-mid"]["lazy"][7])
        assert gain_mid > gain_init, f"{name}: lazy pays off after warm-up"
        # ...and the indirect page-fault cost shrinks toward the end.
        indirect_mid = by_key[f"{name}-mid"]["lazy"][6]
        indirect_end = by_key[f"{name}-end"]["lazy"][6]
        assert indirect_end <= indirect_mid + 1e-9
    # Redis: lazy gains grow with database size.
    gains = [by_key[f"redis-{s}"]["vanilla"][7]
             - by_key[f"redis-{s}"]["lazy"][7]
             for s in ("db-small", "db-medium", "db-large")]
    assert gains[0] < gains[1] < gains[2]


def test_fig07_vanilla_vs_lazy(one_shot):
    rows = one_shot(run_fig07)
    check_shapes(rows)
    emit("fig07", "vanilla vs lazy migration (ms, x86→arm, InfiniBand)",
         ["checkpoint@", "mode", "checkpoint", "recode", "scp", "restore",
          "indirect", "total"],
         rows,
         notes="paper: lazy collapses checkpoint+scp, restore ≈8ms + "
               "on-demand page retrieval; init≈vanilla, gains after "
               "warm-up, indirect cost falls toward end; Redis gains "
               "grow with DB size")
