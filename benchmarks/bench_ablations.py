"""Ablation benches for the design choices DESIGN.md calls out.

1. **Recode placement** — the paper notes the rewrite can run on either
   node and recommends the most powerful one; measure the end-to-end
   migration latency when recoding at the x86-64 source vs the aarch64
   target.
2. **Vanilla vs lazy crossover** — sweep the (nominal) memory footprint
   and find where post-copy migration starts winning end-to-end even
   after paying the full indirect page-retrieval cost.
3. **Interconnect sensitivity** — the scp stage dominates Fig. 5 on
   InfiniBand; compare against 1 GbE.
4. **Pause latency** — how many instructions a process runs past the
   transformation request before all threads park (equivalence-point
   density), across call-density extremes.
"""

from conftest import emit

from repro.apps import get_app
from repro.compiler import compile_source
from repro.core.costs import (ethernet_link, infiniband_link, rpi_profile,
                              xeon_profile)
from repro.core.migration import MigrationPipeline, exe_path_for, \
    install_program
from repro.core.runtime import DapperRuntime
from repro.isa import ARM_ISA, X86_ISA
from repro.vm import Machine


def test_ablation_recode_placement(one_shot):
    def run():
        spec = get_app("cg")
        program = spec.compile("small")
        rows = []
        for label, profile in (("recode@x86 (source)", xeon_profile()),
                               ("recode@arm (target)", rpi_profile())):
            pipeline = MigrationPipeline(
                Machine(X86_ISA, name="xeon"), Machine(ARM_ISA, name="rpi"),
                program, recode_profile=profile,
                target_footprint_bytes=spec.class_b_footprint)
            result = pipeline.run_and_migrate(warmup_steps=4000)
            rows.append((label, result.stage_seconds["recode"] * 1e3,
                         result.total_seconds * 1e3))
        assert rows[0][1] < rows[1][1], "recoding at the source (x86) wins"
        return rows

    rows = one_shot(run)
    emit("ablation_recode_placement",
         "end-to-end latency vs recode node (cg)",
         ["placement", "recode ms", "total ms"], rows,
         notes="paper: 'we can always transform the process image on the "
               "most powerful machine'")


def test_ablation_lazy_crossover(one_shot):
    def run():
        spec = get_app("redis")
        program = spec.compile("small")
        link = infiniband_link()
        rows = []
        for footprint in (0.5e6, 2e6, 8e6, 32e6):
            totals = {}
            for lazy in (False, True):
                pipeline = MigrationPipeline(
                    Machine(X86_ISA, name="xeon"),
                    Machine(ARM_ISA, name="rpi"), program,
                    target_footprint_bytes=footprint)
                result = pipeline.run_and_migrate(warmup_steps=5000,
                                                  lazy=lazy)
                indirect = result.indirect_restore_seconds(link)
                if lazy:
                    indirect *= max(1.0, footprint / 60_000)
                totals["lazy" if lazy else "vanilla"] = \
                    (result.total_seconds + indirect) * 1e3
            rows.append((f"{footprint / 1e6:.1f} MB", totals["vanilla"],
                         totals["lazy"],
                         totals["vanilla"] - totals["lazy"]))
        # Lazy's advantage must grow monotonically with footprint.
        advantages = [r[3] for r in rows]
        assert advantages == sorted(advantages)
        return rows

    rows = one_shot(run)
    emit("ablation_lazy_crossover",
         "vanilla vs lazy total (incl. indirect) vs memory footprint",
         ["footprint", "vanilla ms", "lazy ms", "lazy advantage ms"],
         rows,
         notes="post-copy pays off more the larger the resident set — "
               "the mechanism behind Fig. 7's Redis series")


def test_ablation_interconnect(one_shot):
    def run():
        spec = get_app("cg")
        program = spec.compile("small")
        rows = []
        for link in (infiniband_link(), ethernet_link()):
            pipeline = MigrationPipeline(
                Machine(X86_ISA, name="xeon"), Machine(ARM_ISA, name="rpi"),
                program, link=link,
                target_footprint_bytes=spec.class_b_footprint)
            result = pipeline.run_and_migrate(warmup_steps=4000)
            rows.append((link.name, result.stage_seconds["scp"] * 1e3,
                         result.total_seconds * 1e3))
        assert rows[0][1] < rows[1][1]
        return rows

    rows = one_shot(run)
    emit("ablation_interconnect", "scp stage vs interconnect (cg)",
         ["link", "scp ms", "total ms"], rows,
         notes="paper used InfiniBand; 1GbE shifts the bottleneck "
               "further into the copy stage")


CALL_DENSE = """
func tick(int x) -> int { return x + 1; }
func main() -> int {
    int i;
    i = 0;
    while (i < 100000) { i = tick(i); }
    print(i);
    return 0;
}
"""

CALL_SPARSE = """
func burst(int n) -> int {
    int i; int acc;
    acc = 0;
    i = 0;
    while (i < n) { acc = acc + i; i = i + 1; }
    return acc;
}
func main() -> int {
    int r; int total;
    total = 0;
    r = 0;
    while (r < 50) {
        total = (total + burst(2000)) % 1000000007;
        r = r + 1;
    }
    print(total);
    return 0;
}
"""


def test_ablation_pause_latency(one_shot):
    def run():
        rows = []
        for label, source in (("call-dense", CALL_DENSE),
                              ("call-sparse", CALL_SPARSE)):
            program = compile_source(source, f"pause-{label}")
            machine = Machine(X86_ISA)
            install_program(machine, program)
            process = machine.spawn_process(
                exe_path_for(program.name, "x86_64"))
            machine.step_all(5000)
            before = process.instr_total
            runtime = DapperRuntime(machine, process)
            runtime.pause_at_equivalence_points()
            latency = process.instr_total - before
            rows.append((label, latency))
            runtime.resume()
            machine.run_process(process)
        # A call-dense program reaches an equivalence point sooner.
        assert rows[0][1] < rows[1][1]
        return rows

    rows = one_shot(run)
    emit("ablation_pause_latency",
         "instructions executed between transform request and full park",
         ["workload", "pause latency (instructions)"], rows,
         notes="equivalence points sit at function boundaries, so pause "
               "latency tracks call density (paper §III-A's design "
               "trade-off)")


def test_ablation_arm_pair_entropy(one_shot):
    """The paper's future-work extension: aarch64 loses shuffle entropy
    to ldp/stp pair instructions it scopes out of re-encoding; compiling
    without stack pairs (``arm_stack_pairs=False``) recovers it."""
    def run():
        from repro.core.entropy import binary_entropy_bits
        rows = []
        for name in ("nginx", "redis", "cg", "dhrystone"):
            source = get_app(name).source("small")
            paired = compile_source(source, name)
            unpaired = compile_source(source, name, arm_stack_pairs=False)
            x86 = binary_entropy_bits(paired.binary("x86_64"))
            arm = binary_entropy_bits(paired.binary("aarch64"))
            arm_np = binary_entropy_bits(unpaired.binary("aarch64"))
            # The unpaired binary must still execute correctly.
            machine = Machine(ARM_ISA)
            install_program(machine, unpaired)
            process = machine.spawn_process(exe_path_for(name, "aarch64"))
            machine.run_process(process)
            assert process.exit_code == 0
            rows.append((name, x86, arm, arm_np))
            assert arm_np > arm, f"{name}: splitting pairs adds entropy"
            assert arm_np >= x86 - 1e-9, \
                f"{name}: pair-free aarch64 reaches x86-level entropy"
        return rows

    rows = one_shot(run)
    emit("ablation_arm_pairs",
         "aarch64 entropy with/without ldp-stp pairs (bits)",
         ["benchmark", "x86_64", "aarch64 (paired)",
          "aarch64 (no pairs)"], rows,
         notes="paper §IV-B: 'DAPPER's future implementation can further "
               "increase the entropy by considering these instructions' — "
               "realized here as a compile-time option")
