"""Shared benchmark plumbing.

Every ``bench_figNN_*.py`` regenerates one of the paper's figures: it
runs the real pipeline on the simulated substrate, prints the figure's
rows, and writes them to ``results/figNN.txt`` so they survive pytest's
output capturing. ``pytest benchmarks/ --benchmark-only`` runs them all.
"""

from __future__ import annotations

import os
from typing import List, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def emit(figure_id: str, title: str, headers: Sequence[str],
         rows: List[Sequence], notes: str = "") -> str:
    """Format a figure's data as a table; print it and persist it."""
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    lines = [f"== {figure_id}: {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(v).ljust(w)
                               for v, w in zip(row, widths)))
    if notes:
        lines.append(notes)
    text = "\n".join(lines) + "\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{figure_id}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    print("\n" + text)
    return text


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@pytest.fixture
def one_shot(benchmark):
    """Run a heavyweight harness exactly once under pytest-benchmark."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner
