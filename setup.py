"""Legacy setup shim so `pip install -e .` works without the wheel package
(this environment is offline and cannot fetch build-isolation deps)."""

from setuptools import setup

setup()
