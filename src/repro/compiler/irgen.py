"""AST → IR lowering.

Responsibilities beyond straightforward lowering:

* **Call hoisting.** Any call nested inside an expression is hoisted to
  its own statement whose result lands in a dedicated ``calltmp`` frame
  slot. After hoisting, no expression temporary is ever live across a
  call — the property the stackmap design relies on (see ``ir.py``).
* **Builtin lowering.** ``print``/``exit``/… become syscalls;
  ``lock``/``join`` become polling loops that pass through the ``__poll``
  function (an equivalence point) on every iteration.
* **Pointer-ness.** Slots and expressions are classified as pointers so
  the stackmaps can mark values for stack-pointer remapping.
* **Runtime prelude.** ``_start``, ``__poll`` and ``__thread_exit`` are
  injected into every program.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import sysabi
from ..errors import CompileError
from . import ast_nodes as ast
from . import ir
from .parser import parse

MAX_PARAMS = 6

RUNTIME_PRELUDE = """
// Dapper runtime prelude (injected by the compiler).
func __poll() { yield(); }
func __thread_exit() { texit(); }
func _start() -> int { int r; r = main(); exit(r); return 0; }
"""

_BINOP_MAP = {
    "+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
    "&": "and", "|": "orr", "^": "eor", "<<": "lsl", ">>": "lsr",
}
_CMP_MAP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
            ">": "gt", ">=": "ge"}

_SIMPLE_BUILTINS: Dict[str, Tuple[int, int, bool]] = {
    # name: (syscall number, arg count, returns value)
    "print": (sysabi.SYS_PRINT_INT, 1, False),
    "printc": (sysabi.SYS_PRINT_CHAR, 1, False),
    "exit": (sysabi.SYS_EXIT, 1, False),
    "sbrk": (sysabi.SYS_SBRK, 1, True),
    "unlock": (sysabi.SYS_UNLOCK, 1, False),
    "yield": (sysabi.SYS_YIELD, 0, False),
    "self": (sysabi.SYS_GETTID, 0, True),
    "now": (sysabi.SYS_NOW, 0, True),
    "texit": (sysabi.SYS_THREAD_EXIT, 0, False),
}


class _FuncContext:
    """Per-function lowering state."""

    def __init__(self, func: ir.IrFunction, program_ctx: "_ProgramContext"):
        self.func = func
        self.program = program_ctx
        self.temp_counter = 0
        self.label_counter = 0
        self.calltmp_counter = 0
        self.loop_stack: List[Tuple[str, str]] = []   # (continue, break)
        self.slot_ids: Dict[str, int] = {}

    def new_temp(self) -> ir.Temp:
        temp = ir.Temp(self.temp_counter)
        self.temp_counter += 1
        self.func.max_temps = max(self.func.max_temps, self.temp_counter)
        return temp

    def reset_temps(self) -> None:
        self.temp_counter = 0

    def new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f".L{hint}_{self.label_counter}"

    def new_calltmp(self, is_pointer: bool) -> ir.IrSlot:
        name = f"$call{self.calltmp_counter}"
        self.calltmp_counter += 1
        slot = ir.IrSlot(len(self.func.slots), name, ir.WORD, is_pointer,
                         ir.SLOT_CALLTMP)
        self.func.add_slot(slot)
        self.slot_ids[name] = slot.slot_id
        return slot

    def emit(self, instr: ir.IrInstr) -> None:
        self.func.body.append(instr)


class _ProgramContext:
    def __init__(self, program: ir.IrProgram):
        self.program = program
        self.global_names: Dict[str, ir.IrGlobal] = {}
        self.tls_names: Dict[str, ir.IrTls] = {}
        self.func_names: Dict[str, ast.FuncDecl] = {}


def lower(source: str, name: str = "program",
          with_prelude: bool = True) -> ir.IrProgram:
    """Parse and lower DapperC source into an :class:`~repro.compiler.ir.IrProgram`."""
    full_source = (RUNTIME_PRELUDE + source) if with_prelude else source
    tree = parse(full_source)
    program = ir.IrProgram(name)
    ctx = _ProgramContext(program)

    for decl in tree.globals:
        if decl.name in ctx.global_names:
            raise CompileError(f"duplicate global {decl.name!r}", decl.line)
        glob = ir.IrGlobal(decl.name, decl.count * ir.WORD, decl.is_pointer)
        ctx.global_names[decl.name] = glob
        program.globals.append(glob)

    offset = sysabi.TLS_USER_BASE
    for decl in tree.tls_vars:
        if decl.name in ctx.tls_names:
            raise CompileError(f"duplicate tls var {decl.name!r}", decl.line)
        tls = ir.IrTls(decl.name, offset)
        offset += ir.WORD
        ctx.tls_names[decl.name] = tls
        program.tls_vars.append(tls)

    for func in tree.functions:
        if func.name in ctx.func_names:
            raise CompileError(f"duplicate function {func.name!r}", func.line)
        ctx.func_names[func.name] = func

    if "main" not in ctx.func_names:
        raise CompileError("program has no 'main' function")

    for func in tree.functions:
        program.functions.append(_lower_function(func, ctx))
    return program


def _lower_function(decl: ast.FuncDecl, pctx: _ProgramContext) -> ir.IrFunction:
    if len(decl.params) > MAX_PARAMS:
        raise CompileError(
            f"{decl.name}: at most {MAX_PARAMS} parameters supported",
            decl.line)
    params = [ir.IrSlot(i, p.name, ir.WORD, p.is_pointer, ir.SLOT_PARAM)
              for i, p in enumerate(decl.params)]
    func = ir.IrFunction(decl.name, params, decl.returns_value)
    fctx = _FuncContext(func, pctx)
    for slot in params:
        fctx.slot_ids[slot.name] = slot.slot_id
    for local in decl.locals:
        if local.name in fctx.slot_ids:
            raise CompileError(
                f"{decl.name}: duplicate variable {local.name!r}", local.line)
        kind = ir.SLOT_ARRAY if local.count > 1 else ir.SLOT_LOCAL
        slot = ir.IrSlot(len(func.slots), local.name,
                         local.count * ir.WORD, local.is_pointer, kind)
        func.add_slot(slot)
        fctx.slot_ids[local.name] = slot.slot_id

    func.body.append(ir.EqPointEntry())
    for stmt in decl.body:
        _lower_stmt(stmt, fctx)
    # Implicit return (value 0 if the function returns one).
    fctx.reset_temps()
    if decl.returns_value:
        temp = fctx.new_temp()
        fctx.emit(ir.Const(temp, 0))
        fctx.emit(ir.Ret(temp))
    else:
        fctx.emit(ir.Ret(None))
    return func


# -- statements -----------------------------------------------------------------

def _lower_stmt(stmt: ast.Stmt, fctx: _FuncContext) -> None:
    fctx.reset_temps()
    if isinstance(stmt, ast.Assign):
        _lower_assign(stmt, fctx)
    elif isinstance(stmt, ast.ExprStmt):
        _lower_expr_stmt(stmt, fctx)
    elif isinstance(stmt, ast.If):
        _lower_if(stmt, fctx)
    elif isinstance(stmt, ast.While):
        _lower_while(stmt, fctx)
    elif isinstance(stmt, ast.Break):
        if not fctx.loop_stack:
            raise CompileError("'break' outside loop", stmt.line)
        fctx.emit(ir.Jump(fctx.loop_stack[-1][1]))
    elif isinstance(stmt, ast.Continue):
        if not fctx.loop_stack:
            raise CompileError("'continue' outside loop", stmt.line)
        fctx.emit(ir.Jump(fctx.loop_stack[-1][0]))
    elif isinstance(stmt, ast.Return):
        if stmt.expr is not None:
            expr = _hoist_calls(stmt.expr, fctx)
            temp, _ = _lower_expr(expr, fctx)
            fctx.emit(ir.Ret(temp))
        else:
            fctx.emit(ir.Ret(None))
    else:
        raise CompileError(f"unsupported statement {type(stmt).__name__}",
                           stmt.line)


def _lower_assign(stmt: ast.Assign, fctx: _FuncContext) -> None:
    expr = _hoist_calls(stmt.expr, fctx)
    target = stmt.target
    if isinstance(target, ast.Var):
        value, _ = _lower_expr(expr, fctx)
        name = target.name
        if name in fctx.slot_ids:
            fctx.emit(ir.StoreSlot(fctx.slot_ids[name], value))
        elif name in fctx.program.global_names:
            fctx.emit(ir.StoreGlobal(name, value))
        elif name in fctx.program.tls_names:
            fctx.emit(ir.TlsStore(name, value))
        else:
            raise CompileError(f"undefined variable {name!r}", stmt.line)
        return
    if isinstance(target, ast.Deref):
        addr_expr = _hoist_calls(target.operand, fctx)
        value, _ = _lower_expr(expr, fctx)
        addr, _ = _lower_expr(addr_expr, fctx)
        fctx.emit(ir.StoreMem(addr, value))
        return
    if isinstance(target, ast.Index):
        idx_expr = _hoist_calls(target.index, fctx)
        value, _ = _lower_expr(expr, fctx)
        addr = _lower_element_addr(target.base, idx_expr, fctx, stmt.line)
        fctx.emit(ir.StoreMem(addr, value))
        return
    raise CompileError("invalid assignment target", stmt.line)


def _lower_expr_stmt(stmt: ast.ExprStmt, fctx: _FuncContext) -> None:
    expr = stmt.expr
    if isinstance(expr, ast.Call):
        _lower_call(expr, fctx, want_value=False)
        return
    hoisted = _hoist_calls(expr, fctx)
    _lower_expr(hoisted, fctx)   # evaluated for (non-)effect; result dropped


def _lower_if(stmt: ast.If, fctx: _FuncContext) -> None:
    else_label = fctx.new_label("else")
    end_label = fctx.new_label("endif")
    cond = _hoist_calls(stmt.cond, fctx)
    fctx.reset_temps()
    temp, _ = _lower_expr(cond, fctx)
    fctx.emit(ir.BranchZero(temp, else_label if stmt.else_body else end_label))
    for inner in stmt.then_body:
        _lower_stmt(inner, fctx)
    if stmt.else_body:
        fctx.emit(ir.Jump(end_label))
        fctx.emit(ir.Label(else_label))
        for inner in stmt.else_body:
            _lower_stmt(inner, fctx)
    fctx.emit(ir.Label(end_label))


def _lower_while(stmt: ast.While, fctx: _FuncContext) -> None:
    top_label = fctx.new_label("while")
    end_label = fctx.new_label("endwhile")
    fctx.emit(ir.Label(top_label))
    cond = _hoist_calls(stmt.cond, fctx)
    fctx.reset_temps()
    temp, _ = _lower_expr(cond, fctx)
    fctx.emit(ir.BranchZero(temp, end_label))
    fctx.loop_stack.append((top_label, end_label))
    for inner in stmt.body:
        _lower_stmt(inner, fctx)
    fctx.loop_stack.pop()
    fctx.emit(ir.Jump(top_label))
    fctx.emit(ir.Label(end_label))


# -- call hoisting -------------------------------------------------------------

def _hoist_calls(expr: ast.Expr, fctx: _FuncContext) -> ast.Expr:
    """Replace every nested Call with a Var reading a fresh calltmp slot.

    The calls themselves are emitted (in evaluation order) before the
    containing statement's code.
    """
    if isinstance(expr, ast.Call):
        # Hoist arguments first (they may themselves contain calls).
        hoisted_args = [_hoist_calls(a, fctx) for a in expr.args]
        call = ast.Call(expr.name, hoisted_args, expr.is_builtin, expr.line)
        returns_pointer = expr.is_builtin and expr.name == "sbrk"
        slot = fctx.new_calltmp(returns_pointer)
        result = _lower_call(call, fctx, want_value=True)
        if result is None:
            raise CompileError(
                f"call to {expr.name!r} used as a value but returns nothing",
                expr.line)
        fctx.emit(ir.StoreSlot(slot.slot_id, result))
        fctx.reset_temps()
        return ast.Var(slot.name, expr.line)
    if isinstance(expr, ast.BinOp):
        left = _hoist_calls(expr.left, fctx)
        right = _hoist_calls(expr.right, fctx)
        return ast.BinOp(expr.op, left, right, expr.line)
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _hoist_calls(expr.operand, fctx),
                           expr.line)
    if isinstance(expr, ast.Deref):
        return ast.Deref(_hoist_calls(expr.operand, fctx), expr.line)
    if isinstance(expr, ast.AddrOf):
        if isinstance(expr.target, ast.Index):
            target = ast.Index(expr.target.base,
                               _hoist_calls(expr.target.index, fctx),
                               expr.target.line)
            return ast.AddrOf(target, expr.line)
        return expr
    if isinstance(expr, ast.Index):
        return ast.Index(expr.base, _hoist_calls(expr.index, fctx), expr.line)
    return expr


# -- calls ---------------------------------------------------------------------

def _lower_call(expr: ast.Call, fctx: _FuncContext,
                want_value: bool) -> Optional[ir.Temp]:
    if expr.is_builtin or expr.name == "texit":
        return _lower_builtin(expr, fctx, want_value)
    decl = fctx.program.func_names.get(expr.name)
    if decl is None:
        raise CompileError(f"call to undefined function {expr.name!r}",
                           expr.line)
    if len(expr.args) != len(decl.params):
        raise CompileError(
            f"{expr.name!r} expects {len(decl.params)} args, "
            f"got {len(expr.args)}", expr.line)
    # Nested calls inside arguments must be hoisted before lowering any
    # argument (hoisting emits code and resets the temp counter).
    hoisted = [_hoist_calls(a, fctx) for a in expr.args]
    arg_temps = []
    for arg in hoisted:
        temp, _ = _lower_expr(arg, fctx)
        arg_temps.append(temp)
    dst = fctx.new_temp() if (want_value and decl.returns_value) else None
    fctx.emit(ir.CallIr(dst, expr.name, arg_temps))
    if want_value and not decl.returns_value:
        return None
    return dst


def _lower_builtin(expr: ast.Call, fctx: _FuncContext,
                   want_value: bool) -> Optional[ir.Temp]:
    name = expr.name
    if name in _SIMPLE_BUILTINS:
        number, argc, returns = _SIMPLE_BUILTINS[name]
        if len(expr.args) != argc:
            raise CompileError(f"{name} expects {argc} args", expr.line)
        hoisted = [_hoist_calls(a, fctx) for a in expr.args]
        temps = [_lower_expr(a, fctx)[0] for a in hoisted]
        dst = fctx.new_temp() if returns else None
        fctx.emit(ir.SyscallIr(dst, number, temps))
        return dst
    if name == "spawn":
        if len(expr.args) != 2 or not isinstance(expr.args[0], ast.Var):
            raise CompileError("spawn(fname, arg) needs a function name",
                               expr.line)
        fname = expr.args[0].name
        if fname not in fctx.program.func_names:
            raise CompileError(f"spawn of undefined function {fname!r}",
                               expr.line)
        target = fctx.program.func_names[fname]
        if len(target.params) > 1:
            raise CompileError(
                f"spawned function {fname!r} must take at most one arg",
                expr.line)
        spawn_arg = _hoist_calls(expr.args[1], fctx)
        addr = fctx.new_temp()
        fctx.emit(ir.AddrGlobal(addr, fname))
        arg, _ = _lower_expr(spawn_arg, fctx)
        dst = fctx.new_temp()
        fctx.emit(ir.SyscallIr(dst, sysabi.SYS_SPAWN, [addr, arg]))
        return dst
    if name in ("join", "lock"):
        if len(expr.args) != 1:
            raise CompileError(f"{name} expects one arg", expr.line)
        # Stash the operand in a calltmp slot: the polling loop re-reads
        # it on each iteration and calls __poll (temps don't survive it).
        operand, _ = _lower_expr(_hoist_calls(expr.args[0], fctx), fctx)
        slot = fctx.new_calltmp(is_pointer=(name == "lock"))
        fctx.emit(ir.StoreSlot(slot.slot_id, operand))
        fctx.reset_temps()
        number = sysabi.SYS_TRY_JOIN if name == "join" else sysabi.SYS_TRY_LOCK
        top = fctx.new_label(f"{name}_poll")
        done = fctx.new_label(f"{name}_done")
        fctx.emit(ir.Label(top))
        arg = fctx.new_temp()
        fctx.emit(ir.LoadSlot(arg, slot.slot_id))
        got = fctx.new_temp()
        fctx.emit(ir.SyscallIr(got, number, [arg]))
        fctx.emit(ir.BranchNonZero(got, done))
        fctx.emit(ir.CallIr(None, sysabi.RT_POLL, []))
        fctx.emit(ir.Jump(top))
        fctx.emit(ir.Label(done))
        fctx.reset_temps()
        return None
    raise CompileError(f"unknown builtin {name!r}", expr.line)


# -- expressions ------------------------------------------------------------------

def _lower_expr(expr: ast.Expr, fctx: _FuncContext) -> Tuple[ir.Temp, bool]:
    """Lower a call-free expression; returns (temp, is_pointer)."""
    if isinstance(expr, ast.Number):
        temp = fctx.new_temp()
        fctx.emit(ir.Const(temp, expr.value))
        return temp, False
    if isinstance(expr, ast.Var):
        return _lower_var(expr, fctx)
    if isinstance(expr, ast.UnaryOp):
        operand, is_ptr = _lower_expr(expr.operand, fctx)
        dst = fctx.new_temp()
        if expr.op == "-":
            zero = fctx.new_temp()
            fctx.emit(ir.Const(zero, 0))
            fctx.emit(ir.Bin("sub", dst, zero, operand))
        elif expr.op == "!":
            zero = fctx.new_temp()
            fctx.emit(ir.Const(zero, 0))
            fctx.emit(ir.Cmp("eq", dst, operand, zero))
        else:
            raise CompileError(f"unsupported unary {expr.op!r}", expr.line)
        return dst, False
    if isinstance(expr, ast.BinOp):
        return _lower_binop(expr, fctx)
    if isinstance(expr, ast.Deref):
        addr, _ = _lower_expr(expr.operand, fctx)
        dst = fctx.new_temp()
        fctx.emit(ir.LoadMem(dst, addr))
        return dst, False
    if isinstance(expr, ast.AddrOf):
        return _lower_addrof(expr, fctx)
    if isinstance(expr, ast.Index):
        addr = _lower_element_addr(expr.base, expr.index, fctx, expr.line)
        dst = fctx.new_temp()
        fctx.emit(ir.LoadMem(dst, addr))
        return dst, False
    if isinstance(expr, ast.Call):
        raise CompileError(
            "internal: call survived hoisting", expr.line)
    raise CompileError(f"unsupported expression {type(expr).__name__}",
                       expr.line)


def _lower_var(expr: ast.Var, fctx: _FuncContext) -> Tuple[ir.Temp, bool]:
    name = expr.name
    dst = fctx.new_temp()
    if name in fctx.slot_ids:
        slot = fctx.func.slots[fctx.slot_ids[name]]
        if slot.kind == ir.SLOT_ARRAY:
            # An array name decays to its address.
            fctx.emit(ir.AddrSlot(dst, slot.slot_id))
            return dst, True
        fctx.emit(ir.LoadSlot(dst, slot.slot_id))
        return dst, slot.is_pointer
    if name in fctx.program.global_names:
        glob = fctx.program.global_names[name]
        if glob.size > ir.WORD:
            fctx.emit(ir.AddrGlobal(dst, name))
            return dst, True
        fctx.emit(ir.LoadGlobal(dst, name))
        return dst, glob.is_pointer
    if name in fctx.program.tls_names:
        fctx.emit(ir.TlsLoad(dst, name))
        return dst, False
    if name in fctx.program.func_names:
        fctx.emit(ir.AddrGlobal(dst, name))
        return dst, True
    raise CompileError(f"undefined variable {name!r}", expr.line)


def _lower_binop(expr: ast.BinOp, fctx: _FuncContext) -> Tuple[ir.Temp, bool]:
    op = expr.op
    if op in ("&&", "||"):
        return _lower_shortcircuit(expr, fctx)
    if op in _CMP_MAP:
        a, _ = _lower_expr(expr.left, fctx)
        b, _ = _lower_expr(expr.right, fctx)
        dst = fctx.new_temp()
        fctx.emit(ir.Cmp(_CMP_MAP[op], dst, a, b))
        return dst, False
    if op in _BINOP_MAP:
        a, a_ptr = _lower_expr(expr.left, fctx)
        b, b_ptr = _lower_expr(expr.right, fctx)
        is_ptr = (a_ptr or b_ptr) and op in ("+", "-")
        # Pointer arithmetic scales by the 8-byte element size.
        if is_ptr and op in ("+", "-") and (a_ptr != b_ptr):
            scaled = fctx.new_temp()
            eight = fctx.new_temp()
            fctx.emit(ir.Const(eight, ir.WORD))
            if a_ptr:
                fctx.emit(ir.Bin("mul", scaled, b, eight))
                b = scaled
            else:
                fctx.emit(ir.Bin("mul", scaled, a, eight))
                a = scaled
        dst = fctx.new_temp()
        fctx.emit(ir.Bin(_BINOP_MAP[op], dst, a, b))
        # ptr - ptr yields a (byte) difference, not a pointer.
        return dst, is_ptr and not (a_ptr and b_ptr)
    raise CompileError(f"unsupported operator {op!r}", expr.line)


def _lower_shortcircuit(expr: ast.BinOp,
                        fctx: _FuncContext) -> Tuple[ir.Temp, bool]:
    # Calls were hoisted, so evaluating both sides has no side effects —
    # but short-circuit form keeps the branch structure realistic.
    done = fctx.new_label("sc_done")
    dst = fctx.new_temp()
    a, _ = _lower_expr(expr.left, fctx)
    zero = fctx.new_temp()
    fctx.emit(ir.Const(zero, 0))
    fctx.emit(ir.Cmp("ne", dst, a, zero))
    if expr.op == "&&":
        fctx.emit(ir.BranchZero(dst, done))
    else:
        fctx.emit(ir.BranchNonZero(dst, done))
    b, _ = _lower_expr(expr.right, fctx)
    zero2 = fctx.new_temp()
    fctx.emit(ir.Const(zero2, 0))
    fctx.emit(ir.Cmp("ne", dst, b, zero2))
    fctx.emit(ir.Label(done))
    return dst, False


def _lower_addrof(expr: ast.AddrOf, fctx: _FuncContext) -> Tuple[ir.Temp, bool]:
    target = expr.target
    dst = fctx.new_temp()
    if isinstance(target, ast.Var):
        name = target.name
        if name in fctx.slot_ids:
            fctx.emit(ir.AddrSlot(dst, fctx.slot_ids[name]))
            return dst, True
        if name in fctx.program.global_names:
            fctx.emit(ir.AddrGlobal(dst, name))
            return dst, True
        raise CompileError(f"cannot take address of {name!r}", expr.line)
    if isinstance(target, ast.Index):
        addr = _lower_element_addr(target.base, target.index, fctx, expr.line)
        fctx.emit(ir.Move(dst, addr))
        return dst, True
    raise CompileError("unsupported address-of target", expr.line)


def _lower_element_addr(base: ast.Expr, index: ast.Expr, fctx: _FuncContext,
                        line: int) -> ir.Temp:
    """Address of ``base[index]`` (base: array name or pointer expr)."""
    idx, _ = _lower_expr(index, fctx)
    scaled = fctx.new_temp()
    eight = fctx.new_temp()
    fctx.emit(ir.Const(eight, ir.WORD))
    fctx.emit(ir.Bin("mul", scaled, idx, eight))
    if isinstance(base, ast.Var):
        name = base.name
        if name in fctx.slot_ids:
            slot = fctx.func.slots[fctx.slot_ids[name]]
            base_addr = fctx.new_temp()
            if slot.kind == ir.SLOT_ARRAY:
                fctx.emit(ir.AddrSlot(base_addr, slot.slot_id))
            else:
                fctx.emit(ir.LoadSlot(base_addr, slot.slot_id))
            out = fctx.new_temp()
            fctx.emit(ir.Bin("add", out, base_addr, scaled))
            return out
        if name in fctx.program.global_names:
            glob = fctx.program.global_names[name]
            base_addr = fctx.new_temp()
            if glob.size > ir.WORD:
                fctx.emit(ir.AddrGlobal(base_addr, name))
            else:
                fctx.emit(ir.LoadGlobal(base_addr, name))
            out = fctx.new_temp()
            fctx.emit(ir.Bin("add", out, base_addr, scaled))
            return out
        raise CompileError(f"undefined variable {name!r}", line)
    base_temp, _ = _lower_expr(base, fctx)
    out = fctx.new_temp()
    fctx.emit(ir.Bin("add", out, base_temp, scaled))
    return out
