"""Middle-end passes over the shared IR.

This is the reproduction's analogue of the paper's LLVM middle-end pass
(§III-D1): it identifies all equivalence points — one at each function
entry plus one at every call site — and assigns them program-wide stable
identifiers *before* the backends split. Because identifiers are
assigned on the shared IR, the x86_64 and aarch64 binaries agree on them
exactly, which is what lets the rewriter pair up stackmap records across
ISAs.

The inline checker instrumentation itself is emitted by the backends at
each ``EqPointEntry`` marker.
"""

from __future__ import annotations

from typing import Dict, List

from .. import sysabi
from . import ir


class EqPointTable:
    """Program-wide equivalence-point numbering."""

    def __init__(self):
        self.next_id = 0
        #: eqpoint_id -> (func_name, kind)
        self.points: Dict[int, tuple] = {}

    def allocate(self, func: str, kind: str) -> int:
        eqpoint_id = self.next_id
        self.next_id += 1
        self.points[eqpoint_id] = (func, kind)
        return eqpoint_id


def run_middle_end(program: ir.IrProgram) -> EqPointTable:
    """Assign equivalence-point ids and mark checker-exempt functions."""
    table = EqPointTable()
    for func in program.functions:
        _assign_eqpoints(func, table)
        # __thread_exit runs on a dying thread; parking there would leave
        # a thread that can never resume past texit. It still has an
        # entry eqpoint record (harmless) but no checker.
        if func.name == sysabi.RT_THREAD_EXIT:
            func.no_checker = True
    return table


def _assign_eqpoints(func: ir.IrFunction, table: EqPointTable) -> None:
    for instr in func.body:
        if isinstance(instr, ir.EqPointEntry):
            if func.entry_eqpoint is not None:
                raise AssertionError(f"{func.name}: duplicate entry eqpoint")
            instr.eqpoint_id = table.allocate(func.name, "entry")
            func.entry_eqpoint = instr.eqpoint_id
        elif isinstance(instr, ir.CallIr):
            instr.eqpoint_id = table.allocate(func.name, "callsite")
    if func.entry_eqpoint is None:
        raise AssertionError(f"{func.name}: missing entry eqpoint marker")


def count_eqpoints(program: ir.IrProgram) -> int:
    total = 0
    for func in program.functions:
        for instr in func.body:
            if isinstance(instr, (ir.EqPointEntry, ir.CallIr)):
                total += 1
    return total
