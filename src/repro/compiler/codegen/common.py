"""Shared backend machinery.

Each backend lowers the shared IR to its ISA's instructions. The design
keeps register allocation deliberately simple and *uniform* (every named
variable lives in a frame slot; expression temporaries get a small
register pool with spill slots), because what the reproduction needs
from the backends is not speed but *faithful divergence*: the two ISAs
must produce genuinely different frame layouts, register usage and code
sizes so that Dapper's cross-ISA rewriter has real work to do.

Per-function output (:class:`FuncCode`) carries the instruction list
(with symbolic labels), the frame layout, and symbolic equivalence-point
descriptors; the linker resolves labels to absolute addresses and builds
the final ``.stackmaps``/``.frames`` sections.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ... import sysabi
from ...binfmt.frames import Slot
from ...binfmt.stackmaps import LOC_BOTH, LOC_STACK
from ...errors import CompileError
from ...isa.asm import movi_symbol
from ...isa.isa import Instruction, Isa
from .. import ir

#: Upper bound on expression temps kept in registers; the rest spill.
WORD = ir.WORD


class LiveDesc:
    """Symbolic live-value record (becomes a binfmt LiveValue later)."""

    __slots__ = ("value_id", "name", "loc_type", "dwarf_reg", "stack_offset",
                 "is_pointer", "size")

    def __init__(self, value_id: int, name: str, loc_type: str,
                 dwarf_reg: Optional[int], stack_offset: Optional[int],
                 is_pointer: bool, size: int):
        self.value_id = value_id
        self.name = name
        self.loc_type = loc_type
        self.dwarf_reg = dwarf_reg
        self.stack_offset = stack_offset
        self.is_pointer = is_pointer
        self.size = size


class EqDesc:
    """Symbolic equivalence point: resolved to addresses at link time."""

    __slots__ = ("eqpoint_id", "func", "kind", "resume_label", "trap_label",
                 "live")

    def __init__(self, eqpoint_id: int, func: str, kind: str,
                 resume_label: str, trap_label: Optional[str],
                 live: List[LiveDesc]):
        self.eqpoint_id = eqpoint_id
        self.func = func
        self.kind = kind
        self.resume_label = resume_label
        self.trap_label = trap_label
        self.live = live


class FuncCode:
    """One compiled function, pre-link."""

    def __init__(self, name: str, instrs: List[Instruction],
                 slots: List[Slot], frame_size: int,
                 eqpoints: List[EqDesc], entry_eqpoint: int):
        self.name = name
        self.instrs = instrs
        self.slots = slots
        self.frame_size = frame_size
        self.eqpoints = eqpoints
        self.entry_eqpoint = entry_eqpoint


class CodegenBase:
    """IR → machine instructions for one ISA. Subclasses set layout policy."""

    #: number of expression temps kept in registers (rest spill)
    TEMP_POOL: Tuple[str, ...] = ()
    SCRATCH0 = ""
    SCRATCH1 = ""

    def __init__(self, isa: Isa, program: ir.IrProgram):
        self.isa = isa
        self.program = program
        self.abi = isa.abi
        self.tls_offsets: Dict[str, int] = {
            t.name: t.offset for t in program.tls_vars}

    # ------------------------------------------------------------------ API

    def compile_function(self, func: ir.IrFunction) -> FuncCode:
        slots, frame_size, spill_base = self.assign_frame(func)
        state = _FuncState(func, slots, frame_size, spill_base)
        self.emit_prologue(state)
        if not func.no_checker:
            self.emit_checker(state)
        for instr in func.body:
            self.lower_instr(instr, state)
        eqpoints = self.build_eqpoints(state)
        return FuncCode(func.name, state.out, slots, frame_size, eqpoints,
                        func.entry_eqpoint)

    # ------------------------------------------------------- frame layout

    def assign_frame(self, func: ir.IrFunction):
        """ISA-specific slot placement. Returns (slots, frame_size, spill_base)."""
        raise NotImplementedError

    def _finish_frame(self, named_bytes: int,
                      func: ir.IrFunction) -> Tuple[int, int]:
        """Append the spill area and align. Returns (frame_size, spill_base)."""
        spill_base = named_bytes
        n_spills = max(0, func.max_temps - len(self.TEMP_POOL))
        total = named_bytes + n_spills * WORD
        frame_size = (total + 15) & ~15
        return frame_size, spill_base

    # --------------------------------------------------------- reg helpers

    def r(self, name: str) -> int:
        return self.isa.reg(name)

    def fp(self) -> int:
        return self.r(self.abi.frame_pointer)

    def sp(self) -> int:
        return self.r(self.abi.stack_pointer)

    # ------------------------------------------------------ emit helpers

    def emit_load_fp_off(self, state: "_FuncState", dst: int,
                         offset: int) -> None:
        """dst = mem64[fp + offset], handling ISA offset-range limits."""
        raise NotImplementedError

    def emit_store_fp_off(self, state: "_FuncState", offset: int,
                          src: int) -> None:
        raise NotImplementedError

    def emit_lea_fp_off(self, state: "_FuncState", dst: int,
                        offset: int) -> None:
        raise NotImplementedError

    def emit_prologue(self, state: "_FuncState") -> None:
        raise NotImplementedError

    def emit_epilogue(self, state: "_FuncState") -> None:
        raise NotImplementedError

    def emit_checker(self, state: "_FuncState") -> None:
        """The inline Dapper checker (see DESIGN.md decision 1):

        1. skip if the per-thread TLS disable flag is set (lock held),
        2. load the global ``__dapper_flag``,
        3. trap if it is set.

        The instruction *after* the trap is the entry equivalence point.
        """
        s0, s1 = self.r(self.SCRATCH0), self.r(self.SCRATCH1)
        skip = state.label(f"__eq_skip_{state.func.name}")
        trap_label = f"__eq_trap_{state.func.name}"
        disable_off = (self.abi.tls_block_offset
                       + sysabi.TLS_DISABLE_OFFSET)
        state.emit(Instruction("tlsload", rd=s0, imm=disable_off))
        state.emit(Instruction("cmpi", rn=s0, imm=0))
        state.emit(Instruction("bcc", cond="ne", target=skip))
        state.emit(movi_symbol(self.isa, s1, sysabi.DAPPER_FLAG_SYMBOL))
        state.emit(Instruction("load", rd=s1, rn=s1, imm=0))
        state.emit(Instruction("cmpi", rn=s1, imm=0))
        state.emit(Instruction("bcc", cond="eq", target=skip))
        trap = Instruction("trap")
        trap.label = trap_label
        state.emit(trap)
        marker = Instruction("nop")
        marker.label = skip
        state.emit(marker)
        state.entry_resume_label = skip
        state.entry_trap_label = trap_label

    # ------------------------------------------------------- temp homes

    def temp_home(self, temp: ir.Temp, state: "_FuncState"):
        """('reg', index) or ('spill', fp_offset)."""
        if temp.index < len(self.TEMP_POOL):
            return ("reg", self.r(self.TEMP_POOL[temp.index]))
        spill_index = temp.index - len(self.TEMP_POOL)
        offset = -(state.spill_base + (spill_index + 1) * WORD)
        return ("spill", offset)

    def use(self, temp: ir.Temp, state: "_FuncState", scratch: str) -> int:
        """Materialize a temp's value in a register; returns the register."""
        kind, where = self.temp_home(temp, state)
        if kind == "reg":
            return where
        reg = self.r(scratch)
        self.emit_load_fp_off(state, reg, where)
        return reg

    def define(self, temp: ir.Temp, src_reg: int, state: "_FuncState") -> None:
        """Move a computed value into the temp's home."""
        kind, where = self.temp_home(temp, state)
        if kind == "reg":
            if where != src_reg:
                state.emit(Instruction("mov", rd=where, rn=src_reg))
        else:
            self.emit_store_fp_off(state, where, src_reg)

    def def_reg(self, temp: ir.Temp, state: "_FuncState",
                scratch: str) -> Tuple[int, bool]:
        """Register to compute a temp into: its home if a reg, else scratch.

        Returns (register, needs_writeback).
        """
        kind, where = self.temp_home(temp, state)
        if kind == "reg":
            return where, False
        return self.r(scratch), True

    def writeback(self, temp: ir.Temp, reg: int, needs: bool,
                  state: "_FuncState") -> None:
        if needs:
            kind, where = self.temp_home(temp, state)
            self.emit_store_fp_off(state, where, reg)

    # ---------------------------------------------------------- IR lowering

    def lower_instr(self, instr: ir.IrInstr, state: "_FuncState") -> None:
        method = getattr(self, f"_lower_{type(instr).__name__}", None)
        if method is None:
            raise CompileError(
                f"{self.isa.name}: cannot lower {type(instr).__name__}")
        method(instr, state)

    def _lower_Label(self, instr: ir.Label, state: "_FuncState") -> None:
        marker = Instruction("nop")
        marker.label = instr.name
        state.emit(marker)

    def _lower_EqPointEntry(self, instr: ir.EqPointEntry,
                            state: "_FuncState") -> None:
        # Code position was already established by emit_checker (the
        # checker sits between the prologue and the first statement).
        state.entry_eqpoint_id = instr.eqpoint_id

    def _lower_Const(self, instr: ir.Const, state: "_FuncState") -> None:
        reg, wb = self.def_reg(instr.dst, state, self.SCRATCH0)
        state.emit(Instruction("movi", rd=reg, imm=instr.value))
        self.writeback(instr.dst, reg, wb, state)

    def _lower_Move(self, instr: ir.Move, state: "_FuncState") -> None:
        src = self.use(instr.src, state, self.SCRATCH0)
        self.define(instr.dst, src, state)

    def _lower_Bin(self, instr: ir.Bin, state: "_FuncState") -> None:
        raise NotImplementedError

    def _lower_Cmp(self, instr: ir.Cmp, state: "_FuncState") -> None:
        a = self.use(instr.a, state, self.SCRATCH0)
        b = self.use(instr.b, state, self.SCRATCH1)
        state.emit(Instruction("cmp", rn=a, rm=b))
        reg, wb = self.def_reg(instr.dst, state, self.SCRATCH0)
        label = state.label("cmp_done")
        state.emit(Instruction("movi", rd=reg, imm=1))
        state.emit(Instruction("bcc", cond=instr.op, target=label))
        state.emit(Instruction("movi", rd=reg, imm=0))
        marker = Instruction("nop")
        marker.label = label
        state.emit(marker)
        self.writeback(instr.dst, reg, wb, state)

    def _lower_LoadSlot(self, instr: ir.LoadSlot, state: "_FuncState") -> None:
        offset = state.slot_offset(instr.slot_id)
        reg, wb = self.def_reg(instr.dst, state, self.SCRATCH0)
        self.emit_load_fp_off(state, reg, offset)
        self.writeback(instr.dst, reg, wb, state)

    def _lower_StoreSlot(self, instr: ir.StoreSlot,
                         state: "_FuncState") -> None:
        src = self.use(instr.src, state, self.SCRATCH0)
        self.emit_store_fp_off(state, state.slot_offset(instr.slot_id), src)

    def _lower_AddrSlot(self, instr: ir.AddrSlot, state: "_FuncState") -> None:
        offset = state.slot_offset(instr.slot_id) + instr.offset
        reg, wb = self.def_reg(instr.dst, state, self.SCRATCH0)
        self.emit_lea_fp_off(state, reg, offset)
        self.writeback(instr.dst, reg, wb, state)

    def _lower_LoadGlobal(self, instr: ir.LoadGlobal,
                          state: "_FuncState") -> None:
        s1 = self.r(self.SCRATCH1)
        state.emit(movi_symbol(self.isa, s1, instr.symbol))
        reg, wb = self.def_reg(instr.dst, state, self.SCRATCH0)
        state.emit(Instruction("load", rd=reg, rn=s1, imm=0))
        self.writeback(instr.dst, reg, wb, state)

    def _lower_StoreGlobal(self, instr: ir.StoreGlobal,
                           state: "_FuncState") -> None:
        s1 = self.r(self.SCRATCH1)
        state.emit(movi_symbol(self.isa, s1, instr.symbol))
        src = self.use(instr.src, state, self.SCRATCH0)
        state.emit(Instruction("store", rd=src, rn=s1, imm=0))

    def _lower_AddrGlobal(self, instr: ir.AddrGlobal,
                          state: "_FuncState") -> None:
        reg, wb = self.def_reg(instr.dst, state, self.SCRATCH0)
        mov = movi_symbol(self.isa, reg, instr.symbol)
        state.emit(mov)
        if instr.offset:
            state.emit(Instruction("addi", rd=reg, rn=reg, imm=instr.offset))
        self.writeback(instr.dst, reg, wb, state)

    def _lower_TlsLoad(self, instr: ir.TlsLoad, state: "_FuncState") -> None:
        offset = self.abi.tls_block_offset + self.tls_offsets[instr.symbol]
        reg, wb = self.def_reg(instr.dst, state, self.SCRATCH0)
        state.emit(Instruction("tlsload", rd=reg, imm=offset))
        self.writeback(instr.dst, reg, wb, state)

    def _lower_TlsStore(self, instr: ir.TlsStore, state: "_FuncState") -> None:
        offset = self.abi.tls_block_offset + self.tls_offsets[instr.symbol]
        src = self.use(instr.src, state, self.SCRATCH0)
        state.emit(Instruction("tlsstore", rd=src, imm=offset))

    def _lower_LoadMem(self, instr: ir.LoadMem, state: "_FuncState") -> None:
        addr = self.use(instr.addr, state, self.SCRATCH0)
        reg, wb = self.def_reg(instr.dst, state, self.SCRATCH1)
        state.emit(Instruction("load", rd=reg, rn=addr, imm=0))
        self.writeback(instr.dst, reg, wb, state)

    def _lower_StoreMem(self, instr: ir.StoreMem, state: "_FuncState") -> None:
        addr = self.use(instr.addr, state, self.SCRATCH0)
        src = self.use(instr.src, state, self.SCRATCH1)
        state.emit(Instruction("store", rd=src, rn=addr, imm=0))

    def _lower_Jump(self, instr: ir.Jump, state: "_FuncState") -> None:
        state.emit(Instruction("b", target=instr.label))

    def _lower_BranchZero(self, instr: ir.BranchZero,
                          state: "_FuncState") -> None:
        src = self.use(instr.src, state, self.SCRATCH0)
        state.emit(Instruction("cmpi", rn=src, imm=0))
        state.emit(Instruction("bcc", cond="eq", target=instr.label))

    def _lower_BranchNonZero(self, instr: ir.BranchNonZero,
                             state: "_FuncState") -> None:
        src = self.use(instr.src, state, self.SCRATCH0)
        state.emit(Instruction("cmpi", rn=src, imm=0))
        state.emit(Instruction("bcc", cond="ne", target=instr.label))

    def _lower_CallIr(self, instr: ir.CallIr, state: "_FuncState") -> None:
        if len(instr.args) > len(self.abi.arg_regs):
            raise CompileError(f"too many args calling {instr.func!r}")
        for i, temp in enumerate(instr.args):
            src = self.use(temp, state, self.SCRATCH0)
            arg_reg = self.r(self.abi.arg_regs[i])
            if src != arg_reg:
                state.emit(Instruction("mov", rd=arg_reg, rn=src))
        state.emit(Instruction("call", target=instr.func))
        resume = f"__eq_cs_{instr.eqpoint_id}"
        marker = Instruction("nop")
        marker.label = resume
        state.emit(marker)
        state.callsites.append((instr.eqpoint_id, resume))
        if instr.dst is not None:
            self.define(instr.dst, self.r(self.abi.return_reg), state)

    def _lower_SyscallIr(self, instr: ir.SyscallIr,
                         state: "_FuncState") -> None:
        if len(instr.args) > len(self.abi.syscall_arg_regs):
            raise CompileError("too many syscall args")
        for i, temp in enumerate(instr.args):
            src = self.use(temp, state, self.SCRATCH0)
            arg_reg = self.r(self.abi.syscall_arg_regs[i])
            if src != arg_reg:
                state.emit(Instruction("mov", rd=arg_reg, rn=src))
        number_reg = self.r(self.abi.syscall_number_reg)
        state.emit(Instruction("movi", rd=number_reg, imm=instr.number))
        state.emit(Instruction("syscall"))
        if instr.dst is not None:
            self.define(instr.dst, self.r(self.abi.return_reg), state)

    def _lower_Ret(self, instr: ir.Ret, state: "_FuncState") -> None:
        if instr.src is not None:
            src = self.use(instr.src, state, self.SCRATCH0)
            ret_reg = self.r(self.abi.return_reg)
            if src != ret_reg:
                state.emit(Instruction("mov", rd=ret_reg, rn=src))
        self.emit_epilogue(state)
        state.emit(Instruction("ret"))

    # ----------------------------------------------------------- stackmaps

    def build_eqpoints(self, state: "_FuncState") -> List[EqDesc]:
        func = state.func
        eqpoints: List[EqDesc] = []
        # Entry eqpoint: parameters live in arg registers AND their spill
        # slots; everything else in slots only (conservative liveness).
        entry_live: List[LiveDesc] = []
        for slot in func.slots:
            binslot = state.slot_map[slot.slot_id]
            if slot.kind == ir.SLOT_PARAM:
                dwarf = self.isa.dwarf_of(self.abi.arg_regs[slot.slot_id])
                entry_live.append(LiveDesc(
                    slot.slot_id, slot.name, LOC_BOTH, dwarf,
                    binslot.offset, slot.is_pointer, slot.size))
            else:
                entry_live.append(LiveDesc(
                    slot.slot_id, slot.name, LOC_STACK, None,
                    binslot.offset, slot.is_pointer, slot.size))
        if not func.no_checker:
            eqpoints.append(EqDesc(
                func.entry_eqpoint, func.name, "entry",
                state.entry_resume_label, state.entry_trap_label, entry_live))
        # Callsite eqpoints: every slot, stack locations only.
        cs_live = [LiveDesc(slot.slot_id, slot.name, LOC_STACK, None,
                            state.slot_map[slot.slot_id].offset,
                            slot.is_pointer, slot.size)
                   for slot in func.slots]
        for eqpoint_id, resume in state.callsites:
            eqpoints.append(EqDesc(eqpoint_id, func.name, "callsite",
                                   resume, None, cs_live))
        return eqpoints


class _FuncState:
    """Mutable per-function emission state."""

    def __init__(self, func: ir.IrFunction, slots: List[Slot],
                 frame_size: int, spill_base: int):
        self.func = func
        self.slots = slots
        self.slot_map: Dict[int, Slot] = {s.slot_id: s for s in slots}
        self.frame_size = frame_size
        self.spill_base = spill_base
        self.out: List[Instruction] = []
        self.callsites: List[Tuple[int, str]] = []
        self.entry_resume_label = ""
        self.entry_trap_label: Optional[str] = None
        self.entry_eqpoint_id: Optional[int] = None
        self._label_counter = 0

    def emit(self, instr: Instruction) -> None:
        self.out.append(instr)

    def label(self, hint: str) -> str:
        self._label_counter += 1
        return f".{hint}_{self._label_counter}"

    def slot_offset(self, slot_id: int) -> int:
        return self.slot_map[slot_id].offset
