"""Backends lowering the shared IR to each simulated ISA."""

from .common import CodegenBase, FuncCode, EqDesc
from .x86gen import X86Codegen
from .armgen import ArmCodegen

__all__ = ["CodegenBase", "FuncCode", "EqDesc", "X86Codegen", "ArmCodegen"]
