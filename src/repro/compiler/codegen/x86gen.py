"""x86_64 backend.

Frame layout: slots in declaration (slot_id) order, packed downward from
the frame pointer, spill area last. Two-operand arithmetic (``rd == rn``)
is honoured by accumulating into the destination register.
"""

from __future__ import annotations

from typing import List, Tuple

from ...binfmt.frames import Slot
from ...isa.isa import Instruction
from .. import ir
from .common import CodegenBase, _FuncState

_KIND_MAP = {
    ir.SLOT_PARAM: "param",
    ir.SLOT_LOCAL: "local",
    ir.SLOT_ARRAY: "array",
    ir.SLOT_CALLTMP: "calltmp",
}


class X86Codegen(CodegenBase):
    TEMP_POOL = ("rbx", "r10", "r11", "r12", "r13")
    SCRATCH0 = "r14"
    SCRATCH1 = "r15"

    def assign_frame(self, func: ir.IrFunction) -> Tuple[List[Slot], int, int]:
        slots: List[Slot] = []
        offset = 0
        for irslot in func.slots:
            offset += irslot.size
            slots.append(Slot(irslot.slot_id, irslot.name, -offset,
                              irslot.size, _KIND_MAP[irslot.kind],
                              irslot.is_pointer, pair_member=False))
        frame_size, spill_base = self._finish_frame(offset, func)
        return slots, frame_size, spill_base

    # -- frame access -----------------------------------------------------

    def emit_load_fp_off(self, state: _FuncState, dst: int,
                         offset: int) -> None:
        state.emit(Instruction("load", rd=dst, rn=self.fp(), imm=offset))

    def emit_store_fp_off(self, state: _FuncState, offset: int,
                          src: int) -> None:
        state.emit(Instruction("store", rd=src, rn=self.fp(), imm=offset))

    def emit_lea_fp_off(self, state: _FuncState, dst: int,
                        offset: int) -> None:
        state.emit(Instruction("lea", rd=dst, rn=self.fp(), imm=offset))

    # -- prologue / epilogue -------------------------------------------------

    def emit_prologue(self, state: _FuncState) -> None:
        # call already pushed the return address: [sp] = ret addr.
        fp, sp = self.fp(), self.sp()
        state.emit(Instruction("push", rd=fp))
        state.emit(Instruction("mov", rd=fp, rn=sp))
        if state.frame_size:
            state.emit(Instruction("addi", rd=sp, rn=sp,
                                   imm=-state.frame_size))
        # Spill parameters to their slots.
        for irslot in state.func.params:
            arg_reg = self.r(self.abi.arg_regs[irslot.slot_id])
            self.emit_store_fp_off(state, state.slot_offset(irslot.slot_id),
                                   arg_reg)

    def emit_epilogue(self, state: _FuncState) -> None:
        fp, sp = self.fp(), self.sp()
        state.emit(Instruction("mov", rd=sp, rn=fp))
        state.emit(Instruction("pop", rd=fp))
        # ret pops the return address.

    # -- arithmetic ------------------------------------------------------------

    def _lower_Bin(self, instr: ir.Bin, state: _FuncState) -> None:
        # Accumulate in the destination register (or SCRATCH0 if spilled):
        # two-operand form requires rd == rn.
        acc, wb = self.def_reg(instr.dst, state, self.SCRATCH0)
        a = self.use(instr.a, state, self.SCRATCH0)
        if a != acc:
            # `a` may be living in SCRATCH0 when both are spilled; move
            # through SCRATCH1 never needed because use() loaded into
            # SCRATCH0 only when spilled, and then acc == SCRATCH0.
            state.emit(Instruction("mov", rd=acc, rn=a))
        b = self.use(instr.b, state, self.SCRATCH1)
        state.emit(Instruction(instr.op, rd=acc, rn=acc, rm=b))
        self.writeback(instr.dst, acc, wb, state)
