"""aarch64 backend.

Deliberately different frame-layout policy from the x86_64 backend (see
``codegen/common.py``): parameters first (pair-stored with ``stp`` where
adjacent — these become shuffle-excluded ``pair_member`` slots, the
source of the lower aarch64 entropy in the paper's Fig. 10), then the
remaining slots in *reverse* declaration order with arrays aligned to 16
bytes. Frame sizes and slot offsets therefore genuinely differ from the
x86_64 binary's, giving the cross-ISA stack rewriter real re-layout work.

Frame-pointer-relative accesses whose offset exceeds the signed-scaled
8-bit immediate range (±1016 bytes) fall back to materializing the
offset in a scratch register.
"""

from __future__ import annotations

from typing import List, Tuple

from ...binfmt.frames import Slot
from ...isa.isa import Instruction
from .. import ir
from .common import CodegenBase, _FuncState

_KIND_MAP = {
    ir.SLOT_PARAM: "param",
    ir.SLOT_LOCAL: "local",
    ir.SLOT_ARRAY: "array",
    ir.SLOT_CALLTMP: "calltmp",
}

#: signed imm8 scaled by 8
_OFF_MIN = -128 * 8
_OFF_MAX = 127 * 8


class ArmCodegen(CodegenBase):
    TEMP_POOL = ("x19", "x20", "x21", "x22", "x23", "x24", "x25", "x26")
    SCRATCH0 = "x16"
    SCRATCH1 = "x17"
    #: extra scratch for offset materialization (never a temp home)
    SCRATCH2 = "x27"

    #: Emit ldp/stp for adjacent parameter slots (the default, matching
    #: real aarch64 codegen). The paper scopes out re-encoding pair
    #: instructions during stack shuffling and notes a future
    #: implementation "can further increase the entropy by considering
    #: these instructions" — setting this False realizes that extension
    #: at compile time: every slot becomes individually addressable and
    #: therefore shuffleable.
    use_stack_pairs = True

    def assign_frame(self, func: ir.IrFunction) -> Tuple[List[Slot], int, int]:
        slots: List[Slot] = []
        offset = 0
        params = [s for s in func.slots if s.kind == ir.SLOT_PARAM]
        others = [s for s in func.slots if s.kind != ir.SLOT_PARAM]
        # Parameters in order; mark stp/ldp pairs (adjacent in memory).
        param_slots: List[Slot] = []
        for irslot in params:
            offset += irslot.size
            param_slots.append(Slot(irslot.slot_id, irslot.name, -offset,
                                    irslot.size, "param", irslot.is_pointer,
                                    pair_member=False))
        if self.use_stack_pairs:
            for i in range(0, len(param_slots) - 1, 2):
                param_slots[i].pair_member = True
                param_slots[i + 1].pair_member = True
        slots.extend(param_slots)
        # Everything else reversed, arrays 16-aligned.
        for irslot in reversed(others):
            if irslot.kind == ir.SLOT_ARRAY and (offset + irslot.size) % 16:
                offset += 8   # alignment padding
            offset += irslot.size
            slots.append(Slot(irslot.slot_id, irslot.name, -offset,
                              irslot.size, _KIND_MAP[irslot.kind],
                              irslot.is_pointer, pair_member=False))
        frame_size, spill_base = self._finish_frame(offset, func)
        return slots, frame_size, spill_base

    # -- frame access with range fallback ----------------------------------

    def _fp_access(self, state: _FuncState, op: str, reg: int,
                   offset: int) -> None:
        if _OFF_MIN <= offset <= _OFF_MAX:
            state.emit(Instruction(op, rd=reg, rn=self.fp(), imm=offset))
            return
        s2 = self.r(self.SCRATCH2)
        state.emit(Instruction("movi", rd=s2, imm=offset))
        state.emit(Instruction("add", rd=s2, rn=self.fp(), rm=s2))
        state.emit(Instruction(op, rd=reg, rn=s2, imm=0))

    def emit_load_fp_off(self, state: _FuncState, dst: int,
                         offset: int) -> None:
        self._fp_access(state, "load", dst, offset)

    def emit_store_fp_off(self, state: _FuncState, offset: int,
                          src: int) -> None:
        self._fp_access(state, "store", src, offset)

    def emit_lea_fp_off(self, state: _FuncState, dst: int,
                        offset: int) -> None:
        if _OFF_MIN <= offset <= _OFF_MAX:
            state.emit(Instruction("lea", rd=dst, rn=self.fp(), imm=offset))
            return
        state.emit(Instruction("movi", rd=dst, imm=offset))
        state.emit(Instruction("add", rd=dst, rn=self.fp(), rm=dst))

    # -- prologue / epilogue ---------------------------------------------------

    def emit_prologue(self, state: _FuncState) -> None:
        # On entry: x30 = return address, nothing pushed by the call.
        fp, sp = self.fp(), self.sp()
        lr = self.r(self.abi.link_register)
        state.emit(Instruction("addi", rd=sp, rn=sp, imm=-16))
        state.emit(Instruction("store", rd=lr, rn=sp, imm=8))
        state.emit(Instruction("store", rd=fp, rn=sp, imm=0))
        state.emit(Instruction("mov", rd=fp, rn=sp))
        if state.frame_size:
            if state.frame_size <= 255:
                state.emit(Instruction("addi", rd=sp, rn=sp,
                                       imm=-state.frame_size))
            else:
                s2 = self.r(self.SCRATCH2)
                state.emit(Instruction("movi", rd=s2, imm=state.frame_size))
                state.emit(Instruction("sub", rd=sp, rn=sp, rm=s2))
        # Spill parameters, pairwise where marked (stp base is fp).
        params = state.func.params
        i = 0
        while i < len(params):
            slot_a = state.slot_map[params[i].slot_id]
            if (i + 1 < len(params) and slot_a.pair_member
                    and _OFF_MIN <= slot_a.offset - 8):
                slot_b = state.slot_map[params[i + 1].slot_id]
                # stp stores rd -> [fp+imm], rm -> [fp+imm+8]; slot_b sits
                # 8 below slot_a, so imm = slot_b.offset stores b then a.
                state.emit(Instruction(
                    "stp",
                    rd=self.r(self.abi.arg_regs[i + 1]),
                    rm=self.r(self.abi.arg_regs[i]),
                    imm=slot_b.offset))
                i += 2
                continue
            self.emit_store_fp_off(state, slot_a.offset,
                                   self.r(self.abi.arg_regs[i]))
            i += 1

    def emit_epilogue(self, state: _FuncState) -> None:
        fp, sp = self.fp(), self.sp()
        lr = self.r(self.abi.link_register)
        state.emit(Instruction("mov", rd=sp, rn=fp))
        state.emit(Instruction("load", rd=lr, rn=sp, imm=8))
        state.emit(Instruction("load", rd=fp, rn=sp, imm=0))
        state.emit(Instruction("addi", rd=sp, rn=sp, imm=16))
        # ret jumps to x30.

    # -- arithmetic ------------------------------------------------------------

    def _lower_Bin(self, instr: ir.Bin, state: _FuncState) -> None:
        a = self.use(instr.a, state, self.SCRATCH0)
        b = self.use(instr.b, state, self.SCRATCH1)
        dst, wb = self.def_reg(instr.dst, state, self.SCRATCH0)
        state.emit(Instruction(instr.op, rd=dst, rn=a, rm=b))
        self.writeback(instr.dst, dst, wb, state)
