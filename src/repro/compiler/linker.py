"""The aligning linker.

Mirrors the paper's modified GNU gold linker (§III-D1): the same program
compiled for both ISAs gets *identical symbol addresses* — every
function, global and TLS symbol sits at the same virtual address in both
binaries, with ``nop`` padding absorbing per-ISA code-size differences.
This creates the unified global virtual address space that keeps code
and data pointers valid across a cross-ISA migration; only stack-internal
pointers need remapping at rewrite time.
"""

from __future__ import annotations

from typing import Dict, List

from .. import sysabi
from ..binfmt.delf import DATA_BASE, TEXT_BASE, DelfBinary
from ..binfmt.frames import FrameRecord, FrameSection
from ..binfmt.stackmaps import EqPoint, LiveValue, StackMapSection
from ..binfmt.symtab import (KIND_FUNC, KIND_OBJECT, KIND_TLS, Symbol,
                             SymbolTable)
from ..errors import LinkError
from ..isa.asm import AsmBlock
from ..isa.isa import Isa
from . import ir
from .codegen.common import FuncCode

_FUNC_ALIGN = 16


class LinkedImage:
    """Per-ISA output of one link: a complete DELF binary."""

    def __init__(self, binary: DelfBinary):
        self.binary = binary


def link(program: ir.IrProgram,
         per_isa_code: Dict[str, List[FuncCode]],
         isas: Dict[str, Isa]) -> Dict[str, DelfBinary]:
    """Link per-ISA compiled functions into aligned DELF binaries."""
    isa_names = sorted(per_isa_code)
    if not isa_names:
        raise LinkError("nothing to link")
    func_names = [fc.name for fc in per_isa_code[isa_names[0]]]
    for isa_name in isa_names[1:]:
        if [fc.name for fc in per_isa_code[isa_name]] != func_names:
            raise LinkError("per-ISA function lists disagree")

    # ---- unified data layout (identical for all ISAs) --------------------
    data_symbols: List[Symbol] = []
    data_offset = 0
    # The Dapper flag is always the first global.
    data_symbols.append(Symbol(sysabi.DAPPER_FLAG_SYMBOL,
                               DATA_BASE + data_offset, ir.WORD, KIND_OBJECT,
                               ".data"))
    data_offset += ir.WORD
    for glob in program.globals:
        data_symbols.append(Symbol(glob.name, DATA_BASE + data_offset,
                                   glob.size, KIND_OBJECT, ".data"))
        data_offset += glob.size
    data = bytes(data_offset)   # zero-initialized

    tls_symbols = [Symbol(t.name, t.offset, ir.WORD, KIND_TLS, ".tls")
                   for t in program.tls_vars]
    tls_size = sysabi.TLS_USER_BASE + len(program.tls_vars) * ir.WORD
    tls_template = bytes(tls_size)

    # ---- unified text layout ------------------------------------------------
    blocks: Dict[str, Dict[str, AsmBlock]] = {name: {} for name in isa_names}
    for isa_name in isa_names:
        for code in per_isa_code[isa_name]:
            blocks[isa_name][code.name] = AsmBlock(isas[isa_name],
                                                   code.instrs)

    func_addr: Dict[str, int] = {}
    func_span: Dict[str, int] = {}
    cursor = TEXT_BASE
    for name in func_names:
        sizes = [blocks[isa_name][name].size for isa_name in isa_names]
        span = (max(sizes) + _FUNC_ALIGN - 1) & ~(_FUNC_ALIGN - 1)
        func_addr[name] = cursor
        func_span[name] = span
        cursor += span
    text_size = cursor - TEXT_BASE

    # ---- symbol table shared across ISAs -----------------------------------
    def make_symtab() -> SymbolTable:
        table = SymbolTable()
        for name in func_names:
            table.add(Symbol(name, func_addr[name], func_span[name],
                             KIND_FUNC, ".text"))
        for sym in data_symbols:
            table.add(Symbol(sym.name, sym.addr, sym.size, sym.kind,
                             sym.section))
        for sym in tls_symbols:
            table.add(Symbol(sym.name, sym.addr, sym.size, sym.kind,
                             sym.section))
        return table

    resolver_table = make_symtab()

    def resolve(symbol: str) -> int:
        return resolver_table.address_of(symbol)

    # ---- encode and build metadata per ISA ------------------------------------
    binaries: Dict[str, DelfBinary] = {}
    for isa_name in isa_names:
        isa = isas[isa_name]
        text = bytearray()
        stackmaps = StackMapSection()
        frames = FrameSection()
        for code in per_isa_code[isa_name]:
            block = blocks[isa_name][code.name]
            base = func_addr[code.name]
            body = block.encode(base, resolve)
            labels = block.layout()
            if len(body) > func_span[code.name]:
                raise LinkError(f"{code.name}: encoded size changed")
            pad = func_span[code.name] - len(body)
            text += body
            text += _nop_pad(isa, pad)
            _add_metadata(code, base, base + func_span[code.name], labels,
                          isa, stackmaps, frames)
        if len(text) != text_size:
            raise LinkError("text size mismatch across functions")
        binaries[isa_name] = DelfBinary(
            arch=isa_name,
            entry=func_addr[sysabi.RT_START],
            source_name=program.name,
            text=bytes(text),
            data=data,
            symtab=make_symtab(),
            stackmaps=stackmaps,
            frames=frames,
            tls_template=tls_template,
        )
    verify_alignment(binaries)
    return binaries


def _nop_pad(isa: Isa, pad: int) -> bytes:
    if pad % len(isa.nop_bytes):
        raise LinkError(f"{isa.name}: pad {pad} not a multiple of nop size")
    return isa.nop_bytes * (pad // len(isa.nop_bytes))


def _add_metadata(code: FuncCode, base: int, end: int,
                  labels: Dict[str, int], isa: Isa,
                  stackmaps: StackMapSection, frames: FrameSection) -> None:
    for desc in code.eqpoints:
        if desc.resume_label not in labels:
            raise LinkError(f"{code.name}: missing label {desc.resume_label}")
        addr = base + labels[desc.resume_label]
        trap_addr = 0
        if desc.trap_label is not None:
            trap_addr = base + labels[desc.trap_label]
        live = [LiveValue(lv.value_id, lv.name, lv.loc_type, lv.dwarf_reg,
                          lv.stack_offset, lv.is_pointer, lv.size)
                for lv in desc.live]
        stackmaps.add(EqPoint(desc.eqpoint_id, desc.func, desc.kind, addr,
                              trap_addr, live))
    frames.add(FrameRecord(code.name, base, end, code.frame_size,
                           code.entry_eqpoint, code.slots))


def verify_alignment(binaries: Dict[str, DelfBinary]) -> None:
    """Check the unified-address-space invariant across all binaries."""
    names = sorted(binaries)
    reference = binaries[names[0]].symtab
    for other_name in names[1:]:
        other = binaries[other_name].symtab
        if len(other) != len(reference):
            raise LinkError("symbol tables differ in size")
        for sym in reference:
            peer = other.lookup(sym.name)
            if peer is None or peer.addr != sym.addr:
                raise LinkError(
                    f"symbol {sym.name!r} not aligned: "
                    f"{sym.addr:#x} vs {peer.addr if peer else None}")
