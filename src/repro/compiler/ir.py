"""Typed three-address IR shared by both backends.

The IR is a *linear* instruction list per function with labels and
branches (no explicit CFG — the programs the reproduction compiles do
not need one). Every named program variable lives in a *slot* with a
stable ``slot_id``; expression temporaries (``Temp``) are statement-local
and are guaranteed by the IR generator never to be live across a call or
any other equivalence point (calls are hoisted to statement level).

This property is what makes the cross-ISA stackmaps tractable exactly as
described in DESIGN.md: at every equivalence point the live state is the
set of frame slots (plus, at function entry, the argument registers).
"""

from __future__ import annotations

from typing import List, Optional

WORD = 8

SLOT_PARAM = "param"
SLOT_LOCAL = "local"
SLOT_ARRAY = "array"
SLOT_CALLTMP = "calltmp"

BIN_OPS = ("add", "sub", "mul", "sdiv", "srem", "and", "orr", "eor",
           "lsl", "lsr")
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")


class Temp:
    """A statement-local virtual register."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:
        return f"t{self.index}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Temp) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("temp", self.index))


class IrSlot:
    """One named stack slot (parameter, local, array, or call temp)."""

    __slots__ = ("slot_id", "name", "size", "is_pointer", "kind")

    def __init__(self, slot_id: int, name: str, size: int,
                 is_pointer: bool, kind: str):
        self.slot_id = slot_id
        self.name = name
        self.size = size
        self.is_pointer = is_pointer
        self.kind = kind

    def __repr__(self) -> str:
        return (f"<IrSlot #{self.slot_id} {self.name} {self.size}B "
                f"{self.kind}{' ptr' if self.is_pointer else ''}>")


# -- instructions -------------------------------------------------------------

class IrInstr:
    __slots__ = ()


class Label(IrInstr):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"{self.name}:"


class Const(IrInstr):
    __slots__ = ("dst", "value")

    def __init__(self, dst: Temp, value: int):
        self.dst = dst
        self.value = value

    def __repr__(self) -> str:
        return f"  {self.dst} = const {self.value:#x}"


class Move(IrInstr):
    __slots__ = ("dst", "src")

    def __init__(self, dst: Temp, src: Temp):
        self.dst = dst
        self.src = src

    def __repr__(self) -> str:
        return f"  {self.dst} = {self.src}"


class Bin(IrInstr):
    __slots__ = ("op", "dst", "a", "b")

    def __init__(self, op: str, dst: Temp, a: Temp, b: Temp):
        assert op in BIN_OPS, op
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b

    def __repr__(self) -> str:
        return f"  {self.dst} = {self.op} {self.a}, {self.b}"


class Cmp(IrInstr):
    """dst = (a OP b) as 0/1."""

    __slots__ = ("op", "dst", "a", "b")

    def __init__(self, op: str, dst: Temp, a: Temp, b: Temp):
        assert op in CMP_OPS, op
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b

    def __repr__(self) -> str:
        return f"  {self.dst} = cmp.{self.op} {self.a}, {self.b}"


class LoadSlot(IrInstr):
    __slots__ = ("dst", "slot_id")

    def __init__(self, dst: Temp, slot_id: int):
        self.dst = dst
        self.slot_id = slot_id

    def __repr__(self) -> str:
        return f"  {self.dst} = slot[{self.slot_id}]"


class StoreSlot(IrInstr):
    __slots__ = ("slot_id", "src")

    def __init__(self, slot_id: int, src: Temp):
        self.slot_id = slot_id
        self.src = src

    def __repr__(self) -> str:
        return f"  slot[{self.slot_id}] = {self.src}"


class AddrSlot(IrInstr):
    """dst = address of slot (+ constant byte offset)."""

    __slots__ = ("dst", "slot_id", "offset")

    def __init__(self, dst: Temp, slot_id: int, offset: int = 0):
        self.dst = dst
        self.slot_id = slot_id
        self.offset = offset

    def __repr__(self) -> str:
        return f"  {self.dst} = &slot[{self.slot_id}]+{self.offset}"


class LoadGlobal(IrInstr):
    __slots__ = ("dst", "symbol")

    def __init__(self, dst: Temp, symbol: str):
        self.dst = dst
        self.symbol = symbol

    def __repr__(self) -> str:
        return f"  {self.dst} = @{self.symbol}"


class StoreGlobal(IrInstr):
    __slots__ = ("symbol", "src")

    def __init__(self, symbol: str, src: Temp):
        self.symbol = symbol
        self.src = src

    def __repr__(self) -> str:
        return f"  @{self.symbol} = {self.src}"


class AddrGlobal(IrInstr):
    __slots__ = ("dst", "symbol", "offset")

    def __init__(self, dst: Temp, symbol: str, offset: int = 0):
        self.dst = dst
        self.symbol = symbol
        self.offset = offset

    def __repr__(self) -> str:
        return f"  {self.dst} = &@{self.symbol}+{self.offset}"


class TlsLoad(IrInstr):
    __slots__ = ("dst", "symbol")

    def __init__(self, dst: Temp, symbol: str):
        self.dst = dst
        self.symbol = symbol

    def __repr__(self) -> str:
        return f"  {self.dst} = tls:{self.symbol}"


class TlsStore(IrInstr):
    __slots__ = ("symbol", "src")

    def __init__(self, symbol: str, src: Temp):
        self.symbol = symbol
        self.src = src

    def __repr__(self) -> str:
        return f"  tls:{self.symbol} = {self.src}"


class LoadMem(IrInstr):
    __slots__ = ("dst", "addr")

    def __init__(self, dst: Temp, addr: Temp):
        self.dst = dst
        self.addr = addr

    def __repr__(self) -> str:
        return f"  {self.dst} = mem[{self.addr}]"


class StoreMem(IrInstr):
    __slots__ = ("addr", "src")

    def __init__(self, addr: Temp, src: Temp):
        self.addr = addr
        self.src = src

    def __repr__(self) -> str:
        return f"  mem[{self.addr}] = {self.src}"


class CallIr(IrInstr):
    """Direct call. ``eqpoint_id`` is assigned by the middle-end pass."""

    __slots__ = ("dst", "func", "args", "eqpoint_id")

    def __init__(self, dst: Optional[Temp], func: str, args: List[Temp]):
        self.dst = dst
        self.func = func
        self.args = args
        self.eqpoint_id: Optional[int] = None

    def __repr__(self) -> str:
        lhs = f"{self.dst} = " if self.dst else ""
        return (f"  {lhs}call {self.func}({', '.join(map(repr, self.args))})"
                f" [eq#{self.eqpoint_id}]")


class SyscallIr(IrInstr):
    __slots__ = ("dst", "number", "args")

    def __init__(self, dst: Optional[Temp], number: int, args: List[Temp]):
        self.dst = dst
        self.number = number
        self.args = args

    def __repr__(self) -> str:
        lhs = f"{self.dst} = " if self.dst else ""
        return f"  {lhs}syscall {self.number}({', '.join(map(repr, self.args))})"


class Jump(IrInstr):
    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def __repr__(self) -> str:
        return f"  jump {self.label}"


class BranchZero(IrInstr):
    """if src == 0: goto label"""

    __slots__ = ("src", "label")

    def __init__(self, src: Temp, label: str):
        self.src = src
        self.label = label

    def __repr__(self) -> str:
        return f"  if {self.src} == 0 goto {self.label}"


class BranchNonZero(IrInstr):
    """if src != 0: goto label"""

    __slots__ = ("src", "label")

    def __init__(self, src: Temp, label: str):
        self.src = src
        self.label = label

    def __repr__(self) -> str:
        return f"  if {self.src} != 0 goto {self.label}"


class Ret(IrInstr):
    __slots__ = ("src",)

    def __init__(self, src: Optional[Temp]):
        self.src = src

    def __repr__(self) -> str:
        return f"  ret {self.src if self.src else ''}"


class EqPointEntry(IrInstr):
    """Marker: the function-entry equivalence point (inline checker site)."""

    __slots__ = ("eqpoint_id",)

    def __init__(self):
        self.eqpoint_id: Optional[int] = None

    def __repr__(self) -> str:
        return f"  eqpoint.entry [eq#{self.eqpoint_id}]"


# -- containers ---------------------------------------------------------------

class IrFunction:
    def __init__(self, name: str, params: List[IrSlot],
                 returns_value: bool):
        self.name = name
        self.params = params
        self.returns_value = returns_value
        self.slots: List[IrSlot] = list(params)
        self.body: List[IrInstr] = []
        self.max_temps = 0
        self.entry_eqpoint: Optional[int] = None
        #: set by passes.py: do not instrument a checker (runtime helpers
        #: like __poll would otherwise recurse through themselves).
        self.no_checker = False

    def slot_by_name(self, name: str) -> Optional[IrSlot]:
        for slot in self.slots:
            if slot.name == name:
                return slot
        return None

    def add_slot(self, slot: IrSlot) -> IrSlot:
        self.slots.append(slot)
        return slot

    def dump(self) -> str:
        lines = [f"func {self.name}({', '.join(s.name for s in self.params)})"
                 f" slots={len(self.slots)} max_temps={self.max_temps}"]
        lines += [repr(i) for i in self.body]
        return "\n".join(lines)


class IrGlobal:
    __slots__ = ("name", "size", "is_pointer")

    def __init__(self, name: str, size: int, is_pointer: bool):
        self.name = name
        self.size = size
        self.is_pointer = is_pointer


class IrTls:
    __slots__ = ("name", "offset")

    def __init__(self, name: str, offset: int):
        self.name = name
        self.offset = offset


class IrProgram:
    def __init__(self, name: str = "program"):
        self.name = name
        self.functions: List[IrFunction] = []
        self.globals: List[IrGlobal] = []
        self.tls_vars: List[IrTls] = []

    def function(self, name: str) -> IrFunction:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    def dump(self) -> str:
        return "\n\n".join(f.dump() for f in self.functions)
