"""Recursive-descent parser for DapperC.

Grammar (EBNF-ish)::

    program    := (global_decl | tls_decl | func_decl)*
    global_decl:= "global" "int" ["*"] IDENT ["[" NUMBER "]"] ";"
    tls_decl   := "tls" "int" IDENT ";"
    func_decl  := "func" IDENT "(" params ")" ["->" "int"] block
    params     := [param ("," param)*]
    param      := "int" ["*"] IDENT
    block      := "{" (local_decl | stmt)* "}"
    local_decl := "int" ["*"] IDENT ["[" NUMBER "]"] ";"
    stmt       := assign ";" | call ";" | if | while | "break" ";"
                | "continue" ";" | "return" [expr] ";"
    if         := "if" "(" expr ")" block ["else" (block | if)]
    while      := "while" "(" expr ")" block
    assign     := lvalue "=" expr
    lvalue     := IDENT | "*" unary | IDENT "[" expr "]"
    expr       := logical_or ( "||" handled with short-circuit lowering )
    ...

Local declarations may appear anywhere in a function body (they are all
hoisted to function scope, C89-style).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import CompileError
from . import ast_nodes as ast
from .lexer import tokenize
from .tokens import BUILTINS, Token


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, value=None) -> bool:
        return self.peek().matches(kind, value)

    def accept(self, kind: str, value=None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value=None) -> Token:
        token = self.peek()
        if not token.matches(kind, value):
            want = value if value is not None else kind
            raise CompileError(
                f"expected {want!r}, found {token.value!r}",
                token.line, token.column)
        return self.advance()

    # -- declarations ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        globals_: List[ast.GlobalDecl] = []
        tls_vars: List[ast.TlsDecl] = []
        functions: List[ast.FuncDecl] = []
        while not self.check("eof"):
            if self.check("keyword", "global"):
                globals_.append(self.parse_global())
            elif self.check("keyword", "tls"):
                tls_vars.append(self.parse_tls())
            elif self.check("keyword", "func"):
                functions.append(self.parse_func())
            else:
                token = self.peek()
                raise CompileError(
                    f"expected declaration, found {token.value!r}",
                    token.line, token.column)
        return ast.Program(globals_, tls_vars, functions)

    def parse_global(self) -> ast.GlobalDecl:
        start = self.expect("keyword", "global")
        self.expect("keyword", "int")
        is_pointer = bool(self.accept("op", "*"))
        name = self.expect("ident").value
        count = 1
        if self.accept("punct", "["):
            count = self.expect("number").value
            self.expect("punct", "]")
            if count < 1:
                raise CompileError(f"array {name!r} has size {count}",
                                   start.line)
        self.expect("punct", ";")
        return ast.GlobalDecl(name, count, is_pointer, start.line)

    def parse_tls(self) -> ast.TlsDecl:
        start = self.expect("keyword", "tls")
        self.expect("keyword", "int")
        name = self.expect("ident").value
        self.expect("punct", ";")
        return ast.TlsDecl(name, start.line)

    def parse_func(self) -> ast.FuncDecl:
        start = self.expect("keyword", "func")
        name = self.expect("ident").value
        self.expect("punct", "(")
        params: List[ast.Param] = []
        if not self.check("punct", ")"):
            while True:
                self.expect("keyword", "int")
                is_pointer = bool(self.accept("op", "*"))
                pname = self.expect("ident").value
                params.append(ast.Param(pname, is_pointer, start.line))
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        returns_value = False
        if self.accept("punct", "->"):
            self.expect("keyword", "int")
            returns_value = True
        locals_: List[ast.LocalDecl] = []
        body = self.parse_block(locals_)
        return ast.FuncDecl(name, params, locals_, body, returns_value,
                            start.line)

    # -- statements ---------------------------------------------------------------

    def parse_block(self, locals_out: List[ast.LocalDecl]) -> List[ast.Stmt]:
        self.expect("punct", "{")
        body: List[ast.Stmt] = []
        while not self.check("punct", "}"):
            if self.check("keyword", "int"):
                locals_out.append(self.parse_local())
            else:
                body.append(self.parse_stmt(locals_out))
        self.expect("punct", "}")
        return body

    def parse_local(self) -> ast.LocalDecl:
        start = self.expect("keyword", "int")
        is_pointer = bool(self.accept("op", "*"))
        name = self.expect("ident").value
        count = 1
        if self.accept("punct", "["):
            count = self.expect("number").value
            self.expect("punct", "]")
            if count < 1:
                raise CompileError(f"array {name!r} has size {count}",
                                   start.line)
        self.expect("punct", ";")
        return ast.LocalDecl(name, count, is_pointer, start.line)

    def parse_stmt(self, locals_out: List[ast.LocalDecl]) -> ast.Stmt:
        token = self.peek()
        if token.matches("keyword", "if"):
            return self.parse_if(locals_out)
        if token.matches("keyword", "while"):
            return self.parse_while(locals_out)
        if token.matches("keyword", "break"):
            self.advance()
            self.expect("punct", ";")
            return ast.Break(token.line)
        if token.matches("keyword", "continue"):
            self.advance()
            self.expect("punct", ";")
            return ast.Continue(token.line)
        if token.matches("keyword", "return"):
            self.advance()
            expr = None
            if not self.check("punct", ";"):
                expr = self.parse_expr()
            self.expect("punct", ";")
            return ast.Return(expr, token.line)
        # Assignment or expression statement. Disambiguate by scanning for
        # a top-level '=' before the terminating ';'.
        expr = self.parse_unary() if self._looks_like_lvalue() else None
        if expr is not None and self.check("op", "="):
            self.advance()
            value = self.parse_expr()
            self.expect("punct", ";")
            self._check_lvalue(expr, token)
            return ast.Assign(expr, value, token.line)
        if expr is not None:
            # Not an assignment after all: continue parsing as expression
            # with `expr` as the leftmost operand.
            full = self._continue_expr(expr)
            self.expect("punct", ";")
            return ast.ExprStmt(full, token.line)
        full = self.parse_expr()
        self.expect("punct", ";")
        return ast.ExprStmt(full, token.line)

    def _looks_like_lvalue(self) -> bool:
        token = self.peek()
        return token.kind == "ident" or token.matches("op", "*")

    @staticmethod
    def _check_lvalue(expr: ast.Expr, token: Token) -> None:
        if not isinstance(expr, (ast.Var, ast.Deref, ast.Index)):
            raise CompileError("invalid assignment target",
                               token.line, token.column)

    def parse_if(self, locals_out: List[ast.LocalDecl]) -> ast.If:
        start = self.expect("keyword", "if")
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        then_body = self.parse_block(locals_out)
        else_body: Optional[List[ast.Stmt]] = None
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                else_body = [self.parse_if(locals_out)]
            else:
                else_body = self.parse_block(locals_out)
        return ast.If(cond, then_body, else_body, start.line)

    def parse_while(self, locals_out: List[ast.LocalDecl]) -> ast.While:
        start = self.expect("keyword", "while")
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        body = self.parse_block(locals_out)
        return ast.While(cond, body, start.line)

    # -- expressions ------------------------------------------------------------
    # Precedence (low → high):
    #   || ; && ; | ; ^ ; & ; == != ; < <= > >= ; << >> ; + - ; * / % ; unary

    _LEVELS = (
        ("||",), ("&&",), ("|",), ("^",), ("&",),
        ("==", "!="), ("<", "<=", ">", ">="), ("<<", ">>"),
        ("+", "-"), ("*", "/", "%"),
    )

    def parse_expr(self) -> ast.Expr:
        return self._parse_level(0)

    def _parse_level(self, level: int) -> ast.Expr:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        left = self._parse_level(level + 1)
        ops = self._LEVELS[level]
        while self.peek().kind == "op" and self.peek().value in ops:
            token = self.advance()
            right = self._parse_level(level + 1)
            left = ast.BinOp(token.value, left, right, token.line)
        return left

    def _continue_expr(self, left: ast.Expr) -> ast.Expr:
        """Resume precedence climbing with an already-parsed left operand."""
        for level in range(len(self._LEVELS) - 1, -1, -1):
            ops = self._LEVELS[level]
            while self.peek().kind == "op" and self.peek().value in ops:
                token = self.advance()
                right = self._parse_level(level + 1)
                left = ast.BinOp(token.value, left, right, token.line)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.matches("op", "-"):
            self.advance()
            return ast.UnaryOp("-", self.parse_unary(), token.line)
        if token.matches("op", "!"):
            self.advance()
            return ast.UnaryOp("!", self.parse_unary(), token.line)
        if token.matches("op", "*"):
            self.advance()
            return ast.Deref(self.parse_unary(), token.line)
        if token.matches("op", "&"):
            self.advance()
            target = self.parse_unary()
            if not isinstance(target, (ast.Var, ast.Index)):
                raise CompileError("'&' needs a variable or array element",
                                   token.line, token.column)
            return ast.AddrOf(target, token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return ast.Number(token.value, token.line)
        if token.matches("punct", "("):
            self.advance()
            inner = self.parse_expr()
            self.expect("punct", ")")
            return self._maybe_index(inner)
        if token.kind == "ident":
            self.advance()
            name = token.value
            if self.check("punct", "("):
                self.advance()
                args: List[ast.Expr] = []
                if not self.check("punct", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("punct", ","):
                            break
                self.expect("punct", ")")
                return ast.Call(name, args, name in BUILTINS, token.line)
            return self._maybe_index(ast.Var(name, token.line))
        raise CompileError(f"unexpected token {token.value!r}",
                           token.line, token.column)

    def _maybe_index(self, base: ast.Expr) -> ast.Expr:
        while self.check("punct", "["):
            bracket = self.advance()
            index = self.parse_expr()
            self.expect("punct", "]")
            base = ast.Index(base, index, bracket.line)
        return base


def parse(source: str) -> ast.Program:
    """Lex and parse DapperC source."""
    return Parser(tokenize(source)).parse_program()
