"""Hand-written lexer for DapperC."""

from __future__ import annotations

from typing import List

from ..errors import CompileError
from .tokens import KEYWORDS, OPERATORS, Token

_PUNCT_SINGLE = "(){}[],;"


def tokenize(source: str) -> List[Token]:
    """Lex DapperC source into a token list ending with an ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def emit(kind: str, value, length: int, at_col: int) -> None:
        tokens.append(Token(kind, value, line, at_col))

    while i < n:
        ch = source[i]
        # Whitespace and newlines.
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # Line comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        # Block comments.
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line, col)
            for c in source[i:end]:
                if c == "\n":
                    line += 1
                    col = 0
                col += 1
            i = end + 2
            continue
        # Numbers: decimal and 0x-hex, with optional leading minus handled
        # by the parser as unary.
        if ch.isdigit():
            start = i
            start_col = col
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                text = source[start:i]
                value = int(text, 16)
            else:
                while i < n and source[i].isdigit():
                    i += 1
                value = int(source[start:i])
            col += i - start
            emit("number", value, i - start, start_col)
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_" or ch == "$":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] in "_$"):
                i += 1
            text = source[start:i]
            col += i - start
            if text in KEYWORDS:
                emit("keyword", text, i - start, start_col)
            else:
                emit("ident", text, i - start, start_col)
            continue
        # '->' is punctuation (function return arrow), check before '-'.
        if source.startswith("->", i):
            emit("punct", "->", 2, col)
            i += 2
            col += 2
            continue
        # Operators (longest match first).
        matched = False
        for op in OPERATORS:
            if source.startswith(op, i):
                emit("op", op, len(op), col)
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT_SINGLE:
            emit("punct", ch, 1, col)
            i += 1
            col += 1
            continue
        raise CompileError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("eof", None, line, col))
    return tokens
