"""Compiler driver: DapperC source → one aligned DELF binary per ISA."""

from __future__ import annotations

from typing import Dict, Optional

from ..binfmt.delf import DelfBinary
from ..isa import ARM_ISA, X86_ISA, Isa
from . import irgen, linker, passes
from .codegen.armgen import ArmCodegen
from .codegen.x86gen import X86Codegen

_BACKENDS = {
    X86_ISA.name: (X86_ISA, X86Codegen),
    ARM_ISA.name: (ARM_ISA, ArmCodegen),
}


class CompiledProgram:
    """Result of one compilation: the shared IR plus per-ISA binaries."""

    def __init__(self, name: str, ir_program, binaries: Dict[str, DelfBinary]):
        self.name = name
        self.ir = ir_program
        self.binaries = binaries

    def binary(self, isa_name: str) -> DelfBinary:
        return self.binaries[isa_name]

    def __repr__(self) -> str:
        archs = ", ".join(sorted(self.binaries))
        return f"<CompiledProgram {self.name} [{archs}]>"


def compile_source(source: str, name: str = "program",
                   isas: Optional[Dict[str, Isa]] = None,
                   arm_stack_pairs: bool = True) -> CompiledProgram:
    """Compile DapperC source for every ISA (both, by default).

    The pipeline mirrors the paper's toolchain (§III-D1): one IR, a
    middle-end pass that places equivalence points and stackmap records,
    two backends, and a linker that aligns all symbols across the output
    binaries.

    ``arm_stack_pairs=False`` disables ldp/stp emission on aarch64 — the
    paper's future-work extension that makes every slot shuffleable (see
    :class:`~repro.compiler.codegen.armgen.ArmCodegen`).
    """
    program = irgen.lower(source, name)
    passes.run_middle_end(program)
    targets = isas or {name_: isa for name_, (isa, _) in _BACKENDS.items()}
    per_isa_code = {}
    isa_map = {}
    for isa_name in targets:
        isa, backend_cls = _BACKENDS[isa_name]
        backend = backend_cls(isa, program)
        if isa_name == "aarch64":
            backend.use_stack_pairs = arm_stack_pairs
        per_isa_code[isa_name] = [backend.compile_function(f)
                                  for f in program.functions]
        isa_map[isa_name] = isa
    binaries = linker.link(program, per_isa_code, isa_map)
    return CompiledProgram(name, program, binaries)
