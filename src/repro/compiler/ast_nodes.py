"""AST node classes for DapperC.

Nodes are plain classes with positional fields and a ``line`` attribute
for diagnostics. Types are minimal: every value is a 64-bit integer; the
only distinction that matters downstream is *pointer-ness* (the stackmap
``is_pointer`` bit that drives stack-pointer remapping in the rewriter).
"""

from __future__ import annotations

from typing import List, Optional


class Node:
    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line


# -- declarations -----------------------------------------------------------

class Program(Node):
    __slots__ = ("globals", "tls_vars", "functions")

    def __init__(self, globals_: List["GlobalDecl"], tls_vars: List["TlsDecl"],
                 functions: List["FuncDecl"], line: int = 0):
        super().__init__(line)
        self.globals = globals_
        self.tls_vars = tls_vars
        self.functions = functions


class GlobalDecl(Node):
    __slots__ = ("name", "count", "is_pointer")

    def __init__(self, name: str, count: int = 1, is_pointer: bool = False,
                 line: int = 0):
        super().__init__(line)
        self.name = name
        self.count = count          # >1 means array of ints
        self.is_pointer = is_pointer


class TlsDecl(Node):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int = 0):
        super().__init__(line)
        self.name = name


class Param(Node):
    __slots__ = ("name", "is_pointer")

    def __init__(self, name: str, is_pointer: bool = False, line: int = 0):
        super().__init__(line)
        self.name = name
        self.is_pointer = is_pointer


class LocalDecl(Node):
    __slots__ = ("name", "count", "is_pointer")

    def __init__(self, name: str, count: int = 1, is_pointer: bool = False,
                 line: int = 0):
        super().__init__(line)
        self.name = name
        self.count = count
        self.is_pointer = is_pointer


class FuncDecl(Node):
    __slots__ = ("name", "params", "locals", "body", "returns_value")

    def __init__(self, name: str, params: List[Param],
                 locals_: List[LocalDecl], body: List["Stmt"],
                 returns_value: bool = True, line: int = 0):
        super().__init__(line)
        self.name = name
        self.params = params
        self.locals = locals_
        self.body = body
        self.returns_value = returns_value


# -- statements -------------------------------------------------------------

class Stmt(Node):
    __slots__ = ()


class Assign(Stmt):
    """``target = expr`` where target is a Var, Deref, or Index."""

    __slots__ = ("target", "expr")

    def __init__(self, target: "Expr", expr: "Expr", line: int = 0):
        super().__init__(line)
        self.target = target
        self.expr = expr


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: "Expr", line: int = 0):
        super().__init__(line)
        self.expr = expr


class If(Stmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: "Expr", then_body: List[Stmt],
                 else_body: Optional[List[Stmt]], line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body or []


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: "Expr", body: List[Stmt], line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class Return(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Optional["Expr"], line: int = 0):
        super().__init__(line)
        self.expr = expr


# -- expressions --------------------------------------------------------------

class Expr(Node):
    __slots__ = ()


class Number(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int = 0):
        super().__init__(line)
        self.value = value


class Var(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int = 0):
        super().__init__(line)
        self.name = name


class BinOp(Expr):
    """op in + - * / % == != < <= > >= && || & | ^ << >>"""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class UnaryOp(Expr):
    """op in - !"""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.operand = operand


class AddrOf(Expr):
    """``&var`` or ``&arr[idx]``"""

    __slots__ = ("target",)

    def __init__(self, target: Expr, line: int = 0):
        super().__init__(line)
        self.target = target


class Deref(Expr):
    """``*ptr_expr``"""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr, line: int = 0):
        super().__init__(line)
        self.operand = operand


class Index(Expr):
    """``arr[idx]`` where arr is a named array or a pointer variable."""

    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line: int = 0):
        super().__init__(line)
        self.base = base
        self.index = index


class Call(Expr):
    """User-function call or builtin."""

    __slots__ = ("name", "args", "is_builtin")

    def __init__(self, name: str, args: List[Expr], is_builtin: bool = False,
                 line: int = 0):
        super().__init__(line)
        self.name = name
        self.args = args
        self.is_builtin = is_builtin
