"""Token kinds and the Token class for the DapperC lexer."""

from __future__ import annotations

KEYWORDS = frozenset({
    "func", "global", "tls", "int", "return", "if", "else", "while",
    "break", "continue",
})

BUILTINS = frozenset({
    "print", "printc", "exit", "sbrk", "spawn", "join", "lock", "unlock",
    "yield", "self", "now",
})

# Multi-character operators must precede their prefixes.
OPERATORS = (
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "&", "|", "^", "!",
)

PUNCTUATION = ("(", ")", "{", "}", "[", "]", ",", ";", "->")


class Token:
    """One lexeme with its source position."""

    __slots__ = ("kind", "value", "line", "column")

    KINDS = ("ident", "number", "keyword", "op", "punct", "eof")

    def __init__(self, kind: str, value, line: int, column: int):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def matches(self, kind: str, value=None) -> bool:
        return self.kind == kind and (value is None or self.value == value)

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"
