"""The DapperC compiler toolchain.

DapperC is a small C-like language, sufficient to express the paper's
benchmark workloads (NPB kernels, Linpack, Dhrystone, PARSEC-style
multi-threaded apps, a Redis-like store, an Nginx-like server, K-means).
One DapperC source compiles — through a *shared* typed IR, mirroring how
Dapper derives both machine binaries from the same LLVM IR (§III-D1) —
into two DELF binaries, one per ISA, with:

* an inline *checker* at every function entry (the equivalence point),
* stackmap records for every equivalence point (entry + call sites),
* frame-layout metadata for every function, and
* symbol addresses aligned across the two binaries by the linker.

Language summary::

    // line comments
    global int g;            // 8-byte global
    global int table[64];    // global array
    tls int t_counter;       // thread-local 8-byte slot

    func add(int a, int b) -> int {
        int c;
        c = a + b;
        return c;
    }

    func main() -> int {
        int i; int arr[8]; int *p;
        p = &arr[2];
        *p = 41;
        arr[3] = arr[2] + 1;
        while (i < 8) { i = i + 1; }
        if (i >= 8) { print(arr[3]); }
        return 0;
    }

Builtins: ``print(x)``, ``printc(x)``, ``exit(x)``, ``sbrk(n)``,
``spawn(fname, arg)``, ``join(tid)``, ``lock(&m)``, ``unlock(&m)``,
``yield()``, ``self()``, ``now()``.

``lock``/``join`` compile into polling loops that pass through an
equivalence point on every iteration (via the tiny ``__poll`` runtime
function), which realizes the paper's guarantee that every thread parks
at an equivalence point without blocking syscall states; a successful
``lock`` additionally sets the per-thread check-disable TLS flag so the
holder of a critical section is never parked inside it (§III-B).
"""

from .driver import CompiledProgram, compile_source

__all__ = ["CompiledProgram", "compile_source"]
