"""Baseline systems for the attack-surface comparison (paper §IV-C).

Popcorn Linux and H-Container place the cross-ISA transformation logic
*inside* the application's address space (an inline state transformer
linked into every binary, plus — for Popcorn — kernel page-sharing
stubs). Dapper rewrites the process externally, so its binaries carry
only the tiny inline checkers. Fig. 11 measures the resulting ROP-gadget
attack-surface gap on real code: these modules build the baseline
binaries by linking a DapperC port of the inline runtime into each app.
"""

from .popcorn import popcorn_program, hcontainer_program

__all__ = ["popcorn_program", "hcontainer_program"]
