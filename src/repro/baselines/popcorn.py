"""Popcorn-Linux-style baseline binaries (paper §IV-C, Fig. 11).

Popcorn Linux injects the cross-ISA transformation logic into each
process: a state-transformation runtime (register translation, stack
transformation, address-space layout management) plus user-level stubs
for its kernel page-sharing and cross-node messaging facilities. All of
that code lives in the application's address space and is reachable by
an attacker — the paper measures the resulting ROP-gadget inflation
relative to Dapper's externally-rewritten processes.

``POPCORN_RUNTIME_SOURCE`` is a DapperC port of that inline runtime's
data path (the same flavour of table-driven register mapping, frame
walking, and page/message bookkeeping the real ``libmigrate`` performs).
It is linked into the application binary; none of it needs to run for
the app to work — exactly like the dormant migration runtime in a
Popcorn binary — but every byte of it counts toward the attack surface.

H-Container removes Popcorn's kernel page-sharing stubs from the TCB
(it migrates containers without the custom kernel), so its binaries
carry the transformer but not the page-sharing/messaging stubs.
"""

from __future__ import annotations

from ..apps.registry import AppSpec
from ..compiler import CompiledProgram, compile_source

# -- the inline state transformer (shared by Popcorn and H-Container) --------

_TRANSFORMER_SOURCE = """
// ---- inline cross-ISA state transformer (libmigrate port) ----
global int pl_regmap_src[32];
global int pl_regmap_dst[32];
global int pl_frame_cache[64];
global int pl_unwind_depth;
global int pl_transform_state;

func pl_regmap_init() -> int {
    int i; int entries;
    entries = 0;
    i = 0;
    while (i < 32) {
        pl_regmap_src[i] = i;
        pl_regmap_dst[i] = (i * 7 + 3) % 32;
        entries = entries + 1;
        i = i + 1;
    }
    return entries;
}

func pl_translate_reg(int dwarf) -> int {
    int i;
    i = 0;
    while (i < 32) {
        if (pl_regmap_src[i] == dwarf) {
            return pl_regmap_dst[i];
        }
        i = i + 1;
    }
    return 0 - 1;
}

func pl_translate_regset(int *src, int *dst, int count) -> int {
    int i; int mapped; int value;
    mapped = 0;
    i = 0;
    while (i < count) {
        value = src[i];
        dst[pl_translate_reg(i) % count] = value;
        mapped = mapped + 1;
        i = i + 1;
    }
    return mapped;
}

func pl_unwind_frame(int fp, int depth) -> int {
    int slot; int cached;
    slot = (fp + depth) % 64;
    if (slot < 0) { slot = 0 - slot; }
    cached = pl_frame_cache[slot];
    pl_frame_cache[slot] = fp;
    pl_unwind_depth = depth;
    return cached;
}

func pl_transform_frame(int fp, int size, int depth) -> int {
    int cursor; int moved; int word;
    moved = 0;
    cursor = 0;
    while (cursor < size) {
        word = pl_unwind_frame(fp + cursor, depth);
        if (word != 0) { moved = moved + 1; }
        cursor = cursor + 8;
    }
    return moved;
}


func pl_fixup_pointer(int value, int lo, int hi, int shift) -> int {
    if (value >= lo) {
        if (value < hi) {
            return value + shift;
        }
    }
    return value;
}

"""

# -- Popcorn-only stubs: kernel page sharing + cross-node messaging -------------

_PAGE_SHARING_SOURCE = """
// ---- popcorn kernel page-sharing + messaging stubs ----
global int pl_page_table[128];
global int pl_page_owner[128];
global int pl_msg_queue[64];
global int pl_msg_head;
global int pl_msg_tail;
global int pl_remote_node;

func pl_page_lookup(int vaddr) -> int {
    int idx;
    idx = (vaddr / 4096) % 128;
    if (idx < 0) { idx = 0 - idx; }
    return pl_page_table[idx];
}

func pl_page_claim(int vaddr, int node) -> int {
    int idx; int prev;
    idx = (vaddr / 4096) % 128;
    if (idx < 0) { idx = 0 - idx; }
    prev = pl_page_owner[idx];
    pl_page_owner[idx] = node;
    pl_page_table[idx] = vaddr;
    return prev;
}

func pl_page_invalidate(int vaddr) -> int {
    int idx;
    idx = (vaddr / 4096) % 128;
    if (idx < 0) { idx = 0 - idx; }
    pl_page_table[idx] = 0;
    pl_page_owner[idx] = 0 - 1;
    return idx;
}

func pl_msg_send(int kind, int payload) -> int {
    int slot;
    slot = pl_msg_tail % 64;
    pl_msg_queue[slot] = kind * 65536 + (payload % 65536);
    pl_msg_tail = pl_msg_tail + 1;
    return slot;
}

func pl_msg_recv() -> int {
    int slot; int message;
    if (pl_msg_head == pl_msg_tail) { return 0 - 1; }
    slot = pl_msg_head % 64;
    message = pl_msg_queue[slot];
    pl_msg_head = pl_msg_head + 1;
    return message;
}


"""


# -- aarch64-only emulation stubs -----------------------------------------------
#
# Popcorn's aarch64 libmigrate is substantially larger than the x86-64
# one: it carries software-emulated RMW atomics, TLS-descriptor
# resolvers, and unaligned-access fixup veneers that x86-64 gets from
# hardware. Only the aarch64 baseline binaries link this component.

_ARM_EMULATION_SOURCE = """
// ---- aarch64 emulation veneers (atomics, tlsdesc, alignment) ----
global int pl_atomic_cells[64];
global int pl_tlsdesc_table[32];
global int pl_fixup_count;

func pl_atomic_cas(int cell, int expect, int value) -> int {
    int idx; int old;
    idx = cell % 64;
    if (idx < 0) { idx = 0 - idx; }
    old = pl_atomic_cells[idx];
    if (old == expect) {
        pl_atomic_cells[idx] = value;
    }
    return old;
}

func pl_atomic_add(int cell, int delta) -> int {
    int idx; int old;
    idx = cell % 64;
    if (idx < 0) { idx = 0 - idx; }
    old = pl_atomic_cells[idx];
    pl_atomic_cells[idx] = old + delta;
    return old;
}

func pl_atomic_xchg(int cell, int value) -> int {
    int idx; int old;
    idx = cell % 64;
    if (idx < 0) { idx = 0 - idx; }
    old = pl_atomic_cells[idx];
    pl_atomic_cells[idx] = value;
    return old;
}

func pl_tlsdesc_resolve(int module, int offset) -> int {
    int idx; int base;
    idx = module % 32;
    if (idx < 0) { idx = 0 - idx; }
    base = pl_tlsdesc_table[idx];
    if (base == 0) {
        base = module * 4096 + 64;
        pl_tlsdesc_table[idx] = base;
    }
    return base + offset;
}

func pl_fixup_unaligned(int addr, int width) -> int {
    int rem; int lo; int hi;
    rem = addr % width;
    if (rem == 0) { return addr; }
    lo = addr - rem;
    hi = lo + width;
    pl_fixup_count = pl_fixup_count + 1;
    if (rem * 2 < width) { return lo; }
    return hi;
}

func pl_barrier_full() -> int {
    int spins;
    spins = 0;
    while (spins < 4) {
        pl_atomic_add(0, 0);
        spins = spins + 1;
    }
    return spins;
}

func pl_lse_emulate(int op, int cell, int a, int b) -> int {
    int result;
    result = 0;
    if (op == 0) { result = pl_atomic_cas(cell, a, b); }
    if (op == 1) { result = pl_atomic_add(cell, a); }
    if (op == 2) { result = pl_atomic_xchg(cell, a); }
    if (op == 3) { result = pl_tlsdesc_resolve(a, b); }
    return result;
}
"""


def _stitch(name: str, base_source: str, arm_extra: str) -> CompiledProgram:
    """Compile per-ISA baseline variants and stitch one CompiledProgram.

    Baseline binaries are never migrated, so symbol alignment across the
    two is irrelevant — only their code contents (attack surface) matter.
    """
    x86_prog = compile_source(base_source, name,
                              isas=_only("x86_64"))
    arm_prog = compile_source(base_source + arm_extra, name,
                              isas=_only("aarch64"))
    return CompiledProgram(name, x86_prog.ir, {
        "x86_64": x86_prog.binary("x86_64"),
        "aarch64": arm_prog.binary("aarch64"),
    })


def _only(arch: str):
    from ..isa import get_isa
    return {arch: get_isa(arch)}


def popcorn_program(spec: AppSpec, size: str = "small") -> CompiledProgram:
    """The app linked with the full Popcorn inline runtime."""
    source = (spec.source(size) + _TRANSFORMER_SOURCE
              + _PAGE_SHARING_SOURCE)
    return _stitch(f"{spec.name}-popcorn", source, _ARM_EMULATION_SOURCE)


def hcontainer_program(spec: AppSpec, size: str = "small") -> CompiledProgram:
    """The app linked with H-Container's reduced inline runtime (no
    kernel page-sharing stubs; the aarch64 emulation veneers remain in
    its user-space TCB)."""
    source = spec.source(size) + _TRANSFORMER_SOURCE
    return _stitch(f"{spec.name}-hcontainer", source, _ARM_EMULATION_SOURCE)
