"""repro — a full reproduction of *Dapper: A Lightweight and Extensible
Framework for Live Program State Rewriting* (ICDCS 2024).

Quickstart::

    from repro import compile_source, Machine, MigrationPipeline
    from repro.isa import X86_ISA, ARM_ISA

    program = compile_source(SOURCE, "app")          # one source, two ISAs
    pipeline = MigrationPipeline(Machine(X86_ISA, name="xeon"),
                                 Machine(ARM_ISA, name="rpi"), program)
    result = pipeline.run_and_migrate(warmup_steps=5000)
    print(result.stage_seconds)       # checkpoint / recode / scp / restore
    print(result.combined_output())   # byte-identical to a native run

Layers (bottom-up):

* :mod:`repro.isa` / :mod:`repro.mem` / :mod:`repro.binfmt` — two
  simulated ISAs, paged memory, and the DELF binary format with
  stackmap/frame metadata.
* :mod:`repro.compiler` — the DapperC toolchain: one IR, an
  equivalence-point middle-end, two backends, an aligning linker.
* :mod:`repro.vm` — machines, a small kernel, ptrace, tmpfs.
* :mod:`repro.criu` — checkpoint/restore images, CRIT, lazy migration.
* :mod:`repro.core` — **the paper's contribution**: the runtime monitor,
  the process rewriter, the cross-ISA and stack-shuffle policies, the
  migration pipeline and its calibrated cost model.
* :mod:`repro.cluster` / :mod:`repro.security` / :mod:`repro.baselines` /
  :mod:`repro.apps` — the evaluation substrates.
"""

from .compiler import CompiledProgram, compile_source
from .core import (CrossIsaPolicy, DapperRuntime, MigrationPipeline,
                   MigrationResult, ProcessRewriter, StackShufflePolicy,
                   TransformationPolicy)
from .vm import Machine

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram", "compile_source", "CrossIsaPolicy", "DapperRuntime",
    "Machine", "MigrationPipeline", "MigrationResult", "ProcessRewriter",
    "StackShufflePolicy", "TransformationPolicy", "__version__",
]
