"""Coordinated group checkpoints: many processes, one consistent cut.

The :class:`GroupCoordinator` drives an nginx-worker-pool + redis
backend (:class:`ServiceGroup`) through a two-phase
quiesce/drain/prepare/commit protocol: in-flight connections are
drained inside a bounded budget or journaled into ``sockets.img`` by
the sockets checkpoint plugin, every member's dump is prepared into one
group manifest in the :class:`~repro.store.CheckpointStore`, and the
commit is a single atomic chunk registration. Any failure at any phase
aborts cleanly — prepared images swept, orphan chunks GC'd, every
member resumed at the cut. :func:`restore_group` restores a committed
manifest, recoding members whose placements sit on a different ISA,
and :class:`GroupChaosHarness` sweeps seeded faults across every
protocol phase asserting commit-or-resume.
"""

from .chaos import GroupChaosHarness, GroupTrial
from .coordinator import PHASES, GroupCoordinator, GroupResult
from .migrate import restore_group, split_placements
from .service import ConnectionBroker, GroupMember, ServiceGroup
from .spec import FAULT_PHASES, GroupSpec

__all__ = [
    "FAULT_PHASES",
    "PHASES",
    "ConnectionBroker",
    "GroupChaosHarness",
    "GroupCoordinator",
    "GroupMember",
    "GroupResult",
    "GroupSpec",
    "GroupTrial",
    "ServiceGroup",
    "restore_group",
    "split_placements",
]
