"""The group scenario description (the :class:`GroupSpec`).

A spec is a compact, fully deterministic description of one coordinated
group checkpoint run: the nginx worker-pool size, the redis backend's
simulated in-flight connection count, the bounded drain budget, the RNG
seed the connection broker draws from, the warmup before the cut, and —
for chaos runs — the protocol phase at which a deterministic fault is
forced. Like :class:`~repro.chaos.FaultPlan`, the spec round-trips
exactly through its string form, which embeds in flight-recorder
journal headers (the ``group`` field) — that is what makes a chaotic
group checkpoint replayable bit-for-bit from its own journal.
"""

from __future__ import annotations

from ..errors import GroupError

#: protocol phases a forced fault can target, in protocol order
#: (quiesce is excluded: pausing only reads the members, exactly as the
#: migration pipeline keeps its pause outside the transaction)
FAULT_PHASES = ("drain", "prepare", "restore", "commit")

#: integer spec fields, in canonical spec order
_FIELDS = ("workers", "conns", "drain", "seed", "warmup")


class GroupSpec:
    """One group run: worker pool shape + broker + forced-fault phase."""

    def __init__(self, workers: int = 2, conns: int = 8, drain: int = 4,
                 seed: int = 0, warmup: int = 4000, fault: str = "",
                 size: str = "small"):
        if workers < 1:
            raise GroupError(f"group needs at least one worker, "
                             f"got workers={workers}")
        if conns < 0:
            raise GroupError(f"connection count must be >= 0, "
                             f"got conns={conns}")
        if drain < 0:
            raise GroupError(f"drain budget must be >= 0, "
                             f"got drain={drain}")
        if warmup < 1:
            raise GroupError(f"warmup must be >= 1, got warmup={warmup}")
        if fault and fault not in FAULT_PHASES:
            raise GroupError(
                f"unknown fault phase {fault!r}; "
                f"known: {', '.join(FAULT_PHASES)}")
        self.workers = int(workers)
        self.conns = int(conns)
        self.drain = int(drain)
        self.seed = int(seed)
        self.warmup = int(warmup)
        self.fault = fault
        #: app problem size (not part of the spec string; tests and the
        #: CLI always run "small")
        self.size = size

    # -- spec round-trip (journal header embedding) -----------------------

    def to_spec(self) -> str:
        """Canonical ``workers=<n>,conns=<n>,...`` string (the forced
        fault phase appended only when set). Byte-stable, so journal
        headers are too."""
        parts = [f"{name}={getattr(self, name)}" for name in _FIELDS]
        if self.fault:
            parts.append(f"fault={self.fault}")
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "GroupSpec":
        kwargs = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            if key == "fault":
                kwargs["fault"] = value.strip()
                continue
            if key not in _FIELDS:
                raise GroupError(
                    f"unknown group spec field {key!r} in {spec!r}; "
                    f"known: {', '.join(_FIELDS)}, fault")
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise GroupError(f"bad group spec field {part!r} in "
                                 f"{spec!r}") from None
        return cls(**kwargs)

    def __repr__(self) -> str:
        return f"<GroupSpec {self.to_spec()}>"
