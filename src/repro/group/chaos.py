"""Group chaos harness: commit-or-resume, never half a group.

One :class:`GroupChaosHarness` owns a fault-free *reference* run of a
group migration (its per-member outputs and the committed broker state
are the oracle) and runs faulted trials against it — either a forced
deterministic fault at a named protocol phase (the sweep the CI
``group-smoke`` job runs) or seeded probabilistic chaos through the
shared :class:`~repro.chaos.FaultInjector`. Every trial must land in
exactly one of two states:

* **committed** — every member ran to exit on its destination with
  output identical to the reference, every source is torn down, the
  group manifest is registered with all its members, and the store
  fscks clean;
* **resumed** — :class:`~repro.errors.GroupRollback` was raised, the
  destinations hold *no* processes and *no* image files, the store
  holds *no* group manifest and *no* prepared member checkpoints, no
  orphan chunks survive GC, the connection broker is byte-identical to
  its pre-drain state, and every member resumed at the cut and ran to
  completion on the source with the reference output.

Anything else — a half-committed group, divergent output, leaked
destination or store state — fails the trial.
"""

from __future__ import annotations

from typing import List, Optional

from ..chaos import FaultInjector, FaultPlan
from ..errors import GroupRollback
from ..isa import get_isa
from ..store import CheckpointStore
from ..vm.kernel import Machine
from .coordinator import GroupCoordinator
from .migrate import split_placements
from .service import ServiceGroup
from .spec import FAULT_PHASES, GroupSpec


class GroupTrial:
    """One group chaos trial's verdict."""

    __slots__ = ("phase", "seed", "outcome", "ok", "detail", "faults")

    def __init__(self, phase: str, seed: int, outcome: str, ok: bool,
                 detail: str, faults: dict):
        #: forced fault phase ("" for probabilistic / fault-free trials)
        self.phase = phase
        self.seed = seed
        #: "committed" | "resumed"
        self.outcome = outcome
        #: did the commit-or-resume invariant hold?
        self.ok = ok
        self.detail = detail
        self.faults = dict(faults)

    def __repr__(self) -> str:
        mark = "ok" if self.ok else "FAIL"
        which = f"fault={self.phase}" if self.phase else f"seed={self.seed}"
        return f"<GroupTrial {which} {self.outcome} [{mark}]>"


class GroupChaosHarness:
    def __init__(self, spec: Optional[GroupSpec] = None):
        base = spec if spec is not None else GroupSpec()
        # The base spec must itself be fault-free; trials override it.
        self.spec = GroupSpec(workers=base.workers, conns=base.conns,
                              drain=base.drain, seed=base.seed,
                              warmup=base.warmup, size=base.size)
        # The oracle: one fault-free run of the same shape.
        trial, outputs, broker_digest = self._run(fault="", plan=None,
                                                  audit=False)
        if trial.outcome != "committed":
            raise GroupRollback(
                "reference group run did not commit", phase="?")
        self.expected_outputs = outputs
        self.expected_broker_digest = broker_digest

    # -- one trial -----------------------------------------------------------

    def _build(self, fault: str, plan: Optional[FaultPlan]):
        spec = GroupSpec(workers=self.spec.workers, conns=self.spec.conns,
                         drain=self.spec.drain,
                         seed=plan.seed if plan is not None else self.spec.seed,
                         warmup=self.spec.warmup, fault=fault,
                         size=self.spec.size)
        group = ServiceGroup(spec)
        group.warmup()
        dst_a = Machine(get_isa("aarch64"), name="dst-a")
        dst_b = Machine(get_isa("x86_64"), name="dst-b")
        placements = split_placements(group, dst_a, dst_b)
        injector = FaultInjector(plan) if plan is not None else None
        coordinator = GroupCoordinator(group, placements,
                                       store=CheckpointStore(),
                                       injector=injector,
                                       fault_phase=fault)
        return group, placements, coordinator

    def _run(self, fault: str, plan: Optional[FaultPlan], audit: bool
             ):
        group, placements, coordinator = self._build(fault, plan)
        pre_drain_digest = group.broker.digest()
        problems: List[str] = []
        outputs: List[str] = []
        try:
            result = coordinator.migrate()
        except GroupRollback:
            outcome = "resumed"
            problems += self._audit_resumed(group, placements,
                                            coordinator, pre_drain_digest)
            group.run_to_exit_on_source()
            outputs = [m.process.stdout() for m in group.members]
        else:
            outcome = "committed"
            for machine, process in zip(placements, result.processes):
                machine.run_process(process)
            outputs = [m.result.combined_output() for m in group.members]
            problems += self._audit_committed(group, coordinator, result)
        if audit:
            for i, (got, want) in enumerate(zip(outputs,
                                                self.expected_outputs)):
                if got != want:
                    problems.append(
                        f"member {group.members[i].name} output differs "
                        f"from the fault-free reference")
        faults = (coordinator.injector.counts()
                  if coordinator.injector is not None else {})
        trial = GroupTrial(fault, plan.seed if plan is not None else 0,
                           outcome, not problems, "; ".join(problems),
                           faults)
        return trial, outputs, group.broker.digest()

    def run_trial(self, fault: str = "",
                  plan: Optional[FaultPlan] = None) -> GroupTrial:
        """One trial: a forced fault at ``fault`` (one of
        :data:`~repro.group.spec.FAULT_PHASES`), probabilistic chaos
        from ``plan``, or — with neither — a fault-free control."""
        trial, _outputs, _digest = self._run(fault, plan, audit=True)
        return trial

    # -- audits ---------------------------------------------------------------

    def _audit_committed(self, group: ServiceGroup,
                         coordinator: GroupCoordinator,
                         result) -> List[str]:
        problems: List[str] = []
        for process in result.processes:
            if not process.exited:
                problems.append(f"destination process {process.pid} did "
                                f"not run to exit")
        if group.machine.processes:
            problems.append("source member(s) still alive after commit")
        store = coordinator.store
        if result.gid not in store:
            problems.append("group manifest missing from the store")
        elif store.members(result.gid) != result.member_ids:
            problems.append("group manifest members do not match the "
                            "prepared checkpoints")
        fsck = store.verify()
        if fsck:
            problems.append(f"store fsck after commit: {fsck}")
        broker = group.broker
        if len(broker.completed) != result.drained:
            problems.append("drained connections were not committed")
        if len(broker.in_flight) != result.leftover:
            problems.append("journaled connections went missing from "
                            "the broker")
        return problems

    def _audit_resumed(self, group: ServiceGroup,
                       placements: List[Machine],
                       coordinator: GroupCoordinator,
                       pre_drain_digest: str) -> List[str]:
        problems: List[str] = []
        for machine in dict.fromkeys(placements):
            if machine.processes:
                problems.append(f"{machine.name} has a (half-)restored "
                                f"process after abort")
            leftover = machine.tmpfs.listdir("/images")
            if leftover:
                problems.append(f"{machine.name} image tree not swept: "
                                f"{leftover}")
        store = coordinator.store
        if store.group_ids():
            problems.append("aborted run left a group manifest behind")
        if store.checkpoint_ids():
            problems.append(f"{len(store.checkpoint_ids())} prepared "
                            f"checkpoint(s) not swept")
        orphans = store.chunks.orphans()
        if orphans:
            problems.append(f"{len(orphans)} orphan chunk(s) leaked")
        fsck = store.verify()
        if fsck:
            problems.append(f"store fsck after abort: {fsck}")
        if group.broker.digest() != pre_drain_digest:
            problems.append("broker state differs from its pre-drain "
                            "snapshot")
        for member in group.members:
            if member.process.exited or member.process.stopped:
                problems.append(f"member {member.name} did not resume "
                                f"at the cut")
        return problems

    # -- sweeps ----------------------------------------------------------------

    def sweep_phases(self) -> List[GroupTrial]:
        """One forced-fault trial per protocol phase, plus a fault-free
        control — the commit-or-resume acceptance sweep."""
        trials = [self.run_trial(fault=phase) for phase in FAULT_PHASES]
        trials.append(self.run_trial())
        return trials

    def run_trials(self, nseeds: int, seed0: int = 0,
                   **probabilities) -> List[GroupTrial]:
        """One probabilistic trial per seed in ``[seed0, seed0+nseeds)``."""
        return [self.run_trial(plan=FaultPlan(seed, **probabilities))
                for seed in range(seed0, seed0 + nseeds)]
