"""The process group under coordination: nginx workers + a redis
backend on one source machine, plus the connection broker that models
their in-flight requests.

The broker is the *application-level* state the two-phase coordinator
must cut consistently: every simulated connection is either **drained**
(served to completion before the dumps are taken, inside the bounded
drain budget) or **journaled** — written into each endpoint's
``sockets.img`` by the sockets checkpoint plugin so the restored group
resumes it. The drain itself is transactional: nothing is committed
until the group manifest registers, and an abort at any later phase
puts every staged connection back in flight, byte-identically.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from ..apps.registry import get_app
from ..core.migration import exe_path_for, install_program
from ..errors import GroupError
from ..isa import get_isa
from ..vm.kernel import Machine, Process
from .spec import GroupSpec

#: the member roles, spawn order: the worker pool first, then the backend
NGINX, REDIS = "nginx", "redis"


def _lcg(state: int) -> int:
    """One step of the broker's deterministic 64-bit LCG."""
    return (state * 6364136223846793005 + 1442695040888963407) \
        & 0xFFFFFFFFFFFFFFFF


class ConnectionBroker:
    """Seeded in-flight connections between workers and the backend.

    Connections are plain dicts (``cid``/``src_pid``/``dst_pid``/
    ``payload``) — the exact shape
    :class:`~repro.criu.plugins.SocketsImage` journals. State moves
    through a two-phase drain: :meth:`begin_drain` stages up to the
    budget, :meth:`commit_drain` retires the staged connections at the
    group commit point, :meth:`abort_drain` restores the pre-drain
    state exactly (both are idempotent no-ops with no drain open).
    """

    def __init__(self, seed: int, count: int, worker_pids: List[int],
                 backend_pid: int):
        self.in_flight: List[Dict] = []
        self.completed: List[Dict] = []
        self._snapshot: Optional[List[Dict]] = None
        self._staged: List[Dict] = []
        state = seed ^ 0x9E3779B97F4A7C15
        for cid in range(count):
            state = _lcg(state)
            worker = worker_pids[state % len(worker_pids)]
            state = _lcg(state)
            self.in_flight.append({
                "cid": cid,
                "src_pid": worker,
                "dst_pid": backend_pid,
                "payload": f"GET /key-{state % 997:03d}",
            })

    # -- the two-phase drain ------------------------------------------------

    def begin_drain(self, budget: int) -> Tuple[List[Dict], List[Dict]]:
        """Stage up to ``budget`` connections for completion-before-cut.

        Returns ``(drained, leftover)``: the staged connections and the
        ones the budget could not cover — the leftovers are what the
        sockets plugin journals into each member's dump.
        """
        if self._snapshot is not None:
            raise GroupError("a drain is already in progress")
        self._snapshot = list(self.in_flight)
        n = min(max(0, budget), len(self.in_flight))
        self._staged = self.in_flight[:n]
        self.in_flight = self.in_flight[n:]
        return list(self._staged), list(self.in_flight)

    def commit_drain(self) -> None:
        """Retire the staged connections: the group manifest committed,
        so their completion is part of the cut."""
        self.completed.extend(self._staged)
        self._staged = []
        self._snapshot = None

    def abort_drain(self) -> None:
        """Put every staged connection back in flight — the broker is
        byte-identical to its pre-drain state."""
        if self._snapshot is not None:
            self.in_flight = self._snapshot
            self._staged = []
            self._snapshot = None

    # -- queries ------------------------------------------------------------

    def journaled_for(self, pid: int) -> List[Dict]:
        """The in-flight connections ``pid`` is an endpoint of — what
        its ``sockets.img`` journals at dump time."""
        return [dict(c) for c in self.in_flight
                if pid in (c["src_pid"], c["dst_pid"])]

    def digest(self) -> str:
        """Content digest of the broker state (canonical JSON) — the
        chaos harness's byte-identity oracle for drain settlement."""
        blob = json.dumps({"in_flight": self.in_flight,
                           "completed": self.completed},
                          sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(blob.encode("utf-8"),
                               digest_size=16).hexdigest()


class GroupMember:
    """One process in the coordinated group."""

    __slots__ = ("name", "role", "process", "runtime", "pipeline",
                 "result")

    def __init__(self, name: str, role: str, process: Process):
        self.name = name
        self.role = role
        self.process = process
        #: the quiesce-phase :class:`~repro.core.runtime.DapperRuntime`
        self.runtime = None
        #: per-member :class:`~repro.core.migration.MigrationPipeline`
        self.pipeline = None
        #: held-open :class:`~repro.core.migration.MigrationResult`
        self.result = None

    def __repr__(self) -> str:
        return f"<GroupMember {self.name} pid={self.process.pid}>"


class ServiceGroup:
    """An nginx worker pool + one redis backend on a source machine."""

    def __init__(self, spec: GroupSpec, recorder=None,
                 machine: Optional[Machine] = None):
        self.spec = spec
        self.machine = (machine if machine is not None
                        else Machine(get_isa("x86_64"), name="src"))
        if recorder is not None:
            recorder.attach(self.machine)
        self.programs = {NGINX: get_app(NGINX).compile(spec.size),
                         REDIS: get_app(REDIS).compile(spec.size)}
        for program in self.programs.values():
            install_program(self.machine, program)
        self.members: List[GroupMember] = []
        for i in range(spec.workers):
            process = self.machine.spawn_process(
                exe_path_for(NGINX, "x86_64"))
            self.members.append(GroupMember(f"nginx-{i}", NGINX, process))
        backend = self.machine.spawn_process(exe_path_for(REDIS, "x86_64"))
        self.members.append(GroupMember("redis-0", REDIS, backend))
        self.broker = ConnectionBroker(
            spec.seed, spec.conns,
            worker_pids=[m.process.pid for m in self.members
                         if m.role == NGINX],
            backend_pid=backend.pid)

    def program_for(self, member: GroupMember):
        return self.programs[member.role]

    def warmup(self) -> None:
        self.machine.step_all(self.spec.warmup)
        for member in self.members:
            if member.process.exited:
                raise GroupError(
                    f"member {member.name} exited during warmup — "
                    f"lower warmup below its lifetime")

    def run_to_exit_on_source(self, max_steps: int = 50_000_000
                              ) -> List[int]:
        """After an abort: every member resumes at the cut and runs to
        completion on the source. Returns the exit codes."""
        return [self.machine.run_process(m.process, max_steps)
                for m in self.members]
