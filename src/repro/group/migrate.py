"""Restoring a committed group manifest — possibly split across ISAs.

:func:`restore_group` is the other half of the coordinator's protocol:
given a group id in a :class:`~repro.store.CheckpointStore`, it
materializes every member checkpoint, recodes each one for the ISA of
the machine it is placed on (the same
:class:`~repro.core.policies.cross_isa.CrossIsaPolicy` +
:class:`~repro.core.rewriter.ProcessRewriter` path the migration
pipeline runs), pushes it through the restore guard, and adopts it.
A failure on any member kills the members already restored and raises
:class:`~repro.errors.GroupRollback` — all-or-nothing, mirroring the
coordinator's commit-or-resume invariant from the restore side.
"""

from __future__ import annotations

from typing import Dict, List

from ..compiler.driver import CompiledProgram
from ..core.migration import exe_path_for, install_program
from ..core.policies.cross_isa import CrossIsaPolicy
from ..core.rewriter import ProcessRewriter
from ..criu.restore import restore_process
from ..errors import GroupError, GroupRollback, ReproError
from ..store import CheckpointStore
from ..vm.kernel import Machine, Process
from .service import NGINX, ServiceGroup


def split_placements(group: ServiceGroup, worker_machine: Machine,
                     backend_machine: Machine) -> List[Machine]:
    """The canonical split placement: the nginx worker pool on one
    destination, the redis backend on the other — with the two
    machines on different ISAs this exercises cross-ISA and same-ISA
    member restores in a single group."""
    return [worker_machine if member.role == NGINX else backend_machine
            for member in group.members]


def _program_name(exe_path: str) -> str:
    """``/bin/nginx.x86_64`` -> ``nginx``."""
    return exe_path.rsplit("/", 1)[-1].rsplit(".", 1)[0]


def restore_group(store: CheckpointStore, gid: str,
                  placements: List[Machine],
                  programs: Dict[str, CompiledProgram],
                  verify: bool = True) -> List[Process]:
    """Restore every member of group ``gid`` onto its placement.

    ``placements`` maps member order to destination machines;
    ``programs`` maps program names (parsed from each member's
    ``files.img``) to compiled programs, used to recode members whose
    checkpoint ISA differs from their placement's. ``verify=True``
    routes every member through the restore guard (including the
    per-plugin verify hooks). Returns the restored processes in member
    order; any member failure kills the ones already restored and
    raises :class:`~repro.errors.GroupRollback` (phase ``restore``).
    """
    member_ids = store.members(gid)
    if len(placements) != len(member_ids):
        raise GroupError(f"group {gid[:12]} has {len(member_ids)} "
                         f"member(s) but {len(placements)} placement(s) "
                         f"were given")
    restored: List[Process] = []
    try:
        for cid, machine in zip(member_ids, placements):
            images = store.materialize(cid)
            src_arch = images.inventory().arch
            name = _program_name(images.files_img().exe_path)
            program = programs.get(name)
            if program is None:
                raise GroupError(
                    f"group member {cid[:12]} runs {name!r} but no "
                    f"compiled program for it was given")
            install_program(machine, program)
            dst_arch = machine.isa.name
            if dst_arch != src_arch:
                policy = CrossIsaPolicy(program.binary(src_arch),
                                        program.binary(dst_arch),
                                        exe_path_for(name, dst_arch))
                ProcessRewriter().rewrite(images, policy)
            restored.append(restore_process(machine, images,
                                            verify=verify))
    except ReproError as exc:
        for process in restored:
            if not process.exited:
                process.machine.kill(process)
        raise GroupRollback(
            f"group restore of {gid[:12]} failed on member "
            f"{len(restored)} of {len(member_ids)}; "
            f"{len(restored)} already-restored member(s) killed "
            f"({exc})", phase="restore",
            prepared=len(restored)) from exc
    return restored
