"""The two-phase group coordinator: commit-or-resume, never half a group.

One :class:`GroupCoordinator` drives a whole
:class:`~repro.group.service.ServiceGroup` through a coordinated
checkpoint-and-migrate at a consistent cut:

1. **quiesce** — every member is paused at an equivalence point
   (:meth:`~repro.core.runtime.DapperRuntime.pause_at_equivalence_points`);
   pausing only reads the members, so like the migration pipeline's
   pause it sits outside the transaction,
2. **drain** — in-flight connections are served-to-completion up to the
   bounded drain budget (:meth:`ConnectionBroker.begin_drain`); the
   leftovers are journaled into each endpoint's ``sockets.img`` by the
   sockets checkpoint plugin at dump time,
3. **prepare** — each member runs a held-open
   :class:`~repro.core.migration.MigrationPipeline` migration
   (``hold_source=True``): dumped, recoded for its placement's ISA,
   transferred, judged by the restore guard, and restored on the
   destination — while every paused source stays alive as the rollback
   target. Each prepared image set is put into the
   :class:`~repro.store.CheckpointStore`,
4. **commit** — one :meth:`~repro.store.CheckpointStore.put_group`
   registers the group manifest (a single chunk: it registers or it
   does not, so a coordinator crash can never leave a partial group
   visible), the drain is committed, and every source is torn down.

A member failure, store fault, or injected coordinator crash at any
phase aborts the whole group cleanly: destination copies killed and
their image trees swept, prepared checkpoints deleted and their orphan
chunks GC'd, the drain rolled back, and **every member resumed at the
cut** — the group-scale mirror of the pipeline's rollback-to-source
invariant. The protocol journals ``EV_GROUP`` events (all fields
content-derived), so chaotic group checkpoints replay bit-identically
from their own journals.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.migration import MigrationPipeline
from ..errors import (GroupError, GroupRollback, InjectedFault,
                      MigrationRollback, QuarantinedImage, StoreError)
from ..core.runtime import DapperRuntime
from ..store import CheckpointStore
from ..vm.kernel import Machine, Process
from .service import ServiceGroup

#: the protocol, in order (quiesce is not fault-targetable — see module
#: docstring; FAULT_PHASES in .spec lists the targetable subset)
PHASES = ("quiesce", "drain", "prepare", "restore", "commit")

#: pipeline stages that belong to the group protocol's *prepare* phase;
#: a member rollback in any later stage is a *restore*-phase abort
_PREPARE_STAGES = ("checkpoint", "recode", "scp", "ship", "store",
                   "verify")


class GroupResult:
    """Everything one committed group migration produced."""

    def __init__(self, *, gid: str, member_ids: List[str],
                 processes: List[Process], drained: int, leftover: int):
        #: the group manifest's checkpoint id (content-derived)
        self.gid = gid
        #: member checkpoint ids, in member order
        self.member_ids = list(member_ids)
        #: the restored destination processes, in member order
        self.processes = list(processes)
        self.drained = drained
        self.leftover = leftover

    def __repr__(self) -> str:
        return (f"<GroupResult {self.gid[:12]} members="
                f"{len(self.member_ids)} drained={self.drained} "
                f"journaled={self.leftover}>")


class GroupCoordinator:
    """Drives one group through quiesce/drain/prepare/commit."""

    def __init__(self, group: ServiceGroup, placements: List[Machine],
                 store: Optional[CheckpointStore] = None,
                 injector=None, recorder=None, fault_phase: str = "",
                 retry_budget: int = 3):
        if len(placements) != len(group.members):
            raise GroupError(
                f"{len(group.members)} member(s) but "
                f"{len(placements)} placement(s)")
        self.group = group
        self.placements = list(placements)
        self.store = store if store is not None else CheckpointStore()
        self.injector = injector
        self.recorder = recorder
        self.fault_phase = fault_phase
        self.retry_budget = retry_budget
        self._phase = "quiesce"
        self._forced_fired = False
        #: PutResults of the prepared member checkpoints (abort sweeps
        #: the ones this run created)
        self._puts: List = []
        #: open WAL group intent on a durable store (None otherwise):
        #: opened before the first member prepares, amended per member,
        #: sealed by put_group's commit record or by group_abort — the
        #: durable side of commit-or-resume. A coordinator *crash*
        #: (as opposed to a handled fault) leaves it open, and
        #: CheckpointStore.recover rolls the prepared members back.
        self._txn = None

    # -- journaling / fault plumbing ----------------------------------------

    def _journal(self, label: str, a: int = 0, b: int = 0) -> None:
        if self.recorder is not None:
            from ..replay.journal import EV_GROUP
            self.recorder.on_event(EV_GROUP, label=label, a=a, b=b)

    def _fault(self, phase: str) -> None:
        """One coordinator-level fault consultation. The forced phase
        from the spec fires exactly once (deterministically — it is a
        header field, not a draw); a probabilistic injector draws on
        top of it through the journal-observed RNG."""
        self._phase = phase
        if self.fault_phase == phase and not self._forced_fired:
            self._forced_fired = True
            self._journal(f"group:forced@{phase}",
                          a=len(self.group.members))
            raise InjectedFault(
                f"forced coordinator fault at group {phase}",
                kind="crash", site=f"group:{phase}")
        if self.injector is not None:
            self.injector.node_fault(f"group:{phase}",
                                     self.group.machine.name)

    # -- the protocol --------------------------------------------------------

    def migrate(self, max_pause_steps: int = 20_000_000) -> GroupResult:
        """Run the full protocol; returns the committed
        :class:`GroupResult` or raises
        :class:`~repro.errors.GroupRollback` after a clean abort."""
        group = self.group
        members = group.members

        # Phase 1: quiesce — all members parked before any dump.
        self._phase = "quiesce"
        parked = 0
        for member in members:
            member.runtime = DapperRuntime(group.machine, member.process)
            parked += len(
                member.runtime.pause_at_equivalence_points(max_pause_steps))
        self._journal("group:quiesced", a=len(members), b=parked)

        try:
            return self._transact(members)
        except (InjectedFault, MigrationRollback, QuarantinedImage,
                StoreError) as exc:
            self._abort(exc)

    def _transact(self, members) -> GroupResult:
        group = self.group
        broker = group.broker

        # Phase 2: drain — bounded; the rest is journaled at dump time.
        self._fault("drain")
        drained, leftover = broker.begin_drain(group.spec.drain)
        self._journal("group:drained", a=len(drained), b=len(leftover))

        # Phase 3: prepare — held-open per-member migrations; every
        # prepared image set lands in the store. The forced 'prepare'
        # fault fires before the *last* member and the forced 'restore'
        # fault after the *first*, so both abort paths run with some
        # members already holding restored destination copies.
        last = len(members) - 1
        self._txn = self.store.group_begin(
            label=f"{group.spec.workers}x-nginx+redis")
        for i, member in enumerate(members):
            if i == last:
                self._fault("prepare")
            self._phase = "prepare"
            member.pipeline = MigrationPipeline(
                group.machine, self.placements[i],
                group.program_for(member),
                injector=self.injector, retry_budget=self.retry_budget,
                dump_extra=lambda p, b=broker:
                    {"connections": b.journaled_for(p.pid)})
            try:
                member.result = member.pipeline.migrate(member.process,
                                                        hold_source=True)
            except MigrationRollback as exc:
                # The member's own transaction already resumed *its*
                # source; map its failing stage onto the group phase.
                self._phase = ("prepare" if exc.stage in _PREPARE_STAGES
                               else "restore")
                raise
            put = self.store.put(member.result.images)
            self._puts.append(put)
            self.store.group_member(self._txn, put.checkpoint_id)
            if i == 0:
                self._fault("restore")
        self._journal("group:prepared", a=len(members),
                      b=sum(m.result.images.total_bytes()
                            for m in members))

        # Phase 4: commit — one atomic chunk registers the group, then
        # the drain and every held source settle. Nothing after
        # put_group can fault, so an aborted run never leaves a group
        # manifest behind.
        self._fault("commit")
        gid = self.store.put_group(
            [p.checkpoint_id for p in self._puts],
            label=f"{group.spec.workers}x-nginx+redis", txn=self._txn)
        self._txn = None
        broker.commit_drain()
        for member in members:
            member.pipeline.commit(member.result)
        self._journal(f"group:committed:{gid[:12]}", a=len(members),
                      b=len(drained))
        return GroupResult(
            gid=gid, member_ids=[p.checkpoint_id for p in self._puts],
            processes=[m.result.process for m in members],
            drained=len(drained), leftover=len(leftover))

    # -- the abort path -------------------------------------------------------

    def _abort(self, exc: BaseException) -> None:
        """Undo the half-coordinated group and resume every member.

        Destination copies are killed and their image trees swept
        (:meth:`MigrationPipeline.abort`), prepared checkpoints this run
        registered are deleted and their orphan chunks GC'd, the drain
        rolls back, and every member resumes at the cut. Raises
        :class:`~repro.errors.GroupRollback` carrying the phase."""
        phase = self._phase
        group = self.group
        held = 0
        for member in group.members:
            if member.result is not None and member.result.held:
                held += 1
                member.pipeline.abort(member.result)
            elif member.runtime is not None:
                # Never migrated, or its own pipeline already rolled it
                # back (resume is idempotent on a running process).
                member.runtime.resume()
            member.result = None
        for put in reversed(self._puts):
            if put.created and put.checkpoint_id in self.store:
                self.store.delete(put.checkpoint_id)
        self._puts = []
        self.store.group_abort(self._txn)
        self._txn = None
        self.store.gc()
        group.broker.abort_drain()
        self._journal(f"group:aborted@{phase}", a=len(group.members),
                      b=held)
        if self.injector is not None:
            self.injector.note("rollback", f"group:{phase}",
                               f"{held} member(s) were already restored",
                               a=held)
        raise GroupRollback(
            f"group checkpoint aborted at {phase!r}; every member "
            f"resumed at the cut ({exc})",
            phase=phase, prepared=held) from exc
