"""Exception hierarchy for the Dapper reproduction.

Every layer of the stack raises a subclass of :class:`ReproError` so that
callers can catch failures from one subsystem without accidentally
swallowing failures from another.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class WireError(ReproError):
    """Malformed data in the protobuf-like wire format."""


class WireTruncated(WireError):
    """The byte stream ended mid-record (a killed writer, a partial
    copy). Distinct from in-place corruption: everything before the cut
    decoded cleanly, so a tolerant reader may keep the prefix."""


class IsaError(ReproError):
    """Problems assembling, encoding, or decoding machine instructions."""


class EncodingError(IsaError):
    """An instruction cannot be encoded (bad operand, out-of-range field)."""


class DecodingError(IsaError):
    """A byte sequence does not decode to a valid instruction."""


class MemoryError_(ReproError):
    """Invalid access to a simulated address space."""


class SegmentationFault(MemoryError_):
    """Access to an unmapped or protection-violating address."""

    def __init__(self, address: int, reason: str = "unmapped"):
        super().__init__(f"segmentation fault at {address:#x} ({reason})")
        self.address = address
        self.reason = reason


class CompileError(ReproError):
    """DapperC compilation failure (lex, parse, type, or codegen)."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        loc = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{loc}")
        self.line = line
        self.column = column


class LinkError(ReproError):
    """Cross-ISA layout/linking failure (e.g. unresolvable symbol)."""


class LoaderError(ReproError):
    """A DELF binary cannot be loaded into an address space."""


class KernelError(ReproError):
    """Simulated-kernel level failure (bad syscall, dead thread, ...)."""


class PtraceError(KernelError):
    """Invalid ptrace request (wrong state, unknown thread, ...)."""


class CheckpointError(ReproError):
    """CRIU dump failed (process not stopped, inconsistent state, ...)."""


class RestoreError(ReproError):
    """CRIU restore failed (bad images, wrong architecture, ...)."""


class ImageFormatError(ReproError):
    """A CRIU image file is malformed or has the wrong magic."""


class RewriteError(ReproError):
    """The process rewriter could not transform an image set."""


class NotAtEquivalencePoint(RewriteError):
    """A thread was not parked at an equivalence point when rewriting."""


class PolicyError(RewriteError):
    """A transformation policy was misconfigured or inapplicable."""


class LazyPageError(RestoreError):
    """Post-copy page service failure (page lost, double-serve, ...)."""


class PageServerDead(LazyPageError):
    """The page server holding left-behind pages is down."""


class MigrationError(ReproError):
    """End-to-end migration pipeline failure."""


class IntegrityError(MigrationError):
    """Post-transfer verification found the arrived state differs from
    what the source sent (corrupted scp, bad chunk, bad materialize)."""


class MigrationRollback(MigrationError):
    """A transactional migration exhausted its retry budget and rolled
    back: the source process has been resumed untouched and any partial
    destination state was garbage-collected.

    Carries the failing ``stage``, the number of ``attempts`` made in
    that stage, and the transaction record ``txn`` (attempt counts per
    stage, backoff seconds, fired-fault count)."""

    def __init__(self, message: str, *, stage: str = "?", attempts: int = 0,
                 txn: dict = None):
        super().__init__(message)
        self.stage = stage
        self.attempts = attempts
        self.txn = dict(txn or {})


class VerifyError(ReproError):
    """A state image failed pre-restore verification.

    Carries the name of the first failing pass (``structural`` /
    ``semantic`` / ``repair``) and the machine-readable findings list
    the verifier produced."""

    def __init__(self, message: str, *, pass_name: str = "?",
                 findings=None):
        super().__init__(message)
        self.pass_name = pass_name
        self.findings = list(findings or [])


class QuarantinedImage(VerifyError):
    """An unrepairable image was moved to quarantine instead of being
    restored. ``quarantine_id`` locates it; ``diagnosis`` is the
    machine-readable verdict stored alongside it."""

    def __init__(self, message: str, *, quarantine_id: str = "",
                 diagnosis=None, pass_name: str = "?", findings=None):
        super().__init__(message, pass_name=pass_name, findings=findings)
        self.quarantine_id = quarantine_id
        self.diagnosis = dict(diagnosis or {})


class GroupError(ReproError):
    """Coordinated group checkpoint/restore failure (bad group spec,
    inconsistent membership, partial restore)."""


class GroupRollback(GroupError):
    """A coordinated group checkpoint/migration aborted and rolled back:
    prepared member images were swept, orphan chunks GC'd, and every
    member resumed at the cut.

    Carries the protocol ``phase`` that failed, the number of members
    already ``prepared`` when it did, and the coordinator's transaction
    record ``txn``."""

    def __init__(self, message: str, *, phase: str = "?",
                 prepared: int = 0, txn: dict = None):
        super().__init__(message)
        self.phase = phase
        self.prepared = prepared
        self.txn = dict(txn or {})


class ClusterError(ReproError):
    """Cluster/discrete-event simulation misconfiguration."""


class FleetError(ClusterError):
    """Fleet-scale orchestration misconfiguration or invariant breach."""


class SecurityHarnessError(ReproError):
    """Attack harness misconfiguration (not an attack failure)."""


class JournalError(ReproError):
    """A flight-recorder journal is malformed or cannot be replayed."""


class JournalTruncated(JournalError):
    """A journal's tail was cut mid-record (e.g. the recorder was
    killed). The prefix decoded cleanly and is carried as ``journal``
    so crash-run journals stay openable; ``last_instr`` is the
    instruction count of the last complete scheduling slice and
    ``last_digest`` the index of the last complete state digest (None
    if the cut landed before the first one)."""

    def __init__(self, message: str, *, journal=None, last_instr: int = 0,
                 last_digest=None):
        super().__init__(message)
        self.journal = journal
        self.last_instr = last_instr
        self.last_digest = last_digest


class DebugError(ReproError):
    """Time-travel debugger failure (bad request, unsupported journal,
    or a re-execution that does not reproduce the recording)."""


class StoreError(ReproError):
    """Checkpoint-store failure (missing chunk, corruption, bad ref)."""


class StoreCrash(ReproError):
    """A simulated process crash at a store durability site.

    Raised by the chaos engine's :class:`~repro.chaos.CrashPointInjector`
    at an exact backend write / fsync / rename / WAL-append boundary.
    Deliberately *not* an :class:`InjectedFault`: a crash is sudden
    death, so no transactional abort path may catch and "handle" it —
    it unwinds to the harness, which discards the in-memory store and
    reopens from the surviving simulated disk via
    :meth:`~repro.store.CheckpointStore.recover`. ``site`` names the
    durability site that was about to execute."""

    def __init__(self, message: str, *, site: str = "?", index: int = -1):
        super().__init__(message)
        self.site = site
        self.index = index


class InjectedFault(ReproError):
    """Base class for faults raised by the chaos injector.

    ``kind`` names the fault from the taxonomy (drop, partition,
    crash, ...); ``site`` names the injection point it fired at
    (scp, ship, dump, restore, evict, ...)."""

    def __init__(self, message: str, *, kind: str = "?", site: str = "?"):
        super().__init__(message)
        self.kind = kind
        self.site = site


class LinkDropFault(InjectedFault):
    """An injected link failure: the transfer died before completing."""


class NodeCrashFault(InjectedFault):
    """An injected node crash during a dump or restore stage."""
