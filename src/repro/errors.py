"""Exception hierarchy for the Dapper reproduction.

Every layer of the stack raises a subclass of :class:`ReproError` so that
callers can catch failures from one subsystem without accidentally
swallowing failures from another.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class WireError(ReproError):
    """Malformed data in the protobuf-like wire format."""


class IsaError(ReproError):
    """Problems assembling, encoding, or decoding machine instructions."""


class EncodingError(IsaError):
    """An instruction cannot be encoded (bad operand, out-of-range field)."""


class DecodingError(IsaError):
    """A byte sequence does not decode to a valid instruction."""


class MemoryError_(ReproError):
    """Invalid access to a simulated address space."""


class SegmentationFault(MemoryError_):
    """Access to an unmapped or protection-violating address."""

    def __init__(self, address: int, reason: str = "unmapped"):
        super().__init__(f"segmentation fault at {address:#x} ({reason})")
        self.address = address
        self.reason = reason


class CompileError(ReproError):
    """DapperC compilation failure (lex, parse, type, or codegen)."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        loc = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{loc}")
        self.line = line
        self.column = column


class LinkError(ReproError):
    """Cross-ISA layout/linking failure (e.g. unresolvable symbol)."""


class LoaderError(ReproError):
    """A DELF binary cannot be loaded into an address space."""


class KernelError(ReproError):
    """Simulated-kernel level failure (bad syscall, dead thread, ...)."""


class PtraceError(KernelError):
    """Invalid ptrace request (wrong state, unknown thread, ...)."""


class CheckpointError(ReproError):
    """CRIU dump failed (process not stopped, inconsistent state, ...)."""


class RestoreError(ReproError):
    """CRIU restore failed (bad images, wrong architecture, ...)."""


class ImageFormatError(ReproError):
    """A CRIU image file is malformed or has the wrong magic."""


class RewriteError(ReproError):
    """The process rewriter could not transform an image set."""


class NotAtEquivalencePoint(RewriteError):
    """A thread was not parked at an equivalence point when rewriting."""


class PolicyError(RewriteError):
    """A transformation policy was misconfigured or inapplicable."""


class MigrationError(ReproError):
    """End-to-end migration pipeline failure."""


class ClusterError(ReproError):
    """Cluster/discrete-event simulation misconfiguration."""


class SecurityHarnessError(ReproError):
    """Attack harness misconfiguration (not an attack failure)."""


class JournalError(ReproError):
    """A flight-recorder journal is malformed or cannot be replayed."""


class StoreError(ReproError):
    """Checkpoint-store failure (missing chunk, corruption, bad ref)."""
