"""Memory substrate: 4 KiB pages, VMAs, and per-process address spaces."""

from .paging import PAGE_SIZE, PAGE_MASK, page_align_down, page_align_up
from .vma import Prot, Vma
from .address_space import AddressSpace

__all__ = ["PAGE_SIZE", "PAGE_MASK", "page_align_down", "page_align_up",
           "Prot", "Vma", "AddressSpace"]
