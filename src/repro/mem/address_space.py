"""Per-process virtual address space.

Pages are allocated lazily: a mapped-but-untouched page reads as zeros
and owns no backing store until first written. This matters for CRIU
fidelity — ``pagemap.img`` lists only *populated* regions, so the dump
walks exactly the pages that have backing store.

VMA lookup is O(log n): the VMA list is kept sorted and searched by
bisection, with a one-entry last-hit cache in front of it (the
interpreter's loads/stores overwhelmingly hit the same stack or heap
VMA repeatedly). ``read_u64``/``write_u64`` additionally take a
non-allocating fast path that indexes straight into the page store
whenever the access does not straddle a page boundary — these two
word-sized entry points are what the superblock execution engine
(:mod:`repro.vm.blocks`) drives for every guest load and store.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import SegmentationFault, MemoryError_
from .paging import (LAST_U64_SLOT, PAGE_MASK, PAGE_SIZE, page_align_down,
                     pages_spanning)
from .vma import Prot, Vma

_U64 = struct.Struct("<Q")
_U64_MASK = 0xFFFFFFFFFFFFFFFF


class AddressSpace:
    """A sparse 64-bit address space made of VMAs and lazily-backed pages."""

    def __init__(self):
        self.vmas: List[Vma] = []
        self._pages: Dict[int, bytearray] = {}
        self._starts: List[int] = []      # sorted VMA starts, parallel to vmas
        self._hot_vma: Optional[Vma] = None
        #: post-copy restore support: called with a page-aligned address
        #: on first touch of a page with no backing store; returning bytes
        #: installs them (a remote page-server fetch), returning None
        #: means the page really is zero. See repro.criu.lazy.
        self.missing_page_hook: Optional[Callable[[int], Optional[bytes]]] = None
        #: called after every privileged code write (``write_code``); the
        #: owning Process hooks this to bump its code version so stale
        #: decoded instructions and superblocks are discarded.
        self.code_write_hook: Optional[Callable[[], None]] = None
        #: incremental-checkpoint support: page-aligned addresses written
        #: since tracking started, or None when tracking is off. Like the
        #: recorder hooks, the disabled path costs one ``is None`` test
        #: on the store slow paths and nothing on superblock site-cache
        #: hits (the owning Process resets its block cache when tracking
        #: starts, so every site's first write re-enters the slow path
        #: and marks its page). See repro.store.
        self._dirty: Optional[set] = None

    # -- dirty-page tracking ------------------------------------------------

    def start_dirty_tracking(self) -> None:
        """Begin recording written page addresses (empty set)."""
        self._dirty = set()

    def stop_dirty_tracking(self) -> None:
        self._dirty = None

    @property
    def dirty_tracking(self) -> bool:
        return self._dirty is not None

    def harvest_dirty(self) -> set:
        """Return the dirty set and start a fresh tracking epoch."""
        dirty = self._dirty if self._dirty is not None else set()
        self._dirty = set()
        return dirty

    # -- mapping -----------------------------------------------------------

    def _reindex(self) -> None:
        self.vmas.sort(key=lambda v: v.start)
        self._starts = [v.start for v in self.vmas]
        self._hot_vma = None

    def map(self, vma: Vma) -> Vma:
        """Insert a VMA; overlapping an existing mapping is an error."""
        for existing in self.vmas:
            if existing.overlaps(vma):
                raise MemoryError_(
                    f"mapping {vma!r} overlaps existing {existing!r}")
        self.vmas.append(vma)
        self._reindex()
        return vma

    def unmap(self, start: int, end: int) -> None:
        """Remove VMAs fully inside ``[start, end)`` and drop their pages.

        A VMA that only *partially* overlaps the range is an error: the
        simulated kernel has no VMA-splitting, so a partial unmap would
        silently leave the whole mapping in place and let bugs hide.
        """
        kept = []
        for vma in self.vmas:
            if start <= vma.start and vma.end <= end:
                for base in range(vma.start, vma.end, PAGE_SIZE):
                    self._pages.pop(base, None)
            elif vma.start < end and start < vma.end:
                raise MemoryError_(
                    f"unmap [{start:#x}, {end:#x}) partially overlaps "
                    f"{vma!r}; whole-VMA unmaps only")
            else:
                kept.append(vma)
        self.vmas = kept
        self._reindex()

    def find_vma(self, addr: int) -> Optional[Vma]:
        vma = self._hot_vma
        if vma is not None and vma.start <= addr < vma.end:
            return vma
        index = bisect_right(self._starts, addr) - 1
        if index >= 0:
            vma = self.vmas[index]
            if addr < vma.end:
                self._hot_vma = vma
                return vma
        return None

    def vma_by_name(self, name: str) -> Optional[Vma]:
        for vma in self.vmas:
            if vma.name == name:
                return vma
        return None

    # -- page-level access --------------------------------------------------

    def page(self, base: int, create: bool = False) -> Optional[bytearray]:
        """Backing store for the page at ``base`` (page-aligned)."""
        store = self._pages.get(base)
        if store is None and self.missing_page_hook is not None:
            fetched = self.missing_page_hook(base)
            if fetched is not None:
                store = bytearray(fetched)
                self._pages[base] = store
                return store
        if store is None and create:
            store = bytearray(PAGE_SIZE)
            self._pages[base] = store
        return store

    def populated_pages(self) -> Iterator[Tuple[int, bytearray]]:
        """All pages that own backing store, in address order."""
        for base in sorted(self._pages):
            yield base, self._pages[base]

    def drop_page(self, base: int) -> None:
        self._pages.pop(base, None)

    def install_page(self, base: int, data: bytes) -> None:
        """Install raw page contents (restore path)."""
        if len(data) != PAGE_SIZE:
            raise MemoryError_(f"page data must be {PAGE_SIZE} bytes")
        self._pages[base] = bytearray(data)
        if self._dirty is not None:
            self._dirty.add(base)

    # -- byte-level access ----------------------------------------------------

    def _check(self, addr: int, length: int, want: int) -> None:
        # An access must fall entirely within one VMA with the right bits.
        vma = self.find_vma(addr)
        if vma is None:
            raise SegmentationFault(addr)
        if addr + length > vma.end:
            raise SegmentationFault(addr + length - 1, "straddles mapping")
        if vma.prot & want != want:
            raise SegmentationFault(
                addr, f"prot {Prot.describe(vma.prot)} lacks "
                      f"{Prot.describe(want)}")

    def _check_word(self, addr: int, want_write: bool) -> None:
        """The u64 fast-path access check (same faults as ``_check``)."""
        vma = self.find_vma(addr)
        if vma is None:
            raise SegmentationFault(addr)
        if addr + 8 > vma.end:
            raise SegmentationFault(addr + 7, "straddles mapping")
        if not (vma.writable if want_write else vma.readable):
            want = Prot.WRITE if want_write else Prot.READ
            raise SegmentationFault(
                addr, f"prot {Prot.describe(vma.prot)} lacks "
                      f"{Prot.describe(want)}")

    def read(self, addr: int, length: int, check: bool = True) -> bytes:
        if check:
            self._check(addr, length, Prot.READ)
        out = bytearray()
        remaining = length
        cursor = addr
        while remaining:
            base = page_align_down(cursor)
            offset = cursor - base
            chunk = min(PAGE_SIZE - offset, remaining)
            store = (self._pages.get(base) if self.missing_page_hook is None
                     else self.page(base))
            if store is None:
                out += b"\x00" * chunk
            else:
                out += store[offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes, check: bool = True) -> None:
        if check:
            self._check(addr, len(data), Prot.WRITE)
        cursor = addr
        view = memoryview(data)
        while view:
            base = page_align_down(cursor)
            offset = cursor - base
            chunk = min(PAGE_SIZE - offset, len(view))
            store = self.page(base, create=True)
            store[offset:offset + chunk] = view[:chunk]
            if self._dirty is not None:
                self._dirty.add(base)
            cursor += chunk
            view = view[chunk:]

    def write_code(self, addr: int, data: bytes) -> None:
        """Privileged write ignoring protections (loader / rewriter use)."""
        self.write(addr, data, check=False)
        if self.code_write_hook is not None:
            self.code_write_hook()

    # -- word helpers ----------------------------------------------------------

    def read_u64(self, addr: int) -> int:
        offset = addr & PAGE_MASK
        if offset <= LAST_U64_SLOT:
            vma = self._hot_vma
            if (vma is None or addr < vma.start or addr + 8 > vma.end
                    or not vma.readable):
                self._check_word(addr, want_write=False)
            store = self._pages.get(addr - offset)
            if store is None:
                if self.missing_page_hook is None:
                    return 0
                store = self.page(addr - offset)
                if store is None:
                    return 0
            return _U64.unpack_from(store, offset)[0]
        return _U64.unpack(self.read(addr, 8))[0]

    def read_i64(self, addr: int) -> int:
        value = self.read_u64(addr)
        return value - (1 << 64) if value >> 63 else value

    def write_u64(self, addr: int, value: int) -> None:
        offset = addr & PAGE_MASK
        if offset <= LAST_U64_SLOT:
            vma = self._hot_vma
            if (vma is None or addr < vma.start or addr + 8 > vma.end
                    or not vma.writable):
                self._check_word(addr, want_write=True)
            store = self._pages.get(addr - offset)
            if store is None:
                store = self.page(addr - offset, create=True)
            if self._dirty is not None:
                self._dirty.add(addr - offset)
            _U64.pack_into(store, offset, value & _U64_MASK)
            return
        self.write(addr, _U64.pack(value & _U64_MASK))

    def write_i64(self, addr: int, value: int) -> None:
        self.write_u64(addr, value)

    def read_cstr(self, addr: int, limit: int = 4096) -> str:
        """Read a NUL-terminated string, page-sized chunks at a time."""
        out = bytearray()
        cursor = addr
        remaining = limit
        while remaining > 0:
            vma = self.find_vma(cursor)
            if vma is None:
                raise SegmentationFault(cursor)
            chunk_len = min(PAGE_SIZE - (cursor & PAGE_MASK), remaining,
                            vma.end - cursor)
            chunk = self.read(cursor, chunk_len)
            nul = chunk.find(0)
            if nul >= 0:
                out += chunk[:nul]
                break
            out += chunk
            cursor += chunk_len
            remaining -= chunk_len
        return out.decode("utf-8", errors="replace")

    # -- instruction fetch ---------------------------------------------------

    def fetch(self, addr: int, length: int) -> bytes:
        """Read for execution: requires EXEC protection on the VMA."""
        self._check(addr, 1, Prot.EXEC)
        return self.read(addr, length, check=False)

    def populated_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    def clone(self) -> "AddressSpace":
        """Deep copy (used to snapshot for deterministic replay tests)."""
        new = AddressSpace()
        new.vmas = [Vma(v.start, v.end, v.prot, v.name, v.file_backed,
                        v.file_path, v.file_offset) for v in self.vmas]
        new._pages = {base: bytearray(data)
                      for base, data in self._pages.items()}
        new._reindex()
        return new
