"""Per-process virtual address space.

Pages are allocated lazily: a mapped-but-untouched page reads as zeros
and owns no backing store until first written. This matters for CRIU
fidelity — ``pagemap.img`` lists only *populated* regions, so the dump
walks exactly the pages that have backing store.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import SegmentationFault, MemoryError_
from .paging import PAGE_SIZE, page_align_down, pages_spanning
from .vma import Prot, Vma


class AddressSpace:
    """A sparse 64-bit address space made of VMAs and lazily-backed pages."""

    def __init__(self):
        self.vmas: List[Vma] = []
        self._pages: Dict[int, bytearray] = {}
        #: post-copy restore support: called with a page-aligned address
        #: on first touch of a page with no backing store; returning bytes
        #: installs them (a remote page-server fetch), returning None
        #: means the page really is zero. See repro.criu.lazy.
        self.missing_page_hook: Optional[Callable[[int], Optional[bytes]]] = None

    # -- mapping -----------------------------------------------------------

    def map(self, vma: Vma) -> Vma:
        """Insert a VMA; overlapping an existing mapping is an error."""
        for existing in self.vmas:
            if existing.overlaps(vma):
                raise MemoryError_(
                    f"mapping {vma!r} overlaps existing {existing!r}")
        self.vmas.append(vma)
        self.vmas.sort(key=lambda v: v.start)
        return vma

    def unmap(self, start: int, end: int) -> None:
        """Remove VMAs fully inside ``[start, end)`` and drop their pages."""
        kept = []
        for vma in self.vmas:
            if start <= vma.start and vma.end <= end:
                for base in range(vma.start, vma.end, PAGE_SIZE):
                    self._pages.pop(base, None)
            else:
                kept.append(vma)
        self.vmas = kept

    def find_vma(self, addr: int) -> Optional[Vma]:
        for vma in self.vmas:
            if vma.contains(addr):
                return vma
        return None

    def vma_by_name(self, name: str) -> Optional[Vma]:
        for vma in self.vmas:
            if vma.name == name:
                return vma
        return None

    # -- page-level access --------------------------------------------------

    def page(self, base: int, create: bool = False) -> Optional[bytearray]:
        """Backing store for the page at ``base`` (page-aligned)."""
        store = self._pages.get(base)
        if store is None and self.missing_page_hook is not None:
            fetched = self.missing_page_hook(base)
            if fetched is not None:
                store = bytearray(fetched)
                self._pages[base] = store
                return store
        if store is None and create:
            store = bytearray(PAGE_SIZE)
            self._pages[base] = store
        return store

    def populated_pages(self) -> Iterator[Tuple[int, bytearray]]:
        """All pages that own backing store, in address order."""
        for base in sorted(self._pages):
            yield base, self._pages[base]

    def drop_page(self, base: int) -> None:
        self._pages.pop(base, None)

    def install_page(self, base: int, data: bytes) -> None:
        """Install raw page contents (restore path)."""
        if len(data) != PAGE_SIZE:
            raise MemoryError_(f"page data must be {PAGE_SIZE} bytes")
        self._pages[base] = bytearray(data)

    # -- byte-level access ----------------------------------------------------

    def _check(self, addr: int, length: int, want: int) -> None:
        # An access must fall entirely within one VMA with the right bits.
        vma = self.find_vma(addr)
        if vma is None:
            raise SegmentationFault(addr)
        if addr + length > vma.end:
            raise SegmentationFault(addr + length - 1, "straddles mapping")
        if vma.prot & want != want:
            raise SegmentationFault(
                addr, f"prot {Prot.describe(vma.prot)} lacks "
                      f"{Prot.describe(want)}")

    def read(self, addr: int, length: int, check: bool = True) -> bytes:
        if check:
            self._check(addr, length, Prot.READ)
        out = bytearray()
        remaining = length
        cursor = addr
        while remaining:
            base = page_align_down(cursor)
            offset = cursor - base
            chunk = min(PAGE_SIZE - offset, remaining)
            store = (self._pages.get(base) if self.missing_page_hook is None
                     else self.page(base))
            if store is None:
                out += b"\x00" * chunk
            else:
                out += store[offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes, check: bool = True) -> None:
        if check:
            self._check(addr, len(data), Prot.WRITE)
        cursor = addr
        view = memoryview(data)
        while view:
            base = page_align_down(cursor)
            offset = cursor - base
            chunk = min(PAGE_SIZE - offset, len(view))
            store = self.page(base, create=True)
            store[offset:offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    def write_code(self, addr: int, data: bytes) -> None:
        """Privileged write ignoring protections (loader / rewriter use)."""
        self.write(addr, data, check=False)

    # -- word helpers ----------------------------------------------------------

    def read_u64(self, addr: int) -> int:
        return struct.unpack("<Q", self.read(addr, 8))[0]

    def read_i64(self, addr: int) -> int:
        return struct.unpack("<q", self.read(addr, 8))[0]

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF))

    def write_i64(self, addr: int, value: int) -> None:
        self.write_u64(addr, value)

    def read_cstr(self, addr: int, limit: int = 4096) -> str:
        out = bytearray()
        for i in range(limit):
            byte = self.read(addr + i, 1)[0]
            if byte == 0:
                break
            out.append(byte)
        return out.decode("utf-8", errors="replace")

    # -- instruction fetch ---------------------------------------------------

    def fetch(self, addr: int, length: int) -> bytes:
        """Read for execution: requires EXEC protection on the VMA."""
        self._check(addr, 1, Prot.EXEC)
        return self.read(addr, length, check=False)

    def populated_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    def clone(self) -> "AddressSpace":
        """Deep copy (used to snapshot for deterministic replay tests)."""
        new = AddressSpace()
        new.vmas = [Vma(v.start, v.end, v.prot, v.name, v.file_backed,
                        v.file_path, v.file_offset) for v in self.vmas]
        new._pages = {base: bytearray(data)
                      for base, data in self._pages.items()}
        return new
