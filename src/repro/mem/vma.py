"""Virtual memory areas, mirroring the entries CRIU stores in ``mm.img``."""

from __future__ import annotations

from ..errors import MemoryError_
from .paging import PAGE_MASK


class Prot:
    """Protection flag bits (a subset of mmap's PROT_*)."""

    READ = 1
    WRITE = 2
    EXEC = 4
    RW = READ | WRITE
    RX = READ | EXEC

    @staticmethod
    def describe(prot: int) -> str:
        return "".join(flag if prot & bit else "-"
                       for flag, bit in (("r", Prot.READ), ("w", Prot.WRITE),
                                         ("x", Prot.EXEC)))


class Vma:
    """One contiguous mapping: ``[start, end)`` with protection and a name.

    ``file_backed`` marks mappings whose clean pages CRIU does *not* dump
    (code pages reload from the binary at restore; paper §III-C).
    """

    __slots__ = ("start", "end", "_prot", "name", "file_backed", "file_path",
                 "file_offset", "readable", "writable", "executable")

    def __init__(self, start: int, end: int, prot: int, name: str = "",
                 file_backed: bool = False, file_path: str = "",
                 file_offset: int = 0):
        if start & PAGE_MASK or end & PAGE_MASK:
            raise MemoryError_(f"VMA [{start:#x}, {end:#x}) not page-aligned")
        if end <= start:
            raise MemoryError_(f"empty VMA [{start:#x}, {end:#x})")
        self.start = start
        self.end = end
        self.prot = prot
        self.name = name
        self.file_backed = file_backed
        self.file_path = file_path
        self.file_offset = file_offset

    @property
    def prot(self) -> int:
        return self._prot

    @prot.setter
    def prot(self, prot: int) -> None:
        # The per-bit flags are precomputed so the memory fast paths test
        # one bool instead of masking on every access.
        self._prot = prot
        self.readable = bool(prot & Prot.READ)
        self.writable = bool(prot & Prot.WRITE)
        self.executable = bool(prot & Prot.EXEC)

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def overlaps(self, other: "Vma") -> bool:
        return self.start < other.end and other.start < self.end

    def to_dict(self) -> dict:
        return {
            "start": self.start, "end": self.end, "prot": self.prot,
            "name": self.name, "file_backed": int(self.file_backed),
            "file_path": self.file_path, "file_offset": self.file_offset,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Vma":
        return cls(data["start"], data["end"], data["prot"],
                   data.get("name", ""), bool(data.get("file_backed", 0)),
                   data.get("file_path", ""), data.get("file_offset", 0))

    def __repr__(self) -> str:
        return (f"<Vma {self.start:#x}-{self.end:#x} "
                f"{Prot.describe(self.prot)} {self.name}>")
