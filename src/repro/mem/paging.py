"""Page-size constants and alignment helpers (4 KiB pages throughout)."""

from __future__ import annotations

PAGE_SIZE = 4096
PAGE_SHIFT = 12
PAGE_MASK = PAGE_SIZE - 1

#: Highest in-page offset at which an aligned-or-not 8-byte access still
#: fits entirely inside one page — the gate for the non-allocating u64
#: fast paths in :mod:`repro.mem.address_space`.
LAST_U64_SLOT = PAGE_SIZE - 8


def page_align_down(addr: int) -> int:
    """Round ``addr`` down to a page boundary."""
    return addr & ~PAGE_MASK


def page_align_up(addr: int) -> int:
    """Round ``addr`` up to a page boundary."""
    return (addr + PAGE_MASK) & ~PAGE_MASK


def page_number(addr: int) -> int:
    return addr >> PAGE_SHIFT


def pages_spanning(addr: int, length: int):
    """Yield page-aligned base addresses covering ``[addr, addr+length)``."""
    if length <= 0:
        return
    start = page_align_down(addr)
    end = page_align_up(addr + length)
    for base in range(start, end, PAGE_SIZE):
        yield base
