"""Protobuf-like wire format used by the CRIU-style image files.

Real CRIU encodes most of its image files with Google protocol buffers.
This module implements the subset of the protobuf wire format that the
reproduction needs, from scratch:

* base-128 varints (wire type 0),
* length-delimited fields (wire type 2) for bytes, strings, nested
  messages and packed repeated varints.

Messages are represented as plain dictionaries ``{field_number: value}``
on the low level, and the higher-level :class:`Message` helper maps field
numbers to names so that images can be decoded into human-readable JSON
(the CRIT ``decode`` operation) and re-encoded byte-identically (CRIT
``encode``).

Signed integers use zigzag encoding, mirroring protobuf's ``sint64``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple, Union

from .errors import WireError, WireTruncated

WIRE_VARINT = 0
WIRE_LEN = 2

Scalar = Union[int, bytes, str]


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a base-128 varint."""
    if value < 0:
        raise WireError(f"varint must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    Returns ``(value, new_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise WireTruncated("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise WireError("varint too long")


def zigzag_encode(value: int) -> int:
    """Map a signed integer onto an unsigned one (protobuf sint64)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def encode_signed_varint(value: int) -> bytes:
    return encode_varint(zigzag_encode(value))


def decode_signed_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    raw, pos = decode_varint(data, offset)
    return zigzag_decode(raw), pos


def _encode_key(field: int, wire_type: int) -> bytes:
    return encode_varint((field << 3) | wire_type)


def encode_field(field: int, value: Scalar) -> bytes:
    """Encode one field. ints → varint; bytes/str → length-delimited."""
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return _encode_key(field, WIRE_VARINT) + encode_signed_varint(value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return _encode_key(field, WIRE_LEN) + encode_varint(len(payload)) + payload
    if isinstance(value, (bytes, bytearray)):
        return _encode_key(field, WIRE_LEN) + encode_varint(len(value)) + bytes(value)
    raise WireError(f"cannot encode value of type {type(value).__name__}")


def iter_fields(data: bytes) -> Iterator[Tuple[int, int, Union[int, bytes]]]:
    """Yield ``(field_number, wire_type, raw_value)`` for each field.

    Varint fields yield the *zigzag-decoded* integer; length-delimited
    fields yield raw bytes.
    """
    pos = 0
    while pos < len(data):
        key, pos = decode_varint(data, pos)
        field = key >> 3
        wire_type = key & 0x7
        if wire_type == WIRE_VARINT:
            value, pos = decode_signed_varint(data, pos)
            yield field, wire_type, value
        elif wire_type == WIRE_LEN:
            length, pos = decode_varint(data, pos)
            if pos + length > len(data):
                raise WireTruncated("truncated length-delimited field")
            yield field, wire_type, data[pos:pos + length]
            pos += length
        else:
            raise WireError(f"unsupported wire type {wire_type}")


class FieldSpec:
    """Schema entry for one message field."""

    __slots__ = ("number", "name", "kind", "repeated", "message")

    def __init__(self, number: int, name: str, kind: str,
                 repeated: bool = False, message: "Schema" = None):
        if kind not in ("int", "bytes", "str", "message"):
            raise WireError(f"unknown field kind {kind!r}")
        if kind == "message" and message is None:
            raise WireError(f"field {name!r}: message kind needs a schema")
        self.number = number
        self.name = name
        self.kind = kind
        self.repeated = repeated
        self.message = message


class Schema:
    """A named collection of :class:`FieldSpec` — one protobuf message type."""

    def __init__(self, name: str, fields: List[FieldSpec]):
        self.name = name
        self.by_number: Dict[int, FieldSpec] = {}
        self.by_name: Dict[str, FieldSpec] = {}
        for spec in fields:
            if spec.number in self.by_number:
                raise WireError(f"{name}: duplicate field number {spec.number}")
            if spec.name in self.by_name:
                raise WireError(f"{name}: duplicate field name {spec.name}")
            self.by_number[spec.number] = spec
            self.by_name[spec.name] = spec

    # -- encoding ---------------------------------------------------------

    def encode(self, obj: dict) -> bytes:
        """Encode a dict keyed by field *names* into wire bytes."""
        out = bytearray()
        for name, value in obj.items():
            spec = self.by_name.get(name)
            if spec is None:
                raise WireError(f"{self.name}: unknown field {name!r}")
            values = value if spec.repeated else [value]
            for item in values:
                out += self._encode_one(spec, item)
        return bytes(out)

    def _encode_one(self, spec: FieldSpec, value) -> bytes:
        if spec.kind == "message":
            payload = spec.message.encode(value)
            return (_encode_key(spec.number, WIRE_LEN)
                    + encode_varint(len(payload)) + payload)
        if spec.kind == "bytes" and isinstance(value, str):
            # JSON round-trips bytes as latin-1 strings; accept both.
            value = value.encode("latin-1")
        return encode_field(spec.number, value)

    # -- decoding ---------------------------------------------------------

    def decode(self, data: bytes) -> dict:
        """Decode wire bytes into a dict keyed by field names."""
        obj: dict = {}
        for number, wire_type, raw in iter_fields(data):
            spec = self.by_number.get(number)
            if spec is None:
                raise WireError(f"{self.name}: unexpected field number {number}")
            value = self._decode_one(spec, wire_type, raw)
            if spec.repeated:
                obj.setdefault(spec.name, []).append(value)
            else:
                obj[spec.name] = value
        # Materialize empty lists for absent repeated fields so decoded
        # images always have a stable shape.
        for spec in self.by_number.values():
            if spec.repeated and spec.name not in obj:
                obj[spec.name] = []
        return obj

    def _decode_one(self, spec: FieldSpec, wire_type: int, raw):
        if spec.kind == "int":
            if wire_type != WIRE_VARINT:
                raise WireError(f"{self.name}.{spec.name}: expected varint")
            return raw
        if wire_type != WIRE_LEN:
            raise WireError(f"{self.name}.{spec.name}: expected length-delimited")
        if spec.kind == "bytes":
            return raw
        if spec.kind == "str":
            try:
                return raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireError(
                    f"{self.name}.{spec.name}: invalid utf-8") from exc
        return spec.message.decode(raw)


def field(number: int, name: str, kind: str, repeated: bool = False,
          message: Schema = None) -> FieldSpec:
    """Convenience constructor mirroring a .proto field line."""
    return FieldSpec(number, name, kind, repeated, message)
