"""Replay engine: scenarios reconstructed from journal headers.

A journal header is a complete, self-contained description of a run —
including the DapperC source text — so any journal can be re-executed
from scratch. Three scenario shapes are supported:

* ``run`` — spawn the program on one machine and run it to exit,
* ``migrate`` — run, pause at equivalence points after a warmup,
  cross-ISA migrate via the full pipeline, finish on the destination,
* ``rerandomize`` — run under the periodic stack re-randomizer, with
  every epoch-seed and frame-shuffle draw journaled via the RNG
  service.

The :class:`Replayer` re-executes a journal's scenario with optional
overrides (a different execution engine — digests must not change — a
different digest cadence, an injected fault) and optional stop points
(used by the divergence detector to reconstruct the machine state at
an arbitrary digest index).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional

from ..compiler import compile_source
from ..core.migration import (MigrationPipeline, exe_path_for,
                              install_program)
from ..core.rerandomize import PeriodicRerandomizer
from ..core.rng import RngService
from ..errors import JournalError, MigrationRollback
from ..isa import get_isa
from ..vm.kernel import Machine
from . import journal as jn
from .journal import Journal
from .recorder import BitFlip, FlightRecorder, ReplayStop

DEFAULT_MAX_STEPS = 50_000_000


@lru_cache(maxsize=32)
def _compile(source: str, name: str):
    return compile_source(source, name)


class ReplayResult:
    """Outcome of one (possibly partial) scenario execution."""

    def __init__(self, journal: Journal, recorder: FlightRecorder,
                 stopped: bool, exit_code: Optional[int]):
        self.journal = journal
        self.recorder = recorder
        self.stopped = stopped
        self.exit_code = exit_code
        #: byte-exact machine state at the stop point (None if the run
        #: completed without hitting a stop condition)
        self.snapshot = recorder.snapshot

    def __repr__(self) -> str:
        state = "stopped" if self.stopped else f"exit={self.exit_code}"
        return (f"<ReplayResult {state} slices={self.recorder.slices} "
                f"digests={self.recorder.digest_count}>")


#: Execution engines a journal may name. All three produce the same
#: digest stream for the same scenario — that cross-engine parity is
#: what lets a journal recorded under one tier be validated under
#: another.
ENGINES = ("interp", "blocks", "chains")


def _machine(header: Dict, arch: str, name: str = "node") -> Machine:
    engine = header.get("engine", "blocks")
    return Machine(get_isa(arch), name=name,
                   quantum=header.get("quantum", 64),
                   block_engine=engine != "interp",
                   chain_engine=engine == "chains")


def _execute_run(header: Dict, recorder: FlightRecorder) -> Optional[int]:
    program = _compile(header["source"], header["program"])
    arch = header["src_arch"]
    machine = _machine(header, arch)
    recorder.attach(machine)
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(program.name, arch))
    machine.run_process(process,
                        header.get("max_steps", DEFAULT_MAX_STEPS))
    return process.exit_code


def _execute_migrate(header: Dict, recorder: FlightRecorder
                     ) -> Optional[int]:
    program = _compile(header["source"], header["program"])
    src_arch, dst_arch = header["src_arch"], header["dst_arch"]
    src = _machine(header, src_arch, name="src")
    dst = _machine(header, dst_arch, name="dst")
    recorder.attach(src)
    recorder.attach(dst)
    # A "chaos" header field reconstructs the exact fault injector: the
    # spec round-trips the seed + per-kind probabilities, every fault
    # decision is an RNG-service draw the recorder journals, and fired
    # faults land as EV_FAULT events — so a faulted migration replays
    # bit-identically from its own journal.
    injector = None
    chaos = header.get("chaos") or ""
    if chaos:
        from ..chaos import FaultInjector, FaultPlan
        plan = FaultPlan.from_spec(chaos)
        injector = FaultInjector(
            plan, rng=RngService(plan.seed, observer=recorder.on_rng,
                                 name="chaos"),
            recorder=recorder)
    pipeline = MigrationPipeline(src, dst, program,
                                 use_store=bool(header.get("store", 0)),
                                 injector=injector,
                                 retry_budget=header.get("retries", 3) or 3)
    process = pipeline.start()
    src.step_all(header.get("warmup", 5000))
    if process.exited:
        raise JournalError("process exited before the migration point; "
                           "lower warmup")
    try:
        result = pipeline.migrate(process, lazy=bool(header.get("lazy", 0)))
    except MigrationRollback as exc:
        # Transaction aborted: the source resumed untouched — finish the
        # run there. The rollback is part of the journaled control flow.
        recorder.on_event(jn.EV_MIGRATE, pid=process.pid,
                          label=f"rolled-back@{exc.stage}", a=exc.attempts)
        src.run_process(process,
                        header.get("max_steps", DEFAULT_MAX_STEPS))
        return process.exit_code
    recorder.on_event(jn.EV_CHECKPOINT, pid=process.pid,
                      a=result.images.total_bytes())
    recorder.on_event(jn.EV_REWRITE, label="cross-isa",
                      a=result.stats.get("frames", 0))
    recorder.on_event(jn.EV_MIGRATE, label=f"{src_arch}->{dst_arch}",
                      pid=result.process.pid)
    dst.run_process(result.process,
                    header.get("max_steps", DEFAULT_MAX_STEPS))
    return result.process.exit_code


def _execute_rerandomize(header: Dict, recorder: FlightRecorder
                         ) -> Optional[int]:
    program = _compile(header["source"], header["program"])
    arch = header["src_arch"]
    machine = _machine(header, arch)
    recorder.attach(machine)
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(program.name, arch))
    rng = RngService(header.get("seed", 0), observer=recorder.on_rng,
                     name="rerandomize")
    rerand = PeriodicRerandomizer(machine, process, program.binary(arch),
                                  interval_steps=header.get("interval",
                                                            2000),
                                  rng=rng)
    for _ in range(1000):
        if not rerand.run_epoch():
            break
        epoch = rerand.epochs[-1]
        recorder.on_event(jn.EV_REWRITE, label="stack-shuffle",
                          a=epoch.seed, b=epoch.pairs)
    else:
        raise JournalError("process still running after 1000 epochs")
    return rerand.process.exit_code


def _execute_fleet(header: Dict, recorder: FlightRecorder
                   ) -> Optional[int]:
    """Run (or re-run) a fleet migration storm from its header.

    The ``fleet`` spec string and the optional ``chaos`` plan are the
    entire input: the storm is a pure function of the two, every chaos
    draw goes through a journal-observed RNG service, and the barrier
    schedule plus periodic fleet-state digests land in the journal —
    so a recorded thousand-node storm replays bit-identically, exactly
    like the single-process scenarios above.
    """
    # Imported lazily: the fleet package pulls in the apps registry,
    # which plain run/migrate replays never need.
    from ..fleet import FleetSpec, FleetStorm
    spec = FleetSpec.from_spec(header["fleet"])
    plan = None
    chaos = header.get("chaos") or ""
    if chaos:
        from ..chaos import FaultPlan
        plan = FaultPlan.from_spec(chaos)
    storm = FleetStorm(spec, plan, recorder=recorder,
                       digest_every=header.get("digest_every", 8))
    result = storm.run()
    return 0 if result.invariant_ok else 1


def _execute_group(header: Dict, recorder: FlightRecorder
                   ) -> Optional[int]:
    """Run (or re-run) a coordinated group checkpoint from its header.

    The ``group`` spec string (which embeds the forced fault phase, if
    any) and the optional ``chaos`` plan are the entire input; the
    coordinator journals each protocol phase as an ``EV_GROUP`` event
    with content-derived fields, every chaos decision draws through a
    journal-observed RNG service, and the attached machines emit
    periodic state digests — so a chaotic group checkpoint replays
    bit-identically from its own journal, commit and abort alike.
    """
    # Lazy import: the group package pulls in the apps registry, which
    # plain run/migrate replays never need.
    from ..errors import GroupRollback
    from ..group import GroupCoordinator, GroupSpec, ServiceGroup, \
        split_placements
    from ..store import CheckpointStore
    spec = GroupSpec.from_spec(header["group"])
    injector = None
    chaos = header.get("chaos") or ""
    if chaos:
        from ..chaos import FaultInjector, FaultPlan
        plan = FaultPlan.from_spec(chaos)
        injector = FaultInjector(
            plan, rng=RngService(plan.seed, observer=recorder.on_rng,
                                 name="chaos"),
            recorder=recorder)
    src = _machine(header, header["src_arch"], name="src")
    group = ServiceGroup(spec, recorder=recorder, machine=src)
    group.warmup()
    # The canonical split placement: workers cross to aarch64, the
    # backend stays on a same-ISA destination.
    dst_a = _machine(header, header.get("dst_arch", "aarch64"),
                     name="dst-a")
    dst_b = _machine(header, header["src_arch"], name="dst-b")
    recorder.attach(dst_a)
    recorder.attach(dst_b)
    placements = split_placements(group, dst_a, dst_b)
    coordinator = GroupCoordinator(
        group, placements, store=CheckpointStore(), injector=injector,
        recorder=recorder, fault_phase=spec.fault,
        retry_budget=header.get("retries", 3) or 3)
    try:
        result = coordinator.migrate()
    except GroupRollback:
        # Aborted: every member resumed at the cut — finish the run on
        # the source. The abort is part of the journaled control flow.
        codes = group.run_to_exit_on_source(
            header.get("max_steps", DEFAULT_MAX_STEPS))
        return codes[-1]
    code: Optional[int] = 0
    for machine, process in zip(placements, result.processes):
        code = machine.run_process(
            process, header.get("max_steps", DEFAULT_MAX_STEPS))
    return code


_SCENARIOS = {
    "run": _execute_run,
    "migrate": _execute_migrate,
    "rerandomize": _execute_rerandomize,
    "fleet": _execute_fleet,
    "group": _execute_group,
}


def execute(header: Dict, recorder: FlightRecorder) -> ReplayResult:
    """Run the scenario ``header`` describes under ``recorder``."""
    scenario = header.get("scenario", "run")
    runner = _SCENARIOS.get(scenario)
    if runner is None:
        raise JournalError(f"unknown scenario {scenario!r}; "
                           f"known: {sorted(_SCENARIOS)}")
    recorder.journal.header.update(header)
    try:
        exit_code = runner(header, recorder)
    except ReplayStop:
        return ReplayResult(recorder.journal, recorder, True, None)
    finally:
        recorder.detach_all()
    recorder.finalize(exit_code)
    return ReplayResult(recorder.journal, recorder, False, exit_code)


def _make_header(scenario: str, source: str, name: str, arch: str,
                 engine: str, quantum: int, digest_every: int,
                 max_steps: int, record_syscalls: bool,
                 fault: Optional[BitFlip], **extra) -> Dict:
    if engine not in ENGINES:
        raise JournalError(f"unknown engine {engine!r}")
    header = {
        "scenario": scenario, "program": name, "source": source,
        "src_arch": arch, "engine": engine, "quantum": quantum,
        "digest_every": digest_every, "max_steps": max_steps,
        "record_syscalls": int(record_syscalls),
    }
    header.update({k: v for k, v in extra.items() if v is not None})
    if fault is not None:
        header.update(fault.header_fields())
    return header


def _record(header: Dict, fault: Optional[BitFlip]) -> ReplayResult:
    recorder = FlightRecorder(
        digest_every=header.get("digest_every", 1),
        record_syscalls=bool(header.get("record_syscalls", 1)),
        fault=fault)
    return execute(header, recorder)


def record_run(source: str, name: str, arch: str = "x86_64",
               engine: str = "blocks", quantum: int = 64,
               digest_every: int = 1, max_steps: int = DEFAULT_MAX_STEPS,
               record_syscalls: bool = True,
               fault: Optional[BitFlip] = None) -> ReplayResult:
    """Record one plain run; returns the completed :class:`ReplayResult`."""
    header = _make_header("run", source, name, arch, engine, quantum,
                          digest_every, max_steps, record_syscalls, fault)
    return _record(header, fault)


def record_migrate(source: str, name: str, src_arch: str = "x86_64",
                   dst_arch: str = "aarch64", warmup: int = 5000,
                   lazy: bool = False, store: bool = False,
                   engine: str = "blocks",
                   quantum: int = 64, digest_every: int = 1,
                   max_steps: int = DEFAULT_MAX_STEPS,
                   record_syscalls: bool = True,
                   fault: Optional[BitFlip] = None,
                   chaos: str = "",
                   retries: Optional[int] = None) -> ReplayResult:
    """Record a run that live-migrates across ISAs mid-execution.

    ``store=True`` routes the transfer through the content-addressed
    checkpoint store (EV_STORE events land in the journal; they are
    content-derived, so record and replay stay bit-identical).
    ``chaos`` is a :meth:`~repro.chaos.FaultPlan.to_spec` string: it
    turns the migration into a fault-injected transaction whose spec
    (and ``retries`` budget) embed in the journal header, making the
    chaotic run replayable bit-for-bit."""
    header = _make_header("migrate", source, name, src_arch, engine,
                          quantum, digest_every, max_steps,
                          record_syscalls, fault, dst_arch=dst_arch,
                          warmup=warmup, lazy=int(lazy),
                          store=int(store) if store else None,
                          chaos=chaos or None, retries=retries)
    return _record(header, fault)


def record_rerandomize(source: str, name: str, arch: str = "x86_64",
                       interval: int = 2000, seed: int = 0,
                       engine: str = "blocks", quantum: int = 64,
                       digest_every: int = 1,
                       max_steps: int = DEFAULT_MAX_STEPS,
                       record_syscalls: bool = True,
                       fault: Optional[BitFlip] = None) -> ReplayResult:
    """Record a run under periodic stack re-randomization."""
    header = _make_header("rerandomize", source, name, arch, engine,
                          quantum, digest_every, max_steps,
                          record_syscalls, fault, interval=interval,
                          seed=seed)
    return _record(header, fault)


def fleet_header(fleet_spec: str, chaos: str = "",
                 digest_every: int = 8) -> Dict:
    """The self-contained journal header for one fleet storm.

    ``fleet_spec`` is a :meth:`~repro.fleet.FleetSpec.to_spec` string;
    ``chaos`` an optional :meth:`~repro.chaos.FaultPlan.to_spec`
    string. Both embed in the header, which therefore fully describes
    the storm — :class:`Replayer` re-runs it and must reproduce the
    same barrier schedule, RNG stream, and fleet-state digests
    byte-for-byte.
    """
    header: Dict = {
        "scenario": "fleet", "program": "fleet-storm", "source": "",
        "src_arch": "x86_64", "fleet": fleet_spec,
        "digest_every": digest_every, "record_syscalls": 0,
    }
    if chaos:
        header["chaos"] = chaos
    return header


def record_fleet(fleet_spec: str, chaos: str = "",
                 digest_every: int = 8) -> ReplayResult:
    """Record one fleet migration storm (see :func:`fleet_header`)."""
    recorder = FlightRecorder(digest_every=0, record_syscalls=False)
    return execute(fleet_header(fleet_spec, chaos, digest_every),
                   recorder)


def group_header(group_spec: str, chaos: str = "",
                 digest_every: int = 64) -> Dict:
    """The self-contained journal header for one coordinated group
    checkpoint.

    ``group_spec`` is a :meth:`~repro.group.GroupSpec.to_spec` string
    (including the forced fault phase, if any); ``chaos`` an optional
    :meth:`~repro.chaos.FaultPlan.to_spec` string. Both embed in the
    header, which therefore fully describes the run — :class:`Replayer`
    re-runs it and must reproduce the same ``EV_GROUP`` protocol
    events, RNG stream, fired faults, and machine digests
    byte-for-byte, whether the group committed or aborted.
    """
    header: Dict = {
        "scenario": "group", "program": "group-nginx+redis",
        "source": "", "src_arch": "x86_64", "dst_arch": "aarch64",
        "group": group_spec, "digest_every": digest_every,
        "record_syscalls": 0,
    }
    if chaos:
        header["chaos"] = chaos
    return header


def record_group(group_spec: str, chaos: str = "",
                 digest_every: int = 64) -> ReplayResult:
    """Record one coordinated group checkpoint (see
    :func:`group_header`)."""
    recorder = FlightRecorder(digest_every=digest_every,
                              record_syscalls=False)
    return execute(group_header(group_spec, chaos, digest_every),
                   recorder)


class Replayer:
    """Re-executes a journal's scenario, with optional overrides.

    ``engine`` switches the execution engine (``"interp"`` /
    ``"blocks"`` / ``"chains"``); a correct engine produces a
    bit-identical digest stream, which is exactly what the CI
    replay-smoke job asserts.
    ``fault`` injects a deterministic bit flip; by default the fault
    recorded in the journal's own header (if any) is re-injected, so a
    divergent run reproduces from its own journal.
    """

    def __init__(self, journal: Journal, engine: Optional[str] = None,
                 digest_every: Optional[int] = None,
                 fault: Optional[BitFlip] = "inherit"):
        self.header = dict(journal.header)
        if engine is not None:
            if engine not in ENGINES:
                raise JournalError(f"unknown engine {engine!r}")
            self.header["engine"] = engine
        if digest_every is not None:
            self.header["digest_every"] = digest_every
        if fault == "inherit":
            fault = BitFlip.from_header(self.header)
        elif fault is not None:
            self.header.update(fault.header_fields())
        self._fault_spec = fault

    def _fresh_fault(self) -> Optional[BitFlip]:
        # BitFlip carries `fired` state; every run needs its own copy.
        spec = self._fault_spec
        if spec is None:
            return None
        return BitFlip(spec.at_slice, spec.addr, spec.bit)

    def run(self, stop_at_digest: Optional[int] = None,
            stop_at_instr: Optional[int] = None,
            observer=None) -> ReplayResult:
        """Execute the scenario; ``observer`` is a
        :class:`~repro.replay.recorder.ReplayObserver` notified at every
        safe point (the pausable-session and snapshot hooks)."""
        recorder = FlightRecorder(
            digest_every=self.header.get("digest_every", 1),
            record_syscalls=bool(self.header.get("record_syscalls", 1)),
            fault=self._fresh_fault(),
            stop_at_digest=stop_at_digest,
            stop_at_instr=stop_at_instr,
            observer=observer)
        return execute(dict(self.header), recorder)
