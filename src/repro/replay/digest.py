"""Whole-machine state digests for the flight recorder.

A digest folds every piece of architecturally-visible state the
simulated kernel owns into 16 bytes: for each process (in deterministic
order) the kernel-visible fields (exit state, heap break, lock table,
instruction/cycle totals, accumulated stdout), every thread's registers
+ pc + flags + TLS pointer + status, the VMA layout, and a content hash
of every *populated, non-zero* page of the address space. Zero pages
are skipped so that a page lazily materialized as zeros digests the
same as an untouched one — vanilla and post-copy restores, and both
execution engines, therefore produce identical streams for identical
executions.

Digests are engine-independent by construction (the superblock engine
retires instruction-for-instruction identical state to the per-step
interpreter at every scheduling-slice boundary) and are compared
per-segment across a cross-ISA migration (the pre-migration segment of
record and replay runs on the source ISA, the post-migration segment on
the destination ISA, so like is always compared with like).
"""

from __future__ import annotations

import hashlib
import struct
from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from ..mem.paging import PAGE_SIZE

if TYPE_CHECKING:
    from ..vm.kernel import Machine, Process

DIGEST_SIZE = 16

_ZERO_PAGE = bytes(PAGE_SIZE)
_U64 = 0xFFFFFFFFFFFFFFFF
_STATUS_CODES = {"running": 0, "trapped": 1, "stopped": 2, "dead": 3}


def _fold_process(h, process: "Process", output_hash: bytes) -> None:
    pack = struct.pack
    h.update(pack("<QqqQQ", process.pid, process.heap_end,
                  -1 if process.exit_code is None else process.exit_code,
                  process.instr_total, process.cycle_total))
    h.update(b"X" if process.exited else b"r")
    h.update(process.isa.name.encode())
    h.update(output_hash)
    for addr in sorted(process.locks):
        h.update(pack("<QQ", addr & _U64, process.locks[addr] & _U64))
    for tid in sorted(process.threads):
        thread = process.threads[tid]
        h.update(pack("<QBQqQQ", thread.tid,
                      _STATUS_CODES[thread.status],
                      thread.pc & _U64, thread.flags, thread.tp & _U64,
                      thread.instr_count))
        regs = thread.regs
        h.update(pack(f"<{len(regs)}q", *regs))
    for vma in sorted(process.aspace.vmas, key=lambda v: v.start):
        h.update(pack("<QQB", vma.start, vma.end, int(vma.prot)))
        h.update(vma.name.encode())
    pages = process.aspace._pages
    for base in sorted(pages):
        store = pages[base]
        if store == _ZERO_PAGE:
            continue
        h.update(pack("<Q", base))
        h.update(hashlib.blake2b(store, digest_size=DIGEST_SIZE).digest())


def machine_digest(machines: Iterable["Machine"],
                   output_hashes: Dict[int, bytes]) -> bytes:
    """Digest the full state of ``machines`` (in the given order).

    ``output_hashes`` maps ``id(process)`` to an (incrementally
    maintained) hash of the process's accumulated stdout — the recorder
    owns those so digesting is O(state), not O(total output).
    """
    h = hashlib.blake2b(digest_size=DIGEST_SIZE)
    for machine in machines:
        h.update(machine.isa.name.encode())
        h.update(b"|")
        for pid in sorted(machine.processes):
            process = machine.processes[pid]
            _fold_process(h, process,
                          output_hashes.get(id(process), b""))
    return h.digest()


# -- full state snapshots (for byte-exact divergence diffs) -------------------


def capture_state(machines: Iterable["Machine"]) -> Dict:
    """Deep-copy the architecturally-visible state of ``machines``.

    The returned structure is what :func:`repro.replay.divergence.
    diff_states` consumes: per (machine-index, pid) — registers and pc
    per thread, and the populated non-zero pages as immutable bytes.
    """
    snapshot: Dict = {}
    for index, machine in enumerate(machines):
        for pid in sorted(machine.processes):
            process = machine.processes[pid]
            threads = {}
            for tid in sorted(process.threads):
                t = process.threads[tid]
                threads[tid] = {
                    "regs": list(t.regs), "pc": t.pc, "flags": t.flags,
                    "tp": t.tp, "status": t.status,
                    "instr_count": t.instr_count,
                }
            pages = {base: bytes(store)
                     for base, store in process.aspace._pages.items()
                     if store != _ZERO_PAGE}
            snapshot[(index, pid)] = {
                "isa": process.isa.name,
                "threads": threads,
                "pages": pages,
                "heap_end": process.heap_end,
                "exited": process.exited,
                "exit_code": process.exit_code,
                "output": process.stdout(),
                "instr_total": process.instr_total,
                "cycle_total": process.cycle_total,
            }
    return snapshot


def page_diff(a: bytes, b: bytes, base: int,
              limit: int = 32) -> List[Tuple[int, int, int]]:
    """Byte-level differences between two page images.

    Returns up to ``limit`` ``(address, byte_a, byte_b)`` tuples.
    """
    out: List[Tuple[int, int, int]] = []
    for offset, (ba, bb) in enumerate(zip(a, b)):
        if ba != bb:
            out.append((base + offset, ba, bb))
            if len(out) >= limit:
                break
    return out
