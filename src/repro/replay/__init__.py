"""Flight recorder: deterministic record/replay + divergence pinpointing.

Dapper's correctness claim is bit-equivalence of the rewritten process
at the next equivalence point — but when a migration or live update
produces a wrong result, the final output diff is the only evidence.
This package closes that observability gap the way user-space
record-and-replay systems (rr and friends) do: journal every source of
nondeterminism and every state-mutation event of a run into a compact
wire-format file, alongside periodic whole-machine state digests, so
any execution can be re-run deterministically — on either execution
engine (per-step ``vm/interp`` or superblock ``vm/blocks``) and, for
the post-migration segment of a cross-ISA run, on either ISA — and any
divergence can be binary-searched down to the exact scheduling quantum
and the exact register or memory byte.

* :mod:`repro.replay.journal` — the journal file format (built on
  :mod:`repro.wire`), event kinds, and the in-memory :class:`Journal`.
* :mod:`repro.replay.digest` — whole-machine state digests (registers
  + populated-page hashes + kernel-visible process state).
* :mod:`repro.replay.recorder` — :class:`FlightRecorder`, the hook
  object a :class:`~repro.vm.kernel.Machine` notifies per scheduling
  slice, syscall, trap, spawn and restore; also deterministic fault
  injection (:class:`BitFlip`) and mid-replay stop conditions.
* :mod:`repro.replay.engine` — scenarios (plain run, cross-ISA
  migration, periodic re-randomization) reconstructed from a journal
  header, and the :class:`Replayer` that re-executes them.
* :mod:`repro.replay.divergence` — digest-stream bisection and
  byte-exact state diffing between a journal and a replay.
* :mod:`repro.replay.resume` — :class:`ReplaySession`, a pausable,
  resumable re-execution that stops at instruction targets while
  keeping the journaled run bit-identical to a straight replay.
"""

from ..errors import JournalTruncated
from .journal import Journal, JournalError
from .recorder import BitFlip, FlightRecorder, ReplayObserver, ReplayStop
from .engine import Replayer, record_migrate, record_rerandomize, record_run
from .divergence import (DivergenceReport, bisect_digest_streams,
                         bisect_last_transition, diff_states,
                         pinpoint_by_reexecution, pinpoint_divergence)
from .resume import ReplaySession

__all__ = [
    "Journal", "JournalError", "JournalTruncated", "FlightRecorder",
    "BitFlip", "ReplayObserver", "ReplayStop", "ReplaySession",
    "Replayer", "record_run", "record_migrate", "record_rerandomize",
    "DivergenceReport", "bisect_digest_streams", "bisect_last_transition",
    "diff_states", "pinpoint_divergence", "pinpoint_by_reexecution",
]
