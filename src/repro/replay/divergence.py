"""Divergence pinpointing over recorded digest streams.

Two journals of the same scenario should carry bit-identical digest
streams. When they do not — a nondeterminism bug, a broken execution
engine, or an injected fault — this module locates the *first* quantum
whose digest differs, then reconstructs the machine state on both sides
at that quantum (by re-executing each journal with a digest-indexed
stop point) and byte-diffs the snapshots down to individual registers
and memory addresses.

The digest stream is searched with a binary search (the streams of a
deterministic run agree on a prefix and disagree on a suffix), then the
boundary is walked left so the reported index is always the minimal
diverging one even if the streams transiently re-converge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .digest import page_diff
from .engine import Replayer
from .journal import EV_DIGEST, Journal


def bisect_digest_streams(a: Sequence[bytes],
                          b: Sequence[bytes]) -> Optional[int]:
    """Index of the first differing digest, or None if one stream is a
    prefix of the other (length mismatch alone is not a divergence —
    the shorter run simply stopped earlier)."""
    n = min(len(a), len(b))
    if n == 0 or a[:n] == b[:n]:
        return None
    lo, hi = 0, n - 1          # invariant: some index in [lo, hi] differs
    while lo < hi:
        mid = (lo + hi) // 2
        if a[lo:mid + 1] == b[lo:mid + 1]:
            lo = mid + 1
        else:
            hi = mid
            while hi > lo and a[hi - 1] != b[hi - 1]:
                hi -= 1        # walk left: guarantee minimality
    return lo


def bisect_last_transition(probe, lo: int, hi: int) -> Optional[int]:
    """Locate the last value transition over an indexed probe.

    ``probe(i)`` samples some observable (a digest, a watched memory
    word) at monotone checkpoint index ``i``. Assuming the samples form
    two blocks — an old-value prefix and a block equal to ``probe(hi)``
    — returns the smallest ``k`` in ``(lo, hi]`` with
    ``probe(k) == probe(hi)``, i.e. the checkpoint interval
    ``(k-1, k]`` containing the transition. Returns ``None`` when
    ``probe(lo) == probe(hi)`` (no transition visible at this
    granularity).

    This is the search the time-travel debugger's watchpoints ride on:
    each probe is one snapshot restore (O(1) re-execution), so locating
    the transition interval costs O(log snapshots) restores, and only
    the single interval is then micro-scanned. Like digest bisection,
    a value that changes and changes *back* entirely between two
    adjacent checkpoints is invisible — the caller's cadence bounds
    the blind spot.
    """
    if lo >= hi:
        return None
    target = probe(hi)
    if probe(lo) == target:
        return None
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if probe(mid) == target:
            hi = mid
        else:
            lo = mid
    return hi


class DivergenceReport:
    """First diverging quantum plus the state-level diff behind it."""

    def __init__(self, digest_index: int, instr: int,
                 digest_a: bytes, digest_b: bytes,
                 reg_diffs: List[Tuple], mem_diffs: List[Tuple[int, int, int]],
                 meta_diffs: List[Tuple]):
        #: index into the digest stream (== the diverging quantum when
        #: recording with digest_every=1)
        self.digest_index = digest_index
        #: instructions retired when the diverging digest was taken
        self.instr = instr
        self.digest_a = digest_a
        self.digest_b = digest_b
        #: [(pid, tid, reg_name, value_a, value_b), ...]
        self.reg_diffs = reg_diffs
        #: [(address, byte_a, byte_b), ...]
        self.mem_diffs = mem_diffs
        #: non-register, non-memory mismatches [(pid, field, a, b), ...]
        self.meta_diffs = meta_diffs

    @property
    def first_addr(self) -> Optional[int]:
        """Lowest diverging memory address (the offending byte)."""
        return self.mem_diffs[0][0] if self.mem_diffs else None

    def format(self) -> str:
        lines = [f"first divergence at digest #{self.digest_index} "
                 f"(instr {self.instr})",
                 f"  digest A: {self.digest_a.hex()}",
                 f"  digest B: {self.digest_b.hex()}"]
        for pid, tid, name, va, vb in self.reg_diffs:
            lines.append(f"  reg  pid={pid} tid={tid} {name}: "
                         f"{va:#x} != {vb:#x}")
        for addr, ba, bb in self.mem_diffs:
            lines.append(f"  mem  {addr:#x}: {ba:#04x} != {bb:#04x}")
        for pid, field, va, vb in self.meta_diffs:
            lines.append(f"  meta pid={pid} {field}: {va!r} != {vb!r}")
        if not (self.reg_diffs or self.mem_diffs or self.meta_diffs):
            lines.append("  (digests differ but snapshots compare equal "
                         "- output streams diverged)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<DivergenceReport digest={self.digest_index} "
                f"instr={self.instr} regs={len(self.reg_diffs)} "
                f"mem={len(self.mem_diffs)}>")


def diff_states(snap_a: Dict, snap_b: Dict, mem_limit: int = 64
                ) -> Tuple[List, List, List]:
    """Byte-diff two :func:`~repro.replay.digest.capture_state` snapshots.

    Returns ``(reg_diffs, mem_diffs, meta_diffs)`` as stored on
    :class:`DivergenceReport`.
    """
    reg_diffs: List[Tuple] = []
    mem_diffs: List[Tuple[int, int, int]] = []
    meta_diffs: List[Tuple] = []
    for key in sorted(set(snap_a) | set(snap_b)):
        pa, pb = snap_a.get(key), snap_b.get(key)
        pid = key[1]
        if pa is None or pb is None:
            meta_diffs.append((pid, "process",
                               "present" if pa else "absent",
                               "present" if pb else "absent"))
            continue
        for tid in sorted(set(pa["threads"]) | set(pb["threads"])):
            ta, tb = pa["threads"].get(tid), pb["threads"].get(tid)
            if ta is None or tb is None:
                meta_diffs.append((pid, f"thread {tid}",
                                   "present" if ta else "absent",
                                   "present" if tb else "absent"))
                continue
            for field in ("pc", "flags", "tp"):
                if ta[field] != tb[field]:
                    reg_diffs.append((pid, tid, field,
                                      ta[field], tb[field]))
            for i, (ra, rb) in enumerate(zip(ta["regs"], tb["regs"])):
                if ra != rb:
                    reg_diffs.append((pid, tid, f"r{i}", ra, rb))
            if ta["status"] != tb["status"]:
                meta_diffs.append((pid, f"thread {tid} status",
                                   ta["status"], tb["status"]))
        for base in sorted(set(pa["pages"]) | set(pb["pages"])):
            if len(mem_diffs) >= mem_limit:
                break
            page_a, page_b = pa["pages"].get(base), pb["pages"].get(base)
            if page_a == page_b:
                continue
            mem_diffs.extend(page_diff(page_a, page_b, base,
                                       limit=mem_limit - len(mem_diffs)))
        for field in ("heap_end", "exited", "exit_code", "output"):
            if pa[field] != pb[field]:
                meta_diffs.append((pid, field, pa[field], pb[field]))
    return reg_diffs, mem_diffs, meta_diffs


def _digest_event(journal: Journal, index: int) -> Optional[Dict]:
    for event in journal.of_kind(EV_DIGEST):
        if event.get("a") == index:
            return event
    return None


def pinpoint_divergence(journal_a: Journal, journal_b: Journal,
                        engine_a: Optional[str] = None,
                        engine_b: Optional[str] = None,
                        mem_limit: int = 64) -> Optional[DivergenceReport]:
    """Locate and explain the first divergence between two journals.

    Returns ``None`` when the digest streams agree (one may be a prefix
    of the other). Otherwise re-executes *both* journals' scenarios up
    to the diverging digest — each from its own self-contained header,
    optionally on an overridden engine — captures byte-exact snapshots,
    and diffs them down to registers and memory addresses. A journal
    recorded with an injected fault re-injects it (the fault parameters
    live in the header), so the divergent side reproduces exactly.
    """
    stream_a = journal_a.digest_stream()
    stream_b = journal_b.digest_stream()
    index = bisect_digest_streams(stream_a, stream_b)
    if index is None:
        return None
    event = (_digest_event(journal_a, index)
             or _digest_event(journal_b, index) or {})
    result_a = Replayer(journal_a, engine=engine_a).run(stop_at_digest=index)
    result_b = Replayer(journal_b, engine=engine_b).run(stop_at_digest=index)
    reg_diffs, mem_diffs, meta_diffs = diff_states(
        result_a.snapshot or {}, result_b.snapshot or {},
        mem_limit=mem_limit)
    return DivergenceReport(index, event.get("instr", 0),
                            stream_a[index], stream_b[index],
                            reg_diffs, mem_diffs, meta_diffs)


def pinpoint_by_reexecution(journal: Journal,
                            engine: Optional[str] = None,
                            mem_limit: int = 64
                            ) -> Optional[DivergenceReport]:
    """Replay ``journal`` (optionally on the other engine) and pinpoint
    any divergence between the recording and the fresh re-execution.

    Returns ``None`` for a faithful replay — the normal case, and what
    the CI replay-smoke job asserts.
    """
    replayed = Replayer(journal, engine=engine).run()
    return pinpoint_divergence(journal, replayed.journal,
                               engine_b=engine, mem_limit=mem_limit)
