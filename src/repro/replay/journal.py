"""The flight-recorder journal: file format and in-memory event log.

A journal is one header message plus a stream of event records, all
encoded with the same protobuf-style wire format the CRIU image files
use (:mod:`repro.wire`) — varints for integers, length-delimited
payloads for strings and digests:

    +----------+---------+--------------+--------------+-----
    | "DAPRJRN"| version | len | header | len | event-0 | ...
    +----------+---------+--------------+--------------+-----
       magic     varint    varint-framed  varint-framed

The **header** is the replayable scenario description: which program
(the DapperC source text itself is embedded, so a journal is
self-contained), which ISA(s), which execution engine, the scheduler
quantum, the digest cadence, and — for migration / re-randomization
scenarios — warmup, destination architecture, laziness, RNG seed and
shuffle interval. Deterministic fault-injection parameters (a single
bit flip at a given scheduling slice) are also header fields, so even
an intentionally-divergent run reproduces from its own journal.

**Events** journal everything that happened: every scheduling slice
(pid, tid, budget, instructions retired), every syscall with its
arguments and result, every RNG draw, every trap / spawn / restore /
checkpoint / rewrite / migration, every cluster event-queue firing, and
the periodic whole-machine state digests the divergence detector
bisects. Events are plain dicts in memory; encoding happens on save.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .. import wire
from ..errors import JournalError, JournalTruncated, WireError, WireTruncated

MAGIC = b"DAPRJRN1"
VERSION = 1

# -- event kinds ---------------------------------------------------------------

EV_SCHED = 1        #: one scheduling slice: pid/tid ran `b` of budget `a`
EV_DIGEST = 2       #: whole-machine state digest (payload), a = digest index
EV_SYSCALL = 3      #: a = number, payload = packed args, b = result
EV_RNG = 4          #: label = "<service>/<draw label>", a = drawn value
EV_SPAWN = 5        #: process spawned: pid, label = exe path
EV_EXIT = 6         #: process killed/exited: pid, a = exit code
EV_TRAP = 7         #: thread parked at an equivalence point (SIGTRAP)
EV_CHECKPOINT = 8   #: CRIU-style dump taken: pid, a = image bytes
EV_REWRITE = 9      #: a transformation policy ran: label = policy name
EV_RESTORE = 10     #: process restored/adopted: pid, label = arch
EV_MIGRATE = 11     #: cross-ISA migration completed: label = "src->dst"
EV_CLUSTER = 12     #: cluster EventQueue firing: label, a = time (ns)
EV_FAULT = 13       #: injected fault fired: a = address, b = bit for a
                    #: BitFlip; label = "chaos:<kind>@<site>" for chaos
                    #: faults (fault spec lives in the "chaos" header)
EV_END = 14         #: run finished: a = exit code of the last process
EV_STORE = 15       #: checkpoint-store op: label = "put:<id>"/"plan:...",
                    #: a = chunks, b = bytes (content-derived, so
                    #: deterministic across record/replay)
EV_VERIFY = 16      #: pre-restore image verification: label =
                    #: "verify:<verdict>@<stage>", a = findings,
                    #: b = pages repaired (content-derived — verified
                    #: and repaired migrations replay bit-identically)
EV_BARRIER = 17     #: fleet shard barrier: a = barrier time (µs),
                    #: b = events fired in the window, instr = barrier
                    #: index — the journaled barrier schedule is the
                    #: replay contract for sharded fleet runs
EV_GROUP = 18       #: coordinated group checkpoint protocol phase:
                    #: label = "group:<phase>" ("group:prepared",
                    #: "group:aborted@commit", ...), a = member count,
                    #: b = content-derived detail (drained connections,
                    #: prepared members, ...)
EV_RECOVER = 19     #: durable-store crash recovery: label =
                    #: "recover:<clean|torn>", a = checkpoints
                    #: registered after recovery, b = damage handled
                    #: (quarantined chunks + rolled-back txns + orphans
                    #: swept). Purely content-derived from the
                    #: surviving disk, so crash/recover runs replay
                    #: bit-identically

KIND_NAMES = {
    EV_SCHED: "sched", EV_DIGEST: "digest", EV_SYSCALL: "syscall",
    EV_RNG: "rng", EV_SPAWN: "spawn", EV_EXIT: "exit", EV_TRAP: "trap",
    EV_CHECKPOINT: "checkpoint", EV_REWRITE: "rewrite",
    EV_RESTORE: "restore", EV_MIGRATE: "migrate", EV_CLUSTER: "cluster",
    EV_FAULT: "fault", EV_END: "end", EV_STORE: "store",
    EV_VERIFY: "verify", EV_BARRIER: "barrier", EV_GROUP: "group",
    EV_RECOVER: "recover",
}

HEADER_SCHEMA = wire.Schema("JournalHeader", [
    wire.field(1, "version", "int"),
    wire.field(2, "program", "str"),
    wire.field(3, "source", "str"),
    wire.field(4, "scenario", "str"),
    wire.field(5, "engine", "str"),
    wire.field(6, "quantum", "int"),
    wire.field(7, "digest_every", "int"),
    wire.field(8, "src_arch", "str"),
    wire.field(9, "dst_arch", "str"),
    wire.field(10, "warmup", "int"),
    wire.field(11, "lazy", "int"),
    wire.field(12, "seed", "int"),
    wire.field(13, "max_steps", "int"),
    wire.field(14, "interval", "int"),
    wire.field(15, "record_syscalls", "int"),
    wire.field(16, "fault_slice", "int"),
    wire.field(17, "fault_addr", "int"),
    wire.field(18, "fault_bit", "int"),
    wire.field(19, "store", "int"),
    wire.field(20, "chaos", "str"),
    wire.field(21, "retries", "int"),
    wire.field(22, "fleet", "str"),
    wire.field(23, "group", "str"),
])

EVENT_SCHEMA = wire.Schema("JournalEvent", [
    wire.field(1, "kind", "int"),
    wire.field(2, "pid", "int"),
    wire.field(3, "tid", "int"),
    wire.field(4, "instr", "int"),
    wire.field(5, "a", "int"),
    wire.field(6, "b", "int"),
    wire.field(7, "label", "str"),
    wire.field(8, "payload", "bytes"),
])


def pack_args(args: List[int]) -> bytes:
    """Pack syscall arguments as concatenated signed varints."""
    return b"".join(wire.encode_signed_varint(a) for a in args)


def unpack_args(blob: bytes) -> List[int]:
    out: List[int] = []
    pos = 0
    while pos < len(blob):
        value, pos = wire.decode_signed_varint(blob, pos)
        out.append(value)
    return out


class Journal:
    """One recorded run: a scenario header plus its event stream."""

    def __init__(self, header: Optional[Dict] = None):
        self.header: Dict = dict(header or {})
        self.header.setdefault("version", VERSION)
        self.events: List[Dict] = []

    # -- recording --------------------------------------------------------

    def append(self, kind: int, **fields) -> Dict:
        event = {"kind": kind}
        for name, value in fields.items():
            if value is not None:
                event[name] = value
        self.events.append(event)
        return event

    # -- queries ----------------------------------------------------------

    def of_kind(self, kind: int) -> List[Dict]:
        return [e for e in self.events if e["kind"] == kind]

    def digests(self) -> List[Dict]:
        """The digest stream, in order (``a`` is the digest index)."""
        return self.of_kind(EV_DIGEST)

    def digest_stream(self) -> List[bytes]:
        return [e["payload"] for e in self.digests()]

    def sched_stream(self) -> List[tuple]:
        return [(e.get("pid", 0), e.get("tid", 0), e.get("a", 0),
                 e.get("b", 0)) for e in self.of_kind(EV_SCHED)]

    def rng_stream(self) -> List[tuple]:
        return [(e.get("label", ""), e.get("a", 0))
                for e in self.of_kind(EV_RNG)]

    def syscall_stream(self) -> List[tuple]:
        return [(e.get("pid", 0), e.get("tid", 0), e.get("a", 0),
                 tuple(unpack_args(e.get("payload", b""))), e.get("b", 0))
                for e in self.of_kind(EV_SYSCALL)]

    def exit_code(self) -> Optional[int]:
        ends = self.of_kind(EV_END)
        return ends[-1].get("a") if ends else None

    def instructions(self) -> int:
        """Total instructions retired across every journaled slice."""
        return sum(e.get("b", 0) for e in self.of_kind(EV_SCHED))

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            name = KIND_NAMES.get(event["kind"], f"kind{event['kind']}")
            counts[name] = counts.get(name, 0) + 1
        return counts

    # -- serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray(MAGIC)
        out += wire.encode_varint(self.header.get("version", VERSION))
        header = HEADER_SCHEMA.encode(self.header)
        out += wire.encode_varint(len(header))
        out += header
        for event in self.events:
            blob = EVENT_SCHEMA.encode(event)
            out += wire.encode_varint(len(blob))
            out += blob
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Journal":
        """Decode a journal.

        A blob whose *tail* was cut mid-record (a killed recorder, a
        partial copy) raises :class:`~repro.errors.JournalTruncated`
        carrying every complete record as a partial journal — callers
        like ``repro-debug`` catch it and debug the prefix. Corruption
        anywhere else stays a plain :class:`JournalError`.
        """
        if not blob.startswith(MAGIC):
            raise JournalError("not a flight-recorder journal (bad magic)")
        pos = len(MAGIC)
        try:
            version, pos = wire.decode_varint(blob, pos)
        except WireError as exc:
            raise JournalError(f"corrupt journal: {exc}") from exc
        if version != VERSION:
            raise JournalError(f"unsupported journal version {version}")
        frames: List[bytes] = []
        cut: Optional[WireTruncated] = None
        try:
            for frame in _iter_frames(blob, pos):
                frames.append(frame)
        except WireTruncated as exc:
            cut = exc
        except WireError as exc:
            raise JournalError(f"corrupt journal: {exc}") from exc
        if not frames:
            raise JournalError("journal has no header"
                               if cut is None else
                               "journal truncated before the header")
        # Complete frames that fail schema decode are corruption, not
        # truncation — the frame length said the bytes were all there.
        try:
            journal = cls(HEADER_SCHEMA.decode(frames[0]))
            for frame in frames[1:]:
                journal.events.append(EVENT_SCHEMA.decode(frame))
        except WireError as exc:
            raise JournalError(f"corrupt journal record: {exc}") from exc
        if cut is not None:
            scheds = journal.of_kind(EV_SCHED)
            digests = journal.digests()
            raise JournalTruncated(
                f"journal truncated after {len(journal.events)} complete "
                f"event(s): {cut}",
                journal=journal,
                last_instr=scheds[-1].get("instr", 0) if scheds else 0,
                last_digest=digests[-1].get("a") if digests else None)
        return journal

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "Journal":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())

    def __repr__(self) -> str:
        return (f"<Journal {self.header.get('scenario', '?')} "
                f"{self.header.get('program', '?')} "
                f"events={len(self.events)}>")


def _iter_frames(blob: bytes, pos: int) -> Iterator[bytes]:
    while pos < len(blob):
        length, pos = wire.decode_varint(blob, pos)
        if pos + length > len(blob):
            raise WireTruncated("truncated journal frame")
        yield blob[pos:pos + length]
        pos += length
