"""Pausable, resumable re-execution of a journal's scenario.

:class:`Replayer.run` drives a scenario to completion (or to a one-shot
stop point) — it cannot be paused, inspected, and resumed. This module
adds that as a standalone API: a :class:`ReplaySession` runs the
scenario on a worker thread and blocks it *inside* the recorder's
:meth:`~repro.replay.recorder.ReplayObserver.after_slice` hook whenever
the requested instruction target is reached. The scheduling-slice
stream is exactly what a straight run produces — pausing happens at
slice boundaries the kernel was going to honor anyway — so digests,
events, and the final journal are bit-identical no matter how many
times the session stops and resumes. That property is what lets
``repro-replay seek`` visit several instruction counts in one
re-execution instead of one full replay per seek, and what the
time-travel debugger builds its forward scans on.

While paused, the caller may read anything reachable from the recorder
(machines, journal so far, byte-exact :func:`capture_state` snapshots).
The machines must be treated as read-only: a mutation here would
diverge the rest of the run.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..errors import JournalError
from .digest import capture_state
from .engine import Replayer, ReplayResult
from .journal import Journal
from .recorder import FlightRecorder, ReplayObserver


class _SessionAbort(BaseException):
    """Unwinds the worker thread on close(). BaseException on purpose:
    scenario code that catches ``Exception`` must not swallow it."""


class ReplaySession(ReplayObserver):
    """One journal re-execution that can pause at instruction targets.

    Usage::

        session = ReplaySession(journal)
        while session.run_until(next_target):   # False once finished
            inspect(session.state())
        result = session.result                 # completed ReplayResult
        session.close()

    ``run_until`` returns True when the run paused at the target (the
    first slice boundary at or past it) and False when the scenario
    finished first. Targets must be non-decreasing — a session only
    moves forward; rewinding is the snapshot-seeking debugger's job.
    """

    def __init__(self, journal: Journal, engine: Optional[str] = None,
                 digest_every: Optional[int] = None):
        self._replayer = Replayer(journal, engine=engine,
                                  digest_every=digest_every)
        self._cond = threading.Condition()
        self._target: float = 0
        self._paused = False
        self._finished = False
        self._abort = False
        self._error: Optional[BaseException] = None
        self.result: Optional[ReplayResult] = None
        self.recorder: Optional[FlightRecorder] = None
        self._thread = threading.Thread(target=self._worker, daemon=True)
        self._started = False

    # -- observer side (worker thread) ------------------------------------

    def on_recorder(self, recorder: FlightRecorder) -> None:
        self.recorder = recorder

    def after_slice(self, recorder: FlightRecorder) -> None:
        with self._cond:
            if self._abort:
                raise _SessionAbort()
            if recorder.instructions < self._target:
                return
            self._paused = True
            self._cond.notify_all()
            while self._paused and not self._abort:
                self._cond.wait()
            if self._abort:
                raise _SessionAbort()

    def _worker(self) -> None:
        try:
            self.result = self._replayer.run(observer=self)
        except _SessionAbort:
            pass
        except BaseException as exc:  # surfaced on the driver thread
            self._error = exc
        finally:
            with self._cond:
                self._finished = True
                self._paused = False
                self._cond.notify_all()

    # -- driver side -------------------------------------------------------

    def run_until(self, instr: float) -> bool:
        """Advance to the first slice boundary at/past ``instr``.

        Returns True if paused there, False if the scenario completed
        first (``result`` is then set). Raises whatever the scenario
        raised, re-thrown on this thread.
        """
        if self._finished and self._error is None:
            return False
        with self._cond:
            if instr < self._target:
                raise JournalError(
                    f"replay session cannot rewind: target {instr} is "
                    f"before {self._target}")
            self._target = instr
            if not self._started:
                self._started = True
                self._thread.start()
            else:
                self._paused = False
                self._cond.notify_all()
            while not self._paused and not self._finished:
                self._cond.wait()
            if self._error is not None:
                error, self._error = self._error, None
                raise error
            return not self._finished

    def run_to_end(self) -> ReplayResult:
        """Resume and run the scenario to completion."""
        self.run_until(float("inf"))
        assert self.result is not None
        return self.result

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def instructions(self) -> int:
        """Instructions retired so far (valid while paused/finished)."""
        return self.recorder.instructions if self.recorder else 0

    @property
    def slices(self) -> int:
        return self.recorder.slices if self.recorder else 0

    def machines(self) -> List:
        return list(self.recorder.machines) if self.recorder else []

    def state(self) -> Dict:
        """Byte-exact :func:`capture_state` snapshot at the pause point."""
        if self.recorder is None:
            return {}
        return capture_state(self.recorder.machines)

    def close(self) -> None:
        """Abandon the run (if still paused) and reap the worker."""
        with self._cond:
            self._abort = True
            self._paused = False
            self._cond.notify_all()
        if self._started:
            self._thread.join(timeout=60)

    def __enter__(self) -> "ReplaySession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
