"""The flight recorder: journaling hooks, fault injection, stop points.

A :class:`FlightRecorder` is attached to one or more
:class:`~repro.vm.kernel.Machine` instances. The kernel notifies it —
only when one is attached; the disabled path is a single ``is None``
test per scheduling slice — after every scheduling slice, syscall,
trap, spawn, restore and kill. The recorder appends events to its
:class:`~repro.replay.journal.Journal` and, every ``digest_every``
slices, folds the full machine state into a digest event.

Two extra facilities make the recorder the replay/divergence engine's
workhorse:

* **Deterministic fault injection** — a :class:`BitFlip` flips one bit
  of guest memory at an exact scheduling-slice boundary. Slice indices
  are engine-independent, so an injected fault reproduces exactly on
  either engine, which is what lets the divergence detector re-execute
  a faulty run to any digest point.
* **Stop conditions** — ``stop_at_digest`` / ``stop_at_instr`` raise
  :class:`ReplayStop` at a slice boundary, after capturing a byte-exact
  state snapshot. Replays use this to reconstruct the machine state at
  an arbitrary quantum (the ``seek`` operation and the byte-level
  divergence diff).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional

from ..errors import ReproError
from ..mem.paging import PAGE_SIZE, page_align_down
from . import journal as jn
from .digest import DIGEST_SIZE, capture_state, machine_digest

if TYPE_CHECKING:
    from ..vm.cpu import ThreadContext
    from ..vm.kernel import Machine, Process


class ReplayObserver:
    """Callbacks fired by a :class:`FlightRecorder` as a run progresses.

    This is the replay engine's extension point: a pausable replay
    session (:class:`~repro.replay.resume.ReplaySession`) blocks inside
    :meth:`after_slice`, and the time-travel debugger's snapshot
    capturer dumps machine state from :meth:`after_event` /
    :meth:`on_mutation`. Every callback runs at a *safe point* — no
    machine is mid-slice — and receives the recorder, through which the
    attached machines, the journal so far, and the slice/instruction
    counters are all reachable. The default implementations do nothing.
    """

    def on_recorder(self, recorder: "FlightRecorder") -> None:
        """The recorder this observer was handed to, at construction."""

    def after_slice(self, recorder: "FlightRecorder") -> None:
        """One scheduling slice (and its digest, if due) was journaled."""

    def after_event(self, recorder: "FlightRecorder", event: Dict) -> None:
        """A non-slice event (spawn/restore/migrate/...) was journaled."""

    def on_mutation(self, recorder: "FlightRecorder", label: str) -> None:
        """Guest state was written *outside* any journaled event (e.g.
        the runtime poking ``__dapper_flag`` over ptrace). Journal-driven
        re-execution cannot reproduce these writes, so seekers must
        anchor a snapshot here."""


class ReplayStop(ReproError):
    """Raised by the recorder when a requested stop point is reached."""

    def __init__(self, slice_index: int, digest_index: int):
        super().__init__(f"replay stopped at slice {slice_index} "
                         f"(digest {digest_index})")
        self.slice_index = slice_index
        self.digest_index = digest_index


class BitFlip:
    """Flip bit ``bit`` of the byte at ``addr`` after slice ``at_slice``.

    The flip is applied directly to the page store (bypassing VMA
    protection checks, like a cosmic ray would) at the scheduling-slice
    boundary, which is a deterministic, engine-independent point.
    """

    def __init__(self, at_slice: int, addr: int, bit: int = 0):
        if not 0 <= bit <= 7:
            raise ValueError(f"bit must be 0..7, got {bit}")
        self.at_slice = at_slice
        self.addr = addr
        self.bit = bit
        self.fired = False

    def fire(self, machines: List["Machine"]) -> bool:
        base = page_align_down(self.addr)
        for machine in machines:
            for pid in sorted(machine.processes):
                process = machine.processes[pid]
                store = process.aspace._pages.get(base)
                if store is None:
                    # Materialize a mapped-but-untouched page so the
                    # flip lands even on lazily-backed zero pages.
                    if process.aspace.find_vma(self.addr) is None:
                        continue
                    store = bytearray(PAGE_SIZE)
                    process.aspace._pages[base] = store
                store[self.addr - base] ^= 1 << self.bit
                self.fired = True
                return True
        return False

    def header_fields(self) -> Dict[str, int]:
        return {"fault_slice": self.at_slice, "fault_addr": self.addr,
                "fault_bit": self.bit}

    @classmethod
    def from_header(cls, header: Dict) -> Optional["BitFlip"]:
        if "fault_slice" not in header:
            return None
        return cls(header["fault_slice"], header.get("fault_addr", 0),
                   header.get("fault_bit", 0))


class _OutputHash:
    """Incrementally maintained hash of one process's stdout stream."""

    __slots__ = ("h", "consumed")

    def __init__(self):
        self.h = hashlib.blake2b(digest_size=DIGEST_SIZE)
        self.consumed = 0

    def fold(self, chunks: List[str]) -> bytes:
        if len(chunks) > self.consumed:
            for chunk in chunks[self.consumed:]:
                self.h.update(chunk.encode("utf-8", "surrogatepass"))
            self.consumed = len(chunks)
        return self.h.copy().digest()


class FlightRecorder:
    """Journals one run of one or more machines.

    ``digest_every`` is the digest cadence in scheduling slices (0
    disables periodic digests; a final digest is always emitted by
    :meth:`finalize`). ``record_syscalls`` journals every syscall's
    number, arguments and result — cheap, and it turns a divergence in
    kernel interaction into an immediately visible journal diff.
    """

    def __init__(self, journal: Optional[jn.Journal] = None,
                 digest_every: int = 1, record_syscalls: bool = True,
                 fault: Optional[BitFlip] = None,
                 stop_at_digest: Optional[int] = None,
                 stop_at_instr: Optional[int] = None,
                 observer: Optional[ReplayObserver] = None):
        self.journal = journal if journal is not None else jn.Journal()
        self.digest_every = digest_every
        self.record_syscalls = record_syscalls
        self.fault = fault
        self.stop_at_digest = stop_at_digest
        self.stop_at_instr = stop_at_instr
        self.observer = observer
        if observer is not None:
            observer.on_recorder(self)
        self.machines: List["Machine"] = []
        self.slices = 0
        self.instructions = 0
        self.digest_count = 0
        self.snapshot: Optional[Dict] = None
        self.finalized = False
        self._output_hashes: Dict[int, bytes] = {}
        self._output_state: Dict["Process", _OutputHash] = {}

    # -- wiring -----------------------------------------------------------

    def attach(self, machine: "Machine") -> "FlightRecorder":
        if machine.recorder is not None and machine.recorder is not self:
            raise ReproError(f"machine {machine.name} already has a recorder")
        machine.recorder = self
        self.machines.append(machine)
        return self

    def detach_all(self) -> None:
        for machine in self.machines:
            if machine.recorder is self:
                machine.recorder = None

    # -- kernel hooks -----------------------------------------------------

    def on_slice(self, machine: "Machine", process: "Process",
                 thread: "ThreadContext", budget: int,
                 executed: int) -> None:
        """One scheduling slice retired ``executed`` instructions."""
        self.slices += 1
        self.instructions += executed
        self.journal.append(jn.EV_SCHED, pid=process.pid, tid=thread.tid,
                            instr=self.instructions, a=budget, b=executed)
        fault = self.fault
        if fault is not None and not fault.fired \
                and self.slices >= fault.at_slice:
            if fault.fire(self.machines):
                event = self.journal.append(jn.EV_FAULT,
                                            instr=self.instructions,
                                            a=fault.addr, b=fault.bit)
                if self.observer is not None:
                    self.observer.after_event(self, event)
        if self.digest_every and self.slices % self.digest_every == 0:
            self._emit_digest()
        if (self.stop_at_instr is not None
                and self.instructions >= self.stop_at_instr):
            self._stop()
        if self.observer is not None:
            self.observer.after_slice(self)

    def on_syscall(self, machine: "Machine", process: "Process",
                   thread: "ThreadContext", number: int, args: List[int],
                   result: Optional[int]) -> None:
        if self.record_syscalls:
            self.journal.append(
                jn.EV_SYSCALL, pid=process.pid, tid=thread.tid, a=number,
                payload=jn.pack_args(args),
                b=result if result is not None else 0)

    def on_trap(self, machine: "Machine", process: "Process",
                thread: "ThreadContext") -> None:
        self.journal.append(jn.EV_TRAP, pid=process.pid, tid=thread.tid,
                            instr=self.instructions)

    def on_spawn(self, machine: "Machine", process: "Process") -> None:
        event = self.journal.append(jn.EV_SPAWN, pid=process.pid,
                                    label=process.exe_path)
        if self.observer is not None:
            self.observer.after_event(self, event)

    def on_restore(self, machine: "Machine", process: "Process") -> None:
        event = self.journal.append(jn.EV_RESTORE, pid=process.pid,
                                    label=machine.isa.name,
                                    instr=self.instructions)
        if self.observer is not None:
            self.observer.after_event(self, event)

    def on_kill(self, machine: "Machine", process: "Process") -> None:
        event = self.journal.append(jn.EV_EXIT, pid=process.pid,
                                    a=process.exit_code
                                    if process.exit_code is not None else -9)
        if self.observer is not None:
            self.observer.after_event(self, event)

    def on_poke(self, machine: "Machine", process: "Process",
                addr: int) -> None:
        """A ptrace POKEDATA wrote guest memory outside any journaled
        event. Replay reproduces it (the same runtime code runs), but a
        journal-driven *seeker* cannot — observers snapshot here."""
        if self.observer is not None:
            self.observer.on_mutation(self, f"poke@{addr:#x}")

    # -- non-kernel event sources -----------------------------------------

    def on_rng(self, service: str, label: str, value: int) -> None:
        self.journal.append(jn.EV_RNG, label=f"{service}/{label}", a=value)

    def on_cluster_event(self, when: float, label: str) -> None:
        self.journal.append(jn.EV_CLUSTER, a=int(round(when * 1e9)),
                            label=label)

    def on_event(self, kind: int, **fields) -> None:
        """Journal a scenario-level event (checkpoint/rewrite/migrate)."""
        fields.setdefault("instr", self.instructions)
        event = self.journal.append(kind, **fields)
        if self.observer is not None:
            self.observer.after_event(self, event)

    # -- digests and stop points ------------------------------------------

    def _fold_outputs(self) -> Dict[int, bytes]:
        for machine in self.machines:
            for process in machine.processes.values():
                state = self._output_state.get(process)
                if state is None:
                    state = self._output_state[process] = _OutputHash()
                self._output_hashes[id(process)] = state.fold(process.output)
        return self._output_hashes

    def current_digest(self) -> bytes:
        return machine_digest(self.machines, self._fold_outputs())

    def _emit_digest(self) -> None:
        digest = self.current_digest()
        index = self.digest_count
        self.digest_count += 1
        self.journal.append(jn.EV_DIGEST, a=index, instr=self.instructions,
                            payload=digest)
        if self.stop_at_digest is not None \
                and self.digest_count > self.stop_at_digest:
            self._stop()

    def _stop(self) -> None:
        self.snapshot = capture_state(self.machines)
        raise ReplayStop(self.slices, self.digest_count - 1)

    def finalize(self, exit_code: Optional[int] = None) -> jn.Journal:
        """Emit the final digest + end marker; returns the journal."""
        if not self.finalized:
            self.finalized = True
            self._emit_digest()
            self.journal.append(jn.EV_END, instr=self.instructions,
                                a=exit_code if exit_code is not None else 0)
        return self.journal
