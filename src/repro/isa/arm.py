"""The RISC-style simulated ISA ("aarch64").

Fixed 4-byte instruction words modeled on aarch64: 31 general-purpose
registers plus ``sp``, ``movz``/``movk`` immediate materialization,
load/store *pair* instructions (``ldp``/``stp``) used by the backend for
adjacent stack slots (these are what limit stack-shuffle entropy on this
ISA, paper §IV-B), and the exact ``D4 20 00 00`` byte sequence for the
trap (``brk #0``) that the paper's footnote 2 quotes.

Instruction words are laid out as ``op, b1, b2, b3`` where ``op`` is the
opcode byte and the remaining bytes are register indices / immediates.
Whole-word patterns (``nop``, ``ret``, ``brk``, ``svc``) are matched
before the opcode dispatch.
"""

from __future__ import annotations

from ..errors import DecodingError, EncodingError
from .isa import Abi, Instruction, Isa, check_reg, signed_fits, to_signed
from .registers import ARM_REGISTERS

WORD = 4

# Whole-word encodings.
BYTES_NOP = bytes([0x1F, 0x20, 0x03, 0xD5])   # real aarch64 `nop`
BYTES_BRK = bytes([0xD4, 0x20, 0x00, 0x00])   # paper footnote 2: brk #0
BYTES_RET = bytes([0xC0, 0x03, 0x5F, 0xD6])   # real aarch64 `ret`
BYTES_SVC = bytes([0x01, 0x00, 0x00, 0xD4])   # svc #0 (approx.)

OP_MOV = 0x01
OP_MOVZ = 0x02
OP_MOVK1 = 0x03
OP_MOVK2 = 0x04
OP_MOVK3 = 0x05
OP_LDR = 0x06
OP_STR = 0x07
OP_LDP = 0x08
OP_STP = 0x09
BINOP_TO_OPCODE = {
    "add": 0x0A, "sub": 0x0B, "mul": 0x0C, "sdiv": 0x0D, "srem": 0x0E,
    "and": 0x0F, "orr": 0x10, "eor": 0x11, "lsl": 0x12, "lsr": 0x13,
}
OPCODE_TO_BINOP = {v: k for k, v in BINOP_TO_OPCODE.items()}
OP_ADDI = 0x14
OP_SUBI = 0x15
OP_CMP = 0x16
OP_CMPI = 0x17
OP_B = 0x18
OP_BL = 0x19
OP_BCC = 0x1A
OP_TLSLOAD = 0x1C
OP_TLSSTORE = 0x1D
OP_LEA = 0x1E

COND_TO_CC = {"eq": 0, "ne": 1, "lt": 2, "le": 3, "gt": 4, "ge": 5}
CC_TO_COND = {v: k for k, v in COND_TO_CC.items()}

#: Mnemonics this ISA encodes in a single word.
_SINGLE_WORD = {
    "nop", "trap", "ret", "syscall", "mov", "movz", "movk1", "movk2",
    "movk3", "load", "store", "ldp", "stp", "addi", "cmp", "cmpi", "b",
    "bcc", "call", "tlsload", "tlsstore", "lea",
} | set(BINOP_TO_OPCODE)


def arm_size(instr: Instruction, isa: Isa) -> int:
    if instr.op == "movi_full":
        # Always the full movz + 3×movk form: used for link-time-resolved
        # addresses so sizes are independent of symbol placement.
        return WORD * 4
    if instr.op == "movi":
        # Pseudo-instruction: movz + up to three movk. Address-bearing
        # immediates are always materialized with the full 4-word form by
        # the code generator (stable sizes before linking); here the size
        # depends only on the known immediate value.
        return WORD * len(_movi_parts(instr.imm or 0))
    if instr.op in _SINGLE_WORD:
        return WORD
    raise EncodingError(f"aarch64: unknown mnemonic {instr.op!r}")


def _movi_parts(imm: int):
    """16-bit chunks of a 64-bit immediate, least-significant first."""
    value = imm & 0xFFFFFFFFFFFFFFFF
    parts = [(value >> shift) & 0xFFFF for shift in (0, 16, 32, 48)]
    # Always keep chunk 0 (movz); keep the longest prefix whose upper
    # chunks are non-zero.
    while len(parts) > 1 and parts[-1] == 0:
        parts.pop()
    return parts


def expand_movi(rd: int, imm: int, full: bool = False):
    """Expand ``movi rd, imm`` into movz/movk instructions.

    With ``full=True`` all four words are emitted regardless of the value
    — required for link-time-resolved addresses so instruction sizes do
    not depend on symbol placement.
    """
    value = imm & 0xFFFFFFFFFFFFFFFF
    chunks = [(value >> shift) & 0xFFFF for shift in (0, 16, 32, 48)]
    if not full:
        while len(chunks) > 1 and chunks[-1] == 0:
            chunks.pop()
    ops = ["movz", "movk1", "movk2", "movk3"]
    return [Instruction(ops[i], rd=rd, imm=chunk)
            for i, chunk in enumerate(chunks)]


def _word(op: int, b1: int = 0, b2: int = 0, b3: int = 0) -> bytes:
    return bytes([op, b1 & 0xFF, b2 & 0xFF, b3 & 0xFF])


def _imm16(value: int):
    if not 0 <= value <= 0xFFFF:
        raise EncodingError(f"aarch64: imm16 out of range: {value:#x}")
    return value & 0xFF, (value >> 8) & 0xFF


def _off8(value: int, scaled: bool) -> int:
    if scaled:
        if value % 8:
            raise EncodingError(f"aarch64: offset {value} not 8-aligned")
        value //= 8
    if not signed_fits(value, 8):
        raise EncodingError(f"aarch64: offset field out of range: {value}")
    return value & 0xFF


def arm_encode(instr: Instruction, isa: Isa) -> bytes:
    op = instr.op
    if op == "nop":
        return BYTES_NOP
    if op == "trap":
        return BYTES_BRK
    if op == "ret":
        return BYTES_RET
    if op == "syscall":
        return BYTES_SVC
    if op == "mov":
        return _word(OP_MOV, check_reg(instr, "rd", isa),
                     check_reg(instr, "rn", isa))
    if op in ("movz", "movk1", "movk2", "movk3"):
        lo, hi = _imm16(instr.imm or 0)
        opcode = {"movz": OP_MOVZ, "movk1": OP_MOVK1,
                  "movk2": OP_MOVK2, "movk3": OP_MOVK3}[op]
        return _word(opcode, check_reg(instr, "rd", isa), lo, hi)
    if op in ("movi", "movi_full"):
        out = bytearray()
        parts = expand_movi(check_reg(instr, "rd", isa), instr.imm or 0,
                            full=(op == "movi_full"))
        for part in parts:
            out += arm_encode(part, isa)
        return bytes(out)
    if op in ("load", "store"):
        opcode = OP_LDR if op == "load" else OP_STR
        return _word(opcode, check_reg(instr, "rd", isa),
                     check_reg(instr, "rn", isa),
                     _off8(instr.imm or 0, scaled=True))
    if op in ("ldp", "stp"):
        opcode = OP_LDP if op == "ldp" else OP_STP
        return _word(opcode, check_reg(instr, "rd", isa),
                     check_reg(instr, "rm", isa),
                     _off8(instr.imm or 0, scaled=True))
    if op in BINOP_TO_OPCODE:
        return _word(BINOP_TO_OPCODE[op], check_reg(instr, "rd", isa),
                     check_reg(instr, "rn", isa), check_reg(instr, "rm", isa))
    if op == "addi":
        imm = instr.imm or 0
        opcode = OP_ADDI
        if imm < 0:
            opcode, imm = OP_SUBI, -imm
        if not 0 <= imm <= 255:
            raise EncodingError(f"aarch64: addi immediate {instr.imm} "
                                "out of range (use movi + add)")
        return _word(opcode, check_reg(instr, "rd", isa),
                     check_reg(instr, "rn", isa), imm)
    if op == "lea":
        # rd = rn + imm8*8 (frame-slot address computation)
        return _word(OP_LEA, check_reg(instr, "rd", isa),
                     check_reg(instr, "rn", isa),
                     _off8(instr.imm or 0, scaled=True))
    if op == "cmp":
        return _word(OP_CMP, check_reg(instr, "rn", isa),
                     check_reg(instr, "rm", isa))
    if op == "cmpi":
        imm = instr.imm or 0
        if not signed_fits(imm, 8):
            raise EncodingError(f"aarch64: cmpi immediate {imm} out of range")
        return _word(OP_CMPI, check_reg(instr, "rn", isa), imm & 0xFF)
    if op in ("b", "call"):
        rel = _branch_rel(instr, bits=24)
        return bytes([OP_B if op == "b" else OP_BL,
                      rel & 0xFF, (rel >> 8) & 0xFF, (rel >> 16) & 0xFF])
    if op == "bcc":
        if instr.cond not in COND_TO_CC:
            raise EncodingError(f"aarch64: unknown condition {instr.cond!r}")
        rel = _branch_rel(instr, bits=16)
        return bytes([OP_BCC, COND_TO_CC[instr.cond],
                      rel & 0xFF, (rel >> 8) & 0xFF])
    if op in ("tlsload", "tlsstore"):
        imm = instr.imm or 0
        if not 0 <= imm <= 0xFFFF:
            raise EncodingError(f"aarch64: TLS offset {imm} out of range")
        opcode = OP_TLSLOAD if op == "tlsload" else OP_TLSSTORE
        return _word(opcode, check_reg(instr, "rd", isa),
                     imm & 0xFF, (imm >> 8) & 0xFF)
    raise EncodingError(f"aarch64: cannot encode {op!r}")


def _branch_rel(instr: Instruction, bits: int) -> int:
    if instr.addr is None:
        raise EncodingError(f"aarch64: {instr.op} has no address assigned")
    if not isinstance(instr.target, int):
        raise EncodingError(
            f"aarch64: unresolved branch target {instr.target!r}")
    delta = instr.target - instr.addr
    if delta % WORD:
        raise EncodingError(f"aarch64: misaligned branch target {instr.target:#x}")
    rel = delta // WORD
    if not signed_fits(rel, bits):
        raise EncodingError(f"aarch64: branch displacement {delta} too far")
    return rel & ((1 << bits) - 1)


def arm_decode(data: bytes, offset: int, addr: int, isa: Isa) -> Instruction:
    if offset + WORD > len(data):
        raise DecodingError("aarch64: truncated instruction word")
    word = bytes(data[offset:offset + WORD])

    def done(instr: Instruction) -> Instruction:
        instr.addr = addr
        instr.size = WORD
        return instr

    if word == BYTES_NOP:
        return done(Instruction("nop"))
    if word == BYTES_BRK:
        return done(Instruction("trap"))
    if word == BYTES_RET:
        return done(Instruction("ret"))
    if word == BYTES_SVC:
        return done(Instruction("syscall"))

    op, b1, b2, b3 = word

    def reg(value: int) -> int:
        if value not in isa.registers.by_index:
            raise DecodingError(f"aarch64: bad register byte {value:#x}")
        return value

    if op == OP_MOV:
        return done(Instruction("mov", rd=reg(b1), rn=reg(b2)))
    if op in (OP_MOVZ, OP_MOVK1, OP_MOVK2, OP_MOVK3):
        name = {OP_MOVZ: "movz", OP_MOVK1: "movk1",
                OP_MOVK2: "movk2", OP_MOVK3: "movk3"}[op]
        return done(Instruction(name, rd=reg(b1), imm=b2 | (b3 << 8)))
    if op in (OP_LDR, OP_STR):
        name = "load" if op == OP_LDR else "store"
        return done(Instruction(name, rd=reg(b1), rn=reg(b2),
                                imm=to_signed(b3, 8) * 8))
    if op in (OP_LDP, OP_STP):
        name = "ldp" if op == OP_LDP else "stp"
        return done(Instruction(name, rd=reg(b1), rm=reg(b2),
                                imm=to_signed(b3, 8) * 8))
    if op in OPCODE_TO_BINOP:
        return done(Instruction(OPCODE_TO_BINOP[op], rd=reg(b1), rn=reg(b2),
                                rm=reg(b3)))
    if op == OP_ADDI:
        return done(Instruction("addi", rd=reg(b1), rn=reg(b2), imm=b3))
    if op == OP_SUBI:
        return done(Instruction("addi", rd=reg(b1), rn=reg(b2), imm=-b3))
    if op == OP_LEA:
        return done(Instruction("lea", rd=reg(b1), rn=reg(b2),
                                imm=to_signed(b3, 8) * 8))
    if op == OP_CMP:
        return done(Instruction("cmp", rn=reg(b1), rm=reg(b2)))
    if op == OP_CMPI:
        return done(Instruction("cmpi", rn=reg(b1), imm=to_signed(b2, 8)))
    if op in (OP_B, OP_BL):
        rel = to_signed(b1 | (b2 << 8) | (b3 << 16), 24)
        name = "b" if op == OP_B else "call"
        return done(Instruction(name, target=addr + rel * WORD))
    if op == OP_BCC:
        if b1 not in CC_TO_COND:
            raise DecodingError(f"aarch64: bad condition code {b1}")
        rel = to_signed(b2 | (b3 << 8), 16)
        return done(Instruction("bcc", cond=CC_TO_COND[b1],
                                target=addr + rel * WORD))
    if op in (OP_TLSLOAD, OP_TLSSTORE):
        name = "tlsload" if op == OP_TLSLOAD else "tlsstore"
        return done(Instruction(name, rd=reg(b1), imm=b2 | (b3 << 8)))
    raise DecodingError(f"aarch64: unknown opcode {op:#x}")


ARM_ABI = Abi(
    stack_pointer="sp",
    frame_pointer="x29",
    link_register="x30",
    return_reg="x0",
    arg_regs=("x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7"),
    scratch_regs=("x9", "x10", "x11", "x12", "x13", "x14", "x15",
                  "x16", "x17", "x19", "x20", "x21", "x22", "x23"),
    syscall_number_reg="x8",
    syscall_arg_regs=("x0", "x1", "x2"),
    callee_saved=("x19", "x20", "x21", "x22", "x23", "x24", "x25",
                  "x26", "x27", "x28"),
    stack_alignment=16,
    # Model of the aarch64 libc TCB layout offset — deliberately different
    # from x86_64's so the rewriter must fix it up (paper §III-C, TLS).
    tls_block_offset=32,
)

ARM_ISA = Isa(
    name="aarch64",
    wordsize=8,
    registers=ARM_REGISTERS,
    abi=ARM_ABI,
    encode_fn=arm_encode,
    decode_fn=arm_decode,
    size_fn=arm_size,
    nop_bytes=BYTES_NOP,
    trap_bytes=BYTES_BRK,
    ret_bytes=BYTES_RET,
    fixed_width=WORD,
    cost_table={"load": 2, "store": 2, "ldp": 2, "stp": 2, "tlsload": 2,
                "tlsstore": 2, "mul": 4, "sdiv": 16, "srem": 16,
                "call": 2, "syscall": 24},
)
