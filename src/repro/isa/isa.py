"""ISA and ABI descriptors plus the architecture-neutral instruction form.

Both simulated ISAs share one *semantic* instruction vocabulary (the
mnemonics below) so that a single interpreter can execute either, while
each ISA supplies its own byte-level encoder/decoder, register file, and
ABI. This mirrors how Dapper's compiler lowers one LLVM IR to two machine
ISAs: semantics are shared, encodings and conventions are not.

Mnemonics
---------

====== =========================================== =================
op      semantics                                   operands
====== =========================================== =================
nop     no-op                                       —
trap    software breakpoint (int3 / brk #0)         —
mov     rd = rn                                     rd, rn
movi    rd = imm (pseudo on arm: movz+movk*)        rd, imm
load    rd = mem64[rn + imm]                        rd, rn, imm
store   mem64[rn + imm] = rd                        rd, rn, imm
ldp     rd = mem64[fp+imm]; rm = mem64[fp+imm+8]    rd, rm, imm (arm)
stp     mem64[fp+imm] = rd; [fp+imm+8] = rm         rd, rm, imm (arm)
lea     rd = rn + imm                               rd, rn, imm
push    sp -= 8; mem64[sp] = rd                     rd (x86)
pop     rd = mem64[sp]; sp += 8                     rd (x86)
add..   rd = rn OP rm (x86 encoder requires rd==rn) rd, rn, rm
addi    rd = rn + imm (x86 encoder: rd==rn)         rd, rn, imm
cmp     flags = sign(rn - rm)                       rn, rm
cmpi    flags = sign(rn - imm)                      rn, imm
b       pc = target                                 target
bcc     if cond(flags): pc = target                 cond, target
call    push/lr return addr; pc = target            target
ret     pc = return addr                            —
syscall trap into kernel (per-ABI arg registers)    —
tlsload rd = mem64[tls_base + imm]                  rd, imm
tlsstore mem64[tls_base + imm] = rd                 rd, imm
====== =========================================== =================

Binary ops: ``add sub mul sdiv srem and orr eor lsl lsr``.
Conditions: ``eq ne lt le gt ge`` (signed).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import EncodingError
from .registers import RegisterFile

BINARY_OPS = ("add", "sub", "mul", "sdiv", "srem", "and", "orr", "eor",
              "lsl", "lsr")
CONDITIONS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Mnemonics whose ``target`` operand is a code address (branch-like).
BRANCH_OPS = ("b", "bcc", "call")

#: Mnemonics that end a superblock (see ``repro.vm.blocks``): control
#: flow leaves the straight line, enters the kernel, or parks the
#: thread. ``trap`` in particular MUST terminate a block — it is the
#: eqpoint checker's parking instruction, and a block spanning it would
#: change where the Dapper runtime observes the thread stop.
BLOCK_TERMINATOR_OPS = frozenset(("b", "bcc", "call", "ret", "trap",
                                  "syscall", ".byte"))


class Operand:
    """Marker namespace for operand kinds (documentation aid)."""

    REG = "reg"
    IMM = "imm"
    TARGET = "target"
    COND = "cond"


class Instruction:
    """One architecture-neutral instruction.

    ``rd``/``rn``/``rm`` are dense register indices into the owning ISA's
    register file. ``imm`` is a Python int (64-bit semantics applied at
    execution). ``target`` is an absolute code address for branch-like
    ops, or a symbolic label string before linking. ``label`` marks this
    instruction as a branch target during assembly.
    """

    __slots__ = ("op", "rd", "rn", "rm", "imm", "cond", "target",
                 "label", "addr", "size")

    def __init__(self, op: str, rd: int = None, rn: int = None,
                 rm: int = None, imm: int = None, cond: str = None,
                 target=None, label: str = None):
        self.op = op
        self.rd = rd
        self.rn = rn
        self.rm = rm
        self.imm = imm
        self.cond = cond
        self.target = target
        self.label = label
        self.addr: Optional[int] = None   # filled by assembler/disassembler
        self.size: Optional[int] = None   # filled by encoder/decoder

    def clone(self) -> "Instruction":
        new = Instruction(self.op, self.rd, self.rn, self.rm, self.imm,
                          self.cond, self.target, self.label)
        new.addr = self.addr
        new.size = self.size
        return new

    def __repr__(self) -> str:
        parts = [self.op]
        for name in ("rd", "rn", "rm", "imm", "cond", "target"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value:#x}" if isinstance(value, int)
                             and name in ("imm", "target") else f"{name}={value}")
        where = f" @{self.addr:#x}" if self.addr is not None else ""
        return f"<{' '.join(str(p) for p in parts)}{where}>"


class Abi:
    """Calling convention and platform constants for one ISA."""

    def __init__(self, *, stack_pointer: str, frame_pointer: str,
                 link_register: Optional[str], return_reg: str,
                 arg_regs: Sequence[str], scratch_regs: Sequence[str],
                 syscall_number_reg: str, syscall_arg_regs: Sequence[str],
                 callee_saved: Sequence[str], stack_alignment: int,
                 tls_block_offset: int, redzone: int = 0):
        self.stack_pointer = stack_pointer
        self.frame_pointer = frame_pointer
        self.link_register = link_register
        self.return_reg = return_reg
        self.arg_regs = tuple(arg_regs)
        self.scratch_regs = tuple(scratch_regs)
        self.syscall_number_reg = syscall_number_reg
        self.syscall_arg_regs = tuple(syscall_arg_regs)
        self.callee_saved = tuple(callee_saved)
        self.stack_alignment = stack_alignment
        # Offset of the TLS block from the TLS base register. The paper
        # notes this differs between libc ports per ISA and that Dapper
        # "simply updates the offset values" during transformation.
        self.tls_block_offset = tls_block_offset
        self.redzone = redzone


class Isa:
    """One simulated instruction-set architecture."""

    def __init__(self, *, name: str, wordsize: int, registers: RegisterFile,
                 abi: Abi, encode_fn: Callable[[Instruction, "Isa"], bytes],
                 decode_fn: Callable[[bytes, int, int, "Isa"], Instruction],
                 size_fn: Callable[[Instruction, "Isa"], int],
                 nop_bytes: bytes, trap_bytes: bytes, ret_bytes: bytes,
                 fixed_width: Optional[int] = None,
                 cost_table: Optional[Dict[str, int]] = None):
        self.name = name
        self.wordsize = wordsize
        self.registers = registers
        self.abi = abi
        self._encode = encode_fn
        self._decode = decode_fn
        self._size = size_fn
        self.nop_bytes = nop_bytes
        self.trap_bytes = trap_bytes
        self.ret_bytes = ret_bytes
        self.fixed_width = fixed_width
        self.cost_table = dict(cost_table or {})

    # -- register helpers --------------------------------------------------

    def reg(self, name: str) -> int:
        """Dense register index for a register name."""
        return self.registers.by_name[name].index

    def reg_name(self, index: int) -> str:
        return self.registers.by_index[index].name

    def dwarf_of(self, name: str) -> int:
        return self.registers.by_name[name].dwarf

    def dwarf_of_index(self, index: int) -> int:
        return self.registers.by_index[index].dwarf

    def index_of_dwarf(self, dwarf: int) -> int:
        return self.registers.by_dwarf[dwarf].index

    # -- encode / decode ----------------------------------------------------

    def encode(self, instr: Instruction) -> bytes:
        """Encode one instruction to bytes (target must be resolved)."""
        data = self._encode(instr, self)
        instr.size = len(data)
        return data

    def decode(self, data: bytes, offset: int = 0, addr: int = 0) -> Instruction:
        """Decode one instruction at ``data[offset:]`` located at ``addr``."""
        return self._decode(data, offset, addr, self)

    def size_of(self, instr: Instruction) -> int:
        """Encoded size in bytes — independent of final addresses."""
        return self._size(instr, self)

    def encode_block(self, instrs: Sequence[Instruction], base_addr: int) -> bytes:
        """Assign addresses and encode a sequence of instructions."""
        addr = base_addr
        out = bytearray()
        for instr in instrs:
            instr.addr = addr
            data = self.encode(instr)
            out += data
            addr += len(data)
        return bytes(out)

    def disassemble(self, data: bytes, base_addr: int = 0,
                    limit: Optional[int] = None) -> List[Instruction]:
        """Linear-sweep disassembly of a code blob.

        Undecodable bytes are skipped one at a time (recorded as ``.byte``
        pseudo-instructions) so the sweep is total — the gadget scanner
        relies on this behaviour.
        """
        out: List[Instruction] = []
        offset = 0
        end = len(data) if limit is None else min(limit, len(data))
        while offset < end:
            try:
                instr = self.decode(data, offset, base_addr + offset)
            except Exception:
                instr = Instruction(".byte", imm=data[offset])
                instr.addr = base_addr + offset
                instr.size = 1
            out.append(instr)
            offset += instr.size
        return out

    def cost(self, instr: Instruction) -> int:
        """Abstract cycle cost (used by the node timing model)."""
        return self.cost_table.get(instr.op, 1)

    # -- superblock decode hooks -------------------------------------------

    def is_block_terminator(self, instr: Instruction) -> bool:
        """True if ``instr`` must end a predecoded superblock."""
        return instr.op in BLOCK_TERMINATOR_OPS

    def decode_straight_line(self, fetch: Callable[[int], Instruction],
                             pc: int, max_instrs: int) -> List[Instruction]:
        """Decode the straight-line run starting at ``pc``.

        ``fetch`` decodes (or serves from cache) one instruction at an
        address and may raise on unmapped/undecodable bytes — the run
        simply ends there and the interpreter's one-step path reports
        the fault with the exact faulting pc. The returned list never
        contains a block terminator.
        """
        out: List[Instruction] = []
        cursor = pc
        for _ in range(max_instrs):
            try:
                instr = fetch(cursor)
            except Exception:
                break
            if instr.op in BLOCK_TERMINATOR_OPS:
                break
            out.append(instr)
            cursor += instr.size
        return out

    def __repr__(self) -> str:
        return f"<Isa {self.name}>"


def check_reg(instr: Instruction, field_name: str, isa: Isa) -> int:
    """Fetch and validate a register-index operand."""
    value = getattr(instr, field_name)
    if value is None or value not in isa.registers.by_index:
        raise EncodingError(
            f"{isa.name}: {instr.op} needs valid register in {field_name!r}, "
            f"got {value!r}")
    return value


def signed_fits(value: int, bits: int) -> bool:
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi


def to_signed(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value >> (bits - 1):
        value -= 1 << bits
    return value
