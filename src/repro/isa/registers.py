"""Register files with DWARF numbering.

The stackmap records in Dapper encode live-value locations using DWARF
register numbers (paper §III-C, Fig. 4), so both simulated ISAs carry the
*real* DWARF numbering of the architectures they model:

* x86-64: rax=0, rdx=1, rcx=2, rbx=3, rsi=4, rdi=5, rbp=6, rsp=7,
  r8..r15 = 8..15 (System V psABI).
* aarch64: x0..x30 = 0..30, sp = 31 (AArch64 DWARF ABI).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class Register:
    """One architectural register."""

    __slots__ = ("name", "index", "dwarf")

    def __init__(self, name: str, index: int, dwarf: int):
        self.name = name
        self.index = index      # dense index into the register array
        self.dwarf = dwarf      # DWARF register number

    def __repr__(self) -> str:
        return f"Register({self.name}, idx={self.index}, dwarf={self.dwarf})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Register)
                and (self.name, self.index, self.dwarf)
                == (other.name, other.index, other.dwarf))

    def __hash__(self) -> int:
        return hash((self.name, self.index, self.dwarf))


class RegisterFile:
    """All registers of one ISA, addressable by name, index, or DWARF number."""

    def __init__(self, registers: List[Register]):
        self.registers = list(registers)
        self.by_name: Dict[str, Register] = {r.name: r for r in registers}
        self.by_index: Dict[int, Register] = {r.index: r for r in registers}
        self.by_dwarf: Dict[int, Register] = {r.dwarf: r for r in registers}
        if len(self.by_name) != len(registers):
            raise ValueError("duplicate register name")
        if len(self.by_index) != len(registers):
            raise ValueError("duplicate register index")

    def __len__(self) -> int:
        return len(self.registers)

    def __iter__(self):
        return iter(self.registers)

    def __getitem__(self, key) -> Register:
        if isinstance(key, str):
            return self.by_name[key]
        return self.by_index[key]

    def dwarf(self, name: str) -> int:
        """DWARF number for a register name."""
        return self.by_name[name].dwarf

    def names(self) -> List[str]:
        return [r.name for r in self.registers]


def _make(names_with_dwarf: List[Tuple[str, int]]) -> RegisterFile:
    return RegisterFile([Register(name, idx, dwarf)
                         for idx, (name, dwarf) in enumerate(names_with_dwarf)])


# System V x86-64 DWARF register numbering.
X86_REGISTERS = _make([
    ("rax", 0), ("rdx", 1), ("rcx", 2), ("rbx", 3),
    ("rsi", 4), ("rdi", 5), ("rbp", 6), ("rsp", 7),
    ("r8", 8), ("r9", 9), ("r10", 10), ("r11", 11),
    ("r12", 12), ("r13", 13), ("r14", 14), ("r15", 15),
])

# AArch64 DWARF register numbering: x0..x30 then sp=31.
ARM_REGISTERS = _make(
    [(f"x{i}", i) for i in range(31)] + [("sp", 31)]
)
