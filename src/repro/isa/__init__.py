"""ISA substrate: two simulated instruction sets with real byte encodings.

``repro.isa.x86`` is a CISC-style, variable-length ISA modeled on x86-64
(16 general-purpose registers, ``0xCC`` trap, two-byte ``0F``-prefixed
conditional branches). ``repro.isa.arm`` is a RISC-style, fixed 4-byte
ISA modeled on aarch64 (31 general-purpose registers, load/store *pair*
instructions, the ``D4 20 00 00`` ``brk #0`` trap).

Both expose the same interface: an :class:`~repro.isa.isa.Isa` descriptor
with an assembler (:func:`encode`), a disassembler (:func:`decode`), an
ABI description, and DWARF register numbering — everything the Dapper
rewriter needs to translate state between them.
"""

from .registers import Register, RegisterFile
from .isa import Abi, Instruction, Isa, Operand
from .x86 import X86_ISA
from .arm import ARM_ISA

ISAS = {X86_ISA.name: X86_ISA, ARM_ISA.name: ARM_ISA}


def get_isa(name: str) -> Isa:
    """Look up an ISA by name (``"x86_64"`` or ``"aarch64"``)."""
    try:
        return ISAS[name]
    except KeyError:
        raise KeyError(f"unknown ISA {name!r}; known: {sorted(ISAS)}") from None


def other_isa(name: str) -> Isa:
    """Return the *other* ISA — convenient for cross-ISA tests."""
    for key, isa in ISAS.items():
        if key != name:
            return isa
    raise KeyError(name)


__all__ = [
    "Abi", "Instruction", "Isa", "Operand", "Register", "RegisterFile",
    "X86_ISA", "ARM_ISA", "ISAS", "get_isa", "other_isa",
]
