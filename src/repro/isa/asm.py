"""Label-based assembly helpers.

The code generators emit :class:`~repro.isa.isa.Instruction` lists whose
branch targets are either symbolic *labels* (strings, intra-function) or
symbol names (resolved by the linker). This module lays such a list out
at a base address, resolves intra-function labels, and encodes bytes.

Instruction sizes never depend on final addresses (x86 branches are
always rel32; arm address materialization always uses the full
movz+movk*3 form via ``movi_full``), so layout is a single pass.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import EncodingError
from .isa import BRANCH_OPS, Instruction, Isa


class AsmBlock:
    """A relocatable sequence of instructions (one function body)."""

    def __init__(self, isa: Isa, instrs: List[Instruction]):
        self.isa = isa
        self.instrs = instrs

    def layout(self) -> Dict[str, int]:
        """Assign intra-block byte offsets; return label → offset map."""
        labels: Dict[str, int] = {}
        offset = 0
        for instr in self.instrs:
            if instr.label is not None:
                if instr.label in labels:
                    raise EncodingError(f"duplicate label {instr.label!r}")
                labels[instr.label] = offset
            offset += self.isa.size_of(instr)
        self._size = offset
        self._labels = labels
        return labels

    @property
    def size(self) -> int:
        if not hasattr(self, "_size"):
            self.layout()
        return self._size

    def encode(self, base_addr: int,
               resolve_symbol: Optional[Callable[[str], int]] = None) -> bytes:
        """Encode at ``base_addr``, resolving labels and symbols.

        ``resolve_symbol`` maps global symbol names (call targets,
        address-of-symbol immediates marked with a string ``target``) to
        absolute addresses.
        """
        labels = self.layout()
        out = bytearray()
        addr = base_addr
        for instr in self.instrs:
            if instr.op in BRANCH_OPS and isinstance(instr.target, str):
                name = instr.target
                if name in labels:
                    resolved = base_addr + labels[name]
                elif resolve_symbol is not None:
                    resolved = resolve_symbol(name)
                else:
                    raise EncodingError(f"unresolved target {name!r}")
                # Do not mutate the instruction list: encoding must be
                # repeatable at a different base address.
                instr = instr.clone()
                instr.target = resolved
            elif instr.op == "movi_full" and isinstance(instr.target, str):
                if resolve_symbol is None:
                    raise EncodingError(f"unresolved symbol {instr.target!r}")
                instr = instr.clone()
                instr.imm = resolve_symbol(instr.target)
                instr.target = None
            instr.addr = addr
            data = self.isa.encode(instr)
            out += data
            addr += len(data)
        return bytes(out)


def movi_symbol(isa: Isa, rd: int, symbol: str) -> Instruction:
    """``movi_full rd, &symbol`` — resolved at link time.

    ``movi_full`` always uses the maximal encoding (10 bytes on x86_64,
    four words on aarch64) so that layout does not depend on where the
    linker ultimately places ``symbol``.
    """
    return Instruction("movi_full", rd=rd, imm=0, target=symbol)
