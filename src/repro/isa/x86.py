"""The CISC-style simulated ISA ("x86_64").

Variable-length encoding modeled on x86-64: one-byte opcodes with
register bytes and little-endian immediates, two-byte ``0F``-prefixed
conditional branches, a ``64`` segment-override prefix for TLS accesses,
``0xCC`` (``int3``) as the trap instruction and ``0xC3`` (``ret``).

Branch displacements are 32-bit and relative to the *end* of the
instruction, exactly like real x86 ``rel32`` operands.
"""

from __future__ import annotations

import struct

from ..errors import DecodingError, EncodingError
from .isa import (Abi, Instruction, Isa, check_reg, signed_fits, to_signed)
from .registers import X86_REGISTERS

# One-byte opcodes.
OP_NOP = 0x90
OP_TRAP = 0xCC
OP_RET = 0xC3
OP_PUSH = 0x50
OP_POP = 0x58
OP_MOV_RR = 0x89
OP_MOVI = 0xB8
OP_LOAD = 0x8B
OP_STORE = 0x88
OP_LEA = 0x8D
OP_ADDI = 0x83
OP_CMP = 0x39
OP_CMPI = 0x3D
OP_JMP = 0xE9
OP_CALL = 0xE8
OP_PFX_0F = 0x0F        # prefix: Jcc and syscall
OP_PFX_TLS = 0x64       # fs-segment override: TLS load/store
OP_SYSCALL2 = 0x05      # 0F 05

BINOP_TO_OPCODE = {
    "add": 0x01, "sub": 0x29, "mul": 0xAF, "sdiv": 0xF7, "srem": 0xF6,
    "and": 0x21, "orr": 0x09, "eor": 0x31, "lsl": 0xA0, "lsr": 0xA8,
}
OPCODE_TO_BINOP = {v: k for k, v in BINOP_TO_OPCODE.items()}

COND_TO_CC = {"eq": 0x84, "ne": 0x85, "lt": 0x8C, "le": 0x8E,
              "gt": 0x8F, "ge": 0x8D}
CC_TO_COND = {v: k for k, v in COND_TO_CC.items()}

_SIZES = {
    "nop": 1, "trap": 1, "ret": 1, "push": 2, "pop": 2, "mov": 3,
    "movi": 10, "movi_full": 10, "load": 7, "store": 7, "lea": 7,
    "addi": 6, "cmp": 3,
    "cmpi": 7, "b": 5, "bcc": 6, "call": 5, "syscall": 2,
    "tlsload": 7, "tlsstore": 7,
}
for _binop in BINOP_TO_OPCODE:
    _SIZES[_binop] = 3


def x86_size(instr: Instruction, isa: Isa) -> int:
    try:
        return _SIZES[instr.op]
    except KeyError:
        raise EncodingError(f"x86_64: unknown mnemonic {instr.op!r}") from None


def _i32(value: int) -> bytes:
    if not signed_fits(value, 32):
        raise EncodingError(f"x86_64: immediate {value:#x} exceeds 32 bits")
    return struct.pack("<i", value)


def _i64(value: int) -> bytes:
    return struct.pack("<q", to_signed(value, 64))


def _rel32(instr: Instruction, instr_size: int) -> bytes:
    if instr.addr is None:
        raise EncodingError(f"x86_64: {instr.op} has no address assigned")
    if not isinstance(instr.target, int):
        raise EncodingError(
            f"x86_64: unresolved branch target {instr.target!r}")
    return _i32(instr.target - (instr.addr + instr_size))


def x86_encode(instr: Instruction, isa: Isa) -> bytes:
    op = instr.op
    if op == "nop":
        return bytes([OP_NOP])
    if op == "trap":
        return bytes([OP_TRAP])
    if op == "ret":
        return bytes([OP_RET])
    if op == "push":
        return bytes([OP_PUSH, check_reg(instr, "rd", isa)])
    if op == "pop":
        return bytes([OP_POP, check_reg(instr, "rd", isa)])
    if op == "mov":
        return bytes([OP_MOV_RR, check_reg(instr, "rd", isa),
                      check_reg(instr, "rn", isa)])
    if op in ("movi", "movi_full"):
        return bytes([OP_MOVI, check_reg(instr, "rd", isa)]) + _i64(instr.imm)
    if op == "load":
        return bytes([OP_LOAD, check_reg(instr, "rd", isa),
                      check_reg(instr, "rn", isa)]) + _i32(instr.imm or 0)
    if op == "store":
        return bytes([OP_STORE, check_reg(instr, "rn", isa),
                      check_reg(instr, "rd", isa)]) + _i32(instr.imm or 0)
    if op == "lea":
        return bytes([OP_LEA, check_reg(instr, "rd", isa),
                      check_reg(instr, "rn", isa)]) + _i32(instr.imm or 0)
    if op in BINOP_TO_OPCODE:
        rd = check_reg(instr, "rd", isa)
        rn = check_reg(instr, "rn", isa)
        if rd != rn:
            raise EncodingError(
                f"x86_64: two-operand {op} requires rd == rn "
                f"(got rd={rd}, rn={rn})")
        return bytes([BINOP_TO_OPCODE[op], rd, check_reg(instr, "rm", isa)])
    if op == "addi":
        rd = check_reg(instr, "rd", isa)
        rn = check_reg(instr, "rn", isa)
        if rd != rn:
            raise EncodingError("x86_64: two-operand addi requires rd == rn")
        return bytes([OP_ADDI, rd]) + _i32(instr.imm or 0)
    if op == "cmp":
        return bytes([OP_CMP, check_reg(instr, "rn", isa),
                      check_reg(instr, "rm", isa)])
    if op == "cmpi":
        return bytes([OP_CMPI, check_reg(instr, "rn", isa), 0]) \
            + _i32(instr.imm or 0)
    if op == "b":
        return bytes([OP_JMP]) + _rel32(instr, 5)
    if op == "call":
        return bytes([OP_CALL]) + _rel32(instr, 5)
    if op == "bcc":
        if instr.cond not in COND_TO_CC:
            raise EncodingError(f"x86_64: unknown condition {instr.cond!r}")
        return bytes([OP_PFX_0F, COND_TO_CC[instr.cond]]) + _rel32(instr, 6)
    if op == "syscall":
        return bytes([OP_PFX_0F, OP_SYSCALL2])
    if op == "tlsload":
        return bytes([OP_PFX_TLS, OP_LOAD, check_reg(instr, "rd", isa)]) \
            + _i32(instr.imm or 0)
    if op == "tlsstore":
        return bytes([OP_PFX_TLS, OP_STORE, check_reg(instr, "rd", isa)]) \
            + _i32(instr.imm or 0)
    raise EncodingError(f"x86_64: cannot encode {op!r}")


def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise DecodingError("x86_64: truncated instruction")


def _read_i32(data: bytes, offset: int) -> int:
    _need(data, offset, 4)
    return struct.unpack_from("<i", data, offset)[0]


def _dec_reg(data: bytes, offset: int, isa: Isa) -> int:
    _need(data, offset, 1)
    reg = data[offset]
    if reg not in isa.registers.by_index:
        raise DecodingError(f"x86_64: bad register byte {reg:#x}")
    return reg


def x86_decode(data: bytes, offset: int, addr: int, isa: Isa) -> Instruction:
    _need(data, offset, 1)
    opcode = data[offset]

    def done(instr: Instruction, size: int) -> Instruction:
        instr.addr = addr
        instr.size = size
        return instr

    if opcode == OP_NOP:
        return done(Instruction("nop"), 1)
    if opcode == OP_TRAP:
        return done(Instruction("trap"), 1)
    if opcode == OP_RET:
        return done(Instruction("ret"), 1)
    if opcode == OP_PUSH:
        return done(Instruction("push", rd=_dec_reg(data, offset + 1, isa)), 2)
    if opcode == OP_POP:
        return done(Instruction("pop", rd=_dec_reg(data, offset + 1, isa)), 2)
    if opcode == OP_MOV_RR:
        return done(Instruction("mov", rd=_dec_reg(data, offset + 1, isa),
                                rn=_dec_reg(data, offset + 2, isa)), 3)
    if opcode == OP_MOVI:
        rd = _dec_reg(data, offset + 1, isa)
        _need(data, offset + 2, 8)
        imm = struct.unpack_from("<q", data, offset + 2)[0]
        return done(Instruction("movi", rd=rd, imm=imm), 10)
    if opcode in (OP_LOAD, OP_STORE, OP_LEA):
        a = _dec_reg(data, offset + 1, isa)
        b = _dec_reg(data, offset + 2, isa)
        imm = _read_i32(data, offset + 3)
        if opcode == OP_LOAD:
            return done(Instruction("load", rd=a, rn=b, imm=imm), 7)
        if opcode == OP_STORE:
            return done(Instruction("store", rd=b, rn=a, imm=imm), 7)
        return done(Instruction("lea", rd=a, rn=b, imm=imm), 7)
    if opcode in OPCODE_TO_BINOP:
        rd = _dec_reg(data, offset + 1, isa)
        rm = _dec_reg(data, offset + 2, isa)
        return done(Instruction(OPCODE_TO_BINOP[opcode], rd=rd, rn=rd, rm=rm), 3)
    if opcode == OP_ADDI:
        rd = _dec_reg(data, offset + 1, isa)
        imm = _read_i32(data, offset + 2)
        return done(Instruction("addi", rd=rd, rn=rd, imm=imm), 6)
    if opcode == OP_CMP:
        return done(Instruction("cmp", rn=_dec_reg(data, offset + 1, isa),
                                rm=_dec_reg(data, offset + 2, isa)), 3)
    if opcode == OP_CMPI:
        rn = _dec_reg(data, offset + 1, isa)
        imm = _read_i32(data, offset + 3)
        return done(Instruction("cmpi", rn=rn, imm=imm), 7)
    if opcode == OP_JMP:
        rel = _read_i32(data, offset + 1)
        return done(Instruction("b", target=addr + 5 + rel), 5)
    if opcode == OP_CALL:
        rel = _read_i32(data, offset + 1)
        return done(Instruction("call", target=addr + 5 + rel), 5)
    if opcode == OP_PFX_0F:
        _need(data, offset, 2)
        second = data[offset + 1]
        if second == OP_SYSCALL2:
            return done(Instruction("syscall"), 2)
        if second in CC_TO_COND:
            rel = _read_i32(data, offset + 2)
            return done(Instruction("bcc", cond=CC_TO_COND[second],
                                    target=addr + 6 + rel), 6)
        raise DecodingError(f"x86_64: bad 0F-prefixed opcode {second:#x}")
    if opcode == OP_PFX_TLS:
        _need(data, offset, 3)
        second = data[offset + 1]
        reg = _dec_reg(data, offset + 2, isa)
        imm = _read_i32(data, offset + 3)
        if second == OP_LOAD:
            return done(Instruction("tlsload", rd=reg, imm=imm), 7)
        if second == OP_STORE:
            return done(Instruction("tlsstore", rd=reg, imm=imm), 7)
        raise DecodingError(f"x86_64: bad TLS-prefixed opcode {second:#x}")
    raise DecodingError(f"x86_64: unknown opcode {opcode:#x}")


X86_ABI = Abi(
    stack_pointer="rsp",
    frame_pointer="rbp",
    link_register=None,
    return_reg="rax",
    arg_regs=("rdi", "rsi", "rdx", "rcx", "r8", "r9"),
    scratch_regs=("rax", "r10", "r11", "rbx", "r12", "r13", "r14", "r15"),
    syscall_number_reg="rax",
    syscall_arg_regs=("rdi", "rsi", "rdx"),
    callee_saved=("rbx", "r12", "r13", "r14", "r15"),
    stack_alignment=16,
    # Model of the glibc x86-64 TCB layout offset (TLS block follows the
    # thread pointer at this displacement).
    tls_block_offset=16,
)

X86_ISA = Isa(
    name="x86_64",
    wordsize=8,
    registers=X86_REGISTERS,
    abi=X86_ABI,
    encode_fn=x86_encode,
    decode_fn=x86_decode,
    size_fn=x86_size,
    nop_bytes=bytes([OP_NOP]),
    trap_bytes=bytes([OP_TRAP]),
    ret_bytes=bytes([OP_RET]),
    fixed_width=None,
    cost_table={"load": 2, "store": 2, "tlsload": 2, "tlsstore": 2,
                "mul": 3, "sdiv": 12, "srem": 12, "call": 2, "syscall": 20},
)
