"""Open-loop fleet traffic: nginx/redis sessions that keep arriving
while their hosts are live-migrated.

The model is open-loop on purpose (arrivals never slow down because the
server is struggling) — that is what makes migration blackouts *visible*
in the latency tail: a paused service keeps accumulating a queue, and
every queued request's latency includes the full wait it actually
experienced, so the p99 during a migration storm reflects
pause-induced queueing, not just service time.

Everything here is deterministic and shard-invariant by construction:

* arrivals come from a fractional-rate accumulator plus one jitter draw
  per tick from the service's *own* seeded stream (keyed by service id,
  consumed strictly in time order — no global RNG whose state would
  depend on event interleaving),
* latencies land in power-of-two log buckets, so percentiles are exact
  functions of integer bucket counts, not of float summation order.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Tuple

from ..core.costs import NodeProfile

#: log2 latency buckets in microseconds: bucket i covers
#: [2^(i-1), 2^i) µs; bucket 0 is < 1 µs, the last bucket is open-ended
N_BUCKETS = 40


class LatencyHistogram:
    """Power-of-two latency buckets with exact integer percentiles."""

    __slots__ = ("counts", "total")

    def __init__(self):
        self.counts = [0] * N_BUCKETS
        self.total = 0

    def record(self, seconds: float, count: int = 1) -> None:
        if count <= 0:
            return
        micros = int(seconds * 1e6)
        index = micros.bit_length() if micros > 0 else 0
        if index >= N_BUCKETS:
            index = N_BUCKETS - 1
        self.counts[index] += count
        self.total += count

    def percentile(self, p: float) -> float:
        """Upper bound (seconds) of the bucket holding the p-quantile."""
        if self.total == 0:
            return 0.0
        rank = int(p * self.total)
        if rank >= self.total:
            rank = self.total - 1
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen > rank:
                return (1 << index) / 1e6
        return (1 << (N_BUCKETS - 1)) / 1e6

    def merge(self, other: "LatencyHistogram") -> None:
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total


class ServiceTemplate:
    """One serving workload class (modeled on the registry's server apps).

    ``image_bytes`` / ``frames`` / ``threads`` describe the process a
    migration has to move — they feed the
    :class:`~repro.core.costs.MigrationCostModel` so a modeled fleet
    migration of an nginx instance costs what the calibrated pipeline
    says an nginx-sized image costs.
    """

    __slots__ = ("name", "arrival_rps", "request_instr", "image_bytes",
                 "frames", "threads")

    def __init__(self, *, name: str, arrival_rps: float,
                 request_instr: float, image_bytes: int, frames: int,
                 threads: int):
        self.name = name
        self.arrival_rps = arrival_rps
        self.request_instr = request_instr
        self.image_bytes = image_bytes
        self.frames = frames
        self.threads = threads

    def service_seconds(self, profile: NodeProfile) -> float:
        return self.request_instr / (profile.freq_hz * profile.ipc)

    def capacity_rps(self, profile: NodeProfile, share: float) -> float:
        """Requests/s this service can serve from ``share`` cores'
        worth of the node's compute."""
        return share * profile.freq_hz * profile.ipc / self.request_instr

    def __repr__(self) -> str:
        return f"<ServiceTemplate {self.name} {self.arrival_rps:.0f}rps>"


def fleet_templates() -> List[ServiceTemplate]:
    """The storm's serving mix: nginx- and redis-shaped sessions, with
    checkpoint footprints taken from the app registry's class-B
    calibration so migration costs match the real benchmark images."""
    from ..apps.registry import get_app
    nginx = get_app("nginx")
    redis = get_app("redis")
    return [
        ServiceTemplate(name="nginx", arrival_rps=180.0,
                        request_instr=2.0e6,
                        image_bytes=int(nginx.class_b_footprint),
                        frames=8, threads=nginx.threads),
        ServiceTemplate(name="redis", arrival_rps=700.0,
                        request_instr=4.5e5,
                        image_bytes=int(redis.class_b_footprint),
                        frames=6, threads=redis.threads),
    ]


class Service:
    """One serving instance: a FIFO of arrival cohorts on one node."""

    __slots__ = ("sid", "template", "node", "paused", "arrived", "served",
                 "backlog", "_rng", "_carry_in", "_carry_out", "_queue")

    def __init__(self, sid: int, template: ServiceTemplate, seed: int):
        self.sid = sid
        self.template = template
        self.node = -1
        self.paused = False
        self.arrived = 0
        self.served = 0
        self.backlog = 0
        # Keyed by (seed, sid) only: the stream belongs to this service
        # and is consumed one draw per tick in simulated-time order, so
        # it cannot observe shard interleaving.
        self._rng = random.Random((seed << 20) ^ 0x5EED ^ sid)
        self._carry_in = 0.0
        self._carry_out = 0.0
        self._queue: Deque[Tuple[float, int]] = deque()

    # -- lifecycle ---------------------------------------------------------

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    # -- one traffic tick --------------------------------------------------

    def absorb(self, now: float, dt: float, multiplier: float) -> int:
        """Open-loop arrivals for this tick (happens even while paused)."""
        jitter = 0.9 + 0.2 * self._rng.random()
        exact = self.template.arrival_rps * multiplier * dt * jitter \
            + self._carry_in
        count = int(exact)
        self._carry_in = exact - count
        if count > 0:
            self._queue.append((now, count))
            self.arrived += count
            self.backlog += count
        return count

    def drain(self, now: float, dt: float, capacity_rps: float,
              service_s: float, hist: LatencyHistogram,
              storm_hist: LatencyHistogram = None) -> int:
        """Serve up to this tick's capacity, oldest cohorts first.

        Each request's recorded latency is its true queueing delay —
        ``now`` minus the cohort's arrival time — plus service time, so
        a post-blackout burst drains with honestly large tail samples.
        """
        if self.paused or capacity_rps <= 0:
            return 0
        budget = capacity_rps * dt + self._carry_out
        done = 0
        while self._queue and budget >= 1.0:
            arrived_at, count = self._queue[0]
            take = count if count <= budget else int(budget)
            latency = (now - arrived_at) + service_s
            hist.record(latency, take)
            if storm_hist is not None:
                storm_hist.record(latency, take)
            budget -= take
            done += take
            if take == count:
                self._queue.popleft()
            else:
                self._queue[0] = (arrived_at, count - take)
        self.served += done
        self.backlog -= done
        # Unused fractional capacity only banks while a queue is
        # standing; an idle server cannot save up speed.
        self._carry_out = budget - int(budget) if self._queue else 0.0
        return done

    def __repr__(self) -> str:
        state = "paused" if self.paused else f"node={self.node}"
        return (f"<Service {self.sid} {self.template.name} {state} "
                f"backlog={self.backlog}>")


class TrafficModel:
    """Spike shaping: which services surge, when, and by how much."""

    #: every third service rides the spike — a correlated partial surge,
    #: like one tenant's traffic jumping while the rest stay calm
    SPIKE_STRIDE = 3

    def __init__(self, spike_start: float, spike_len: float,
                 spike_factor: float):
        self.spike_start = spike_start
        self.spike_len = spike_len
        self.spike_factor = spike_factor

    def in_window(self, now: float) -> bool:
        return self.spike_start <= now < self.spike_start + self.spike_len

    def multiplier(self, sid: int, now: float) -> float:
        if self.in_window(now) and sid % self.SPIKE_STRIDE == 0:
            return self.spike_factor
        return 1.0
