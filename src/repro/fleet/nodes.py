"""Fleet topology: thousands of lightweight nodes built from the
calibrated paper profiles.

A :class:`FleetNode` is deliberately *not* a
:class:`~repro.cluster.node.SimNode` — the cluster simulation models a
four-machine testbed with per-slot job objects, while the fleet needs
thousands of nodes whose per-barrier cost is a couple of integer reads.
What carries over unchanged is the calibration: every fleet node prices
compute, power, dollars and migration stages through the same
:class:`~repro.core.costs.NodeProfile` instances (and the same
:class:`~repro.core.costs.MigrationCostModel`) the real pipeline uses.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..core.costs import NodeProfile, rpi_profile, xeon_profile
from ..errors import FleetError
from .spec import FleetSpec

#: every 4th node is an edge board, mirroring the paper's 1-server +
#: 3-Pi testbed ratio inverted for a datacenter-heavy fleet
EDGE_EVERY = 4


class FleetNode:
    """One machine in the fleet: a profile, service slots, liveness."""

    __slots__ = ("id", "name", "profile", "profile_key", "slots",
                 "services", "alive", "dark_until", "reserved")

    def __init__(self, node_id: int, profile: NodeProfile,
                 profile_key: str):
        self.id = node_id
        self.name = f"node-{node_id:04d}"
        self.profile = profile
        self.profile_key = profile_key
        #: concurrent serving instances this node hosts (paper: 7 job
        #: threads on the 8-core Xeon, 3 on each 4-core Pi)
        self.slots = max(1, profile.cores - 1)
        self.services: Set[int] = set()
        self.alive = True
        self.dark_until = 0.0
        #: slots held by in-flight migrations targeting this node —
        #: counted as occupied so the placement scheduler cannot
        #: oversubscribe a destination mid-storm
        self.reserved = 0

    def occupancy(self) -> int:
        return len(self.services) + self.reserved

    def free_slots(self) -> int:
        return self.slots - self.occupancy()

    def utilization(self) -> float:
        return self.occupancy() / self.slots if self.slots else 1.0

    def power_watts(self) -> float:
        if not self.alive:
            return 0.0
        active = min(len(self.services), self.profile.cores)
        return self.profile.power_watts(active)

    def kill(self, until: float) -> None:
        self.alive = False
        self.dark_until = until

    def revive(self) -> None:
        self.alive = True
        self.dark_until = 0.0

    def __repr__(self) -> str:
        state = "up" if self.alive else f"dark<{self.dark_until:.1f}"
        return (f"<FleetNode {self.name} [{self.profile_key}] "
                f"{self.occupancy()}/{self.slots} {state}>")


def build_fleet(spec: FleetSpec) -> List[FleetNode]:
    """The deterministic fleet for a spec: a 3:1 mix of Xeon servers
    and Pi edge boards, in node-id order (the mix is positional, not
    random, so topology never depends on RNG state)."""
    xeon = xeon_profile()
    rpi = rpi_profile()
    nodes = []
    for i in range(spec.nodes):
        if i % EDGE_EVERY == EDGE_EVERY - 1:
            nodes.append(FleetNode(i, rpi, "rpi"))
        else:
            nodes.append(FleetNode(i, xeon, "xeon"))
    total_slots = sum(n.slots for n in nodes)
    if spec.n_services > total_slots:
        raise FleetError(
            f"{spec.n_services} services exceed fleet capacity "
            f"({total_slots} slots on {spec.nodes} nodes)")
    return nodes


def fleet_by_id(nodes: List[FleetNode]) -> Dict[int, FleetNode]:
    return {node.id: node for node in nodes}
