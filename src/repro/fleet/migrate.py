"""The concurrent migration scheduler: many staged migrations in
flight at once, sharing one content-addressed chunk store.

Each fleet migration walks the same staged transaction the real
:class:`~repro.core.migration.MigrationPipeline` walks — checkpoint,
recode, store, ship, verify, restore — priced through the same
:class:`~repro.core.costs.MigrationCostModel`, retried on injected
faults with the same bounded budget, and rolled back to the source
when the budget runs out. Three fleet-scale effects the four-machine
pipeline never sees are modeled explicitly:

* **shared store warmth** — the first migration of a template to a
  destination ships the full image; later ones ship only the cold
  fraction (``FleetSpec.warm_bp``, calibrated against real shared-store
  pipeline runs by :mod:`repro.fleet.calibrate`),
* **NIC contention** — every in-flight transfer brackets a
  :meth:`~repro.cluster.network.Network.begin_stream` on its
  destination, and a transfer that shares the destination NIC with
  ``k`` peers takes ``k``× as long,
* **blackout-driven tail latency** — the service is paused from
  checkpoint to restore (or to rollback), so its open-loop queue
  absorbs the blackout and drains it into the latency histogram.

Every state change runs inside barrier mail keyed by migration id, so
the whole storm's migration history is canonical regardless of how the
event core is sharded.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..core.costs import MigrationCostModel, rack_link
from .events import ShardedEventCore
from .nodes import FleetNode
from .scheduler import FleetScheduler
from .spec import FleetSpec
from .traffic import Service

#: the staged transaction, in pipeline order
STAGES = ("checkpoint", "recode", "store", "ship", "verify", "restore")

#: base retry backoff (doubles per attempt), matching the real
#: pipeline's backoff shape at fleet time scale
BACKOFF_S = 0.05


class FleetMigration:
    """One in-flight (or finished) modeled migration."""

    __slots__ = ("mid", "sid", "src", "dst", "reason", "state",
                 "stage_index", "attempts", "started_at", "finished_at",
                 "shipped_bytes", "stream_open", "faults", "gid")

    def __init__(self, mid: int, sid: int, src: int, dst: int,
                 reason: str, started_at: float,
                 gid: Optional[int] = None):
        self.mid = mid
        self.sid = sid
        self.src = src
        self.dst = dst
        self.reason = reason
        self.state = "active"           # active | prepared | done | rolled_back
        self.stage_index = 0
        self.attempts = [0] * len(STAGES)
        self.started_at = started_at
        self.finished_at = 0.0
        self.shipped_bytes = 0
        self.stream_open = False
        self.faults = 0
        #: coordinated-group id, or None for a solo migration
        self.gid = gid

    @property
    def stage(self) -> str:
        return STAGES[self.stage_index]

    def __repr__(self) -> str:
        return (f"<FleetMigration #{self.mid} svc{self.sid} "
                f"{self.src}->{self.dst} {self.state}@{self.stage}>")


class FleetMigrationScheduler:
    """Admits queued migrations under a bounded in-flight cap and
    drives each one's staged transaction through barrier mail."""

    def __init__(self, core: ShardedEventCore,
                 nodes: Dict[int, FleetNode],
                 services: Dict[int, Service],
                 network, spec: FleetSpec,
                 placement: FleetScheduler,
                 injector=None):
        self.core = core
        self.nodes = nodes
        self.services = services
        self.network = network
        self.spec = spec
        self.placement = placement
        self.injector = injector
        self.pending: Deque[Tuple[int, str, Optional[int]]] = deque()
        self.in_flight: Dict[int, FleetMigration] = {}
        self.migrating: Set[int] = set()        # service ids
        self.finished: List[FleetMigration] = []
        #: gid -> coordinated-group state (two-phase commit across the
        #: member migrations; see :meth:`submit_group`)
        self.groups: Dict[int, Dict] = {}
        self._next_gid = 0
        #: (dst node id, template name) pairs the shared store has
        #: already warmed — the per-destination transfer plan
        self.warm: Set[Tuple[int, str]] = set()
        self._models: Dict[Tuple[str, str], MigrationCostModel] = {}
        self._next_mid = 0
        # counters
        self.started = 0
        self.completed = 0
        self.rolled_back = 0
        self.resumed_durable = 0
        self.peak_in_flight = 0
        self.bytes_shipped = 0
        self.bytes_full = 0
        self.blackout_s = 0.0
        self.deferred = 0       # admissions refused for lack of a slot

    # -- cost model --------------------------------------------------------

    def _model(self, src: FleetNode, dst: FleetNode) -> MigrationCostModel:
        key = (src.profile_key, dst.profile_key)
        model = self._models.get(key)
        if model is None:
            model = MigrationCostModel(src.profile, dst.profile,
                                       rack_link())
            self._models[key] = model
        return model

    # -- admission ---------------------------------------------------------

    def submit(self, sid: int, reason: str) -> bool:
        """Queue one service for migration; duplicates are refused."""
        if sid in self.migrating:
            return False
        self.migrating.add(sid)
        self.pending.append((sid, reason, None))
        return True

    def submit_group(self, sids: List[int], reason: str) -> Optional[int]:
        """Queue a coordinated group: the members commit together or
        not at all. Each member walks the staged transaction like a
        solo migration but *holds* at the end of its last stage
        (state ``prepared``, destination still reserved, source still
        paused) until every member of the group is prepared — then all
        commit in one barrier. Any member exhausting its retry budget
        (or losing a node) aborts the whole group: every member rolls
        back to its source, exactly like the
        :class:`~repro.group.GroupCoordinator`'s commit-or-resume
        invariant at fleet scale. Admission is all-or-nothing: if any
        member is already migrating, the group is refused. Returns the
        group id, or ``None`` if refused."""
        if not sids or len(set(sids)) != len(sids):
            return None
        if any(sid in self.migrating for sid in sids):
            return None
        gid = self._next_gid
        self._next_gid += 1
        self.groups[gid] = {"sids": set(sids), "prepared": set(),
                            "aborted": False, "committed": False}
        for sid in sids:
            self.migrating.add(sid)
            self.pending.append((sid, reason, gid))
        return gid

    def pump(self, now: float) -> int:
        """Admit queued migrations up to the in-flight cap. Runs at
        barriers, so admission order is canonical. Prepared group
        members hold no stream and cost nothing, so they do not count
        against the cap — otherwise a large group could wedge the storm
        waiting for a sibling the cap keeps out."""
        admitted = 0
        retry: List[Tuple[int, str, Optional[int]]] = []

        def active() -> int:
            return sum(1 for m in self.in_flight.values()
                       if m.state == "active")
        while self.pending and active() < self.spec.max_in_flight:
            sid, reason, gid = self.pending.popleft()
            if gid is not None and self.groups[gid]["aborted"]:
                # A sibling already aborted the group while this member
                # sat queued; it never starts.
                self.migrating.discard(sid)
                continue
            if self._start(sid, reason, now, gid):
                admitted += 1
            else:
                retry.append((sid, reason, gid))
        self.pending.extend(retry)
        return admitted

    def _start(self, sid: int, reason: str, now: float,
               gid: Optional[int] = None) -> bool:
        service = self.services[sid]
        src = self.nodes[service.node]
        if not src.alive:
            # The host is dark; re-queue once it (or the service)
            # comes back.
            self.deferred += 1
            return False
        dst_id = self.placement.place(exclude={src.id})
        if dst_id is None:
            self.deferred += 1
            return False
        dst = self.nodes[dst_id]
        dst.reserved += 1
        self.placement.reindex(dst)
        mid = self._next_mid
        self._next_mid += 1
        migration = FleetMigration(mid, sid, src.id, dst_id, reason, now,
                                   gid=gid)
        self.in_flight[mid] = migration
        self.started += 1
        if len(self.in_flight) > self.peak_in_flight:
            self.peak_in_flight = len(self.in_flight)
        # Dapper stops the process at dump: blackout starts here and
        # ends at restore (dst) or rollback (src).
        service.pause()
        self._begin_stage(migration, now)
        return True

    # -- the staged transaction --------------------------------------------

    def _stage_seconds(self, migration: FleetMigration, stage: str) -> float:
        src = self.nodes[migration.src]
        dst = self.nodes[migration.dst]
        template = self.services[migration.sid].template
        model = self._model(src, dst)
        image = template.image_bytes
        if stage == "checkpoint":
            return model.checkpoint_seconds(image, template.threads)
        if stage == "recode":
            return model.recode_seconds(image, template.frames)
        if stage == "store":
            return model.store_seconds(image)
        if stage == "ship":
            return model.transfer_seconds(self._planned_bytes(migration))
        if stage == "verify":
            return model.verify_seconds(image)
        return model.restore_seconds(image, template.threads)

    def _planned_bytes(self, migration: FleetMigration) -> int:
        """Per-destination transfer plan: warm destinations receive
        only the cold fraction of the template's image."""
        template = self.services[migration.sid].template
        full = template.image_bytes
        if (migration.dst, template.name) in self.warm:
            return max(1, int(full * (1.0 - self.spec.warm_fraction)))
        return full

    def _begin_stage(self, migration: FleetMigration, now: float) -> None:
        stage = migration.stage
        src = self.nodes[migration.src]
        dst = self.nodes[migration.dst]
        fired: Optional[str] = None
        factor = 1.0
        if self.injector is not None:
            fired, factor = self.injector.migration_stage_fault(
                stage, src.name, dst.name)
        duration = self._stage_seconds(migration, stage) * factor
        attempts = migration.attempts[migration.stage_index]
        if attempts:
            duration += BACKOFF_S * (1 << (attempts - 1))
        if stage == "ship":
            # The destination NIC splits across concurrent inbound
            # transfers; a failed attempt holds its stream for the
            # full (wasted) duration too.
            streams = self.network.begin_stream(dst.name)
            migration.stream_open = True
            duration *= streams
        self.core.post(now + duration, (1, migration.mid),
                       lambda: self._stage_end(migration.mid, fired),
                       label=f"mig{migration.mid}:{stage}")

    def _stage_end(self, mid: int, fired: Optional[str]) -> None:
        migration = self.in_flight.get(mid)
        if migration is None or migration.state != "active":
            return      # rolled back (node loss) while this mail flew
        now = self.core.now
        if migration.stream_open:
            self.network.end_stream(self.nodes[migration.dst].name)
            migration.stream_open = False
        if fired is not None:
            migration.faults += 1
            index = migration.stage_index
            migration.attempts[index] += 1
            if migration.attempts[index] > self.spec.retry_budget:
                self._rollback(migration, now, f"{migration.stage}:{fired}")
            else:
                self._begin_stage(migration, now)
            return
        if migration.stage == "ship":
            template = self.services[migration.sid].template
            planned = self._planned_bytes(migration)
            self.bytes_shipped += planned
            self.bytes_full += template.image_bytes
            self.warm.add((migration.dst, template.name))
        if migration.stage_index == len(STAGES) - 1:
            if migration.gid is None:
                self._complete(migration, now)
            else:
                self._prepare(migration, now)
        else:
            migration.stage_index += 1
            self._begin_stage(migration, now)

    # -- coordinated groups --------------------------------------------------

    def _prepare(self, migration: FleetMigration, now: float) -> None:
        """A group member finished its last stage: it *holds* —
        destination reserved, source paused — until every sibling is
        prepared, then the whole group commits in one barrier."""
        group = self.groups[migration.gid]
        migration.state = "prepared"
        group["prepared"].add(migration.mid)
        if len(group["prepared"]) < len(group["sids"]):
            return
        group["committed"] = True
        for mid in sorted(group["prepared"]):
            member = self.in_flight[mid]
            member.state = "active"     # _complete finishes it as done
            self._complete(member, now)

    def _abort_group(self, gid: int, now: float, why: str) -> None:
        """A member failed: the whole group rolls back to its sources
        — queued members never start, prepared members release their
        holds, active members abort in place."""
        group = self.groups[gid]
        if group["aborted"]:
            return                      # already cascading
        group["aborted"] = True
        for mid in sorted(self.in_flight):
            member = self.in_flight.get(mid)
            if member is None or member.gid != gid:
                continue
            if member.state in ("active", "prepared"):
                member.state = "active"
                self._rollback(member, now, f"group{gid}:{why}")

    # -- outcomes ----------------------------------------------------------

    def _finish(self, migration: FleetMigration, now: float,
                state: str) -> None:
        migration.state = state
        migration.finished_at = now
        self.blackout_s += now - migration.started_at
        del self.in_flight[migration.mid]
        self.migrating.discard(migration.sid)
        self.finished.append(migration)

    def _complete(self, migration: FleetMigration, now: float) -> None:
        service = self.services[migration.sid]
        src = self.nodes[migration.src]
        dst = self.nodes[migration.dst]
        src.services.discard(migration.sid)
        self.placement.reindex(src)
        dst.reserved -= 1
        dst.services.add(migration.sid)
        self.placement.reindex(dst)
        service.node = dst.id
        if dst.alive:
            service.resume()
        self.completed += 1
        self._finish(migration, now, "done")

    def _rollback(self, migration: FleetMigration, now: float,
                  why: str) -> None:
        """The fleet's arm of the transactional rollback path: free the
        destination reservation and resume the untouched source."""
        if migration.stream_open:
            self.network.end_stream(self.nodes[migration.dst].name)
            migration.stream_open = False
        dst = self.nodes[migration.dst]
        dst.reserved -= 1
        self.placement.reindex(dst)
        service = self.services[migration.sid]
        src = self.nodes[migration.src]
        if src.alive:
            service.resume()
        # else: the service stays paused on the dark source and resumes
        # when the node respawns — the storm's revive path handles it.
        self.rolled_back += 1
        if self.injector is not None:
            self.injector.note("rollback", f"fleet:{why}",
                               f"svc{migration.sid} "
                               f"{src.name}->{dst.name}",
                               a=migration.mid, b=migration.faults)
        self._finish(migration, now, "rolled_back")
        if migration.gid is not None:
            # Commit-or-resume at fleet scale: one member down takes
            # the whole group back to its sources (re-entry is guarded
            # by the group's aborted flag).
            self._abort_group(migration.gid, now, why)

    def drain_admissions(self, now: float) -> None:
        """Past the storm horizon nothing new is admitted: withdraw
        queued-but-never-started requests, then abort any group that
        can no longer fully prepare — a withdrawn member would leave
        its prepared siblings holding their destinations forever."""
        for sid, _reason, _gid in self.pending:
            self.migrating.discard(sid)
        self.pending.clear()
        for gid, group in list(self.groups.items()):
            if group["committed"] or group["aborted"]:
                continue
            live = sum(1 for m in self.in_flight.values()
                       if m.gid == gid)
            if live < len(group["sids"]):
                self._abort_group(gid, now, "admissions-drained")

    def node_death(self, victim: int, now: float) -> int:
        """Chaos killed a node: every in-flight migration touching it
        takes the rollback path immediately (its pending stage mail is
        ignored as stale when it arrives).

        With ``spec.durable`` set the nodes hold crash-consistent
        stores (PR 10): a migration that lost only its *source* after
        its checkpoint durably landed in the shared store (past the
        ``store`` stage, or already ``prepared``) does **not** roll
        back — there is nothing on the dead node it still needs, so it
        resumes from the warm recovered store and completes on its
        destination. A lost destination, or a source lost before the
        checkpoint was durable, still rolls back."""
        rolled = 0
        store_stage = STAGES.index("store")
        for mid in sorted(self.in_flight):
            migration = self.in_flight.get(mid)
            if migration is None:
                # Already swept by a sibling's group-abort cascade.
                continue
            if migration.src != victim and migration.dst != victim:
                continue
            if (self.spec.durable
                    and migration.src == victim
                    and migration.dst != victim
                    and (migration.state == "prepared"
                         or migration.stage_index > store_stage)):
                self.resumed_durable += 1
                if self.injector is not None:
                    self.injector.note(
                        "resume", f"fleet:{migration.stage}:durable",
                        f"svc{migration.sid} survives src loss",
                        a=migration.mid)
                continue
            migration.faults += 1
            self._rollback(migration, now,
                           f"{migration.stage}:node-loss")
            rolled += 1
        return rolled

    # -- invariants --------------------------------------------------------

    def invariant_ok(self) -> bool:
        """Complete-or-rollback: nothing started is unaccounted for,
        and no coordinated group half-committed (members of one group
        never mix ``done`` with ``rolled_back``)."""
        if self.started != (self.completed + self.rolled_back
                            + len(self.in_flight)):
            return False
        if not all(m.state in ("done", "rolled_back")
                   for m in self.finished):
            return False
        for gid in self.groups:
            states = {m.state for m in self.finished if m.gid == gid}
            if "done" in states and "rolled_back" in states:
                return False
        return True
