"""The sharded discrete-event core.

One global :class:`~repro.cluster.events.EventQueue` serializes every
event in the fleet through a single heap — fine for a handful of nodes,
hostile to thousands. The sharded core partitions the fleet by node id
across per-shard queues and advances simulated time in **barrier
windows** of ``barrier_dt`` seconds:

1. every shard independently drains its queue up to the window's end —
   legal only because intra-window events are *node-local* by contract
   (they touch their own node's state plus commutative global counters),
2. at the barrier, cross-shard messages posted during the window are
   delivered in one canonical order — sorted by ``(due time, caller
   key)``, never by arrival order, which would depend on which shard
   ran first,
3. the barrier observer (the storm controller) runs global logic —
   scheduling decisions, chaos, energy metering, journaling — over
   state that every shard agrees on.

Because nothing observable depends on how nodes are partitioned, the
same spec produces the *same* fired-event trace, the same barrier
schedule, and the same state digests whether the core runs 1 shard or
64 — the fleet determinism tests pin exactly that, and the flight
recorder journals the barrier schedule (``EV_BARRIER``) so a recorded
storm replays bit-identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..cluster.events import EventQueue
from ..errors import FleetError

#: epsilon for "have we reached the horizon" float comparisons
_EPS = 1e-9


class ShardedEventCore:
    """Per-shard event queues with batched cross-shard barrier delivery."""

    def __init__(self, shards: int, barrier_dt: float):
        if shards < 1:
            raise FleetError(f"need at least one shard, got {shards}")
        if barrier_dt <= 0:
            raise FleetError(f"barrier_dt must be positive, got "
                             f"{barrier_dt}")
        self.queues: List[EventQueue] = [EventQueue(shard=i)
                                         for i in range(shards)]
        self.barrier_dt = barrier_dt
        self.now = 0.0
        self.barriers = 0
        self.fired = 0          #: total events executed (shards + barrier)
        #: observer called as ``on_barrier(index, when, fired_in_window)``
        #: after each window's shard work and mail delivery
        self.on_barrier: Optional[Callable[[int, float, int], None]] = None
        # Cross-shard mailbox: (due, key, payload-index, label, action).
        # The payload index keeps heap comparisons away from the
        # callables; ordering is (due, key) alone — caller keys must be
        # unique per (due) for a canonical order, which the fleet
        # guarantees by keying every message with its migration id /
        # node id / controller sequence number.
        self._mail: list = []
        self._mail_seq = itertools.count()

    @property
    def shards(self) -> int:
        return len(self.queues)

    def shard_of(self, node_id: int) -> int:
        return node_id % len(self.queues)

    # -- scheduling --------------------------------------------------------

    def schedule_node(self, when: float, node_id: int,
                      action: Callable[[], None], label: str = "") -> None:
        """Schedule a *node-local* event onto the node's shard.

        The action contract: it may read and write its own node's
        state, update commutative global counters, call
        :meth:`schedule_node` for the **same** node, and :meth:`post`
        messages — it must not touch another node directly, or the
        trace stops being shard-invariant.
        """
        self.queues[self.shard_of(node_id)].schedule(when, action, label)

    def post(self, when: float, key: Tuple, action: Callable[[], None],
             label: str = "") -> None:
        """Post a cross-shard message: delivered at the first barrier at
        or after ``when``, in ``(when, key)`` order.

        ``key`` is the caller's canonical tie-break (a tuple of ints /
        strings); two messages due at the same barrier are delivered in
        key order regardless of which shard — or which barrier action —
        posted them first.
        """
        if when < self.now - _EPS:
            raise FleetError(f"cannot post mail at {when} before "
                             f"now={self.now}")
        heapq.heappush(self._mail,
                       (when, key, next(self._mail_seq), label, action))

    # -- execution ---------------------------------------------------------

    def _deliver_mail(self, horizon: float) -> int:
        """Deliver every message due by ``horizon``.

        Messages already sit in a heap keyed ``(when, key, seq)``; the
        seq only breaks exact ``(when, key)`` collisions, which the
        canonical-key contract reserves for messages whose relative
        order cannot matter. Delivery may post new mail — a message due
        *this* barrier (e.g. a zero-delay follow-up) is delivered in
        the same sweep, after everything with a smaller key.
        """
        delivered = 0
        while self._mail and self._mail[0][0] <= horizon + _EPS:
            _when, _key, _seq, _label, action = heapq.heappop(self._mail)
            action()
            delivered += 1
        return delivered

    def run_until(self, horizon: float) -> int:
        """Advance the fleet to ``horizon``; returns events executed."""
        total = 0
        while self.now < horizon - _EPS:
            window_end = min(self.now + self.barrier_dt, horizon)
            fired = 0
            for queue in self.queues:
                fired += queue.run_until(window_end)
            self.now = window_end
            fired += self._deliver_mail(window_end)
            index = self.barriers
            self.barriers += 1
            self.fired += fired
            total += fired
            if self.on_barrier is not None:
                self.on_barrier(index, window_end, fired)
        return total

    def pending(self) -> int:
        """Events still queued across every shard and the mailbox."""
        return sum(len(q._heap) for q in self.queues) + len(self._mail)

    def merged_trace_keys(self) -> List[Tuple[float, int, int]]:
        """The heap keys of every still-queued shard event, merged in
        canonical ``(when, shard, seq)`` order — what a multi-shard
        trace merge sorts by (the shard id sits in the heap tuple
        exactly so this order is stable)."""
        keys: List[Tuple[float, int, int]] = []
        for queue in self.queues:
            keys.extend((when, shard, seq)
                        for when, shard, seq, _l, _a in queue._heap)
        return sorted(keys)

    def __repr__(self) -> str:
        return (f"<ShardedEventCore shards={self.shards} now={self.now:.2f} "
                f"barriers={self.barriers} fired={self.fired}>")
