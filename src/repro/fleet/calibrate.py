"""Calibrating the fleet's warm-transfer fraction against *real*
migrations through one shared chunk store.

The storm models a warm destination as receiving ``1 - warm_bp/10000``
of a template's image. That number is not invented: this module runs
several end-to-end :class:`~repro.core.migration.MigrationPipeline`
instances — real checkpoint, real cross-ISA recode, real
content-addressed transfer — all sharing one source store and one
destination store, exactly like fleet nodes sharing the chunk store.
The first migration ships the full image; every later one ships only
the chunks the destination is missing, and the measured warm fraction
feeds straight into :attr:`~repro.fleet.spec.FleetSpec.warm_bp`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..apps.registry import get_app
from ..core.migration import MigrationPipeline
from ..isa import get_isa
from ..store import CheckpointStore
from ..vm.kernel import Machine


class CalibrationResult:
    """Measured shipped/full byte pairs from shared-store migrations."""

    def __init__(self, app: str, transfers: List[Tuple[int, int]]):
        self.app = app
        #: (bytes shipped, bytes a full copy would have been), one per
        #: migration in execution order — the first is the cold ship
        self.transfers = transfers

    @property
    def cold_bytes(self) -> int:
        return self.transfers[0][0] if self.transfers else 0

    def warm_fractions(self) -> List[float]:
        """Dedup fraction of each warm (non-first) migration."""
        out = []
        for shipped, full in self.transfers[1:]:
            out.append(1.0 - shipped / full if full else 0.0)
        return out

    def warm_bp(self) -> int:
        """Calibrated basis points for :class:`FleetSpec.warm_bp` —
        the mean warm-migration dedup fraction, floored to stay
        conservative."""
        fractions = self.warm_fractions()
        if not fractions:
            return 0
        mean = sum(fractions) / len(fractions)
        return max(0, min(10_000, int(mean * 10_000)))

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "migrations": len(self.transfers),
            "transfers": [{"shipped": s, "full": f}
                          for s, f in self.transfers],
            "warm_bp": self.warm_bp(),
        }

    def __repr__(self) -> str:
        return (f"<CalibrationResult {self.app} "
                f"{len(self.transfers)} transfers "
                f"warm_bp={self.warm_bp()}>")


def run_shared_store_migrations(app: str = "nginx", destinations: int = 3,
                                warmup_steps: int = 4000,
                                src_store: Optional[CheckpointStore] = None,
                                dst_store: Optional[CheckpointStore] = None
                                ) -> CalibrationResult:
    """Run ``destinations`` real migrations of one app through shared
    source/destination chunk stores and measure what each one shipped.

    Each migration is a fresh source machine and a fresh destination
    machine (so the *processes* are independent, as in a fleet), but
    the stores persist across all of them — the destination store's
    growing chunk inventory is what makes migration *k+1* cheaper than
    migration *k*.
    """
    spec = get_app(app)
    program = spec.compile("small")
    src_store = src_store if src_store is not None else CheckpointStore()
    dst_store = dst_store if dst_store is not None else CheckpointStore()
    transfers: List[Tuple[int, int]] = []
    for index in range(destinations):
        pipeline = MigrationPipeline(
            Machine(get_isa("x86_64"), name=f"src{index}"),
            Machine(get_isa("aarch64"), name=f"dst{index}"),
            program, use_store=True,
            src_store=src_store, dst_store=dst_store)
        result = pipeline.run_and_migrate(warmup_steps=warmup_steps)
        stats = result.stats["store"]
        transfers.append((stats["bytes_shipped"],
                          stats["bytes_full_copy"]))
    return CalibrationResult(app, transfers)
