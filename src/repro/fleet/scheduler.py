"""Fleet placement: thousands of services scored onto thousands of
nodes without an O(nodes) argmin per decision.

The insight that makes placement cheap: two alive nodes with the same
profile class and the same occupancy are *interchangeable* under every
objective this scheduler supports — the score is a function of
``(profile, occupancy)`` only. So nodes live in buckets keyed by
``(profile class, occupancy)``, a placement decision scores one bucket
per (class, occupancy) pair — a dozen evaluations, not a fleet scan —
and the winner inside a bucket is simply the lowest node id, which
keeps every decision canonical (and therefore shard-count-invariant
and replayable).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.costs import NodeProfile
from .nodes import FleetNode

#: reference single-core speed (the Xeon) for the slowdown term
_REF_SPEED = 2.1e9 * 2.0


class Objective:
    """Weighted energy / dollar-cost / latency placement objective.

    Lower is better. The three terms are normalized to comparable
    magnitudes at the paper's calibrated profiles, so unit weights give
    a balanced tradeoff and a weight of 0 removes a concern entirely:

    * **energy** — marginal watts of activating one more core,
    * **cost** — the node's amortized ``usd_per_hour``,
    * **latency** — current occupancy (queueing pressure) plus how much
      slower than the reference core this node serves one request.
    """

    def __init__(self, energy: float = 1.0, cost: float = 1.0,
                 latency: float = 1.0):
        self.energy = energy
        self.cost = cost
        self.latency = latency

    def score(self, profile: NodeProfile, occupancy: int,
              slots: int) -> float:
        slowdown = _REF_SPEED / (profile.freq_hz * profile.ipc) - 1.0
        return (self.energy * profile.active_watts_per_core / 10.0
                + self.cost * profile.usd_per_hour
                + self.latency * (occupancy / slots + 0.25 * slowdown))

    def __repr__(self) -> str:
        return (f"<Objective energy={self.energy} cost={self.cost} "
                f"latency={self.latency}>")


class FleetScheduler:
    """Bucketed greedy placement over ``(profile class, occupancy)``.

    Buckets hold node ids in min-heaps with lazy invalidation: a node
    is (re)pushed whenever its occupancy or liveness changes
    (:meth:`reindex`), and stale entries are discarded at pop time by
    checking the node's *current* state against the bucket it was
    popped from. Each mutation adds at most one heap entry, so the
    amortized cost stays logarithmic.
    """

    def __init__(self, nodes: Iterable[FleetNode],
                 objective: Optional[Objective] = None):
        self.objective = objective or Objective()
        self.nodes: Dict[int, FleetNode] = {n.id: n for n in nodes}
        self._profiles: Dict[str, Tuple[NodeProfile, int]] = {}
        self._buckets: Dict[Tuple[str, int], List[int]] = {}
        for node in self.nodes.values():
            self._profiles.setdefault(node.profile_key,
                                      (node.profile, node.slots))
            self.reindex(node)

    # -- bucket maintenance ------------------------------------------------

    def reindex(self, node: FleetNode) -> None:
        """(Re)file a node under its current ``(class, occupancy)``."""
        if node.alive and node.free_slots() > 0:
            key = (node.profile_key, node.occupancy())
            heapq.heappush(self._buckets.setdefault(key, []), node.id)

    def _pop_valid(self, key: Tuple[str, int],
                   exclude: Set[int]) -> Optional[int]:
        heap = self._buckets.get(key)
        if not heap:
            return None
        skipped: List[int] = []
        found = None
        while heap:
            node_id = heapq.heappop(heap)
            node = self.nodes[node_id]
            if not node.alive or node.free_slots() <= 0 \
                    or node.occupancy() != key[1]:
                continue        # stale entry; current state is filed too
            if node_id in exclude:
                skipped.append(node_id)   # valid, just barred this call
                continue
            found = node_id
            break
        for node_id in skipped:
            heapq.heappush(heap, node_id)
        if found is not None:
            # The pick is about to gain an occupant; its entry for the
            # *new* occupancy is pushed by the caller's reindex().
            pass
        return found

    # -- placement ---------------------------------------------------------

    def place(self, exclude: Optional[Set[int]] = None) -> Optional[int]:
        """Best node id for one more service, or ``None`` if the fleet
        is full. Does not mutate the node — the caller claims the slot
        (service or reservation) and then calls :meth:`reindex`."""
        exclude = exclude or set()
        best: Optional[Tuple[float, str, int]] = None
        for profile_key, (profile, slots) in sorted(self._profiles.items()):
            for occupancy in range(slots):
                heap = self._buckets.get((profile_key, occupancy))
                if not heap:
                    continue
                score = self.objective.score(profile, occupancy, slots)
                candidate = (score, profile_key, occupancy)
                if best is None or candidate < best:
                    best = candidate
        while best is not None:
            node_id = self._pop_valid((best[1], best[2]), exclude)
            if node_id is not None:
                return node_id
            # That bucket was all stale/excluded; rescan without it.
            return self._place_slow(exclude)
        return None

    def _place_slow(self, exclude: Set[int]) -> Optional[int]:
        """Fallback full scan — only reached when every entry of the
        winning bucket was stale or excluded, which chaos can arrange."""
        best: Optional[Tuple[float, int]] = None
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            if (not node.alive or node.free_slots() <= 0
                    or node_id in exclude):
                continue
            score = self.objective.score(node.profile, node.occupancy(),
                                         node.slots)
            if best is None or (score, node_id) < best:
                best = (score, node_id)
        return best[1] if best else None

    def place_all(self, count: int) -> List[int]:
        """Initial mass placement: ``count`` services, one
        :meth:`place` each, claiming a slot per pick. Returns the node
        id per service index; raises nothing — the spec already
        validated capacity."""
        picks: List[int] = []
        for _ in range(count):
            node_id = self.place()
            if node_id is None:
                break
            node = self.nodes[node_id]
            node.reserved += 1      # claimed; storm converts to service
            self.reindex(node)
            picks.append(node_id)
        return picks
