"""The fleet storm specification: one string describes one whole run.

Like :class:`~repro.chaos.faults.FaultPlan`, a :class:`FleetSpec` is a
compact, fully deterministic description of a run that round-trips
exactly through its canonical ``to_spec`` string — the string embeds in
flight-recorder journal headers (the ``fleet`` field), which is what
makes a thousand-node migration storm replayable bit-for-bit from its
own journal. Every simulation decision is a pure function of
``(FleetSpec, FaultPlan)``; wall-clock metrics (events/sec) are the
only outputs allowed to differ between two runs of the same spec.

Floats are serialized with ``repr`` — exact round-trip in Python 3 —
and fields appear in one canonical order, so equal specs produce
byte-equal strings.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import FleetError

#: (name, type, default) in canonical spec order
FIELDS: Tuple = (
    ("seed", int, 0),
    ("nodes", int, 64),
    ("shards", int, 4),
    ("duration", float, 60.0),
    ("barrier_dt", float, 0.25),
    ("tick_dt", float, 0.5),
    ("services", int, 0),            # 0 = one service per node
    ("spike_start", float, 10.0),
    ("spike_len", float, 20.0),
    ("spike_factor", float, 3.0),
    ("update_start", float, 15.0),
    ("update_fraction", float, 0.3),
    ("update_group", int, 0),        # 0 = solo; N>1 = coordinated groups

    ("max_in_flight", int, 16),
    ("retry_budget", int, 3),
    ("warm_bp", int, 9000),          # dedup fraction in basis points
    ("respawn", float, 10.0),
    ("rebalance_backlog", int, 400),
    ("durable", int, 0),             # 1 = nodes hold crash-consistent
                                     # stores: prepared migrations
                                     # resume after a node restart
)


class FleetSpec:
    """Seeded fleet-storm schedule: topology, traffic, and storm shape.

    * ``nodes`` / ``shards`` — fleet size and event-core sharding. The
      shard count must never change simulation *results*, only how the
      event core partitions work (the determinism tests pin this).
    * ``duration`` / ``barrier_dt`` / ``tick_dt`` — simulated seconds,
      cross-shard barrier cadence, and traffic tick cadence.
    * ``services`` — serving instances placed across the fleet
      (0 means one per node).
    * ``spike_*`` — the open-loop load spike: every third service's
      arrival rate multiplies by ``spike_factor`` during the window.
    * ``update_start`` / ``update_fraction`` — the rolling live-update
      wave: that fraction of services is submitted for concurrent
      migration, bounded by ``max_in_flight``.
    * ``update_group`` — when > 1, the update wave is submitted as
      coordinated groups of that size
      (:meth:`~repro.fleet.migrate.FleetMigrationScheduler.submit_group`):
      each group's members prepare independently but commit together or
      roll back together.
    * ``warm_bp`` — basis points of a template's image the shared chunk
      store dedups away once the destination has seen the template
      (calibrated by :mod:`repro.fleet.calibrate` from real
      shared-store :class:`~repro.core.migration.MigrationPipeline`
      runs).
    * ``respawn`` — seconds a chaos-killed node stays dark.
    * ``rebalance_backlog`` — per-service backlog (requests) beyond
      which the scheduler migrates it off an overloaded node.
    """

    def __init__(self, **kwargs):
        known = {name for name, _, _ in FIELDS}
        for key in kwargs:
            if key not in known:
                raise FleetError(f"unknown fleet spec field {key!r}; "
                                 f"known: {', '.join(sorted(known))}")
        for name, kind, default in FIELDS:
            value = kwargs.get(name, default)
            try:
                setattr(self, name, kind(value))
            except (TypeError, ValueError):
                raise FleetError(
                    f"bad fleet spec field {name}={value!r}") from None
        self.validate()

    # -- derived ----------------------------------------------------------

    @property
    def n_services(self) -> int:
        return self.services if self.services > 0 else self.nodes

    @property
    def warm_fraction(self) -> float:
        return self.warm_bp / 10_000.0

    def validate(self) -> None:
        if self.nodes < 1:
            raise FleetError(f"fleet needs at least 1 node, got "
                             f"{self.nodes}")
        if not 1 <= self.shards <= self.nodes:
            raise FleetError(f"shards must be in [1, nodes={self.nodes}], "
                             f"got {self.shards}")
        if self.duration <= 0 or self.barrier_dt <= 0 or self.tick_dt <= 0:
            raise FleetError("duration, barrier_dt and tick_dt must be "
                             "positive")
        if self.max_in_flight < 1:
            raise FleetError("max_in_flight must be >= 1")
        if not 0 <= self.warm_bp <= 10_000:
            raise FleetError(f"warm_bp must be in [0, 10000], got "
                             f"{self.warm_bp}")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise FleetError("update_fraction must be in [0, 1]")
        if self.update_group < 0:
            raise FleetError(f"update_group must be >= 0, got "
                             f"{self.update_group}")

    # -- spec round-trip (journal header embedding) ------------------------

    def to_spec(self) -> str:
        parts = []
        for name, kind, _default in FIELDS:
            value = getattr(self, name)
            parts.append(f"{name}={value!r}" if kind is float
                         else f"{name}={value}")
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "FleetSpec":
        kinds = {name: kind for name, kind, _ in FIELDS}
        kwargs = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in kinds:
                raise FleetError(f"unknown fleet spec field {key!r} in "
                                 f"{spec!r}")
            try:
                kwargs[key] = kinds[key](value)
            except ValueError:
                raise FleetError(f"bad fleet spec field {part!r} in "
                                 f"{spec!r}") from None
        return cls(**kwargs)

    def __eq__(self, other) -> bool:
        return (isinstance(other, FleetSpec)
                and self.to_spec() == other.to_spec())

    def __repr__(self) -> str:
        return f"<FleetSpec {self.to_spec()}>"
