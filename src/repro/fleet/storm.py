"""The migration storm: live traffic, rolling updates, chaos, and a
hundred concurrent migrations on a thousand-node fleet.

:class:`FleetStorm` wires the whole subsystem together and acts as the
barrier-time controller of the sharded event core:

* per-node traffic ticks (node-local, shard-parallel) keep every
  nginx/redis session absorbing and serving open-loop requests,
* at every barrier the controller — in one canonical order — rolls
  chaos node loss, launches the rolling-update wave, rebalances
  services whose backlog blew past the spec's threshold, admits queued
  migrations under the in-flight cap, meters energy and dollars, and
  journals the barrier (plus periodic fleet-state digests) to the
  flight recorder.

Determinism contract: every quantity in the journal and in
:meth:`state_digest` is a pure function of ``(FleetSpec, FaultPlan)``.
Only wall-clock throughput (events/sec) in the :class:`StormResult`
may differ between runs of the same spec.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional

from ..chaos import FaultInjector, FaultPlan
from ..cluster.network import Network
from ..core.costs import rack_link
from ..core.rng import RngService
from ..errors import FleetError
from ..replay import journal as jn
from .events import ShardedEventCore
from .migrate import FleetMigrationScheduler
from .nodes import FleetNode, build_fleet, fleet_by_id
from .scheduler import FleetScheduler, Objective
from .spec import FleetSpec
from .traffic import (LatencyHistogram, Service, TrafficModel,
                      fleet_templates)

#: barriers between rebalance scans (a full service sweep each)
REBALANCE_EVERY = 4

#: drain cap after the horizon: in-flight migrations get this many
#: extra barriers to complete or roll back before the run is declared
#: wedged (bounded stages × bounded retries makes hitting it a bug)
DRAIN_BARRIERS = 100_000


class StormResult:
    """Everything a storm run measured, JSON-ready via :meth:`to_dict`."""

    def __init__(self, storm: "FleetStorm", wall_s: float):
        spec = storm.spec
        migrations = storm.migrations
        self.spec = spec.to_spec()
        self.nodes = spec.nodes
        self.shards = spec.shards
        self.services = len(storm.services)
        self.duration_s = storm.core.now
        self.wall_s = wall_s
        self.events_total = storm.core.fired
        self.barriers = storm.core.barriers
        self.events_per_sec_wall = (storm.core.fired / wall_s
                                    if wall_s > 0 else 0.0)
        self.started = migrations.started
        self.completed = migrations.completed
        self.rolled_back = migrations.rolled_back
        self.resumed_durable = migrations.resumed_durable
        self.peak_in_flight = migrations.peak_in_flight
        self.deferred = migrations.deferred
        self.bytes_shipped = migrations.bytes_shipped
        self.bytes_full = migrations.bytes_full
        self.blackout_s = migrations.blackout_s
        self.migrations_per_sim_sec = (migrations.completed
                                       / storm.core.now
                                       if storm.core.now > 0 else 0.0)
        self.arrived = sum(s.arrived for s in storm.services.values())
        self.served = sum(s.served for s in storm.services.values())
        self.p50_ms = storm.hist.percentile(0.50) * 1e3
        self.p95_ms = storm.hist.percentile(0.95) * 1e3
        self.p99_ms = storm.hist.percentile(0.99) * 1e3
        self.p99_storm_ms = storm.storm_hist.percentile(0.99) * 1e3
        self.energy_kj = storm.energy_j / 1e3
        self.cost_usd = storm.cost_usd
        self.node_losses = storm.node_losses
        self.groups_committed = sum(
            1 for g in migrations.groups.values() if g["committed"])
        self.groups_aborted = sum(
            1 for g in migrations.groups.values() if g["aborted"])
        self.chaos_counts = (storm.injector.counts()
                             if storm.injector else {})
        self.invariant_ok = (migrations.invariant_ok()
                             and not migrations.in_flight)

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec,
            "nodes": self.nodes,
            "shards": self.shards,
            "services": self.services,
            "duration_s": round(self.duration_s, 6),
            "wall_s": round(self.wall_s, 3),
            "events_total": self.events_total,
            "barriers": self.barriers,
            "events_per_sec_wall": round(self.events_per_sec_wall, 1),
            "migrations": {
                "started": self.started,
                "completed": self.completed,
                "rolled_back": self.rolled_back,
                "resumed_durable": self.resumed_durable,
                "peak_in_flight": self.peak_in_flight,
                "deferred": self.deferred,
                "bytes_shipped": self.bytes_shipped,
                "bytes_full_copy": self.bytes_full,
                "blackout_s_total": round(self.blackout_s, 3),
                "migrations_per_sim_sec": round(
                    self.migrations_per_sim_sec, 3),
                "groups_committed": self.groups_committed,
                "groups_aborted": self.groups_aborted,
            },
            "traffic": {
                "arrived": self.arrived,
                "served": self.served,
            },
            "latency_ms": {
                "p50": round(self.p50_ms, 3),
                "p95": round(self.p95_ms, 3),
                "p99": round(self.p99_ms, 3),
                "p99_storm": round(self.p99_storm_ms, 3),
            },
            "energy_kj": round(self.energy_kj, 3),
            "cost_usd": round(self.cost_usd, 6),
            "node_losses": self.node_losses,
            "chaos": self.chaos_counts,
            "invariant_ok": self.invariant_ok,
        }

    def __repr__(self) -> str:
        return (f"<StormResult {self.completed}/{self.started} migrated "
                f"(+{self.rolled_back} rolled back) "
                f"p99={self.p99_ms:.1f}ms "
                f"{self.events_per_sec_wall:.0f}ev/s>")


class FleetStorm:
    """One fully-wired storm run over a sharded fleet."""

    def __init__(self, spec: FleetSpec, plan: Optional[FaultPlan] = None,
                 recorder=None, objective: Optional[Objective] = None,
                 digest_every: int = 8):
        self.spec = spec
        self.plan = plan
        self.recorder = recorder
        self.digest_every = digest_every
        self.nodes_list: List[FleetNode] = build_fleet(spec)
        self.nodes = fleet_by_id(self.nodes_list)
        self.network = Network(default_link=rack_link())
        self.injector: Optional[FaultInjector] = None
        if plan is not None:
            observer = recorder.on_rng if recorder is not None else None
            self.injector = FaultInjector(
                plan, rng=RngService(plan.seed, observer=observer,
                                     name="chaos"),
                recorder=recorder)
        self.placement = FleetScheduler(self.nodes_list, objective)
        self.traffic = TrafficModel(spec.spike_start, spec.spike_len,
                                    spec.spike_factor)
        self.core = ShardedEventCore(spec.shards, spec.barrier_dt)
        self.core.on_barrier = self._on_barrier
        self.hist = LatencyHistogram()
        self.storm_hist = LatencyHistogram()
        self.services: Dict[int, Service] = {}
        self._place_services()
        self.migrations = FleetMigrationScheduler(
            self.core, self.nodes, self.services, self.network, spec,
            self.placement, injector=self.injector)
        self.energy_j = 0.0
        self.cost_usd = 0.0
        self.node_losses = 0
        self._update_submitted = False
        self._draining = False
        self._digest_index = 0
        self._ran = False

    def _place_services(self) -> None:
        templates = fleet_templates()
        picks = self.placement.place_all(self.spec.n_services)
        if len(picks) != self.spec.n_services:
            raise FleetError(
                f"could only place {len(picks)} of "
                f"{self.spec.n_services} services")
        for sid, node_id in enumerate(picks):
            service = Service(sid, templates[sid % len(templates)],
                              self.spec.seed)
            service.node = node_id
            node = self.nodes[node_id]
            node.reserved -= 1          # placement claim becomes a tenant
            node.services.add(sid)
            self.services[sid] = service

    # -- node-local traffic ticks ------------------------------------------

    def _schedule_tick(self, node_id: int, when: float) -> None:
        self.core.schedule_node(when, node_id,
                                lambda: self._node_tick(node_id, when),
                                label=f"tick:{node_id}")

    def _node_tick(self, node_id: int, now: float) -> None:
        """One traffic tick for every service this node hosts.

        Node-local by contract: it touches the node's own services and
        the commutative global histograms/counters, nothing else.
        """
        node = self.nodes[node_id]
        dt = self.spec.tick_dt
        hosted = sorted(node.services)
        in_window = self.traffic.in_window(now)
        storm_hist = self.storm_hist if in_window else None
        share = node.slots / len(hosted) if hosted else 0.0
        for sid in hosted:
            service = self.services[sid]
            service.absorb(now, dt,
                           self.traffic.multiplier(sid, now))
            if node.alive:
                capacity = service.template.capacity_rps(node.profile,
                                                         share)
                service.drain(
                    now, dt, capacity,
                    service.template.service_seconds(node.profile),
                    self.hist, storm_hist)
        next_tick = now + dt
        if next_tick <= self.spec.duration + 1e-9:
            self._schedule_tick(node_id, next_tick)

    # -- the barrier controller --------------------------------------------

    def _on_barrier(self, index: int, when: float, fired: int) -> None:
        if self.injector is not None and self.injector.node_loss("fleet"):
            self._node_loss(when)
        if (not self._draining and not self._update_submitted
                and when >= self.spec.update_start):
            self._update_submitted = True
            wave = int(self.spec.update_fraction * len(self.services))
            size = self.spec.update_group
            if size > 1:
                for base in range(0, wave, size):
                    sids = list(range(base, min(base + size, wave)))
                    self.migrations.submit_group(sids, "update")
            else:
                for sid in range(wave):
                    self.migrations.submit(sid, "update")
        if not self._draining and index % REBALANCE_EVERY == 0:
            self._rebalance()
        self.migrations.pump(when)
        dt = self.spec.barrier_dt
        for node in self.nodes_list:
            self.energy_j += node.power_watts() * dt
            if node.alive:
                self.cost_usd += node.profile.cost_usd(dt)
        if self.recorder is not None:
            self.recorder.on_event(jn.EV_BARRIER,
                                   a=int(round(when * 1e6)), b=fired,
                                   instr=index)
            if self.digest_every and (index + 1) % self.digest_every == 0:
                self._emit_digest()

    def _rebalance(self) -> None:
        threshold = self.spec.rebalance_backlog
        for sid in sorted(self.services):
            service = self.services[sid]
            if (service.backlog > threshold
                    and sid not in self.migrations.migrating
                    and self.nodes[service.node].alive):
                self.migrations.submit(sid, "rebalance")

    def _node_loss(self, when: float) -> None:
        alive = [n.id for n in self.nodes_list if n.alive]
        if len(alive) <= 1:
            return      # never kill the last node
        assert self.injector is not None
        victim_id = self.injector.rng.choice(alive, label="node-loss-victim")
        victim = self.nodes[victim_id]
        victim.kill(until=when + self.spec.respawn)
        self.node_losses += 1
        for sid in victim.services:
            self.services[sid].pause()
        self.migrations.node_death(victim_id, when)
        self.core.post(when + self.spec.respawn, (2, victim_id),
                       lambda: self._revive(victim_id),
                       label=f"respawn:{victim_id}")

    def _revive(self, node_id: int) -> None:
        node = self.nodes[node_id]
        node.revive()
        self.placement.reindex(node)
        # A dead source normally rolls back and never re-admits, so
        # everything hosted here resumes — with whatever backlog
        # accumulated in the dark. In durable mode, though, a migration
        # may have survived this node's death on its recovered store
        # and still be completing toward its destination: that service
        # stays paused until its restore lands over there.
        for sid in sorted(node.services):
            if sid in self.migrations.migrating:
                continue
            self.services[sid].resume()

    def _emit_digest(self) -> None:
        digest = self.state_digest()
        self.recorder.on_event(jn.EV_DIGEST, a=self._digest_index,
                               payload=digest)
        self._digest_index += 1

    # -- digests -----------------------------------------------------------

    def state_digest(self) -> bytes:
        """Canonical digest of all observable fleet state — identical
        at the same barrier no matter how the core is sharded."""
        h = hashlib.blake2b(digest_size=16)
        for node in self.nodes_list:       # already in id order
            h.update(repr((node.id, node.alive, node.reserved,
                           sorted(node.services))).encode())
        for sid in sorted(self.services):
            service = self.services[sid]
            h.update(repr((sid, service.node, service.paused,
                           service.arrived, service.served,
                           service.backlog)).encode())
        m = self.migrations
        h.update(repr((m.started, m.completed, m.rolled_back,
                       m.resumed_durable,
                       m.bytes_shipped, sorted(m.in_flight),
                       self.hist.total, self.hist.counts,
                       self.storm_hist.total)).encode())
        return h.digest()

    # -- execution ---------------------------------------------------------

    def run(self) -> StormResult:
        if self._ran:
            raise FleetError("a FleetStorm instance runs exactly once")
        self._ran = True
        wall_start = time.perf_counter()
        for node in self.nodes_list:
            self._schedule_tick(node.id, self.spec.tick_dt)
        self.core.run_until(self.spec.duration)
        # Past the horizon nothing new is admitted; queued-but-never-
        # started requests are withdrawn and every in-flight migration
        # runs to completion or rollback — the invariant the CI smoke
        # and the determinism tests both assert.
        self._draining = True
        self.migrations.drain_admissions(self.core.now)
        drained = 0
        while self.migrations.in_flight and drained < DRAIN_BARRIERS:
            self.core.run_until(self.core.now + self.spec.barrier_dt)
            drained += 1
        if self.migrations.in_flight:
            raise FleetError(
                f"{len(self.migrations.in_flight)} migration(s) still "
                f"in flight after {drained} drain barriers")
        return StormResult(self, time.perf_counter() - wall_start)
