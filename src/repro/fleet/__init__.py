"""Fleet orchestration: Dapper's live state rewriting at datacenter
scale.

The paper demonstrates live program-state rewriting on a four-machine
testbed; this package asks the operational question a fleet operator
would: what happens when *thousands* of nodes keep serving open-loop
traffic while a scheduler live-migrates hundreds of them at once,
under load spikes, rolling updates and injected node loss?

* :mod:`~repro.fleet.spec` — one canonical spec string per run, the
  replay contract,
* :mod:`~repro.fleet.events` — the sharded event core with barrier-
  batched cross-shard delivery (deterministic across shard counts),
* :mod:`~repro.fleet.nodes` / :mod:`~repro.fleet.traffic` — the fleet
  topology and the nginx/redis open-loop sessions riding on it,
* :mod:`~repro.fleet.scheduler` — bucketed energy/cost/latency
  placement for thousands of concurrent jobs,
* :mod:`~repro.fleet.migrate` — many staged migrations in flight under
  one in-flight cap, sharing one warm chunk store, rolling back on
  chaos exactly like the real transactional pipeline,
* :mod:`~repro.fleet.storm` — the barrier-time controller tying it all
  together into one replayable migration storm,
* :mod:`~repro.fleet.calibrate` — real shared-store pipeline runs that
  calibrate the model's warm-transfer fraction.
"""

from .calibrate import CalibrationResult, run_shared_store_migrations
from .events import ShardedEventCore
from .migrate import FleetMigration, FleetMigrationScheduler, STAGES
from .nodes import FleetNode, build_fleet
from .scheduler import FleetScheduler, Objective
from .spec import FleetSpec
from .storm import FleetStorm, StormResult
from .traffic import (LatencyHistogram, Service, ServiceTemplate,
                      TrafficModel, fleet_templates)

__all__ = [
    "CalibrationResult", "run_shared_store_migrations",
    "ShardedEventCore", "FleetMigration", "FleetMigrationScheduler",
    "STAGES", "FleetNode", "build_fleet", "FleetScheduler", "Objective",
    "FleetSpec", "FleetStorm", "StormResult", "LatencyHistogram",
    "Service", "ServiceTemplate", "TrafficModel", "fleet_templates",
]
