"""Random DapperC program generator.

Produces deterministic, terminating, division-safe programs exercising
the whole language surface: globals, TLS variables, arrays, pointers
into the stack, call DAGs, loops, branches and mixed expressions. Every
generated program prints a stream of checksums, so differential runs
(x86_64 vs aarch64, native vs migrated, shuffled vs unshuffled) can be
compared byte-for-byte.

Safety invariants the generator maintains:

* all loops are ``while (i < N)`` with ``i`` incremented exactly once
  per iteration and N ≤ a small bound → termination,
* every division/modulo denominator has the form ``(expr % K + 1)`` or
  a non-zero constant → no divide-by-zero faults,
* array indices are always ``expr % size`` (sizes are powers of two and
  indices are pre-masked into range via a temp) → no out-of-bounds,
* calls form a DAG over previously generated functions → no unbounded
  recursion,
* functions stay within the 6-parameter ABI limit.
"""

from __future__ import annotations

import random
from typing import List

_BINOPS = ("+", "-", "*", "&", "|", "^")
_CMPOPS = ("<", "<=", ">", ">=", "==", "!=")


class _FuncSpec:
    def __init__(self, name: str, params: List[str]):
        self.name = name
        self.params = params


class _Gen:
    def __init__(self, seed: int, max_funcs: int = 4,
                 max_stmts: int = 6):
        self.rng = random.Random(seed)
        self.max_funcs = max_funcs
        self.max_stmts = max_stmts
        self.globals: List[str] = []
        self.global_arrays: List[tuple] = []     # (name, size)
        self.tls_vars: List[str] = []
        self.funcs: List[_FuncSpec] = []
        self._allow_calls = True
        # Per-function budget of call expressions: call fan-out compounds
        # through the DAG, so keep it ≤ 2 per function body.
        self._call_budget = 2

    # -- expressions ------------------------------------------------------

    def expr(self, scope: List[str], depth: int = 0) -> str:
        choices = ["const", "var", "bin"]
        if depth < 2:
            choices += ["bin", "cmp", "div"]
        # Calls are only generated outside loops (and at expression top
        # level): nested call chains inside loops multiply running time.
        if (self.funcs and depth == 0 and self._allow_calls
                and self._call_budget > 0):
            choices.append("call")
        kind = self.rng.choice(choices)
        if kind == "const" or not scope:
            return str(self.rng.randrange(0, 1000))
        if kind == "var":
            return self.rng.choice(scope)
        if kind == "bin":
            op = self.rng.choice(_BINOPS)
            return (f"({self.expr(scope, depth + 1)} {op} "
                    f"{self.expr(scope, depth + 1)})")
        if kind == "cmp":
            op = self.rng.choice(_CMPOPS)
            return (f"({self.expr(scope, depth + 1)} {op} "
                    f"{self.expr(scope, depth + 1)})")
        if kind == "div":
            op = self.rng.choice(("/", "%"))
            k = self.rng.randrange(2, 9)
            return (f"({self.expr(scope, depth + 1)} {op} "
                    f"({self.expr(scope, depth + 1)} % {k} + {k}))")
        # call: any previously generated function (DAG property)
        self._call_budget -= 1
        callee = self.rng.choice(self.funcs)
        args = ", ".join(self.expr(scope, 2)
                         for _ in callee.params)
        return f"{callee.name}({args})"

    # -- statements ----------------------------------------------------------

    def stmts(self, scope: List[str], indent: str, budget: int,
              loop_depth: int) -> List[str]:
        out: List[str] = []
        for _ in range(self.rng.randrange(1, budget + 1)):
            out.extend(self.stmt(scope, indent, loop_depth))
        return out

    def stmt(self, scope: List[str], indent: str,
             loop_depth: int) -> List[str]:
        kinds = ["assign", "assign", "global_assign"]
        if self.tls_vars:
            kinds.append("tls_assign")
        if self.global_arrays:
            kinds.append("array_write")
        if loop_depth < 2:
            kinds += ["loop", "if"]
        kind = self.rng.choice(kinds)
        # Loop counters (it*) are readable but never assignment targets —
        # otherwise a body assignment could reset one and loop forever.
        targets = [v for v in scope if not v.startswith("it")]
        if kind == "assign" and targets:
            target = self.rng.choice(targets)
            return [f"{indent}{target} = {self.expr(scope)};"]
        if kind == "global_assign" and self.globals:
            target = self.rng.choice(self.globals)
            return [f"{indent}{target} = ({target} + "
                    f"{self.expr(scope)}) % 1000000007;"]
        if kind == "tls_assign" and self.tls_vars:
            target = self.rng.choice(self.tls_vars)
            return [f"{indent}{target} = {target} + 1;"]
        if kind == "array_write" and self.global_arrays and scope:
            name, size = self.rng.choice(self.global_arrays)
            index = self.rng.choice(scope)
            value = self.expr(scope)
            lines = [
                f"{indent}{name}[({index} % {size} + {size}) % {size}] = "
                f"{value};"]
            return lines
        if kind == "loop" and scope:
            counter = f"it{loop_depth}_{self.rng.randrange(1000)}"
            bound = self.rng.randrange(2, 7)
            was_allowed = self._allow_calls
            self._allow_calls = False
            body = self.stmts(scope + [counter], indent + "    ",
                              2, loop_depth + 1)
            self._allow_calls = was_allowed
            return ([f"{indent}int {counter};",
                     f"{indent}{counter} = 0;",
                     f"{indent}while ({counter} < {bound}) {{"]
                    + body +
                    [f"{indent}    {counter} = {counter} + 1;",
                     f"{indent}}}"])
        if kind == "if" and scope:
            cond = self.expr(scope)
            then = self.stmts(scope, indent + "    ", 2, loop_depth + 1)
            other = self.stmts(scope, indent + "    ", 2, loop_depth + 1)
            return ([f"{indent}if (({cond}) % 2 == 0) {{"] + then
                    + [f"{indent}}} else {{"] + other + [f"{indent}}}"])
        if targets:
            return [f"{indent}{targets[0]} = {self.expr(scope)};"]
        return []

    # -- whole program ----------------------------------------------------------

    def generate(self) -> str:
        lines: List[str] = ["// generated by repro.testing.generator"]
        for i in range(self.rng.randrange(1, 4)):
            name = f"g{i}"
            self.globals.append(name)
            lines.append(f"global int {name};")
        for i in range(self.rng.randrange(0, 3)):
            size = self.rng.choice((4, 8, 16))
            name = f"ga{i}"
            self.global_arrays.append((name, size))
            lines.append(f"global int {name}[{size}];")
        for i in range(self.rng.randrange(0, 3)):
            name = f"t{i}"
            self.tls_vars.append(name)
            lines.append(f"tls int {name};")
        lines.append("")

        for i in range(self.rng.randrange(1, self.max_funcs + 1)):
            lines.extend(self._function(i))
            lines.append("")
        lines.extend(self._main())
        return "\n".join(lines)

    def _function(self, index: int) -> List[str]:
        params = [f"p{j}" for j in range(self.rng.randrange(1, 4))]
        name = f"fn{index}"
        locals_ = [f"v{j}" for j in range(self.rng.randrange(1, 4))]
        scope = params + locals_
        self._call_budget = 2
        lines = [f"func {name}({', '.join('int ' + p for p in params)})"
                 f" -> int {{"]
        for local in locals_:
            lines.append(f"    int {local};")
        for local in locals_:
            lines.append(f"    {local} = {self.rng.randrange(0, 100)};")
        # Optional stack-pointer pattern: a local array and a pointer.
        if self.rng.random() < 0.5:
            size = self.rng.choice((2, 4))
            lines.append(f"    int buf[{size}];")
            lines.append(f"    int *ptr;")
            lines.append(f"    ptr = &buf[{self.rng.randrange(size)}];")
            lines.append(f"    *ptr = {self.expr(scope)};")
            lines.append(f"    {locals_[0]} = {locals_[0]} + *ptr;")
        lines.extend(self.stmts(scope, "    ", self.max_stmts, 0))
        lines.append(f"    return ({self.expr(scope)}) % 1000000007;")
        lines.append("}")
        self.funcs.append(_FuncSpec(name, params))
        return lines

    def _main(self) -> List[str]:
        lines = ["func main() -> int {",
                 "    int i;",
                 "    int acc;",
                 "    acc = 0;",
                 "    i = 0;"]
        bound = self.rng.randrange(5, 11)
        lines.append(f"    while (i < {bound}) {{")
        for func in self.funcs:
            args = ", ".join(
                self.rng.choice(("i", "acc % 97", str(self.rng.randrange(50))))
                for _ in func.params)
            lines.append(f"        acc = (acc * 31 + {func.name}({args}))"
                         f" % 1000000007;")
        lines.append("        print(acc);")
        lines.append("        i = i + 1;")
        lines.append("    }")
        for name in self.globals:
            lines.append(f"    print({name});")
        for name in self.tls_vars:
            lines.append(f"    print({name});")
        lines.append("    return 0;")
        lines.append("}")
        return lines


def generate_program(seed: int, max_funcs: int = 4,
                     max_stmts: int = 6) -> str:
    """Generate one deterministic random DapperC program for ``seed``."""
    return _Gen(seed, max_funcs, max_stmts).generate()
