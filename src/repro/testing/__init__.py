"""Testing utilities: a random DapperC program generator for
differential testing of the whole stack (compiler → VM → CRIU → rewriter).
"""

from .generator import generate_program

__all__ = ["generate_program"]
