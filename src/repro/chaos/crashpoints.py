"""Systematic crash-point injection for the durable checkpoint store.

Where :class:`~repro.chaos.FaultInjector` rolls seeded dice, the
crash-point engine is *exhaustive*: every durability site the store's
backend touches — each chunk-file write / fsync / rename, each WAL
append and its fsync (the torn window between intent and apply), each
GC unlink, each compaction step — is numbered in execution order, and
the sweep kills the store at **every one of them**, once each:

1. a *counting pass* runs the operation cleanly over an instrumented
   backend, enumerating its durability sites and capturing the
   operation's completed end state;
2. one *trial per site* re-runs the operation on a fresh clone of the
   baseline simulated disk with a :class:`CrashPointInjector` armed at
   that site: the injector raises :class:`~repro.errors.StoreCrash`
   (sudden death — no rollback path may catch it), the
   :class:`~repro.store.SimDisk` tears its unsynced writes at seeded
   offsets, and the harness reopens the survivors with
   :meth:`~repro.store.CheckpointStore.recover`;
3. each reopened store is held to the crash-consistency invariants:
   fsck clean, refcount books balanced, committed checkpoints
   materialize byte-identically, uncommitted ones fully absent, and
   recovery idempotent (recovering twice yields the identical store).

The sweep is deterministic end to end — sites are counted, not
sampled; tears are seeded — so a failing site number reproduces
exactly, and (with recorders attached) two runs of the same sweep
journal bit-identically.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import StoreCrash
from ..store import CheckpointStore, DirBackend, SimDisk


class CrashPointInjector:
    """Counts durability sites; armed, it kills the process at one.

    With ``crash_at=None`` the injector only records the site labels it
    sees (the counting pass). Armed with a site index, it raises
    :class:`~repro.errors.StoreCrash` the moment that site is reached —
    *before* the site's durable primitive executes, so the crash lands
    in the window the discipline must survive.
    """

    def __init__(self, crash_at: Optional[int] = None, recorder=None):
        self.crash_at = crash_at
        self.recorder = recorder
        #: site labels in execution order (the enumeration)
        self.sites: List[str] = []

    def site(self, label: str) -> None:
        index = len(self.sites)
        self.sites.append(label)
        if self.crash_at is not None and index == self.crash_at:
            if self.recorder is not None:
                from ..replay.journal import EV_FAULT
                self.recorder.on_event(EV_FAULT,
                                       label=f"crashpoint:{label}",
                                       a=index)
            raise StoreCrash(
                f"simulated crash at durability site #{index} ({label})",
                site=label, index=index)


class SweepTrial:
    """One site's crash + recovery, and how it was judged."""

    __slots__ = ("index", "site", "report", "recovered_ids", "problems")

    def __init__(self, index: int, site: str, report, recovered_ids,
                 problems):
        self.index = index
        self.site = site
        self.report = report
        self.recovered_ids = list(recovered_ids)
        self.problems = list(problems)

    @property
    def ok(self) -> bool:
        return not self.problems

    def __repr__(self) -> str:
        verdict = "ok" if self.ok else f"FAIL({len(self.problems)})"
        return f"<SweepTrial #{self.index} {self.site} {verdict}>"


class SweepResult:
    """The whole matrix row: every site of one operation, judged."""

    def __init__(self, label: str, sites: List[str],
                 trials: List[SweepTrial]):
        self.label = label
        self.sites = list(sites)
        self.trials = trials

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.trials)

    def failures(self) -> List[SweepTrial]:
        return [t for t in self.trials if not t.ok]

    def __repr__(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.failures())} FAILED"
        return (f"<SweepResult {self.label}: {len(self.trials)} sites "
                f"{verdict}>")


def _capture(store: CheckpointStore) -> Dict[str, Dict[str, bytes]]:
    """Byte-level snapshot of every materializable checkpoint."""
    out: Dict[str, Dict[str, bytes]] = {}
    for cid in store.checkpoint_ids():
        if store.is_group(cid):
            continue
        out[cid] = dict(store.materialize(cid).files)
    return out


def sweep(setup: Callable[[CheckpointStore], object],
          op: Callable[[CheckpointStore, object], object],
          label: str = "op", seed: int = 0, atomic: bool = False,
          recorder_factory: Optional[Callable[[], object]] = None
          ) -> SweepResult:
    """Kill ``op`` at every durability site and judge each recovery.

    ``setup(store)`` builds the committed baseline on a fresh durable
    store and returns a context object; ``op(store, ctx)`` is the
    mutation under test, re-run once per site on a recovered store over
    a clone of the baseline disk. ``atomic=True`` additionally requires
    all-or-nothing visibility: the recovered checkpoint set must equal
    either the baseline set or the completed set, never a mix (puts,
    group commits and deletes are atomic; a chain adopt may legally
    surface a prefix of the chain).

    ``recorder_factory`` (e.g. ``FlightRecorder``) gives each trial's
    recovery its own recorder, so tests can prove two identically-seeded
    sweeps journal their ``EV_RECOVER`` events bit-identically.
    """
    # -- baseline ----------------------------------------------------------
    base_disk = SimDisk(seed=seed)
    base_store = CheckpointStore(backend=DirBackend(base_disk))
    ctx = setup(base_store)
    baseline_ids = set(base_store.checkpoint_ids())
    baseline_capture = _capture(base_store)

    def _reopen(disk: SimDisk, crash_at: Optional[int] = None,
                recorder=None):
        backend = DirBackend(disk)
        store, _report = CheckpointStore.recover(backend)
        # Arm only after recovery: recovery's own unlinks/compaction
        # are not part of the operation's site enumeration.
        injector = CrashPointInjector(crash_at=crash_at,
                                      recorder=recorder)
        backend.injector = injector
        return store, injector

    # -- counting pass -----------------------------------------------------
    count_store, counter = _reopen(base_disk.clone())
    op(count_store, ctx)
    sites = list(counter.sites)
    after_ids = set(count_store.checkpoint_ids())
    after_capture = _capture(count_store)

    # -- one trial per site ------------------------------------------------
    trials: List[SweepTrial] = []
    for index, site in enumerate(sites):
        recorder = recorder_factory() if recorder_factory else None
        disk = base_disk.clone()
        store, injector = _reopen(disk, crash_at=index,
                                  recorder=recorder)
        crashed = False
        try:
            op(store, ctx)
        except StoreCrash:
            crashed = True
        problems: List[str] = []
        if not crashed:
            problems.append(f"site #{index} ({site}) never fired")
        # Sudden death: the in-memory store is gone; the simulated disk
        # tears its unsynced writes and the survivors are reopened.
        disk.crash()
        backend = DirBackend(disk)
        recovered, report = CheckpointStore.recover(backend,
                                                    recorder=recorder)
        problems.extend(_judge(recovered, report, baseline_ids,
                               after_ids, baseline_capture,
                               after_capture, atomic))
        # Idempotency: recovering the recovered disk changes nothing.
        again, again_report = CheckpointStore.recover(DirBackend(disk))
        if set(again.checkpoint_ids()) != set(recovered.checkpoint_ids()):
            problems.append("recovery is not idempotent: second recover "
                            "yields a different checkpoint set")
        if not again_report.clean:
            problems.append("second recovery not clean: "
                            + "; ".join(again_report.fsck))
        trials.append(SweepTrial(index, site, report,
                                 recovered.checkpoint_ids(), problems))
    return SweepResult(label, sites, trials)


def _judge(store: CheckpointStore, report, baseline_ids, after_ids,
           baseline_capture, after_capture, atomic: bool) -> List[str]:
    """The crash-consistency invariants, as problem strings."""
    problems: List[str] = []
    if not report.clean:
        problems.extend(f"fsck: {p}" for p in report.fsck)
    recovered = set(store.checkpoint_ids())
    added = after_ids - baseline_ids
    removed = baseline_ids - after_ids
    # Committed-prefix visibility: nothing outside baseline ∪ op's own
    # additions may appear, nothing outside the op's own removals may
    # vanish — uncommitted state is fully absent, committed state is
    # fully present.
    floor = baseline_ids - removed
    ceiling = baseline_ids | added
    if not floor <= recovered:
        missing = sorted(c[:12] for c in floor - recovered)
        problems.append(f"committed checkpoints lost: {missing}")
    if not recovered <= ceiling:
        extra = sorted(c[:12] for c in recovered - ceiling)
        problems.append(f"phantom checkpoints appeared: {extra}")
    if atomic and recovered not in (baseline_ids, after_ids):
        problems.append(
            f"non-atomic visibility: recovered set matches neither "
            f"baseline nor completed state "
            f"(+{sorted(c[:12] for c in recovered - baseline_ids)} "
            f"-{sorted(c[:12] for c in baseline_ids - recovered)})")
    # Byte identity of everything that survived.
    expected = dict(baseline_capture)
    expected.update(after_capture)
    for cid in sorted(recovered):
        if store.is_group(cid):
            continue
        try:
            files = dict(store.materialize(cid).files)
        except Exception as exc:  # noqa: BLE001 — judged, not raised
            problems.append(f"checkpoint {cid[:12]} does not "
                            f"materialize: {exc}")
            continue
        if cid in expected and files != expected[cid]:
            problems.append(f"checkpoint {cid[:12]} materializes "
                            f"differently after recovery")
    return problems
