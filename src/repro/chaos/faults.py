"""The fault taxonomy and its seeded schedule (the :class:`FaultPlan`).

A plan is a compact, fully deterministic description of *what can go
wrong and how often* during one chaos run:

============  ==================================================================
``drop``       a link dies mid-transfer (scp / chunk ship / eviction migration)
``partition``  a node pair becomes unreachable and *stays* unreachable for a
               drawn number of attempts (outlasting the retry budget forces a
               rollback)
``latency``    a link slows down by a drawn factor — the transfer still
               succeeds but its simulated seconds grow
``corrupt``    one shipped chunk / image byte is flipped on the wire; the
               arrival-side integrity check (chunk re-hash, image digest)
               must catch it
``pskill``     the post-copy page server dies after a drawn number of page
               requests — lazy restores must degrade to pre-copy
``crash``      the node running a dump or restore dies mid-stage
============  ==================================================================

Probabilities are stored in basis points (1/10000) so the plan
round-trips exactly through its string ``spec`` — the spec is embedded
in flight-recorder journal headers, which is what makes a chaos run
replayable bit-for-bit from its own journal.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ReproError

#: every fault kind a plan can schedule, in canonical spec order
KINDS = ("drop", "partition", "latency", "corrupt", "pskill", "crash")

#: basis points per unit probability
BP = 10_000


def _to_bp(value: float, name: str) -> int:
    if not 0.0 <= value <= 1.0:
        raise ReproError(f"fault probability {name}={value!r} must be "
                         f"in [0, 1]")
    return int(round(value * BP))


class FaultPlan:
    """Seeded fault schedule: per-kind probabilities + the RNG seed."""

    def __init__(self, seed: int = 0, *, drop: float = 0.0,
                 partition: float = 0.0, latency: float = 0.0,
                 corrupt: float = 0.0, pskill: float = 0.0,
                 crash: float = 0.0):
        self.seed = int(seed)
        self.bp: Dict[str, int] = {
            "drop": _to_bp(drop, "drop"),
            "partition": _to_bp(partition, "partition"),
            "latency": _to_bp(latency, "latency"),
            "corrupt": _to_bp(corrupt, "corrupt"),
            "pskill": _to_bp(pskill, "pskill"),
            "crash": _to_bp(crash, "crash"),
        }

    def any_faults(self) -> bool:
        return any(self.bp.values())

    # -- spec round-trip (journal header embedding) -----------------------

    def to_spec(self) -> str:
        """Canonical ``seed=<n>,<kind>=<bp>,...`` string (zero-probability
        kinds omitted). Byte-stable, so journal headers are too."""
        parts = [f"seed={self.seed}"]
        parts.extend(f"{kind}={self.bp[kind]}" for kind in KINDS
                     if self.bp[kind])
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        plan = cls(0)
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            try:
                number = int(value)
            except ValueError:
                raise ReproError(
                    f"bad fault spec field {part!r} in {spec!r}") from None
            if key == "seed":
                plan.seed = number
            elif key in plan.bp:
                if not 0 <= number <= BP:
                    raise ReproError(f"fault spec {key}={number} out of "
                                     f"range [0, {BP}]")
                plan.bp[key] = number
            else:
                raise ReproError(f"unknown fault kind {key!r} in {spec!r}; "
                                 f"known: seed, {', '.join(KINDS)}")
        return plan

    def __repr__(self) -> str:
        return f"<FaultPlan {self.to_spec()}>"
