"""Chaos engine: seeded, journal-replayable fault injection.

A :class:`FaultPlan` says *what can go wrong and how often*; a
:class:`FaultInjector` draws every fault decision from a seeded
:class:`~repro.core.rng.RngService`, so chaos runs are deterministic and
— with a flight recorder attached — replay bit-identically from their
own journals.
"""

from .faults import BP, KINDS, FaultPlan
from .injector import FaultInjector, FiredFault

__all__ = ["BP", "KINDS", "FaultPlan", "FaultInjector", "FiredFault"]
