"""Chaos engine: seeded, journal-replayable fault injection.

A :class:`FaultPlan` says *what can go wrong and how often*; a
:class:`FaultInjector` draws every fault decision from a seeded
:class:`~repro.core.rng.RngService`, so chaos runs are deterministic and
— with a flight recorder attached — replay bit-identically from their
own journals.

The crash-point engine (:mod:`repro.chaos.crashpoints`) is the
exhaustive counterpart: instead of rolling dice it enumerates every
durability site the checkpoint store's backend touches and kills the
store at each one, reopening the survivors and asserting the
crash-consistency invariants.
"""

from .crashpoints import (CrashPointInjector, SweepResult, SweepTrial,
                          sweep)
from .faults import BP, KINDS, FaultPlan
from .injector import FaultInjector, FiredFault

__all__ = ["BP", "KINDS", "FaultPlan", "FaultInjector", "FiredFault",
           "CrashPointInjector", "SweepResult", "SweepTrial", "sweep"]
