"""The fault injector: schedulable faults, driven by the journal-aware RNG.

Every decision the injector makes is one draw from a seeded
:class:`~repro.core.rng.RngService`, so a chaos run is a pure function
of its :class:`~repro.chaos.faults.FaultPlan`: the same seed fires the
same faults at the same sites in the same order, and — because the RNG
service reports each draw to the flight recorder — a recorded chaos run
replays bit-identically from its own journal. Fired faults are
additionally journaled as ``EV_FAULT`` events (``label =
"chaos:<kind>@<site>"``).

Instrumented layers call one injection-site method each; a ``None``
injector is the universal no-op, so fault-free paths pay nothing:

* :meth:`link_fault` — :class:`~repro.cluster.network.Network` scp and
  the migration pipeline's transfer stage (drop / partition / latency),
* :meth:`ship_faults` — :func:`repro.store.transfer.ship` (mid-transfer
  abort, corrupted chunk),
* :meth:`corrupt_roll` — plain-scp image corruption,
* :meth:`node_fault` — dump / restore node crashes,
* :meth:`page_server_fault` — arms post-copy page-server death,
* :meth:`eviction_fault` — eviction-migration failures in the cluster
  scheduler's supervisor loop.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.rng import RngService
from ..errors import LinkDropFault, NodeCrashFault
from .faults import BP, FaultPlan


class FiredFault:
    """Record of one fault the injector actually fired."""

    __slots__ = ("kind", "site", "detail")

    def __init__(self, kind: str, site: str, detail: str = ""):
        self.kind = kind
        self.site = site
        self.detail = detail

    def __repr__(self) -> str:
        extra = f" {self.detail}" if self.detail else ""
        return f"<FiredFault {self.kind}@{self.site}{extra}>"


class FaultInjector:
    """Draws scheduled faults from a seeded plan at each injection site."""

    #: latency-spike factor range (uniform integer draw)
    LATENCY_FACTORS = (2, 12)
    #: how many failed attempts a partition persists for (uniform draw)
    PARTITION_SPAN = (2, 4)

    def __init__(self, plan: FaultPlan, rng: Optional[RngService] = None,
                 recorder=None):
        self.plan = plan
        self.rng = rng if rng is not None else RngService(plan.seed,
                                                          name="chaos")
        #: optional :class:`~repro.replay.recorder.FlightRecorder` —
        #: fired faults are journaled as EV_FAULT events through it
        self.recorder = recorder
        self.fired: List[FiredFault] = []
        # (a, b) -> failed attempts the partition still swallows
        self._partitions = {}

    # -- internals --------------------------------------------------------

    def _roll(self, kind: str, site: str) -> bool:
        """One probability draw. Zero-probability kinds draw nothing, so
        plans only consume RNG state for the kinds they enable."""
        bp = self.plan.bp[kind]
        if bp <= 0:
            return False
        return self.rng.randrange(BP, label=f"{kind}@{site}") < bp

    def _fire(self, kind: str, site: str, detail: str = "",
              a: int = 0, b: int = 0) -> FiredFault:
        fault = FiredFault(kind, site, detail)
        self.fired.append(fault)
        if self.recorder is not None:
            from ..replay.journal import EV_FAULT
            self.recorder.on_event(EV_FAULT,
                                   label=f"chaos:{kind}@{site}", a=a, b=b)
        return fault

    def note(self, kind: str, site: str, detail: str = "",
             a: int = 0, b: int = 0) -> FiredFault:
        """Record (and journal) a chaos *consequence* that was not itself
        a probability draw — a rollback, a pre-copy fallback — so replay
        can cross-check the transaction's control flow, not just its
        RNG stream."""
        return self._fire(kind, site, detail, a=a, b=b)

    def counts(self) -> dict:
        out: dict = {}
        for fault in self.fired:
            out[fault.kind] = out.get(fault.kind, 0) + 1
        return out

    # -- injection sites --------------------------------------------------

    def link_fault(self, src: str, dst: str, site: str = "scp") -> float:
        """Consult the link between ``src`` and ``dst`` *before* any
        bytes move.

        Returns a latency factor (1.0 = nominal) on survival; raises
        :class:`LinkDropFault` on a drop or while a partition holds.
        """
        pair = (src, dst)
        remaining = self._partitions.get(pair, 0)
        if remaining > 0:
            self._partitions[pair] = remaining - 1
            self._fire("partition", site, f"{src}->{dst}", a=remaining)
            raise LinkDropFault(
                f"{src}->{dst} partitioned ({remaining} attempt(s) until "
                f"heal)", kind="partition", site=site)
        if self._roll("partition", site):
            lo, hi = self.PARTITION_SPAN
            span = self.rng.randint(lo, hi, label=f"partition-span@{site}")
            self._partitions[pair] = span - 1
            self._fire("partition", site, f"{src}->{dst}", a=span)
            raise LinkDropFault(f"{src}->{dst} partitioned for {span} "
                                f"attempt(s)", kind="partition", site=site)
        if self._roll("drop", site):
            self._fire("drop", site, f"{src}->{dst}")
            raise LinkDropFault(f"link {src}->{dst} dropped mid-{site}",
                                kind="drop", site=site)
        if self._roll("latency", site):
            lo, hi = self.LATENCY_FACTORS
            factor = self.rng.randint(lo, hi, label=f"latency@{site}")
            self._fire("latency", site, f"x{factor}", a=factor)
            return float(factor)
        return 1.0

    def ship_faults(self, nchunks: int, site: str = "ship"
                    ) -> Tuple[Optional[int], Optional[int]]:
        """Mid-transfer faults for a chunked ship of ``nchunks`` chunks.

        Returns ``(drop_at, corrupt_at)`` chunk indices (``None`` =
        fault not scheduled). The caller aborts the transfer *at*
        ``drop_at`` (chunks before it have already landed — exactly the
        partial state rollback must clean up) and flips one byte of the
        chunk at ``corrupt_at`` so arrival re-hashing catches it.
        """
        drop_at = corrupt_at = None
        if nchunks > 0 and self._roll("drop", site):
            drop_at = self.rng.randrange(nchunks, label=f"drop-at@{site}")
            self._fire("drop", site, f"chunk {drop_at}/{nchunks}",
                       a=drop_at, b=nchunks)
        if nchunks > 0 and self._roll("corrupt", site):
            corrupt_at = self.rng.randrange(nchunks,
                                            label=f"corrupt-at@{site}")
            self._fire("corrupt", site, f"chunk {corrupt_at}/{nchunks}",
                       a=corrupt_at, b=nchunks)
        return drop_at, corrupt_at

    def corrupt_roll(self, site: str = "scp") -> bool:
        """One corruption decision for a non-chunked transfer."""
        if self._roll("corrupt", site):
            self._fire("corrupt", site)
            return True
        return False

    def node_fault(self, site: str, node: str) -> None:
        """Raise :class:`NodeCrashFault` if the node crashes mid-stage."""
        if self._roll("crash", site):
            self._fire("crash", site, node)
            raise NodeCrashFault(f"node {node} crashed during {site}",
                                 kind="crash", site=site)

    def page_server_fault(self, server) -> bool:
        """Maybe arm the page server to die mid post-copy.

        The request count at which it dies is drawn from the RNG, so
        the death lands at a deterministic point of the destination's
        fault-in stream.
        """
        if not self._roll("pskill", "page-server"):
            return False
        horizon = max(1, server.remaining_pages())
        after = self.rng.randint(0, horizon, label="pskill-after")
        server.schedule_death(after)
        self._fire("pskill", "page-server", f"after {after} requests",
                   a=after, b=horizon)
        return True

    def eviction_fault(self, node: str) -> bool:
        """Did the eviction migration toward ``node`` fail mid-flight?"""
        if self._roll("drop", f"evict:{node}"):
            self._fire("drop", f"evict:{node}")
            return True
        return False

    # -- fleet-scale sites ------------------------------------------------

    def migration_stage_fault(self, stage: str, src: str, dst: str
                              ) -> Tuple[Optional[str], float]:
        """One stage consultation for a *modeled* fleet migration.

        Mirrors the real pipeline's per-stage fault surface at model
        scale: a participating node can crash (any stage), the link can
        drop mid-transfer, or the link can merely slow down. Returns
        ``(fired kind or None, latency factor)``; the fleet's staged
        transaction turns a fired kind into a retry or a rollback, just
        as :class:`~repro.core.migration.MigrationPipeline` does for
        the real faults.
        """
        site = f"fleet:{stage}"
        if self._roll("crash", site):
            victim = self.rng.choice((src, dst),
                                     label=f"crash-victim@{site}")
            self._fire("crash", site, victim)
            return "crash", 1.0
        if stage in ("scp", "ship") and self._roll("drop", site):
            self._fire("drop", site, f"{src}->{dst}")
            return "drop", 1.0
        if stage in ("scp", "ship") and self._roll("latency", site):
            lo, hi = self.LATENCY_FACTORS
            factor = self.rng.randint(lo, hi, label=f"latency@{site}")
            self._fire("latency", site, f"x{factor}", a=factor)
            return None, float(factor)
        return None, 1.0

    def node_loss(self, site: str = "fleet") -> bool:
        """One barrier-level node-loss decision for the fleet.

        Fires at most once per consultation; the caller picks the
        victim with its own journaled draw (so the decision sequence is
        canonical regardless of shard count) and feeds every in-flight
        migration touching the victim into the rollback path.
        """
        if self._roll("pskill", f"{site}:node-loss"):
            self._fire("pskill", f"{site}:node-loss")
            return True
        return False
