"""Chaos trial harness: complete-or-rollback, never half-migrated.

One :class:`ChaosHarness` owns a fault-free *reference* migration of an
app (its final output and settled memory digest are the oracle) and
runs seeded chaos trials against it. Every trial must land in exactly
one of two states:

* **completed** — the migrated process ran to exit on the destination
  with output identical to the reference and byte-identical settled
  memory (a post-copy trial whose page server was killed must still
  match, via the pre-copy fallback), the source torn down;
* **rolled-back** — :class:`~repro.errors.MigrationRollback` was
  raised, the destination holds *no* image files, *no* adopted
  checkpoint, *no* orphan chunks (store verify clean), no restored
  process — and the source process resumed and ran to completion with
  the reference output.

Anything else — a half-migrated process, divergent output, leaked
destination state — fails the trial. ``tools/chaos.py`` drives this
over many seeds; ``tests/test_chaos.py`` pins specific ones.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from ..apps.registry import get_app
from ..core.migration import MigrationPipeline
from ..errors import MigrationRollback
from ..isa import get_isa
from ..verify import Quarantine
from ..vm.kernel import Machine, Process
from .faults import FaultPlan
from .injector import FaultInjector


def settle_lazy_pages(process: Process, page_server) -> None:
    """Install every page still pending at the server into the process
    address space and detach the fault-in hook.

    This puts lazy, fallback-completed and vanilla migrations on the
    same footing before hashing memory: whatever the serving history
    was, settled memory must be byte-identical.
    """
    aspace = process.aspace
    if page_server is not None:
        # pending_pages() works on a dead server too — death stops
        # *serving*, not the snapshot this harness audits against.
        for vaddr, data in page_server.pending_pages().items():
            # _pages membership, not page(): page() would re-enter the
            # fault-in hook.
            if (vaddr not in aspace._pages
                    and aspace.find_vma(vaddr) is not None):
                aspace.install_page(vaddr, data)
    aspace.missing_page_hook = None


def memory_digest(process: Process) -> str:
    """blake2b-128 over every mapped byte, VMAs in address order.

    Reads with the fault-in hook detached (settle first), so holes read
    as zeros identically on both sides of the comparison.
    """
    aspace = process.aspace
    hook, aspace.missing_page_hook = aspace.missing_page_hook, None
    try:
        h = hashlib.blake2b(digest_size=16)
        for vma in sorted(aspace.vmas, key=lambda v: v.start):
            h.update(aspace.read(vma.start, vma.end - vma.start,
                                 check=False))
        return h.hexdigest()
    finally:
        aspace.missing_page_hook = hook


class TrialResult:
    """One seeded chaos trial's verdict."""

    __slots__ = ("seed", "outcome", "ok", "detail", "faults", "attempts",
                 "fallback", "repaired_pages", "quarantined")

    def __init__(self, seed: int, outcome: str, ok: bool, detail: str,
                 faults: Dict[str, int], attempts: Dict[str, int],
                 fallback: bool, repaired_pages: int = 0,
                 quarantined: bool = False):
        self.seed = seed
        #: "completed" | "rolled-back"
        self.outcome = outcome
        #: did the complete-or-rollback invariant hold?
        self.ok = ok
        self.detail = detail
        self.faults = dict(faults)
        self.attempts = dict(attempts)
        self.fallback = fallback
        #: pages the restore guard auto-repaired before restoring
        self.repaired_pages = repaired_pages
        #: did the restore guard quarantine an unrepairable image?
        self.quarantined = quarantined

    def __repr__(self) -> str:
        mark = "ok" if self.ok else "FAIL"
        return (f"<Trial seed={self.seed} {self.outcome} [{mark}] "
                f"faults={self.faults}>")


class ChaosHarness:
    def __init__(self, app: str = "kmeans", *, lazy: bool = False,
                 use_store: bool = False, warmup: int = 5000,
                 retry_budget: int = 3, size: str = "small",
                 src_arch: str = "x86_64", dst_arch: str = "aarch64",
                 verify_gate: bool = False):
        self.app = app
        self.lazy = lazy
        self.use_store = use_store
        self.warmup = warmup
        self.retry_budget = retry_budget
        self.src_arch = src_arch
        self.dst_arch = dst_arch
        # verify-gate mode: disable the transfer stage's own arrival
        # digest check so injected corruption provably reaches — and is
        # judged by — the restore guard instead of being re-copied.
        self.verify_gate = verify_gate
        self.program = get_app(app).compile(size)
        # The oracle: one fault-free migration of the same shape.
        result, pipeline = self._migrate(None)
        settle_lazy_pages(result.process, result.page_server)
        self.expected_output = result.combined_output()
        self.expected_memory = memory_digest(result.process)

    def _pipeline(self, injector: Optional[FaultInjector]
                  ) -> MigrationPipeline:
        return MigrationPipeline(
            Machine(get_isa(self.src_arch), name="src"),
            Machine(get_isa(self.dst_arch), name="dst"),
            self.program, use_store=self.use_store, injector=injector,
            retry_budget=self.retry_budget,
            arrival_check=not self.verify_gate)

    def _migrate(self, injector: Optional[FaultInjector]):
        pipeline = self._pipeline(injector)
        result = pipeline.run_and_migrate(warmup_steps=self.warmup,
                                          lazy=self.lazy)
        return result, pipeline

    # -- one trial ---------------------------------------------------------

    def run_trial(self, plan: FaultPlan) -> TrialResult:
        """Run one seeded trial and audit the invariant."""
        injector = FaultInjector(plan)
        pipeline = self._pipeline(injector)
        process = pipeline.start()
        pipeline.src_machine.step_all(self.warmup)
        problems = []
        repaired_pages = 0
        try:
            result = pipeline.migrate(process, lazy=self.lazy)
        except MigrationRollback as exc:
            outcome = "rolled-back"
            txn = dict(exc.txn)
            attempts = dict(txn.get("attempts", {}))
            fallback = False
            problems += self._audit_rollback(pipeline, process)
        else:
            outcome = "completed"
            pipeline.dst_machine.run_process(result.process)
            # Read the transaction record only after the destination ran
            # to exit: the pre-copy fallback fires (and marks the txn)
            # at fault-in time, mid-execution.
            txn = result.stats.get("txn", {})
            attempts = dict(txn.get("attempts", {}))
            fallback = bool(txn.get("fallback"))
            repaired_pages = result.stats.get("verify", {}).get(
                "repaired_pages", 0)
            problems += self._audit_completed(pipeline, process, result)
        faults = injector.counts()
        quarantined = faults.get("quarantine", 0) > 0
        problems += self._audit_corrupt_caught(outcome, txn, faults,
                                               pipeline, repaired_pages)
        return TrialResult(plan.seed, outcome, not problems,
                           "; ".join(problems), faults, attempts, fallback,
                           repaired_pages=repaired_pages,
                           quarantined=quarantined)

    def _audit_completed(self, pipeline: MigrationPipeline,
                         source: Process, result) -> list:
        problems = []
        if not result.process.exited:
            problems.append("destination process did not run to exit")
        if result.combined_output() != self.expected_output:
            problems.append("output differs from fault-free reference")
        settle_lazy_pages(result.process, result.page_server)
        if memory_digest(result.process) != self.expected_memory:
            problems.append("settled memory differs from reference")
        if not source.exited:
            problems.append("source process still alive after completion")
        return problems

    def _audit_rollback(self, pipeline: MigrationPipeline,
                        source: Process) -> list:
        problems = []
        dst = pipeline.dst_machine
        leftover = dst.tmpfs.listdir(f"/images/{source.pid}")
        if leftover:
            problems.append(f"destination image tree not swept: "
                            f"{leftover}")
        if dst.processes:
            problems.append("destination has a (half-)restored process")
        if pipeline.dst_store is not None:
            orphans = pipeline.dst_store.chunks.orphans()
            if orphans:
                problems.append(f"{len(orphans)} orphan chunk(s) leaked")
            fsck = pipeline.dst_store.verify()
            if fsck:
                problems.append(f"destination store fsck: {fsck}")
        if source.stopped or source.exited:
            problems.append("source did not resume after rollback")
        pipeline.src_machine.run_process(source)
        if source.stdout() != self.expected_output:
            problems.append("resumed source output differs from "
                            "reference")
        return problems

    def _audit_corrupt_caught(self, outcome: str, txn: Dict,
                              faults: Dict[str, int],
                              pipeline: MigrationPipeline,
                              repaired_pages: int) -> list:
        """Every injected ``corrupt`` fault must be *provably* caught
        before restore — an undefined-behavior escape (a corrupted image
        silently restoring) fails the trial even when the output happens
        to match.

        Acceptable evidence, in the order the defenses sit:

        * an arrival/ship integrity error in the transaction record
          (the corrupted copy was detected and re-transferred),
        * the restore guard auto-repaired pages (and the byte-identity
          oracles in the completed-audit then prove the repair exact),
        * the restore guard quarantined the image — which must come with
          a rollback and a diagnosis naming the failing pass.
        """
        fired = faults.get("corrupt", 0)
        if not fired:
            return []
        problems = []
        errors = " ".join(txn.get("errors", []))
        retried = ("digest" in errors or "unreadable" in errors
                   or "decompress" in errors or "match" in errors)
        quarantined = faults.get("quarantine", 0) > 0
        if quarantined:
            if outcome != "rolled-back":
                problems.append("image quarantined but migration did "
                                "not roll back")
            quarantine = Quarantine(pipeline.dst_machine.tmpfs)
            qids = quarantine.ids()
            if not qids:
                problems.append("quarantine noted but no quarantined "
                                "image on the destination")
            else:
                diagnosis = quarantine.diagnosis(qids[0])
                if not diagnosis.get("failing_pass"):
                    problems.append(f"quarantine {qids[0]} diagnosis "
                                    f"names no failing pass")
        if not (retried or repaired_pages > 0 or quarantined):
            problems.append(
                f"{fired} corrupt fault(s) fired with no catch evidence "
                f"(undefined-behavior escape past the restore guard)")
        return problems

    # -- many trials -------------------------------------------------------

    def run_trials(self, nseeds: int, seed0: int = 0,
                   **probabilities) -> list:
        """One trial per seed in ``[seed0, seed0 + nseeds)``."""
        return [self.run_trial(FaultPlan(seed, **probabilities))
                for seed in range(seed0, seed0 + nseeds)]
