"""Delta migration transfer: ship only the chunks the peer is missing.

``plan_transfer`` computes the chunk closure of a checkpoint's parent
chain and subtracts whatever the destination store already holds —
warm destinations (a node that has seen this program, or any program
sharing pages with it) receive a small fraction of a full image copy.
``ship`` moves the plan's chunks (compressed, verified on arrival) and
registers the chain's manifests root-first on the far side.

:class:`StorePageServer` is the post-copy complement: instead of
holding private page copies, it serves left-behind pages straight out
of the source's chunk store by digest.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..criu.lazy import PageServer
from ..errors import LinkDropFault, StoreError
from .checkpoints import CheckpointStore


class TransferPlan:
    """What a delta transfer will ship (before shipping it)."""

    __slots__ = ("checkpoint_id", "chunks_needed", "bytes_to_ship",
                 "chunks_total", "full_bytes")

    def __init__(self, checkpoint_id: str, chunks_needed: List[str],
                 bytes_to_ship: int, chunks_total: int, full_bytes: int):
        self.checkpoint_id = checkpoint_id
        #: digests missing at the destination, in ship order
        self.chunks_needed = list(chunks_needed)
        #: compressed bytes that will cross the wire
        self.bytes_to_ship = bytes_to_ship
        #: chunk count of the full chain closure
        self.chunks_total = chunks_total
        #: what a full (non-store) image copy would ship instead
        self.full_bytes = full_bytes

    @property
    def savings(self) -> float:
        """Fraction of the full-copy bytes this plan avoids."""
        if self.full_bytes <= 0:
            return 0.0
        return 1.0 - (self.bytes_to_ship / self.full_bytes)

    def seconds(self, link) -> float:
        """Wire time over a :class:`~repro.core.costs.LinkProfile`."""
        return link.transfer_seconds(self.bytes_to_ship)

    def __repr__(self) -> str:
        return (f"<TransferPlan {self.checkpoint_id[:12]} "
                f"{len(self.chunks_needed)}/{self.chunks_total} chunks "
                f"{self.bytes_to_ship}B (full copy {self.full_bytes}B, "
                f"savings {self.savings:.0%})>")


def _chain_closure(store: CheckpointStore, checkpoint_id: str
                   ) -> List[str]:
    """Every chunk digest the checkpoint's chain references, in a
    deterministic ship order (root manifest first, metas, then pages by
    address), deduplicated on first occurrence."""
    seen = set()
    order: List[str] = []

    def _add(digest: str) -> None:
        if digest not in seen:
            seen.add(digest)
            order.append(digest)

    for cid in store.chain(checkpoint_id):
        manifest = store.manifest(cid)
        _add(cid)
        for name in sorted(manifest["meta"]):
            _add(manifest["meta"][name])
        for _vaddr, digest in manifest["pages"]:
            _add(digest)
    return order


def plan_transfer(src: CheckpointStore, dst: CheckpointStore,
                  checkpoint_id: str, link=None) -> TransferPlan:
    """Plan shipping ``checkpoint_id`` from ``src`` to ``dst``."""
    if checkpoint_id not in src:
        raise StoreError(f"source store has no checkpoint "
                         f"{checkpoint_id[:12]}")
    closure = _chain_closure(src, checkpoint_id)
    needed = [d for d in closure if not dst.chunks.has(d)]
    bytes_to_ship = sum(src.chunks.stored_size(d) for d in needed)
    return TransferPlan(checkpoint_id, needed, bytes_to_ship,
                        len(closure), src.logical_bytes(checkpoint_id))


def ship(src: CheckpointStore, dst: CheckpointStore,
         plan: TransferPlan, injector=None) -> int:
    """Execute a plan: move chunks, register the chain at ``dst``.

    Returns the compressed bytes actually shipped (0 for a fully warm
    destination). Chunks are re-hashed on arrival by
    :meth:`~repro.store.chunks.ChunkStore.adopt`.

    ``injector`` (a :class:`~repro.chaos.FaultInjector`) schedules
    wire faults: a mid-transfer link drop raises
    :class:`~repro.errors.LinkDropFault` *after* the preceding chunks
    have landed — the partial state the caller's rollback must sweep
    (adopted chunks carry no references until their manifest registers,
    so :meth:`~repro.store.chunks.ChunkStore.gc` reclaims them) — and a
    corrupted chunk has one payload byte flipped so the arrival re-hash
    rejects it with :class:`~repro.errors.StoreError`.
    """
    drop_at = corrupt_at = None
    if injector is not None:
        drop_at, corrupt_at = injector.ship_faults(len(plan.chunks_needed))
    shipped = 0
    for index, digest in enumerate(plan.chunks_needed):
        if drop_at is not None and index == drop_at:
            raise LinkDropFault(
                f"link dropped after {index}/{len(plan.chunks_needed)} "
                f"chunks", kind="drop", site="ship")
        chunk = src.chunks.chunk(digest)
        if not dst.chunks.has(digest):
            payload = chunk.payload
            if corrupt_at is not None and index == corrupt_at:
                flipped = bytearray(payload)
                flipped[0] ^= 0xFF
                payload = bytes(flipped)
            dst.adopt_chunk(chunk.digest, chunk.codec, payload,
                            chunk.logical_size)
            shipped += len(payload)
    for cid in src.chain(plan.checkpoint_id):
        dst.adopt_manifest(src.chunks.get(cid))
    return shipped


class StorePageServer(PageServer):
    """Post-copy page server backed by a chunk store.

    Holds ``vaddr -> digest`` instead of page copies: the pages it
    serves are exactly the checkpoint's chunks, so a store-backed lazy
    migration keeps one physical copy of every page no matter how many
    in-flight migrations reference it.
    """

    def __init__(self, page_digests: Dict[int, str], store: CheckpointStore,
                 node_name: str = "source", log_limit: Optional[int] = None):
        if log_limit is None:
            super().__init__({}, node_name=node_name)
        else:
            super().__init__({}, node_name=node_name, log_limit=log_limit)
        self._digests = dict(page_digests)
        self._store = store

    def remaining_pages(self) -> int:
        return len(self._digests)

    def remaining_bytes(self) -> int:
        return sum(self._store.chunks.chunk(d).logical_size
                   for d in self._digests.values())

    def pending_pages(self) -> Dict[int, bytes]:
        """Materialized copies of the not-yet-served pages (the
        transactional pipeline snapshots these for its pre-copy
        fallback)."""
        return {vaddr: self._store.chunks.get(digest)
                for vaddr, digest in self._digests.items()}

    def _take(self, vaddr: int) -> Optional[bytes]:
        digest = self._digests.pop(vaddr, None)
        if digest is None:
            return None
        return self._store.chunks.get(digest)
