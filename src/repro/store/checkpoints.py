"""Checkpoints as manifests of content-addressed chunks.

A checkpoint is stored as a *manifest*: canonical JSON naming the
chunk digest of every meta image (inventory, cores, mm, files,
pagemap) plus ``[vaddr, digest]`` pairs for each memory page whose
data this checkpoint carries. The manifest blob is itself a chunk, and
its digest is the **checkpoint id** — identical checkpoints collapse
to one entry automatically.

Incremental dumps store only dirty pages; unchanged pages are
:data:`~repro.criu.images.PE_PARENT` runs in the pagemap and resolve
through the ``parent`` chain at :meth:`CheckpointStore.materialize`
time. Reference counts on the chunk layer mirror manifest references
exactly, so :meth:`CheckpointStore.verify` can audit the books and
:meth:`ChunkStore.gc` reclaims whatever :meth:`delete` unpins.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..criu.dump import dump_process
from ..criu.images import ImageSet, PagemapEntry, PagemapImage
from ..errors import StoreError
from ..mem.paging import PAGE_SIZE
from .chunks import CODECS, ChunkStore, chunk_digest
from .wal import WriteAheadLog, decode_wal, fold_wal

#: every image file except the page data itself
_PAGES_FILE = "pages-1.img"


def _canon(obj) -> bytes:
    """Canonical JSON — byte-stable across runs, so manifest digests
    (and therefore checkpoint ids and replay journals) are too."""
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class PutResult:
    """What one :meth:`CheckpointStore.put` did."""

    __slots__ = ("checkpoint_id", "created", "delta", "new_chunks",
                 "dup_chunks", "new_physical_bytes", "logical_bytes",
                 "pages_total", "pages_carried")

    def __init__(self, checkpoint_id: str, created: bool, delta: bool,
                 new_chunks: int, dup_chunks: int,
                 new_physical_bytes: int, logical_bytes: int,
                 pages_total: int, pages_carried: int):
        self.checkpoint_id = checkpoint_id
        self.created = created
        self.delta = delta
        self.new_chunks = new_chunks
        self.dup_chunks = dup_chunks
        self.new_physical_bytes = new_physical_bytes
        self.logical_bytes = logical_bytes
        self.pages_total = pages_total
        self.pages_carried = pages_carried

    @property
    def dedup_ratio(self) -> float:
        """logical : physical for this put (>= 1 means savings)."""
        if self.new_physical_bytes <= 0:
            return float("inf") if self.logical_bytes else 1.0
        return self.logical_bytes / self.new_physical_bytes

    def __repr__(self) -> str:
        kind = "delta" if self.delta else "full"
        return (f"<PutResult {self.checkpoint_id[:12]} {kind} "
                f"+{self.new_chunks}/{self.dup_chunks}dup chunks "
                f"+{self.new_physical_bytes}B phys "
                f"({self.logical_bytes}B logical)>")


class RecoveryReport:
    """What :meth:`CheckpointStore.recover` found and did."""

    def __init__(self):
        #: checkpoint ids registered after recovery, in WAL order
        self.checkpoints: List[str] = []
        #: chunk digests whose files were torn/corrupt → quarantined
        self.quarantined: List[str] = []
        #: committed checkpoints skipped because a chunk they need was
        #: damaged (cascades through children and groups)
        self.damaged: List[str] = []
        #: open (uncommitted) transactions rolled back, as
        #: ``(txn, action, cid-or-"")``
        self.rolled_back: List[Tuple[int, str, str]] = []
        #: member checkpoint ids of aborted coordinator group intents —
        #: the caller (coordinator / fleet) resumes these processes
        self.aborted_group_members: List[str] = []
        #: unreferenced chunk files swept from disk
        self.orphans_swept: int = 0
        #: in-flight tmp files discarded
        self.tmp_swept: int = 0
        #: why the WAL tail was cut, or None for a clean log
        self.tail_cut: Optional[str] = None
        #: post-recovery fsck findings (empty on a healthy recovery)
        self.fsck: List[str] = []

    @property
    def clean(self) -> bool:
        return not self.fsck

    @property
    def damage_handled(self) -> int:
        return (len(self.quarantined) + len(self.rolled_back)
                + len(self.damaged) + self.orphans_swept)

    def __repr__(self) -> str:
        return (f"<RecoveryReport {len(self.checkpoints)} ckpts "
                f"quarantined={len(self.quarantined)} "
                f"rolled_back={len(self.rolled_back)} "
                f"orphans={self.orphans_swept} "
                f"{'clean' if self.clean else 'DIRTY'}>")


class ScrubReport:
    """One :meth:`CheckpointStore.scrub` pass over a digest window."""

    def __init__(self):
        self.scanned = 0
        self.logical_bytes = 0
        self.corrupt: List[str] = []
        self.repaired: List[str] = []
        self.quarantined: List[str] = []
        #: digest to resume the next incremental window from ("" = done)
        self.cursor: str = ""

    def __repr__(self) -> str:
        return (f"<ScrubReport scanned={self.scanned} "
                f"corrupt={len(self.corrupt)} "
                f"repaired={len(self.repaired)} "
                f"quarantined={len(self.quarantined)}>")


class CheckpointStore:
    """Checkpoint manifests over a :class:`ChunkStore`.

    With no ``backend`` the store is purely in-memory (the seed
    behaviour, unchanged). With a :class:`~repro.store.backend.DirBackend`
    every mutation is made *crash-consistent*: chunk files land
    content-addressed via write-tmp/fsync/rename, and every multi-step
    mutation (put / put_group / adopt / delete / gc / coordinator
    group) is bracketed by write-ahead intents, so
    :meth:`recover` can reopen whatever a crash left behind.
    """

    def __init__(self, codec: str = "zlib", backend=None):
        self.chunks = ChunkStore(codec=codec)
        # checkpoint id -> manifest dict, in registration order
        self._checkpoints: Dict[str, dict] = {}
        self.backend = backend
        self.wal: Optional[WriteAheadLog] = None
        if backend is not None:
            if backend.has_wal():
                raise StoreError(
                    "backend already holds a durable store — open it "
                    "with CheckpointStore.recover()")
            self.wal = WriteAheadLog(backend)
            self.wal.init(codec)

    # -- durable plumbing --------------------------------------------------

    @property
    def durable(self) -> bool:
        return self.backend is not None

    def _persist_chunk(self, digest: str) -> None:
        """Publish one in-memory chunk as a durable file (idempotent)."""
        chunk = self.chunks.chunk(digest)
        self.backend.put_chunk(digest, chunk.codec, chunk.logical_size,
                               chunk.payload)

    def _persist_refs(self, checkpoint_id: str, manifest: dict) -> None:
        for ref in sorted(set(self._manifest_refs(checkpoint_id,
                                                  manifest))):
            self._persist_chunk(ref)

    # -- ingest -----------------------------------------------------------

    def put(self, images: ImageSet, parent: Optional[str] = None
            ) -> PutResult:
        """Store an image set; returns the checkpoint id + metrics.

        ``parent`` must be given iff ``images`` is a delta dump, and
        every PE_PARENT page in it must resolve through the parent
        chain.
        """
        delta = images.is_delta()
        if delta and parent is None:
            raise StoreError("delta image set needs a parent checkpoint")
        if parent is not None and parent not in self._checkpoints:
            raise StoreError(f"unknown parent checkpoint {parent[:12]}")

        pagemap = images.pagemap()
        if parent is not None:
            resolvable = self.resolve_pages(parent)
            for entry in pagemap.entries:
                if not entry.in_parent:
                    continue
                for i in range(entry.nr_pages):
                    base = entry.vaddr + i * PAGE_SIZE
                    if base not in resolvable:
                        raise StoreError(
                            f"delta references page {base:#x} that "
                            f"parent chain {parent[:12]} cannot resolve")

        new_chunks = 0
        dup_chunks = 0
        new_physical = 0

        def _ensure(data: bytes) -> str:
            nonlocal new_chunks, dup_chunks, new_physical
            digest, created = self.chunks.ensure(data)
            if created:
                new_chunks += 1
                new_physical += self.chunks.stored_size(digest)
            else:
                dup_chunks += 1
            return digest

        meta = {name: _ensure(blob)
                for name, blob in sorted(images.files.items())
                if name != _PAGES_FILE}

        pages: List[List] = []
        blob = images.pages()
        index = 0
        for entry in pagemap.entries:
            if entry.in_parent:
                continue
            for i in range(entry.nr_pages):
                offset = index * PAGE_SIZE
                digest = _ensure(blob[offset:offset + PAGE_SIZE])
                pages.append([entry.vaddr + i * PAGE_SIZE, digest])
                index += 1
        pages.sort(key=lambda item: item[0])

        manifest = {
            "parent": parent or "",
            "arch": images.inventory().arch,
            "pid": images.inventory().pid,
            "meta": meta,
            "pages": pages,
        }
        manifest_blob = _canon(manifest)
        checkpoint_id = _ensure(manifest_blob)

        logical = (sum(len(b) for n, b in images.files.items()
                       if n != _PAGES_FILE)
                   + pagemap.total_pages() * PAGE_SIZE)

        if checkpoint_id in self._checkpoints:
            # Identical content put twice: one checkpoint, no extra refs.
            return PutResult(checkpoint_id, False, delta, new_chunks,
                             dup_chunks, new_physical, logical,
                             pagemap.total_pages(), len(pages))

        if self.durable:
            # Intent first, chunk files second, commit third: a crash
            # anywhere in between recovers as "this put never
            # happened" (orphan files swept), while a durable commit
            # record guarantees every referenced chunk file already
            # landed — committed checkpoints reopen byte-identically.
            txn = self.wal.begin("put", cid=checkpoint_id)
            self._persist_refs(checkpoint_id, manifest)
            self.wal.commit(txn)
        self._register(checkpoint_id, manifest)
        return PutResult(checkpoint_id, True, delta, new_chunks,
                         dup_chunks, new_physical, logical,
                         pagemap.total_pages(), len(pages))

    def put_group(self, member_ids: List[str], label: str = "",
                  txn: Optional[int] = None) -> str:
        """Atomically register a *group manifest* covering already-put
        member checkpoints — the commit point of a coordinated group
        checkpoint (:mod:`repro.group`): one chunk either registers or
        it does not, so a coordinator crash can never leave a partial
        group visible.

        The group manifest pins every member (like a parent link), so
        :meth:`delete` refuses to drop a member while a live group
        still references it. The returned group id is the manifest
        chunk's digest — content-derived, replay-stable.

        ``txn`` is an open coordinator intent from :meth:`group_begin`;
        when given, the group's WAL commit record seals that
        transaction (carrying the group id, which is only known here),
        making this call the durable commit point of the whole
        two-phase protocol.
        """
        if not member_ids:
            raise StoreError("group manifest needs at least one member")
        for member in member_ids:
            if member not in self._checkpoints:
                raise StoreError(f"group member {member[:12]} is not a "
                                 f"registered checkpoint")
            if self.is_group(member):
                raise StoreError(f"group member {member[:12]} is itself "
                                 f"a group manifest")
        manifest = {"kind": "group", "label": label,
                    "members": list(member_ids)}
        group_id, _created = self.chunks.ensure(_canon(manifest))
        if group_id in self._checkpoints:
            if self.durable and txn is not None:
                self.wal.commit(txn, cid=group_id)
            return group_id
        if self.durable:
            if txn is None:
                txn = self.wal.begin("put_group", cid=group_id,
                                     members=list(member_ids),
                                     label=label)
            self._persist_refs(group_id, manifest)
            self.wal.commit(txn, cid=group_id)
        self._register(group_id, manifest)
        return group_id

    # -- coordinator group intents ----------------------------------------

    def group_begin(self, label: str = "") -> Optional[int]:
        """Open a coordinated-group intent *before* any member is
        prepared. Returns the WAL transaction id (None on an in-memory
        store). Amend it with :meth:`group_member` as members prepare;
        :meth:`put_group` (with ``txn=``) commits it, and
        :meth:`group_abort` closes it after an in-process rollback."""
        if not self.durable:
            return None
        return self.wal.begin("group", label=label)

    def group_member(self, txn: Optional[int], member_id: str) -> None:
        """Record one prepared member on an open group intent, so a
        coordinator crash before commit knows exactly which member
        checkpoints to roll back and which processes to resume."""
        if self.durable and txn is not None:
            self.wal.member(txn, member_id)

    def group_abort(self, txn: Optional[int]) -> None:
        """Seal an aborted group intent whose in-process rollback
        already deleted the prepared members — recovery must not undo
        it a second time."""
        if self.durable and txn is not None:
            self.wal.abort(txn)

    def adopt_chunk(self, digest: str, codec: str, payload: bytes,
                    logical_size: int) -> bool:
        """Install an already-compressed chunk (the receive side of a
        transfer), persisting it durably when backed. No WAL record:
        chunk files are content-addressed and self-verifying, so an
        unreferenced one left by a crashed transfer is simply swept as
        an orphan at :meth:`recover` time."""
        created = self.chunks.adopt(digest, codec, payload, logical_size)
        if self.durable:
            self._persist_chunk(digest)
        return created

    def adopt_manifest(self, manifest_blob: bytes) -> str:
        """Register a manifest whose chunks are already present (the
        receive side of a delta transfer). Idempotent."""
        digest, _created = self.chunks.ensure(manifest_blob)
        if digest in self._checkpoints:
            return digest
        try:
            manifest = json.loads(manifest_blob)
        except ValueError as exc:
            raise StoreError(f"manifest {digest[:12]} is not JSON: "
                             f"{exc}") from exc
        parent = manifest.get("parent", "")
        if parent and parent not in self._checkpoints:
            raise StoreError(f"manifest {digest[:12]} parent "
                             f"{parent[:12]} not registered — ship the "
                             f"chain root first")
        for member in manifest.get("members", ()):
            if member not in self._checkpoints:
                raise StoreError(f"group manifest {digest[:12]} member "
                                 f"{member[:12]} not registered — ship "
                                 f"the members first")
        for ref in self._manifest_refs(digest, manifest):
            if not self.chunks.has(ref):
                raise StoreError(f"manifest {digest[:12]} references "
                                 f"missing chunk {ref[:12]}")
        if self.durable:
            txn = self.wal.begin("adopt", cid=digest)
            self._persist_refs(digest, manifest)
            self.wal.commit(txn)
        self._register(digest, manifest)
        return digest

    def _manifest_refs(self, checkpoint_id: str, manifest: dict
                       ) -> List[str]:
        """Every chunk reference a registered manifest pins (with
        multiplicity): its own blob, metas, pages, parent manifest —
        or, for a group manifest, its own blob plus every member."""
        refs = [checkpoint_id]
        if manifest.get("kind") == "group":
            refs.extend(manifest["members"])
            return refs
        refs.extend(manifest["meta"].values())
        refs.extend(digest for _vaddr, digest in manifest["pages"])
        if manifest.get("parent"):
            refs.append(manifest["parent"])
        return refs

    def _register(self, checkpoint_id: str, manifest: dict) -> None:
        for ref in self._manifest_refs(checkpoint_id, manifest):
            self.chunks.incref(ref)
        self._checkpoints[checkpoint_id] = manifest

    # -- lookup -----------------------------------------------------------

    def __contains__(self, checkpoint_id: str) -> bool:
        return checkpoint_id in self._checkpoints

    def checkpoint_ids(self) -> List[str]:
        return list(self._checkpoints)

    def manifest(self, checkpoint_id: str) -> dict:
        try:
            return self._checkpoints[checkpoint_id]
        except KeyError:
            raise StoreError(
                f"unknown checkpoint {checkpoint_id[:12]}") from None

    def parent_of(self, checkpoint_id: str) -> Optional[str]:
        parent = self.manifest(checkpoint_id).get("parent", "")
        return parent or None

    def chain(self, checkpoint_id: str) -> List[str]:
        """Ancestry, root first, ``checkpoint_id`` last."""
        out = []
        cursor: Optional[str] = checkpoint_id
        while cursor is not None:
            if cursor in out:
                raise StoreError(f"parent cycle at {cursor[:12]}")
            out.append(cursor)
            cursor = self.parent_of(cursor)
        out.reverse()
        return out

    def children(self, checkpoint_id: str) -> List[str]:
        return [cid for cid, man in self._checkpoints.items()
                if man.get("parent", "") == checkpoint_id]

    # -- group manifests ----------------------------------------------------

    def is_group(self, checkpoint_id: str) -> bool:
        return self.manifest(checkpoint_id).get("kind") == "group"

    def group_ids(self) -> List[str]:
        return [cid for cid, man in self._checkpoints.items()
                if man.get("kind") == "group"]

    def members(self, group_id: str) -> List[str]:
        manifest = self.manifest(group_id)
        if manifest.get("kind") != "group":
            raise StoreError(
                f"checkpoint {group_id[:12]} is not a group manifest")
        return list(manifest["members"])

    def groups_referencing(self, checkpoint_id: str) -> List[str]:
        """Group manifests that pin ``checkpoint_id`` as a member."""
        return [gid for gid, man in self._checkpoints.items()
                if man.get("kind") == "group"
                and checkpoint_id in man["members"]]

    def resolve_pages(self, checkpoint_id: str) -> Dict[int, str]:
        """vaddr -> chunk digest for every page of the checkpoint,
        resolved through the parent chain (child wins), restricted to
        the pages the leaf's pagemap actually maps (a page unmapped
        since an ancestor does not resurface)."""
        resolved: Dict[int, str] = {}
        for cid in self.chain(checkpoint_id):
            resolved.update({vaddr: digest for vaddr, digest
                             in self.manifest(cid)["pages"]})
        live = set(self._pagemap(checkpoint_id).page_addresses())
        return {vaddr: digest for vaddr, digest in resolved.items()
                if vaddr in live}

    def _pagemap(self, checkpoint_id: str) -> PagemapImage:
        digest = self.manifest(checkpoint_id)["meta"]["pagemap.img"]
        return PagemapImage.from_bytes(self.chunks.get(digest))

    def logical_bytes(self, checkpoint_id: str) -> int:
        """Size of the checkpoint as a *full* (non-delta) image set —
        what a plain scp copy of it would ship. For a group manifest:
        the sum over its members."""
        manifest = self.manifest(checkpoint_id)
        if manifest.get("kind") == "group":
            return sum(self.logical_bytes(member)
                       for member in manifest["members"])
        meta_bytes = sum(self.chunks.chunk(d).logical_size
                         for d in manifest["meta"].values())
        return (meta_bytes
                + self._pagemap(checkpoint_id).total_pages() * PAGE_SIZE)

    # -- materialize ------------------------------------------------------

    def materialize(self, checkpoint_id: str, verify: bool = False,
                    binary=None) -> ImageSet:
        """Rebuild a full :class:`ImageSet` (no PE_PARENT runs left).

        For a full checkpoint this reproduces the stored image set
        byte-for-byte; for a delta it folds the parent chain in.

        ``verify=True`` runs the rebuilt set through the restore guard
        (:func:`repro.verify.verify_images`) against this checkpoint's
        own page manifest — a second line of defense past the chunks'
        read-time re-hashing, catching a manifest that resolves to the
        wrong (but individually intact) chunks. Raises
        :class:`~repro.errors.VerifyError` on failure; pass ``binary``
        to extend the check to the semantic pass.
        """
        manifest = self.manifest(checkpoint_id)
        if manifest.get("kind") == "group":
            raise StoreError(
                f"checkpoint {checkpoint_id[:12]} is a group manifest — "
                f"materialize its members individually")
        files = {name: self.chunks.get(digest)
                 for name, digest in manifest["meta"].items()}
        pagemap = PagemapImage.from_bytes(files["pagemap.img"])
        pages = self.resolve_pages(checkpoint_id)

        blob = bytearray()
        entries: List[PagemapEntry] = []
        for entry in pagemap.entries:
            # Canonical full form: flags cleared, and runs that were
            # only split at a PE_PARENT boundary merged back — a
            # materialized delta is byte-identical to the full dump a
            # plain dump_process would have produced.
            if (entries and entry.vaddr == entries[-1].vaddr
                    + entries[-1].nr_pages * PAGE_SIZE):
                entries[-1].nr_pages += entry.nr_pages
            else:
                entries.append(PagemapEntry(entry.vaddr,
                                            entry.nr_pages, 0))
            for i in range(entry.nr_pages):
                base = entry.vaddr + i * PAGE_SIZE
                digest = pages.get(base)
                if digest is None:
                    raise StoreError(
                        f"checkpoint {checkpoint_id[:12]}: page "
                        f"{base:#x} unresolvable (broken chain?)")
                blob += self.chunks.get(digest)
        images = ImageSet(files)
        inventory = images.inventory()
        if inventory.parent:
            inventory.parent = ""
            images.set_inventory(inventory)
        images.set_pagemap(PagemapImage(entries))
        images.set_pages(bytes(blob))
        if verify:
            from ..verify import verify_images
            verify_images(images, binary=binary, store=self,
                          page_digests=pages)
        return images

    # -- lifecycle --------------------------------------------------------

    def delete(self, checkpoint_id: str) -> None:
        """Unregister a checkpoint (children must go first, and a member
        of a live group manifest is refused — delete the group first);
        chunk data is reclaimed by the next :meth:`ChunkStore.gc`."""
        manifest = self.manifest(checkpoint_id)
        kids = self.children(checkpoint_id)
        if kids:
            raise StoreError(
                f"checkpoint {checkpoint_id[:12]} has "
                f"{len(kids)} dependent child(ren); delete those first")
        groups = self.groups_referencing(checkpoint_id)
        if groups:
            raise StoreError(
                f"checkpoint {checkpoint_id[:12]} is a member of "
                f"{len(groups)} group manifest(s) "
                f"({', '.join(g[:12] for g in groups)}); delete those "
                f"first")
        if self.durable:
            # Intent + commit with no durable apply in between: the
            # unregistration is real iff the commit record landed;
            # chunk files linger until the next gc either way.
            txn = self.wal.begin("delete", cid=checkpoint_id)
            self.wal.commit(txn)
        self._delete_mem(checkpoint_id, manifest)

    def _delete_mem(self, checkpoint_id: str, manifest: dict) -> None:
        for ref in self._manifest_refs(checkpoint_id, manifest):
            self.chunks.decref(ref)
        del self._checkpoints[checkpoint_id]

    def gc(self) -> Tuple[int, int]:
        if not self.durable:
            return self.chunks.gc()
        dead = self.chunks.orphans()
        txn = self.wal.begin("gc", digests=dead)
        reclaimed = self.chunks.gc()
        for digest in dead:
            self.backend.unlink_chunk(digest)
        self.wal.commit(txn)
        return reclaimed

    # -- fsck -------------------------------------------------------------

    def verify(self) -> List[str]:
        """Chunk-level fsck plus referential audit of the manifests.

        The refcount books are cross-checked in *both* directions
        against what the live manifests + group manifests actually
        reference (plus the raw pins the page server holds): an
        under-referenced chunk could be freed while still needed, an
        over-referenced one is a leak gc can never reclaim.
        """
        problems = self.chunks.verify()
        expected: Counter = Counter()
        for cid, manifest in self._checkpoints.items():
            parent = manifest.get("parent", "")
            if parent and parent not in self._checkpoints:
                problems.append(f"checkpoint {cid[:12]}: parent "
                                f"{parent[:12]} not registered")
            for member in manifest.get("members", ()):
                if member not in self._checkpoints:
                    problems.append(f"group {cid[:12]}: member "
                                    f"{member[:12]} not registered")
            for ref in self._manifest_refs(cid, manifest):
                expected[ref] += 1
                if not self.chunks.has(ref):
                    problems.append(f"checkpoint {cid[:12]}: missing "
                                    f"chunk {ref[:12]}")
        pins = self.chunks.raw_pins
        for digest in self.chunks.digests():
            refs = self.chunks.chunk(digest).refs
            want = expected.get(digest, 0) + pins.get(digest, 0)
            if refs < want:
                problems.append(f"chunk {digest[:12]}: under-referenced "
                                f"({refs} < {want})")
            elif refs > want:
                problems.append(f"chunk {digest[:12]}: over-referenced "
                                f"({refs} > {want}; {refs - want} "
                                f"reference(s) unaccounted for)")
        return problems

    # -- crash recovery ----------------------------------------------------

    @classmethod
    def recover(cls, backend, recorder=None
                ) -> Tuple["CheckpointStore", RecoveryReport]:
        """Reopen whatever a crash left on ``backend``.

        The recovery state machine, in order:

        1. decode the WAL to its longest valid prefix and fold it;
        2. load every surviving chunk file, quarantining any that is
           torn or corrupt (bad framing, wrong hash, wrong size);
        3. register committed manifests in WAL order, rebuilding the
           refcount books purely from manifest references; a manifest
           whose chunks were quarantined is skipped as *damaged*, and
           the skip cascades through its children and groups;
        4. roll back open (uncommitted) transactions — in particular a
           coordinator group intent whose commit record never landed
           has its prepared member checkpoints unregistered, and they
           are reported so the caller can resume the member processes;
        5. sweep in-flight tmp files and unreferenced (orphan) chunk
           files — the debris of rolled-back puts and crashed
           transfers;
        6. fsck the result (:meth:`verify`);
        7. compact the WAL to one snapshot record, making recovery
           idempotent: recovering again reopens the identical store.

        Every step is content-derived from the surviving disk, so a
        crash/recover run journals (``EV_RECOVER`` via ``recorder``)
        and replays bit-identically.
        """
        report = RecoveryReport()
        records, tail_cut = decode_wal(backend.wal_read())
        report.tail_cut = tail_cut
        state = fold_wal(records)

        store = cls(codec=state.codec)
        store.backend = backend
        store.wal = WriteAheadLog(backend, next_txn=state.max_txn + 1)

        # 2. chunk files: load-or-quarantine
        for digest in backend.list_chunks():
            try:
                info = backend.read_chunk(digest)
                store.chunks.adopt(digest, info["codec"],
                                   info["payload"], info["logical"])
            except StoreError:
                backend.quarantine_chunk(digest)
                report.quarantined.append(digest)

        # 3. committed manifests, in WAL order (parents land before
        # children and members before groups because their commits did)
        for cid in state.registered:
            if cid in store._checkpoints:
                continue
            problem = store._recover_manifest(cid)
            if problem is not None:
                report.damaged.append(cid)

        # 4. roll back open transactions
        for txn in sorted(state.open_txns):
            intent = state.open_txns[txn]
            action = intent.get("action", "?")
            report.rolled_back.append((txn, action,
                                       intent.get("cid", "")))
            if action != "group":
                # An uncommitted put/adopt never registered (no commit
                # record), an uncommitted delete never unregistered,
                # and a half-done gc is finished by the orphan sweep.
                continue
            for member in reversed(intent.get("members", [])):
                if (member in store._checkpoints
                        and not store.children(member)
                        and not store.groups_referencing(member)):
                    store._delete_mem(member, store._checkpoints[member])
                    report.aborted_group_members.append(member)

        # 5. sweep debris
        report.tmp_swept = backend.sweep_tmp()
        dead = set(store.chunks.orphans())
        store.chunks.gc()
        for digest in backend.list_chunks():
            if digest in dead or not store.chunks.has(digest):
                backend.unlink_chunk(digest)
                report.orphans_swept += 1

        # 6. fsck + 7. compact
        report.checkpoints = list(store._checkpoints)
        report.fsck = store.verify()
        store.wal.compact(state.codec, list(store._checkpoints))

        if recorder is not None:
            from ..replay.journal import EV_RECOVER
            verdict = "torn" if tail_cut else "clean"
            recorder.on_event(EV_RECOVER, label=f"recover:{verdict}",
                              a=len(store._checkpoints),
                              b=report.damage_handled)
        return store, report

    def _recover_manifest(self, cid: str) -> Optional[str]:
        """Try to register one committed checkpoint during recovery;
        returns a problem string (and registers nothing) on damage."""
        if not self.chunks.has(cid):
            return f"manifest chunk {cid[:12]} missing or quarantined"
        try:
            manifest = json.loads(self.chunks.get(cid))
        except (StoreError, ValueError) as exc:
            return f"manifest {cid[:12]} unreadable: {exc}"
        if not isinstance(manifest, dict):
            return f"manifest {cid[:12]} is not an object"
        parent = manifest.get("parent", "")
        if parent and parent not in self._checkpoints:
            return (f"manifest {cid[:12]} parent {parent[:12]} "
                    f"not recovered")
        for member in manifest.get("members", ()):
            if member not in self._checkpoints:
                return (f"group {cid[:12]} member {member[:12]} "
                        f"not recovered")
        try:
            refs = self._manifest_refs(cid, manifest)
        except (KeyError, TypeError):
            return f"manifest {cid[:12]} malformed"
        for ref in refs:
            if not self.chunks.has(ref):
                return (f"manifest {cid[:12]} references missing "
                        f"chunk {ref[:12]}")
        self._register(cid, manifest)
        return None

    # -- scrubbing ---------------------------------------------------------

    def scrub(self, binary=None, start: str = "",
              limit: Optional[int] = None) -> ScrubReport:
        """Incremental integrity scrub over the chunk population.

        Re-hashes every chunk in ``(start, …]`` digest order (at most
        ``limit`` of them — run repeatedly with ``start=report.cursor``
        to cover the store in windows). A chunk whose in-memory copy
        *or* durable file no longer matches its digest is **corrupt**;
        when ``binary`` (the linked :class:`~repro.isa.DelfBinary`) is
        given, clean text pages are rebuilt from the binary by digest
        exactly like the restore guard's repair pass (PR 5) and
        re-persisted; anything unrepairable is quarantined on disk and
        reported.
        """
        report = ScrubReport()
        digests = [d for d in self.chunks.digests() if d > start]
        if limit is not None:
            report.cursor = digests[limit - 1] \
                if len(digests) > limit else ""
            digests = digests[:limit]
        for digest in digests:
            report.scanned += 1
            chunk = self.chunks.chunk(digest)
            report.logical_bytes += chunk.logical_size
            if self._chunk_intact(digest):
                continue
            report.corrupt.append(digest)
            page = self._rebuild_page(digest, binary)
            if page is None:
                report.quarantined.append(digest)
                if self.durable:
                    self.backend.quarantine_chunk(digest)
                continue
            self._reinstall(digest, page)
            report.repaired.append(digest)
        return report

    def _chunk_intact(self, digest: str) -> bool:
        """Both copies of one chunk still hash to their address."""
        chunk = self.chunks.chunk(digest)
        codec = CODECS.get(chunk.codec)
        try:
            data = codec.decompress(chunk.payload) if codec else None
        except StoreError:
            data = None
        if data is None or chunk_digest(data) != digest \
                or len(data) != chunk.logical_size:
            return False
        if self.durable:
            try:
                info = self.backend.read_chunk(digest)
                disk = CODECS[info["codec"]].decompress(info["payload"])
            except (StoreError, KeyError):
                return False
            if chunk_digest(disk) != digest \
                    or len(disk) != info["logical"]:
                return False
        return True

    def _rebuild_page(self, digest: str, binary) -> Optional[bytes]:
        """Rebuild a corrupt *text page* chunk from the linked binary:
        find a manifest that maps the digest at some vaddr, ask the
        binary for that page, and accept it only if it re-hashes to the
        address (the same digest-directed repair the restore guard
        uses)."""
        if binary is None:
            return None
        from ..verify.verifier import _binary_page
        for manifest in self._checkpoints.values():
            if manifest.get("kind") == "group":
                continue
            for vaddr, page_digest in manifest["pages"]:
                if page_digest != digest:
                    continue
                page = _binary_page(binary, vaddr)
                if chunk_digest(page) == digest:
                    return page
        return None

    def _reinstall(self, digest: str, data: bytes) -> None:
        """Overwrite a corrupt chunk (memory + disk) with clean bytes,
        re-deriving the codec choice exactly like the original insert
        so repaired stores stay byte-identical to never-damaged ones."""
        chunk = self.chunks.chunk(digest)
        codec_name = self.chunks.codec_name
        payload = CODECS[codec_name].compress(data)
        if len(payload) >= len(data):
            codec_name = "raw"
            payload = bytes(data)
        chunk.codec = codec_name
        chunk.payload = payload
        chunk.logical_size = len(data)
        if self.durable:
            self.backend.quarantine_chunk(digest)
            self._persist_chunk(digest)

    # -- metrics ----------------------------------------------------------

    def stats(self) -> dict:
        logical = sum(self.logical_bytes(cid)
                      for cid in self._checkpoints)
        physical = self.chunks.physical_bytes()
        return {
            "checkpoints": len(self._checkpoints),
            "chunks": len(self.chunks),
            "logical_bytes": logical,
            "unique_bytes": self.chunks.unique_bytes(),
            "physical_bytes": physical,
            "dedup_ratio": (logical / physical) if physical else 1.0,
            "puts": self.chunks.puts,
            "dup_puts": self.chunks.dup_puts,
        }

    # -- directory persistence (the CLI's on-disk format) -----------------

    def save_dir(self, path: str) -> None:
        chunk_dir = os.path.join(path, "chunks")
        os.makedirs(chunk_dir, exist_ok=True)
        index = {"codec": self.chunks.codec_name, "chunks": {},
                 "checkpoints": list(self._checkpoints)}
        for chunk in self.chunks:
            with open(os.path.join(chunk_dir, chunk.digest), "wb") as fh:
                fh.write(chunk.payload)
            index["chunks"][chunk.digest] = {
                "codec": chunk.codec,
                "logical": chunk.logical_size,
                "refs": chunk.refs,
            }
        # prune chunk files dropped since the last save (gc'd chunks)
        for stale in os.listdir(chunk_dir):
            if stale not in index["chunks"]:
                os.unlink(os.path.join(chunk_dir, stale))
        with open(os.path.join(path, "index.json"), "w") as fh:
            json.dump(index, fh, indent=1, sort_keys=True)

    @classmethod
    def load_dir(cls, path: str) -> "CheckpointStore":
        index_path = os.path.join(path, "index.json")
        try:
            with open(index_path) as fh:
                index = json.load(fh)
        except (OSError, ValueError) as exc:
            raise StoreError(f"cannot load store at {path!r}: "
                             f"{exc}") from exc
        store = cls(codec=index.get("codec", "zlib"))
        for digest, info in index.get("chunks", {}).items():
            try:
                with open(os.path.join(path, "chunks", digest),
                          "rb") as fh:
                    payload = fh.read()
            except OSError as exc:
                raise StoreError(f"missing chunk file {digest[:12]}: "
                                 f"{exc}") from exc
            store.chunks.adopt(digest, info["codec"], payload,
                               info["logical"])
            store.chunks.chunk(digest).refs = int(info.get("refs", 0))
        for cid in index.get("checkpoints", []):
            try:
                manifest = json.loads(store.chunks.get(cid))
            except ValueError as exc:
                raise StoreError(f"checkpoint {cid[:12]}: manifest is "
                                 f"not JSON: {exc}") from exc
            # refs were persisted; register without increfing again
            store._checkpoints[cid] = manifest
        return store


class IncrementalCheckpointer:
    """Drives incremental dumps of one process into a store.

    The first :meth:`checkpoint` is a full dump and switches the
    process's dirty-page tracking on; every later call harvests the
    dirty set and emits a delta against the previous checkpoint.
    Tracking costs nothing until the first checkpoint is taken.
    """

    def __init__(self, store: CheckpointStore, process, runtime=None):
        self.store = store
        self.process = process
        #: optional :class:`~repro.core.runtime.DapperRuntime` — when
        #: given, ``__dapper_flag`` is zeroed before each dump exactly
        #: like ``DapperRuntime.checkpoint`` does, so restored images
        #: do not re-trap at the next equivalence point.
        self.runtime = runtime
        self.last_id: Optional[str] = None
        self.last_images: Optional[ImageSet] = None

    def checkpoint(self) -> PutResult:
        if self.runtime is not None:
            self.runtime.clear_flag()
        if self.last_id is None:
            images = dump_process(self.process)
            result = self.store.put(images)
            self.process.start_dirty_tracking()
        else:
            dirty = self.process.harvest_dirty_pages()
            parent_pages = set(self.store.resolve_pages(self.last_id))
            images = dump_process(self.process, parent=self.last_id,
                                  parent_pages=parent_pages,
                                  dirty_pages=dirty)
            result = self.store.put(images, parent=self.last_id)
        self.last_id = result.checkpoint_id
        self.last_images = images
        return result
