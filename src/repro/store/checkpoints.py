"""Checkpoints as manifests of content-addressed chunks.

A checkpoint is stored as a *manifest*: canonical JSON naming the
chunk digest of every meta image (inventory, cores, mm, files,
pagemap) plus ``[vaddr, digest]`` pairs for each memory page whose
data this checkpoint carries. The manifest blob is itself a chunk, and
its digest is the **checkpoint id** — identical checkpoints collapse
to one entry automatically.

Incremental dumps store only dirty pages; unchanged pages are
:data:`~repro.criu.images.PE_PARENT` runs in the pagemap and resolve
through the ``parent`` chain at :meth:`CheckpointStore.materialize`
time. Reference counts on the chunk layer mirror manifest references
exactly, so :meth:`CheckpointStore.verify` can audit the books and
:meth:`ChunkStore.gc` reclaims whatever :meth:`delete` unpins.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..criu.dump import dump_process
from ..criu.images import ImageSet, PagemapEntry, PagemapImage
from ..errors import StoreError
from ..mem.paging import PAGE_SIZE
from .chunks import ChunkStore

#: every image file except the page data itself
_PAGES_FILE = "pages-1.img"


def _canon(obj) -> bytes:
    """Canonical JSON — byte-stable across runs, so manifest digests
    (and therefore checkpoint ids and replay journals) are too."""
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class PutResult:
    """What one :meth:`CheckpointStore.put` did."""

    __slots__ = ("checkpoint_id", "created", "delta", "new_chunks",
                 "dup_chunks", "new_physical_bytes", "logical_bytes",
                 "pages_total", "pages_carried")

    def __init__(self, checkpoint_id: str, created: bool, delta: bool,
                 new_chunks: int, dup_chunks: int,
                 new_physical_bytes: int, logical_bytes: int,
                 pages_total: int, pages_carried: int):
        self.checkpoint_id = checkpoint_id
        self.created = created
        self.delta = delta
        self.new_chunks = new_chunks
        self.dup_chunks = dup_chunks
        self.new_physical_bytes = new_physical_bytes
        self.logical_bytes = logical_bytes
        self.pages_total = pages_total
        self.pages_carried = pages_carried

    @property
    def dedup_ratio(self) -> float:
        """logical : physical for this put (>= 1 means savings)."""
        if self.new_physical_bytes <= 0:
            return float("inf") if self.logical_bytes else 1.0
        return self.logical_bytes / self.new_physical_bytes

    def __repr__(self) -> str:
        kind = "delta" if self.delta else "full"
        return (f"<PutResult {self.checkpoint_id[:12]} {kind} "
                f"+{self.new_chunks}/{self.dup_chunks}dup chunks "
                f"+{self.new_physical_bytes}B phys "
                f"({self.logical_bytes}B logical)>")


class CheckpointStore:
    """Checkpoint manifests over a :class:`ChunkStore`."""

    def __init__(self, codec: str = "zlib"):
        self.chunks = ChunkStore(codec=codec)
        # checkpoint id -> manifest dict, in registration order
        self._checkpoints: Dict[str, dict] = {}

    # -- ingest -----------------------------------------------------------

    def put(self, images: ImageSet, parent: Optional[str] = None
            ) -> PutResult:
        """Store an image set; returns the checkpoint id + metrics.

        ``parent`` must be given iff ``images`` is a delta dump, and
        every PE_PARENT page in it must resolve through the parent
        chain.
        """
        delta = images.is_delta()
        if delta and parent is None:
            raise StoreError("delta image set needs a parent checkpoint")
        if parent is not None and parent not in self._checkpoints:
            raise StoreError(f"unknown parent checkpoint {parent[:12]}")

        pagemap = images.pagemap()
        if parent is not None:
            resolvable = self.resolve_pages(parent)
            for entry in pagemap.entries:
                if not entry.in_parent:
                    continue
                for i in range(entry.nr_pages):
                    base = entry.vaddr + i * PAGE_SIZE
                    if base not in resolvable:
                        raise StoreError(
                            f"delta references page {base:#x} that "
                            f"parent chain {parent[:12]} cannot resolve")

        new_chunks = 0
        dup_chunks = 0
        new_physical = 0

        def _ensure(data: bytes) -> str:
            nonlocal new_chunks, dup_chunks, new_physical
            digest, created = self.chunks.ensure(data)
            if created:
                new_chunks += 1
                new_physical += self.chunks.stored_size(digest)
            else:
                dup_chunks += 1
            return digest

        meta = {name: _ensure(blob)
                for name, blob in sorted(images.files.items())
                if name != _PAGES_FILE}

        pages: List[List] = []
        blob = images.pages()
        index = 0
        for entry in pagemap.entries:
            if entry.in_parent:
                continue
            for i in range(entry.nr_pages):
                offset = index * PAGE_SIZE
                digest = _ensure(blob[offset:offset + PAGE_SIZE])
                pages.append([entry.vaddr + i * PAGE_SIZE, digest])
                index += 1
        pages.sort(key=lambda item: item[0])

        manifest = {
            "parent": parent or "",
            "arch": images.inventory().arch,
            "pid": images.inventory().pid,
            "meta": meta,
            "pages": pages,
        }
        manifest_blob = _canon(manifest)
        checkpoint_id = _ensure(manifest_blob)

        logical = (sum(len(b) for n, b in images.files.items()
                       if n != _PAGES_FILE)
                   + pagemap.total_pages() * PAGE_SIZE)

        if checkpoint_id in self._checkpoints:
            # Identical content put twice: one checkpoint, no extra refs.
            return PutResult(checkpoint_id, False, delta, new_chunks,
                             dup_chunks, new_physical, logical,
                             pagemap.total_pages(), len(pages))

        self._register(checkpoint_id, manifest)
        return PutResult(checkpoint_id, True, delta, new_chunks,
                         dup_chunks, new_physical, logical,
                         pagemap.total_pages(), len(pages))

    def put_group(self, member_ids: List[str], label: str = "") -> str:
        """Atomically register a *group manifest* covering already-put
        member checkpoints — the commit point of a coordinated group
        checkpoint (:mod:`repro.group`): one chunk either registers or
        it does not, so a coordinator crash can never leave a partial
        group visible.

        The group manifest pins every member (like a parent link), so
        :meth:`delete` refuses to drop a member while a live group
        still references it. The returned group id is the manifest
        chunk's digest — content-derived, replay-stable.
        """
        if not member_ids:
            raise StoreError("group manifest needs at least one member")
        for member in member_ids:
            if member not in self._checkpoints:
                raise StoreError(f"group member {member[:12]} is not a "
                                 f"registered checkpoint")
            if self.is_group(member):
                raise StoreError(f"group member {member[:12]} is itself "
                                 f"a group manifest")
        manifest = {"kind": "group", "label": label,
                    "members": list(member_ids)}
        group_id, _created = self.chunks.ensure(_canon(manifest))
        if group_id in self._checkpoints:
            return group_id
        self._register(group_id, manifest)
        return group_id

    def adopt_manifest(self, manifest_blob: bytes) -> str:
        """Register a manifest whose chunks are already present (the
        receive side of a delta transfer). Idempotent."""
        digest, _created = self.chunks.ensure(manifest_blob)
        if digest in self._checkpoints:
            return digest
        try:
            manifest = json.loads(manifest_blob)
        except ValueError as exc:
            raise StoreError(f"manifest {digest[:12]} is not JSON: "
                             f"{exc}") from exc
        parent = manifest.get("parent", "")
        if parent and parent not in self._checkpoints:
            raise StoreError(f"manifest {digest[:12]} parent "
                             f"{parent[:12]} not registered — ship the "
                             f"chain root first")
        for member in manifest.get("members", ()):
            if member not in self._checkpoints:
                raise StoreError(f"group manifest {digest[:12]} member "
                                 f"{member[:12]} not registered — ship "
                                 f"the members first")
        for ref in self._manifest_refs(digest, manifest):
            if not self.chunks.has(ref):
                raise StoreError(f"manifest {digest[:12]} references "
                                 f"missing chunk {ref[:12]}")
        self._register(digest, manifest)
        return digest

    def _manifest_refs(self, checkpoint_id: str, manifest: dict
                       ) -> List[str]:
        """Every chunk reference a registered manifest pins (with
        multiplicity): its own blob, metas, pages, parent manifest —
        or, for a group manifest, its own blob plus every member."""
        refs = [checkpoint_id]
        if manifest.get("kind") == "group":
            refs.extend(manifest["members"])
            return refs
        refs.extend(manifest["meta"].values())
        refs.extend(digest for _vaddr, digest in manifest["pages"])
        if manifest.get("parent"):
            refs.append(manifest["parent"])
        return refs

    def _register(self, checkpoint_id: str, manifest: dict) -> None:
        for ref in self._manifest_refs(checkpoint_id, manifest):
            self.chunks.incref(ref)
        self._checkpoints[checkpoint_id] = manifest

    # -- lookup -----------------------------------------------------------

    def __contains__(self, checkpoint_id: str) -> bool:
        return checkpoint_id in self._checkpoints

    def checkpoint_ids(self) -> List[str]:
        return list(self._checkpoints)

    def manifest(self, checkpoint_id: str) -> dict:
        try:
            return self._checkpoints[checkpoint_id]
        except KeyError:
            raise StoreError(
                f"unknown checkpoint {checkpoint_id[:12]}") from None

    def parent_of(self, checkpoint_id: str) -> Optional[str]:
        parent = self.manifest(checkpoint_id).get("parent", "")
        return parent or None

    def chain(self, checkpoint_id: str) -> List[str]:
        """Ancestry, root first, ``checkpoint_id`` last."""
        out = []
        cursor: Optional[str] = checkpoint_id
        while cursor is not None:
            if cursor in out:
                raise StoreError(f"parent cycle at {cursor[:12]}")
            out.append(cursor)
            cursor = self.parent_of(cursor)
        out.reverse()
        return out

    def children(self, checkpoint_id: str) -> List[str]:
        return [cid for cid, man in self._checkpoints.items()
                if man.get("parent", "") == checkpoint_id]

    # -- group manifests ----------------------------------------------------

    def is_group(self, checkpoint_id: str) -> bool:
        return self.manifest(checkpoint_id).get("kind") == "group"

    def group_ids(self) -> List[str]:
        return [cid for cid, man in self._checkpoints.items()
                if man.get("kind") == "group"]

    def members(self, group_id: str) -> List[str]:
        manifest = self.manifest(group_id)
        if manifest.get("kind") != "group":
            raise StoreError(
                f"checkpoint {group_id[:12]} is not a group manifest")
        return list(manifest["members"])

    def groups_referencing(self, checkpoint_id: str) -> List[str]:
        """Group manifests that pin ``checkpoint_id`` as a member."""
        return [gid for gid, man in self._checkpoints.items()
                if man.get("kind") == "group"
                and checkpoint_id in man["members"]]

    def resolve_pages(self, checkpoint_id: str) -> Dict[int, str]:
        """vaddr -> chunk digest for every page of the checkpoint,
        resolved through the parent chain (child wins), restricted to
        the pages the leaf's pagemap actually maps (a page unmapped
        since an ancestor does not resurface)."""
        resolved: Dict[int, str] = {}
        for cid in self.chain(checkpoint_id):
            resolved.update({vaddr: digest for vaddr, digest
                             in self.manifest(cid)["pages"]})
        live = set(self._pagemap(checkpoint_id).page_addresses())
        return {vaddr: digest for vaddr, digest in resolved.items()
                if vaddr in live}

    def _pagemap(self, checkpoint_id: str) -> PagemapImage:
        digest = self.manifest(checkpoint_id)["meta"]["pagemap.img"]
        return PagemapImage.from_bytes(self.chunks.get(digest))

    def logical_bytes(self, checkpoint_id: str) -> int:
        """Size of the checkpoint as a *full* (non-delta) image set —
        what a plain scp copy of it would ship. For a group manifest:
        the sum over its members."""
        manifest = self.manifest(checkpoint_id)
        if manifest.get("kind") == "group":
            return sum(self.logical_bytes(member)
                       for member in manifest["members"])
        meta_bytes = sum(self.chunks.chunk(d).logical_size
                         for d in manifest["meta"].values())
        return (meta_bytes
                + self._pagemap(checkpoint_id).total_pages() * PAGE_SIZE)

    # -- materialize ------------------------------------------------------

    def materialize(self, checkpoint_id: str, verify: bool = False,
                    binary=None) -> ImageSet:
        """Rebuild a full :class:`ImageSet` (no PE_PARENT runs left).

        For a full checkpoint this reproduces the stored image set
        byte-for-byte; for a delta it folds the parent chain in.

        ``verify=True`` runs the rebuilt set through the restore guard
        (:func:`repro.verify.verify_images`) against this checkpoint's
        own page manifest — a second line of defense past the chunks'
        read-time re-hashing, catching a manifest that resolves to the
        wrong (but individually intact) chunks. Raises
        :class:`~repro.errors.VerifyError` on failure; pass ``binary``
        to extend the check to the semantic pass.
        """
        manifest = self.manifest(checkpoint_id)
        if manifest.get("kind") == "group":
            raise StoreError(
                f"checkpoint {checkpoint_id[:12]} is a group manifest — "
                f"materialize its members individually")
        files = {name: self.chunks.get(digest)
                 for name, digest in manifest["meta"].items()}
        pagemap = PagemapImage.from_bytes(files["pagemap.img"])
        pages = self.resolve_pages(checkpoint_id)

        blob = bytearray()
        entries: List[PagemapEntry] = []
        for entry in pagemap.entries:
            # Canonical full form: flags cleared, and runs that were
            # only split at a PE_PARENT boundary merged back — a
            # materialized delta is byte-identical to the full dump a
            # plain dump_process would have produced.
            if (entries and entry.vaddr == entries[-1].vaddr
                    + entries[-1].nr_pages * PAGE_SIZE):
                entries[-1].nr_pages += entry.nr_pages
            else:
                entries.append(PagemapEntry(entry.vaddr,
                                            entry.nr_pages, 0))
            for i in range(entry.nr_pages):
                base = entry.vaddr + i * PAGE_SIZE
                digest = pages.get(base)
                if digest is None:
                    raise StoreError(
                        f"checkpoint {checkpoint_id[:12]}: page "
                        f"{base:#x} unresolvable (broken chain?)")
                blob += self.chunks.get(digest)
        images = ImageSet(files)
        inventory = images.inventory()
        if inventory.parent:
            inventory.parent = ""
            images.set_inventory(inventory)
        images.set_pagemap(PagemapImage(entries))
        images.set_pages(bytes(blob))
        if verify:
            from ..verify import verify_images
            verify_images(images, binary=binary, store=self,
                          page_digests=pages)
        return images

    # -- lifecycle --------------------------------------------------------

    def delete(self, checkpoint_id: str) -> None:
        """Unregister a checkpoint (children must go first, and a member
        of a live group manifest is refused — delete the group first);
        chunk data is reclaimed by the next :meth:`ChunkStore.gc`."""
        manifest = self.manifest(checkpoint_id)
        kids = self.children(checkpoint_id)
        if kids:
            raise StoreError(
                f"checkpoint {checkpoint_id[:12]} has "
                f"{len(kids)} dependent child(ren); delete those first")
        groups = self.groups_referencing(checkpoint_id)
        if groups:
            raise StoreError(
                f"checkpoint {checkpoint_id[:12]} is a member of "
                f"{len(groups)} group manifest(s) "
                f"({', '.join(g[:12] for g in groups)}); delete those "
                f"first")
        for ref in self._manifest_refs(checkpoint_id, manifest):
            self.chunks.decref(ref)
        del self._checkpoints[checkpoint_id]

    def gc(self) -> Tuple[int, int]:
        return self.chunks.gc()

    # -- fsck -------------------------------------------------------------

    def verify(self) -> List[str]:
        """Chunk-level fsck plus referential audit of the manifests."""
        problems = self.chunks.verify()
        expected: Counter = Counter()
        for cid, manifest in self._checkpoints.items():
            parent = manifest.get("parent", "")
            if parent and parent not in self._checkpoints:
                problems.append(f"checkpoint {cid[:12]}: parent "
                                f"{parent[:12]} not registered")
            for member in manifest.get("members", ()):
                if member not in self._checkpoints:
                    problems.append(f"group {cid[:12]}: member "
                                    f"{member[:12]} not registered")
            for ref in self._manifest_refs(cid, manifest):
                expected[ref] += 1
                if not self.chunks.has(ref):
                    problems.append(f"checkpoint {cid[:12]}: missing "
                                    f"chunk {ref[:12]}")
        for digest, want in expected.items():
            if self.chunks.has(digest) and \
                    self.chunks.chunk(digest).refs < want:
                problems.append(
                    f"chunk {digest[:12]}: under-referenced "
                    f"({self.chunks.chunk(digest).refs} < {want})")
        return problems

    # -- metrics ----------------------------------------------------------

    def stats(self) -> dict:
        logical = sum(self.logical_bytes(cid)
                      for cid in self._checkpoints)
        physical = self.chunks.physical_bytes()
        return {
            "checkpoints": len(self._checkpoints),
            "chunks": len(self.chunks),
            "logical_bytes": logical,
            "unique_bytes": self.chunks.unique_bytes(),
            "physical_bytes": physical,
            "dedup_ratio": (logical / physical) if physical else 1.0,
            "puts": self.chunks.puts,
            "dup_puts": self.chunks.dup_puts,
        }

    # -- directory persistence (the CLI's on-disk format) -----------------

    def save_dir(self, path: str) -> None:
        chunk_dir = os.path.join(path, "chunks")
        os.makedirs(chunk_dir, exist_ok=True)
        index = {"codec": self.chunks.codec_name, "chunks": {},
                 "checkpoints": list(self._checkpoints)}
        for chunk in self.chunks:
            with open(os.path.join(chunk_dir, chunk.digest), "wb") as fh:
                fh.write(chunk.payload)
            index["chunks"][chunk.digest] = {
                "codec": chunk.codec,
                "logical": chunk.logical_size,
                "refs": chunk.refs,
            }
        # prune chunk files dropped since the last save (gc'd chunks)
        for stale in os.listdir(chunk_dir):
            if stale not in index["chunks"]:
                os.unlink(os.path.join(chunk_dir, stale))
        with open(os.path.join(path, "index.json"), "w") as fh:
            json.dump(index, fh, indent=1, sort_keys=True)

    @classmethod
    def load_dir(cls, path: str) -> "CheckpointStore":
        index_path = os.path.join(path, "index.json")
        try:
            with open(index_path) as fh:
                index = json.load(fh)
        except (OSError, ValueError) as exc:
            raise StoreError(f"cannot load store at {path!r}: "
                             f"{exc}") from exc
        store = cls(codec=index.get("codec", "zlib"))
        for digest, info in index.get("chunks", {}).items():
            try:
                with open(os.path.join(path, "chunks", digest),
                          "rb") as fh:
                    payload = fh.read()
            except OSError as exc:
                raise StoreError(f"missing chunk file {digest[:12]}: "
                                 f"{exc}") from exc
            store.chunks.adopt(digest, info["codec"], payload,
                               info["logical"])
            store.chunks.chunk(digest).refs = int(info.get("refs", 0))
        for cid in index.get("checkpoints", []):
            try:
                manifest = json.loads(store.chunks.get(cid))
            except ValueError as exc:
                raise StoreError(f"checkpoint {cid[:12]}: manifest is "
                                 f"not JSON: {exc}") from exc
            # refs were persisted; register without increfing again
            store._checkpoints[cid] = manifest
        return store


class IncrementalCheckpointer:
    """Drives incremental dumps of one process into a store.

    The first :meth:`checkpoint` is a full dump and switches the
    process's dirty-page tracking on; every later call harvests the
    dirty set and emits a delta against the previous checkpoint.
    Tracking costs nothing until the first checkpoint is taken.
    """

    def __init__(self, store: CheckpointStore, process, runtime=None):
        self.store = store
        self.process = process
        #: optional :class:`~repro.core.runtime.DapperRuntime` — when
        #: given, ``__dapper_flag`` is zeroed before each dump exactly
        #: like ``DapperRuntime.checkpoint`` does, so restored images
        #: do not re-trap at the next equivalence point.
        self.runtime = runtime
        self.last_id: Optional[str] = None
        self.last_images: Optional[ImageSet] = None

    def checkpoint(self) -> PutResult:
        if self.runtime is not None:
            self.runtime.clear_flag()
        if self.last_id is None:
            images = dump_process(self.process)
            result = self.store.put(images)
            self.process.start_dirty_tracking()
        else:
            dirty = self.process.harvest_dirty_pages()
            parent_pages = set(self.store.resolve_pages(self.last_id))
            images = dump_process(self.process, parent=self.last_id,
                                  parent_pages=parent_pages,
                                  dirty_pages=dirty)
            result = self.store.put(images, parent=self.last_id)
        self.last_id = result.checkpoint_id
        self.last_images = images
        return result
