"""Content-addressed checkpoint store (dedup, incremental, delta transfer).

Three layers:

* :mod:`repro.store.chunks` — a blake2b-keyed chunk store with
  refcounted garbage collection, pluggable compression codecs and an
  fsck-style ``verify()``.
* :mod:`repro.store.checkpoints` — checkpoints as manifests of chunk
  digests, with parent chains for incremental dumps and
  ``materialize()`` back into a full :class:`~repro.criu.images.ImageSet`.
* :mod:`repro.store.transfer` — the delta-transfer planner: ship only
  the chunks the destination store is missing, measured against a
  :class:`~repro.core.costs.LinkProfile`; plus a store-backed post-copy
  :class:`~repro.criu.lazy.PageServer`.
"""

from .chunks import CODECS, ChunkStore, chunk_digest, register_codec
from .checkpoints import (CheckpointStore, IncrementalCheckpointer,
                          PutResult)
from .transfer import StorePageServer, TransferPlan, plan_transfer, ship

__all__ = [
    "CODECS", "ChunkStore", "chunk_digest", "register_codec",
    "CheckpointStore", "IncrementalCheckpointer", "PutResult",
    "StorePageServer", "TransferPlan", "plan_transfer", "ship",
]
