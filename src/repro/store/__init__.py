"""Content-addressed checkpoint store (dedup, incremental, delta transfer).

Three layers:

* :mod:`repro.store.chunks` — a blake2b-keyed chunk store with
  refcounted garbage collection, pluggable compression codecs and an
  fsck-style ``verify()``.
* :mod:`repro.store.checkpoints` — checkpoints as manifests of chunk
  digests, with parent chains for incremental dumps and
  ``materialize()`` back into a full :class:`~repro.criu.images.ImageSet`.
* :mod:`repro.store.transfer` — the delta-transfer planner: ship only
  the chunks the destination store is missing, measured against a
  :class:`~repro.core.costs.LinkProfile`; plus a store-backed post-copy
  :class:`~repro.criu.lazy.PageServer`.
* :mod:`repro.store.backend` — pluggable durable persistence: a
  simulated disk with crash-tearing semantics (:class:`SimDisk`), real
  files (:class:`OsDisk`), and the write-tmp/fsync/rename chunk-file
  discipline (:class:`DirBackend`).
* :mod:`repro.store.wal` — the write-ahead intent log every multi-step
  durable mutation is bracketed by, reopened as its longest valid
  prefix after a crash; :meth:`CheckpointStore.recover` rolls
  committed intents forward, uncommitted ones back, rebuilds the
  refcount books from the surviving manifests, quarantines torn
  chunks, and sweeps orphans.
"""

from .backend import DirBackend, OsDisk, SimDisk
from .chunks import CODECS, ChunkStore, chunk_digest, register_codec
from .checkpoints import (CheckpointStore, IncrementalCheckpointer,
                          PutResult, RecoveryReport, ScrubReport)
from .transfer import StorePageServer, TransferPlan, plan_transfer, ship
from .wal import WriteAheadLog, decode_wal, fold_wal

__all__ = [
    "CODECS", "ChunkStore", "chunk_digest", "register_codec",
    "CheckpointStore", "IncrementalCheckpointer", "PutResult",
    "RecoveryReport", "ScrubReport",
    "DirBackend", "OsDisk", "SimDisk",
    "WriteAheadLog", "decode_wal", "fold_wal",
    "StorePageServer", "TransferPlan", "plan_transfer", "ship",
]
