"""The store's write-ahead intent log.

Every multi-step durable mutation of a backend-backed
:class:`~repro.store.CheckpointStore` — ``put``, ``put_group``,
``adopt`` during a transfer, ``delete``, ``gc``, and a coordinator's
two-phase group checkpoint — is bracketed by WAL records:

* ``begin`` declares the *intent* (action + the ids it will touch)
  before any durable apply,
* ``member`` amends an open group intent with one prepared member
  (the coordinator learns its members one prepare at a time),
* ``commit`` seals the transaction — a mutation is real iff its
  commit record landed,
* ``abort`` closes a transaction whose *in-process* rollback already
  undid its effects (a coordinator abort), so recovery does not undo
  it twice,
* ``snapshot`` is the compaction record: recovery rewrites the WAL as
  one snapshot naming every registered checkpoint, which both bounds
  the log and makes recovery idempotent.

Records are framed ``varint length | canonical-JSON body | blake2b-16
checksum``; the file opens with an 8-byte magic. A torn tail — a
crashed writer, exactly like a truncated flight-recorder journal —
reopens as its **longest valid prefix**: decoding stops at the first
frame that is short or fails its checksum, and reports why, mirroring
the :class:`~repro.errors.JournalTruncated` semantics of
:mod:`repro.replay.journal`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from .. import wire
from ..errors import StoreError

MAGIC = b"DWAL1\x00\x00\n"

#: checksum width (blake2b-128, same as the chunk digests)
CHECKSUM_SIZE = 16

#: transactional actions an intent may declare
ACTIONS = ("put", "put_group", "adopt", "delete", "gc", "group")


def _canon(obj) -> bytes:
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def encode_record(record: Dict) -> bytes:
    """One framed WAL record: varint length + body + checksum."""
    body = _canon(record)
    digest = hashlib.blake2b(body, digest_size=CHECKSUM_SIZE).digest()
    return wire.encode_varint(len(body)) + body + digest


def decode_wal(blob: bytes) -> Tuple[List[Dict], Optional[str]]:
    """Decode a WAL byte stream to its longest valid prefix.

    Returns ``(records, tail_cut)``; ``tail_cut`` is ``None`` for a
    clean log, otherwise a human-readable reason the tail was cut
    (truncated frame, checksum mismatch, bad magic remainder). Bytes
    past the cut are *ignored*, never trusted — the crashed writer's
    torn append simply never happened.
    """
    if not blob:
        return [], None
    if not blob.startswith(MAGIC):
        return [], "bad WAL magic"
    pos = len(MAGIC)
    records: List[Dict] = []
    while pos < len(blob):
        try:
            length, body_pos = wire.decode_varint(blob, pos)
        except Exception:
            return records, f"torn frame header at byte {pos}"
        end = body_pos + length + CHECKSUM_SIZE
        if end > len(blob):
            return records, (f"torn frame at byte {pos} "
                             f"(needs {end - len(blob)} more byte(s))")
        body = blob[body_pos:body_pos + length]
        checksum = blob[body_pos + length:end]
        if hashlib.blake2b(body,
                           digest_size=CHECKSUM_SIZE).digest() != checksum:
            return records, f"checksum mismatch at byte {pos}"
        try:
            record = json.loads(body)
        except ValueError:
            return records, f"non-JSON record body at byte {pos}"
        if not isinstance(record, dict) or "op" not in record:
            return records, f"malformed record at byte {pos}"
        records.append(record)
        pos = end
    return records, None


class WriteAheadLog:
    """Intent-log writer over one :class:`~repro.store.backend.DirBackend`.

    The log itself is append-only; durability sites (the backend's
    ``wal.append`` / ``wal.fsync``) are consulted on every record, so
    the crash-point sweep exercises the torn-append window between the
    two. Transaction ids are monotonically increasing integers, assigned
    in memory — recovery derives the next id from the surviving log.
    """

    def __init__(self, backend, next_txn: int = 1):
        self.backend = backend
        self.next_txn = next_txn

    # -- record append -----------------------------------------------------

    def _append(self, record: Dict) -> None:
        self.backend.wal_append(encode_record(record))

    def init(self, codec: str) -> None:
        """Write the opening snapshot of a fresh (empty) log."""
        self.backend.wal_create(MAGIC)
        self._append({"op": "snapshot", "codec": codec,
                      "checkpoints": []})

    def begin(self, action: str, cid: str = "",
              members: Optional[List[str]] = None,
              digests: Optional[List[str]] = None,
              label: str = "") -> int:
        if action not in ACTIONS:
            raise StoreError(f"unknown WAL action {action!r}")
        txn = self.next_txn
        self.next_txn += 1
        record = {"op": "begin", "txn": txn, "action": action}
        if cid:
            record["cid"] = cid
        if members is not None:
            record["members"] = list(members)
        if digests is not None:
            record["digests"] = list(digests)
        if label:
            record["label"] = label
        self._append(record)
        return txn

    def member(self, txn: int, cid: str) -> None:
        """Amend an open group intent with one prepared member."""
        self._append({"op": "member", "txn": txn, "cid": cid})

    def commit(self, txn: int, cid: str = "") -> None:
        record = {"op": "commit", "txn": txn}
        if cid:
            record["cid"] = cid
        self._append(record)

    def abort(self, txn: int) -> None:
        self._append({"op": "abort", "txn": txn})

    # -- compaction --------------------------------------------------------

    def compact(self, codec: str, checkpoints: List[str]) -> None:
        """Atomically rewrite the log as one snapshot record."""
        blob = MAGIC + encode_record({"op": "snapshot", "codec": codec,
                                      "checkpoints": list(checkpoints)})
        self.backend.wal_replace(blob)
        self.next_txn = 1


class WalState:
    """The durable truth a WAL stream folds to.

    * ``codec`` — the store codec from the latest snapshot,
    * ``registered`` — checkpoint ids in registration order after every
      committed transaction is applied (puts/adopts/groups add, deletes
      remove),
    * ``gc_unlinked`` — chunk digests a *committed* gc intent promised
      to remove (roll-forward set),
    * ``open_txns`` — txn id -> begin record (with accumulated
      ``members``) for every transaction left open at the cut: the
      roll-back set,
    * ``max_txn`` — highest txn id seen (the next writer starts past
      it).
    """

    def __init__(self):
        self.codec = "zlib"
        self.registered: List[str] = []
        self.gc_unlinked: List[str] = []
        self.open_txns: Dict[int, Dict] = {}
        self.max_txn = 0

    def _add(self, cid: str) -> None:
        if cid and cid not in self.registered:
            self.registered.append(cid)

    def apply(self, record: Dict) -> None:
        op = record.get("op")
        if op == "snapshot":
            self.codec = record.get("codec", "zlib")
            self.registered = list(record.get("checkpoints", []))
            return
        txn = int(record.get("txn", 0))
        if txn > self.max_txn:
            self.max_txn = txn
        if op == "begin":
            self.open_txns[txn] = dict(record)
            self.open_txns[txn].setdefault("members", [])
            return
        if op == "member":
            intent = self.open_txns.get(txn)
            if intent is not None:
                intent["members"].append(record.get("cid", ""))
            return
        if op == "abort":
            self.open_txns.pop(txn, None)
            return
        if op == "commit":
            intent = self.open_txns.pop(txn, None)
            if intent is None:
                return
            action = intent.get("action", "")
            if action in ("put", "adopt", "put_group"):
                self._add(intent.get("cid", ""))
            elif action == "group":
                # The group id is only known at commit time (it is the
                # manifest chunk's content digest).
                self._add(record.get("cid", ""))
            elif action == "delete":
                cid = intent.get("cid", "")
                if cid in self.registered:
                    self.registered.remove(cid)
            elif action == "gc":
                self.gc_unlinked.extend(intent.get("digests", []))


def fold_wal(records: List[Dict]) -> WalState:
    """Fold a decoded record stream into its end state."""
    state = WalState()
    for record in records:
        state.apply(record)
    return state
