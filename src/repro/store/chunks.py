"""Content-addressed chunk store: the byte layer of the checkpoint store.

Chunks are keyed by the blake2b-128 digest of their *uncompressed*
contents, so identical pages — across checkpoints, across processes,
across nodes, even across ISAs (the aligning linker gives both
architectures' images the same read-only data pages) — occupy storage
exactly once. Each chunk carries a reference count maintained by the
checkpoint layer; ``gc()`` sweeps unreferenced chunks, and ``verify()``
is the fsck: it re-hashes every chunk and reports any whose stored
payload no longer decompresses to its digest.

Compression codecs are pluggable (``register_codec``); ``raw`` and
``zlib`` ship built in. A chunk that does not shrink under the store's
codec is kept raw, deterministically, so journals of store-backed runs
stay bit-identical.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import StoreError

#: digest width in bytes (blake2b-128, matching the replay digests)
DIGEST_SIZE = 16


def chunk_digest(data: bytes) -> str:
    """Content address of ``data`` (hex, 32 chars)."""
    return hashlib.blake2b(data, digest_size=DIGEST_SIZE).hexdigest()


class Codec:
    """One compression codec; subclass and ``register_codec`` to extend."""

    name = "?"

    def compress(self, data: bytes) -> bytes:
        raise NotImplementedError

    def decompress(self, blob: bytes) -> bytes:
        raise NotImplementedError


class RawCodec(Codec):
    name = "raw"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, blob: bytes) -> bytes:
        return bytes(blob)


class ZlibCodec(Codec):
    name = "zlib"

    def __init__(self, level: int = 6):
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, blob: bytes) -> bytes:
        try:
            return zlib.decompress(blob)
        except zlib.error as exc:
            raise StoreError(f"zlib chunk does not decompress: {exc}") \
                from exc


CODECS: Dict[str, Codec] = {"raw": RawCodec(), "zlib": ZlibCodec()}


def register_codec(codec: Codec) -> None:
    CODECS[codec.name] = codec


class Chunk:
    """One stored blob: compressed payload + bookkeeping."""

    __slots__ = ("digest", "codec", "payload", "logical_size", "refs")

    def __init__(self, digest: str, codec: str, payload: bytes,
                 logical_size: int, refs: int = 0):
        self.digest = digest
        self.codec = codec
        self.payload = payload
        self.logical_size = logical_size
        self.refs = refs

    def __repr__(self) -> str:
        return (f"<Chunk {self.digest[:12]} {self.codec} "
                f"{len(self.payload)}B refs={self.refs}>")


class ChunkStore:
    """Digest-keyed chunk storage with refcounts and GC."""

    def __init__(self, codec: str = "zlib"):
        if codec not in CODECS:
            raise StoreError(f"unknown codec {codec!r}; "
                             f"known: {sorted(CODECS)}")
        self.codec_name = codec
        self._chunks: Dict[str, Chunk] = {}
        self.puts = 0       # ensure/put calls
        self.dup_puts = 0   # calls that hit an existing chunk
        # References taken by put() rather than by a manifest (the
        # page server pinning left-behind pages). Tracked so the
        # refcount audit can account for every reference: for each
        # digest, refs == manifest references + raw_pins.
        self.raw_pins: Dict[str, int] = {}

    # -- insertion --------------------------------------------------------

    def ensure(self, data: bytes) -> Tuple[str, bool]:
        """Insert ``data`` if absent (refcount untouched).

        Returns ``(digest, created)``. The checkpoint layer uses this,
        then increfs once per manifest *reference*, so refcounts always
        equal the number of live references and ``verify()`` can check
        the books.
        """
        self.puts += 1
        digest = chunk_digest(data)
        if digest in self._chunks:
            self.dup_puts += 1
            return digest, False
        codec_name = self.codec_name
        payload = CODECS[codec_name].compress(data)
        if len(payload) >= len(data):
            # Incompressible: keep raw. Deterministic, so store-backed
            # replay journals stay bit-identical.
            codec_name = "raw"
            payload = bytes(data)
        self._chunks[digest] = Chunk(digest, codec_name, payload,
                                     len(data))
        return digest, True

    def put(self, data: bytes) -> str:
        """Insert ``data`` and take one reference (raw-blob use)."""
        digest, _created = self.ensure(data)
        self._chunks[digest].refs += 1
        self.raw_pins[digest] = self.raw_pins.get(digest, 0) + 1
        return digest

    def unpin(self, digest: str) -> None:
        """Release one raw (non-manifest) reference taken by :meth:`put`."""
        pins = self.raw_pins.get(digest, 0)
        if pins <= 0:
            raise StoreError(f"unpin of unpinned chunk {digest[:12]}")
        if pins == 1:
            del self.raw_pins[digest]
        else:
            self.raw_pins[digest] = pins - 1
        self.decref(digest)

    def adopt(self, digest: str, codec: str, payload: bytes,
              logical_size: int) -> bool:
        """Install an already-compressed chunk (the transfer path).

        The payload is decompressed and re-hashed before acceptance —
        a corrupted wire transfer must not poison the store. When the
        digest is already present the incoming payload must decompress
        to the *same* bytes as the stored chunk: a mismatch is either a
        hash collision or (far more likely) a corrupted sender, and
        silently keeping the local copy would mask it. Returns True if
        a new chunk was installed.
        """
        if codec not in CODECS:
            raise StoreError(f"adopt: unknown codec {codec!r}")
        data = CODECS[codec].decompress(payload)
        if chunk_digest(data) != digest or len(data) != logical_size:
            raise StoreError(f"adopt: chunk {digest[:12]} does not match "
                             f"its digest")
        existing = self._chunks.get(digest)
        if existing is not None:
            if CODECS[existing.codec].decompress(existing.payload) != data:
                raise StoreError(
                    f"adopt: digest collision on {digest[:12]} — incoming "
                    f"payload differs from the stored chunk")
            return False
        self._chunks[digest] = Chunk(digest, codec, bytes(payload),
                                     logical_size)
        return True

    # -- retrieval --------------------------------------------------------

    def get(self, digest: str) -> bytes:
        chunk = self._chunks.get(digest)
        if chunk is None:
            raise StoreError(f"no chunk {digest[:12]} in store")
        return CODECS[chunk.codec].decompress(chunk.payload)

    def has(self, digest: str) -> bool:
        return digest in self._chunks

    def chunk(self, digest: str) -> Chunk:
        chunk = self._chunks.get(digest)
        if chunk is None:
            raise StoreError(f"no chunk {digest[:12]} in store")
        return chunk

    def stored_size(self, digest: str) -> int:
        """On-the-wire (compressed) size of one chunk."""
        return len(self.chunk(digest).payload)

    def digests(self) -> List[str]:
        return sorted(self._chunks)

    def __len__(self) -> int:
        return len(self._chunks)

    def __iter__(self) -> Iterator[Chunk]:
        for digest in sorted(self._chunks):
            yield self._chunks[digest]

    # -- refcounting + GC -------------------------------------------------

    def incref(self, digest: str, count: int = 1) -> None:
        self.chunk(digest).refs += count

    def decref(self, digest: str, count: int = 1) -> None:
        chunk = self.chunk(digest)
        if chunk.refs < count:
            raise StoreError(f"refcount underflow on {digest[:12]} "
                             f"({chunk.refs} - {count})")
        chunk.refs -= count

    def orphans(self) -> List[str]:
        """Digests with no live references — e.g. chunks adopted by an
        aborted transfer whose manifest never registered. These are
        exactly what the next :meth:`gc` reclaims; a clean store after
        a migration rollback has none."""
        return sorted(d for d, c in self._chunks.items() if c.refs <= 0)

    def gc(self) -> Tuple[int, int]:
        """Drop unreferenced chunks; returns (chunks, bytes) reclaimed."""
        dead = [d for d, c in self._chunks.items() if c.refs <= 0]
        freed = 0
        for digest in dead:
            freed += len(self._chunks[digest].payload)
            del self._chunks[digest]
        return len(dead), freed

    # -- fsck -------------------------------------------------------------

    def verify(self) -> List[str]:
        """Re-hash every chunk; returns human-readable problem list."""
        problems: List[str] = []
        for digest in sorted(self._chunks):
            chunk = self._chunks[digest]
            codec = CODECS.get(chunk.codec)
            if codec is None:
                problems.append(f"chunk {digest[:12]}: unknown codec "
                                f"{chunk.codec!r}")
                continue
            try:
                data = codec.decompress(chunk.payload)
            except StoreError as exc:
                problems.append(f"chunk {digest[:12]}: {exc}")
                continue
            if chunk_digest(data) != digest:
                problems.append(f"chunk {digest[:12]}: payload does not "
                                f"hash to its digest (corrupt)")
            elif len(data) != chunk.logical_size:
                problems.append(f"chunk {digest[:12]}: logical size "
                                f"mismatch ({len(data)} != "
                                f"{chunk.logical_size})")
        return problems

    # -- metrics ----------------------------------------------------------

    def physical_bytes(self) -> int:
        """Bytes actually stored (compressed, deduplicated)."""
        return sum(len(c.payload) for c in self._chunks.values())

    def unique_bytes(self) -> int:
        """Uncompressed bytes of the unique chunk set."""
        return sum(c.logical_size for c in self._chunks.values())

    def __repr__(self) -> str:
        return (f"<ChunkStore {len(self._chunks)} chunks "
                f"{self.physical_bytes()}B [{self.codec_name}]>")
