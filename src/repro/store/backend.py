"""Pluggable persistence backends for the checkpoint store.

The durable layout is deliberately tiny — three kinds of file under one
root, every one of them either content-addressed or
longest-valid-prefix recoverable:

* ``chunks/<digest>`` — one file per chunk: an 8-byte magic, one JSON
  header line (codec, logical size, digest), then the compressed
  payload. Self-verifying: the name, the header digest, and the
  re-hash of the decompressed payload must all agree, so a torn or
  rotted chunk file is *detected*, quarantined to
  ``quarantine/<digest>``, and never silently served.
* ``wal`` — the write-ahead intent log (:mod:`repro.store.wal`).
* ``tmp/…`` — in-flight writes. Every chunk lands via
  **write-tmp / fsync / rename**, so a crash can tear only a tmp file,
  never a published chunk; recovery sweeps ``tmp/`` unconditionally.

Two disks implement the same primitive surface:

* :class:`OsDisk` — real files under a real directory (the CLI's
  ``--backend dir``), with real ``os.fsync``.
* :class:`SimDisk` — a simulated disk with a page cache: writes land
  in a pending set and only ``fsync`` makes them durable. ``crash()``
  discards the in-memory store and **tears** every pending write at a
  seeded, deterministic byte offset — the exact failure model the
  chaos engine's crash-point sweep reopens stores against.

:class:`DirBackend` layers the store's file discipline over either
disk and consults an optional crash-point injector *before every
durable primitive*, which is what makes the sweep systematic: every
site the backend can crash at is enumerable by counting.
"""

from __future__ import annotations

import json
import os
import random
from typing import Dict, List, Optional

from ..errors import StoreError

CHUNK_MAGIC = b"DCHNK1\x00\n"

_CHUNK_DIR = "chunks/"
_TMP_DIR = "tmp/"
_QUARANTINE_DIR = "quarantine/"
_WAL = "wal"


# -- disks ---------------------------------------------------------------------


class SimDisk:
    """In-memory simulated disk with crash-tearing semantics.

    ``_durable`` holds what survives a crash; ``_pending`` holds the
    would-be contents of files written (or appended to) but not yet
    fsynced. :meth:`crash` resolves every pending file to its durable
    prefix plus a seeded-random cut of the new bytes — a *torn write*.
    Renames are atomic and preserve the source's durability (the
    backend's discipline always fsyncs before renaming), and unlinks
    are modeled as immediately durable.
    """

    def __init__(self, seed: int = 0):
        self._durable: Dict[str, bytes] = {}
        self._pending: Dict[str, bytes] = {}
        self._rng = random.Random(seed)
        self.crashes = 0

    # -- primitives --------------------------------------------------------

    def _view(self, name: str) -> Optional[bytes]:
        if name in self._pending:
            return self._pending[name]
        return self._durable.get(name)

    def write(self, name: str, data: bytes) -> None:
        self._pending[name] = bytes(data)

    def append(self, name: str, data: bytes) -> None:
        current = self._view(name)
        if current is None:
            raise StoreError(f"append to missing file {name!r}")
        self._pending[name] = current + bytes(data)

    def fsync(self, name: str) -> None:
        if name in self._pending:
            self._durable[name] = self._pending.pop(name)

    def rename(self, src: str, dst: str) -> None:
        if src in self._pending:
            self._pending[dst] = self._pending.pop(src)
            self._durable.pop(dst, None)
        elif src in self._durable:
            self._durable[dst] = self._durable.pop(src)
            self._pending.pop(dst, None)
        else:
            raise StoreError(f"rename of missing file {src!r}")

    def unlink(self, name: str) -> None:
        self._pending.pop(name, None)
        self._durable.pop(name, None)

    def exists(self, name: str) -> bool:
        return self._view(name) is not None

    def read(self, name: str) -> bytes:
        data = self._view(name)
        if data is None:
            raise StoreError(f"no such file {name!r} on simulated disk")
        return data

    def listdir(self, prefix: str) -> List[str]:
        names = set(self._durable) | set(self._pending)
        return sorted(n for n in names if n.startswith(prefix))

    # -- crash model -------------------------------------------------------

    def crash(self) -> List[str]:
        """Kill the writer: tear every pending write at a seeded
        offset. Returns the names that were torn (kept a partial new
        tail) or lost outright, in sorted order — deterministic for a
        given seed and pending set, so crash/recover runs replay
        bit-identically."""
        damaged = []
        for name in sorted(self._pending):
            pending = self._pending[name]
            base = self._durable.get(name, b"")
            # Our files only ever grow (whole-file writes are to fresh
            # names; the WAL appends): the durable prefix survives and
            # the new tail is cut at a random point.
            new = pending[len(base):] if pending.startswith(base) else pending
            keep = self._rng.randrange(len(new) + 1) if new else 0
            torn = (base if pending.startswith(base) else b"") + new[:keep]
            if torn:
                self._durable[name] = torn
            else:
                self._durable.pop(name, None)
            damaged.append(name)
        self._pending.clear()
        self.crashes += 1
        return damaged

    def clone(self) -> "SimDisk":
        """Snapshot for the sweep harness: durable state plus the tear
        RNG, so every branch of the sweep tears identically."""
        out = SimDisk.__new__(SimDisk)
        out._durable = dict(self._durable)
        out._pending = dict(self._pending)
        out._rng = random.Random()
        out._rng.setstate(self._rng.getstate())
        out.crashes = self.crashes
        return out


class OsDisk:
    """Real files under ``root`` with the same primitive surface."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        path = os.path.join(self.root, *name.split("/"))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        return path

    def write(self, name: str, data: bytes) -> None:
        with open(self._path(name), "wb") as fh:
            fh.write(data)

    def append(self, name: str, data: bytes) -> None:
        with open(self._path(name), "ab") as fh:
            fh.write(data)

    def fsync(self, name: str) -> None:
        with open(self._path(name), "rb+") as fh:
            os.fsync(fh.fileno())

    def rename(self, src: str, dst: str) -> None:
        os.replace(self._path(src), self._path(dst))

    def unlink(self, name: str) -> None:
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            pass

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def read(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as fh:
                return fh.read()
        except OSError as exc:
            raise StoreError(f"cannot read {name!r}: {exc}") from exc

    def listdir(self, prefix: str) -> List[str]:
        base = os.path.join(self.root, *prefix.rstrip("/").split("/"))
        if not os.path.isdir(base):
            return []
        return sorted(prefix + name for name in os.listdir(base))


# -- chunk file codec ----------------------------------------------------------


def encode_chunk_file(digest: str, codec: str, logical: int,
                      payload: bytes) -> bytes:
    header = json.dumps({"codec": codec, "digest": digest,
                         "logical": logical},
                        sort_keys=True, separators=(",", ":"))
    return CHUNK_MAGIC + header.encode("utf-8") + b"\n" + payload


def decode_chunk_file(blob: bytes) -> Dict:
    """Parse a chunk file; raises :class:`StoreError` on any damage the
    *framing* can see (the caller still re-hashes the payload)."""
    if not blob.startswith(CHUNK_MAGIC):
        raise StoreError("chunk file: bad magic")
    cut = blob.find(b"\n", len(CHUNK_MAGIC))
    if cut < 0:
        raise StoreError("chunk file: torn header")
    try:
        header = json.loads(blob[len(CHUNK_MAGIC):cut])
    except ValueError as exc:
        raise StoreError(f"chunk file: bad header: {exc}") from exc
    for key in ("codec", "digest", "logical"):
        if key not in header:
            raise StoreError(f"chunk file: header missing {key!r}")
    header["payload"] = blob[cut + 1:]
    return header


# -- the backend ---------------------------------------------------------------


class DirBackend:
    """Content-addressed chunk files + WAL over one disk.

    ``injector`` (a :class:`~repro.chaos.CrashPointInjector` or
    anything with a ``site(label)`` method) is consulted before every
    durable primitive; sites are labeled ``<what>.<primitive>`` so the
    systematic sweep can report exactly where each simulated crash
    landed. A ``None`` injector costs one attribute test per site.
    """

    def __init__(self, disk, injector=None):
        self.disk = disk
        self.injector = injector

    def _site(self, label: str) -> None:
        if self.injector is not None:
            self.injector.site(label)

    # -- chunks ------------------------------------------------------------

    def chunk_name(self, digest: str) -> str:
        return _CHUNK_DIR + digest

    def has_chunk(self, digest: str) -> bool:
        return self.disk.exists(self.chunk_name(digest))

    def put_chunk(self, digest: str, codec: str, logical: int,
                  payload: bytes) -> bool:
        """Publish one chunk file via write-tmp/fsync/rename.
        Idempotent; returns True when a new file was published."""
        name = self.chunk_name(digest)
        if self.disk.exists(name):
            return False
        tmp = _TMP_DIR + digest
        blob = encode_chunk_file(digest, codec, logical, payload)
        self._site(f"chunk.write:{digest[:12]}")
        self.disk.write(tmp, blob)
        self._site(f"chunk.fsync:{digest[:12]}")
        self.disk.fsync(tmp)
        self._site(f"chunk.rename:{digest[:12]}")
        self.disk.rename(tmp, name)
        return True

    def read_chunk(self, digest: str) -> Dict:
        header = decode_chunk_file(self.disk.read(self.chunk_name(digest)))
        if header["digest"] != digest:
            raise StoreError(f"chunk file {digest[:12]}: header names "
                             f"{header['digest'][:12]}")
        return header

    def list_chunks(self) -> List[str]:
        return [name[len(_CHUNK_DIR):]
                for name in self.disk.listdir(_CHUNK_DIR)]

    def unlink_chunk(self, digest: str) -> None:
        self._site(f"gc.unlink:{digest[:12]}")
        self.disk.unlink(self.chunk_name(digest))

    def quarantine_chunk(self, digest: str) -> None:
        """Move a damaged chunk file aside for diagnosis (never serve,
        never silently delete)."""
        name = self.chunk_name(digest)
        if self.disk.exists(name):
            self.disk.rename(name, _QUARANTINE_DIR + digest)

    def quarantined(self) -> List[str]:
        return [name[len(_QUARANTINE_DIR):]
                for name in self.disk.listdir(_QUARANTINE_DIR)]

    def sweep_tmp(self) -> int:
        """Remove every in-flight tmp file (torn writes)."""
        names = self.disk.listdir(_TMP_DIR)
        for name in names:
            self.disk.unlink(name)
        return len(names)

    # -- WAL ---------------------------------------------------------------

    def has_wal(self) -> bool:
        return self.disk.exists(_WAL)

    def wal_create(self, magic: bytes) -> None:
        self._site("wal.create")
        self.disk.write(_WAL, magic)
        self._site("wal.create-fsync")
        self.disk.fsync(_WAL)

    def wal_append(self, frame: bytes) -> None:
        self._site("wal.append")
        self.disk.append(_WAL, frame)
        self._site("wal.fsync")
        self.disk.fsync(_WAL)

    def wal_read(self) -> bytes:
        if not self.disk.exists(_WAL):
            return b""
        return self.disk.read(_WAL)

    def wal_replace(self, blob: bytes) -> None:
        """Atomic compaction: write-tmp/fsync/rename the whole log."""
        tmp = _TMP_DIR + "wal"
        self._site("wal.compact-write")
        self.disk.write(tmp, blob)
        self._site("wal.compact-fsync")
        self.disk.fsync(tmp)
        self._site("wal.compact-rename")
        self.disk.rename(tmp, _WAL)
