"""CRIT — the CRIU Image Tool (paper §II, §III-D2b).

Decodes image files to human-readable JSON-compatible dictionaries,
re-encodes them, and pretty-prints an image set. The Dapper process
rewriter is implemented as a CRIT *sub-command* in the paper; here the
equivalent entry point is :func:`repro.core.rewriter.rewrite_images`,
and this module provides the decode/encode plumbing it builds on.
"""

from __future__ import annotations

import json
import re
from typing import Dict

from ..errors import ImageFormatError
from .images import (CoreImage, FilesImage, ImageSet, InventoryImage,
                     MmImage, PagemapImage)

_CORE_RE = re.compile(r"^core-(\d+)\.img$")

_TYPED = {
    "inventory.img": InventoryImage,
    "mm.img": MmImage,
    "files.img": FilesImage,
    "pagemap.img": PagemapImage,
}


def image_class(filename: str):
    if filename in _TYPED:
        return _TYPED[filename]
    if _CORE_RE.match(filename):
        return CoreImage
    return None


def decode_image(filename: str, blob: bytes) -> dict:
    """CRIT ``decode``: one image file → JSON-compatible dict."""
    if filename == "pages-1.img":
        return {"kind": "raw_pages", "size": len(blob)}
    cls = image_class(filename)
    if cls is None:
        raise ImageFormatError(f"unknown image file {filename!r}")
    obj = cls.from_bytes(blob)
    return _to_plain(filename, obj)


def encode_image(filename: str, data: dict) -> bytes:
    """CRIT ``encode``: JSON-compatible dict → image file bytes."""
    cls = image_class(filename)
    if cls is None:
        raise ImageFormatError(f"unknown image file {filename!r}")
    return _from_plain(filename, cls, data).to_bytes()


def _to_plain(filename: str, obj) -> dict:
    if isinstance(obj, InventoryImage):
        return {"kind": "inventory", "pid": obj.pid, "arch": obj.arch,
                "source_name": obj.source_name, "tids": obj.tids,
                "lazy": obj.lazy}
    if isinstance(obj, CoreImage):
        return {"kind": "core", "tid": obj.tid, "arch": obj.arch,
                "pc": obj.pc, "flags": obj.flags, "tls_base": obj.tls_base,
                "status": obj.status,
                "regs": {str(k): v for k, v in sorted(obj.regs.items())}}
    if isinstance(obj, MmImage):
        return {"kind": "mm", "heap_end": obj.heap_end,
                "vmas": [v.to_dict() for v in obj.vmas]}
    if isinstance(obj, FilesImage):
        return {"kind": "files", "exe_path": obj.exe_path,
                "exe_arch": obj.exe_arch}
    if isinstance(obj, PagemapImage):
        return {"kind": "pagemap",
                "entries": [e.to_dict() for e in obj.entries]}
    raise ImageFormatError(f"cannot decode {filename!r}")


def _from_plain(filename: str, cls, data: dict):
    from ..mem.vma import Vma
    from .images import PagemapEntry
    if cls is InventoryImage:
        return InventoryImage(data["pid"], data["arch"],
                              data.get("source_name", ""),
                              data.get("tids", []),
                              bool(data.get("lazy", False)))
    if cls is CoreImage:
        return CoreImage(data["tid"], data["arch"], data["pc"],
                         data["flags"], data["tls_base"],
                         data.get("status", "running"),
                         {int(k): v for k, v in data.get("regs", {}).items()})
    if cls is MmImage:
        return MmImage([Vma.from_dict(v) for v in data.get("vmas", [])],
                       data.get("heap_end", 0))
    if cls is FilesImage:
        return FilesImage(data["exe_path"], data.get("exe_arch", ""))
    if cls is PagemapImage:
        return PagemapImage([PagemapEntry.from_dict(e)
                             for e in data.get("entries", [])])
    raise ImageFormatError(f"cannot encode {filename!r}")


def decode_set(images: ImageSet) -> Dict[str, dict]:
    """Decode every file in an image set."""
    return {name: decode_image(name, blob)
            for name, blob in sorted(images.files.items())}


def show(images: ImageSet) -> str:
    """CRIT ``show``: pretty-print an image set as JSON."""
    return json.dumps(decode_set(images), indent=2, sort_keys=True)


def roundtrip(images: ImageSet) -> ImageSet:
    """decode → encode every wire-encoded image; raw pages pass through.

    Used by tests to prove the CRIT encode path is lossless.
    """
    out = ImageSet()
    for name, blob in images.files.items():
        if name == "pages-1.img":
            out.files[name] = blob
        else:
            out.files[name] = encode_image(name, decode_image(name, blob))
    return out
