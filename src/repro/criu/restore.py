"""Restore: rebuild a live process from an :class:`ImageSet`.

The code segment is re-mapped from the executable named in ``files.img``
(which the cross-ISA rewriter points at the destination architecture's
binary), then the dumped pages — including the rewritten execution
context and stacks — are overlaid.
"""

from __future__ import annotations

from typing import Optional

from ..binfmt.delf import DelfBinary
from ..errors import RestoreError
from ..mem import AddressSpace
from ..mem.paging import PAGE_SIZE
from ..mem.vma import Vma
from ..vm.cpu import ThreadContext, ThreadStatus
from ..vm.kernel import Machine, Process
from .images import ImageSet


def restore_process(machine: Machine, images: ImageSet,
                    pid: Optional[int] = None) -> Process:
    """Restore the checkpoint into a new process on ``machine``."""
    inventory = images.inventory()
    files_img = images.files_img()
    if files_img.exe_arch != machine.isa.name:
        raise RestoreError(
            f"image targets {files_img.exe_arch}, machine runs "
            f"{machine.isa.name} — rewrite the image first")
    if not machine.tmpfs.exists(files_img.exe_path):
        raise RestoreError(f"executable {files_img.exe_path!r} not present "
                           f"on {machine.name}")
    binary = DelfBinary.from_bytes(machine.tmpfs.read(files_img.exe_path))
    if binary.arch != machine.isa.name:
        raise RestoreError(
            f"binary {files_img.exe_path!r} is {binary.arch}")

    aspace = _build_address_space(images, binary)
    process = Process(pid if pid is not None else machine.alloc_pid(),
                      binary, files_img.exe_path, machine, aspace=aspace)
    process.heap_end = images.mm().heap_end

    max_tid = 0
    for core in images.cores():
        if core.arch != machine.isa.name:
            raise RestoreError(
                f"core-{core.tid} is {core.arch}, machine is "
                f"{machine.isa.name}")
        thread = ThreadContext(core.tid, machine.isa)
        for dwarf, value in core.regs.items():
            thread.regs[machine.isa.index_of_dwarf(dwarf)] = value
        thread.pc = core.pc
        thread.flags = core.flags
        thread.tp = core.tls_base
        # Trapped threads resume running: the dumped pc already points
        # past the trap, at the equivalence point.
        thread.status = ThreadStatus.RUNNING
        process.threads[core.tid] = thread
        max_tid = max(max_tid, core.tid)
    process.next_tid = max_tid + 1

    machine.adopt_process(process)
    return process


def _build_address_space(images: ImageSet, binary: DelfBinary) -> AddressSpace:
    aspace = AddressSpace()
    mm = images.mm()
    for vma in mm.vmas:
        aspace.map(Vma(vma.start, vma.end, vma.prot, vma.name,
                       vma.file_backed, vma.file_path, vma.file_offset))
        if vma.file_backed:
            # Reload clean code pages from the (destination) binary.
            for segment in binary.segments:
                if segment.section == ".text":
                    aspace.write_code(segment.vaddr, binary.text)
    # Overlay every dumped page (stacks, data, heap, TLS, and the
    # rewritten execution-context code pages).
    pagemap = images.pagemap()
    pages = images.pages()
    index = 0
    for entry in pagemap.entries:
        if entry.in_parent:
            raise RestoreError(
                f"pagemap run at {entry.vaddr:#x} references a parent "
                f"checkpoint — materialize the delta through the "
                f"checkpoint store first")
        for i in range(entry.nr_pages):
            offset = index * PAGE_SIZE
            aspace.install_page(entry.vaddr + i * PAGE_SIZE,
                                pages[offset:offset + PAGE_SIZE])
            index += 1
    return aspace
