"""Restore: rebuild a live process from an :class:`ImageSet`.

The code segment is re-mapped from the executable named in ``files.img``
(which the cross-ISA rewriter points at the destination architecture's
binary), then the dumped pages — including the rewritten execution
context and stacks — are overlaid.

Every restore is gated by the state-image verifier
(:mod:`repro.verify`): structural and semantic checks run against the
destination binary before a single page is installed, so a corrupt or
mis-rewritten image raises :class:`~repro.errors.VerifyError` here
instead of surfacing as undefined interpreter behavior later. Pass
``verify=False`` to opt out (e.g. for intentionally-corrupt test
images).
"""

from __future__ import annotations

from typing import Optional

from ..binfmt.delf import DelfBinary
from ..errors import MemoryError_, RestoreError
from ..mem import AddressSpace
from ..mem.paging import PAGE_SIZE
from ..mem.vma import Vma
from ..vm.cpu import ThreadContext, ThreadStatus
from ..vm.kernel import Machine, Process
from .images import ImageSet


def restore_process(machine: Machine, images: ImageSet,
                    pid: Optional[int] = None,
                    verify: bool = True) -> Process:
    """Restore the checkpoint into a new process on ``machine``."""
    files_img = images.files_img()
    if files_img.exe_arch != machine.isa.name:
        raise RestoreError(
            f"image targets {files_img.exe_arch}, machine runs "
            f"{machine.isa.name} — rewrite the image first")
    if not machine.tmpfs.exists(files_img.exe_path):
        raise RestoreError(f"executable {files_img.exe_path!r} not present "
                           f"on {machine.name}")
    binary = DelfBinary.from_bytes(machine.tmpfs.read(files_img.exe_path))
    if binary.arch != machine.isa.name:
        raise RestoreError(
            f"binary {files_img.exe_path!r} is {binary.arch}")
    if verify:
        from ..verify import verify_images
        verify_images(images, binary=binary)

    aspace = _build_address_space(images, binary)
    process = Process(pid if pid is not None else machine.alloc_pid(),
                      binary, files_img.exe_path, machine, aspace=aspace)
    process.heap_end = images.mm().heap_end

    max_tid = 0
    for core in images.cores():
        if core.arch != machine.isa.name:
            raise RestoreError(
                f"core-{core.tid} is {core.arch}, machine is "
                f"{machine.isa.name}")
        thread = ThreadContext(core.tid, machine.isa)
        for dwarf, value in core.regs.items():
            try:
                index = machine.isa.index_of_dwarf(dwarf)
            except KeyError:
                raise RestoreError(
                    f"core-{core.tid}: DWARF register {dwarf} unknown "
                    f"to {machine.isa.name}") from None
            thread.regs[index] = value
        thread.pc = core.pc
        thread.flags = core.flags
        thread.tp = core.tls_base
        # Trapped threads resume running: the dumped pc already points
        # past the trap, at the equivalence point.
        thread.status = ThreadStatus.RUNNING
        process.threads[core.tid] = thread
        max_tid = max(max_tid, core.tid)
    process.next_tid = max_tid + 1

    machine.adopt_process(process)
    return process


def _build_address_space(images: ImageSet, binary: DelfBinary) -> AddressSpace:
    aspace = AddressSpace()
    mm = images.mm()
    try:
        for vma in mm.vmas:
            aspace.map(Vma(vma.start, vma.end, vma.prot, vma.name,
                           vma.file_backed, vma.file_path,
                           vma.file_offset))
        # Reload clean code pages from the (destination) binary — once
        # per text segment, into the file-backed VMA actually covering
        # it (not once per file-backed VMA of the whole layout).
        for segment in binary.segments:
            if segment.section != ".text":
                continue
            vma = aspace.find_vma(segment.vaddr)
            if vma is not None and vma.file_backed:
                aspace.write_code(segment.vaddr, binary.text)
    except MemoryError_ as exc:
        raise RestoreError(
            f"mm.img describes an invalid layout: {exc}") from exc
    # Overlay every dumped page (stacks, data, heap, TLS, and the
    # rewritten execution-context code pages).
    pagemap = images.pagemap()
    pages = images.pages()
    expected = pagemap.data_pages() * PAGE_SIZE
    if len(pages) < expected:
        raise RestoreError(
            f"pages-1.img holds {len(pages)} bytes but the pagemap "
            f"claims {pagemap.data_pages()} data page(s) "
            f"({expected} bytes)")
    index = 0
    for entry in pagemap.entries:
        if entry.in_parent:
            raise RestoreError(
                f"pagemap run at {entry.vaddr:#x} references a parent "
                f"checkpoint — materialize the delta through the "
                f"checkpoint store first")
        for i in range(entry.nr_pages):
            base = entry.vaddr + i * PAGE_SIZE
            if aspace.find_vma(base) is None:
                raise RestoreError(
                    f"pagemap run page {base:#x} falls outside every "
                    f"dumped VMA")
            offset = index * PAGE_SIZE
            aspace.install_page(base, pages[offset:offset + PAGE_SIZE])
            index += 1
    return aspace
