"""Restore: rebuild a live process from an :class:`ImageSet`.

A thin driver over the plugin registry (:mod:`repro.criu.plugins`),
in three steps:

1. every plugin's ``pre_restore`` validates its section against the
   destination machine (the files plugin checks the image's target
   architecture and loads the destination binary) — nothing is built
   yet;
2. the restore guard (:mod:`repro.verify`) judges the image set,
   including each plugin's own ``verify`` hook, so a corrupt or
   mis-rewritten image raises :class:`~repro.errors.VerifyError` here
   instead of surfacing as undefined interpreter behavior later — pass
   ``verify=False`` to opt out (e.g. for intentionally-corrupt test
   images);
3. every plugin's ``restore`` rebuilds its resource in registry
   (dependency) order: address space, then task, then threads, then
   auxiliary resources (tmpfs artifacts, journaled connections).
"""

from __future__ import annotations

from typing import Optional

from ..vm.kernel import Machine, Process
from .images import ImageSet
from .plugins.base import RestoreContext
from .plugins.registry import PluginRegistry, default_registry


def restore_process(machine: Machine, images: ImageSet,
                    pid: Optional[int] = None,
                    verify: bool = True,
                    registry: Optional[PluginRegistry] = None) -> Process:
    """Restore the checkpoint into a new process on ``machine``."""
    registry = registry or default_registry()
    ctx = RestoreContext(machine, images, pid=pid)
    registry.pre_restore(ctx)
    if verify:
        from ..verify import verify_images
        verify_images(images, binary=ctx.binary, registry=registry)
    process = registry.restore(ctx)
    machine.adopt_process(process)
    return process
