"""Files plugin: opened files (``files.img``).

The entry that matters for Dapper is the executable: cross-ISA
rewriting points it at the other architecture's binary. On restore this
plugin is the gatekeeper — it validates the image's target architecture
against the destination machine and loads the destination binary before
anything is built.
"""

from __future__ import annotations

from ...binfmt.delf import DelfBinary
from ...errors import RestoreError
from ..images import FilesImage
from .base import CheckpointPlugin, DumpContext, RestoreContext


class FilesPlugin(CheckpointPlugin):
    name = "files"
    sections = ("files.img",)
    codes = ("arch-mismatch",)
    code_prefixes = ("decode:files",)

    def dump(self, ctx: DumpContext, images) -> None:
        images.set_files_img(FilesImage(ctx.process.exe_path,
                                        ctx.process.isa.name))

    def pre_restore(self, ctx: RestoreContext, images) -> None:
        machine = ctx.machine
        files_img = images.files_img()
        if files_img.exe_arch != machine.isa.name:
            raise RestoreError(
                f"image targets {files_img.exe_arch}, machine runs "
                f"{machine.isa.name} — rewrite the image first")
        if not machine.tmpfs.exists(files_img.exe_path):
            raise RestoreError(
                f"executable {files_img.exe_path!r} not present "
                f"on {machine.name}")
        binary = DelfBinary.from_bytes(machine.tmpfs.read(files_img.exe_path))
        if binary.arch != machine.isa.name:
            raise RestoreError(
                f"binary {files_img.exe_path!r} is {binary.arch}")
        ctx.binary = binary
