"""Per-resource checkpoint plugins (DMTCP-style, PAPERS.md Garg et al.).

See :mod:`repro.criu.plugins.base` for the hook model and
:func:`default_registry` for the built-in plugin order.
"""

from .base import (CheckpointPlugin, DumpContext, RestoreContext,
                   frozen_in_parent)
from .files import FilesPlugin
from .registers import RegistersPlugin
from .registry import PluginRegistry, default_registry
from .sockets import SocketsImage, SocketsPlugin, sockets_img
from .task import TaskPlugin
from .tls import TlsPlugin
from .tmpfs import TmpfsImage, TmpfsPlugin, tmpfs_img
from .vmas import VmasPlugin

__all__ = [
    "CheckpointPlugin", "DumpContext", "RestoreContext",
    "frozen_in_parent", "PluginRegistry", "default_registry",
    "TaskPlugin", "RegistersPlugin", "VmasPlugin", "TlsPlugin",
    "FilesPlugin", "TmpfsPlugin", "SocketsPlugin",
    "SocketsImage", "sockets_img", "TmpfsImage", "tmpfs_img",
]
