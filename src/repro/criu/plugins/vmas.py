"""VMAs plugin: memory layout (``mm.img``) and page contents
(``pagemap.img`` + ``pages-1.img``).

Page-dump policy mirrors CRIU (paper §III-C): file-backed (code) VMAs
contribute only the *execution context* — the page(s) each thread's
program counter points into — because clean code pages reload from the
binary at restore. All other populated pages are dumped.

Incremental dumps (like CRIU's ``--prev-images-dir``): pages that are
clean *and* available from the parent chain are emitted as
:data:`~repro.criu.images.PE_PARENT` pagemap runs with no data — the
checkpoint store resolves them at materialize time.

Lazy (post-copy) dumps instead partition populated pages into an eager
set (stack, TLS, execution context) written here and a lazy remainder
stashed on the context for the caller's :class:`~repro.criu.PageServer`.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Tuple

from ...errors import MemoryError_, RestoreError
from ...mem import AddressSpace
from ...mem.paging import PAGE_SIZE, page_align_down
from ...mem.vma import Vma
from ...vm.cpu import ThreadStatus
from ..images import (PE_PARENT, ImageSet, MmImage, PagemapEntry,
                      PagemapImage)
from .base import CheckpointPlugin, DumpContext, RestoreContext, \
    frozen_in_parent


class VmasPlugin(CheckpointPlugin):
    name = "vmas"
    sections = ("mm.img", "pagemap.img", "pages-1.img")
    codes = ("pages-length", "run-align", "run-overlap", "run-outside-vma",
             "content-digest", "page-digest", "text-page", "unfetchable",
             "unlocatable")
    code_prefixes = ("decode:mm", "decode:pagemap", "delta-")

    def dump(self, ctx: DumpContext, images) -> None:
        process = ctx.process
        images.set_mm(MmImage(process.aspace.vmas, process.heap_end))
        if ctx.lazy:
            eager, lazy = _partition_pages(process)
            _write_pages(process, sorted(eager), images)
            for base in lazy:
                data = process.aspace.page(base)
                ctx.lazy_pages[base] = bytes(data) if data is not None \
                    else bytes(PAGE_SIZE)
            return
        dump_pages = _select_pages(process)
        in_parent = frozen_in_parent(ctx, dump_pages)
        _write_pages(process, sorted(dump_pages), images, in_parent)

    def restore(self, ctx: RestoreContext, images) -> None:
        ctx.aspace = _build_address_space(images, ctx.binary)


def _select_pages(process) -> Set[int]:
    """Page-aligned addresses to dump."""
    selected: Set[int] = set()
    exec_pages = {page_align_down(t.pc)
                  for t in process.threads.values()
                  if t.status != ThreadStatus.DEAD}
    for base, _data in process.aspace.populated_pages():
        vma = process.aspace.find_vma(base)
        if vma is None:
            continue
        if vma.file_backed:
            # Execution context only: the page under each thread's pc
            # (and its successor, since an instruction can straddle).
            if base in exec_pages or (base - PAGE_SIZE) in exec_pages:
                selected.add(base)
        else:
            selected.add(base)
    return selected


def _partition_pages(process) -> Tuple[Set[int], Set[int]]:
    """Split populated pages into (eagerly dumped, left at source)."""
    eager: Set[int] = set()
    lazy: Set[int] = set()
    exec_pages = {page_align_down(t.pc)
                  for t in process.threads.values()
                  if t.status != ThreadStatus.DEAD}
    for base, _data in process.aspace.populated_pages():
        vma = process.aspace.find_vma(base)
        if vma is None:
            continue
        if vma.file_backed:
            if base in exec_pages or (base - PAGE_SIZE) in exec_pages:
                eager.add(base)
            continue   # other clean code pages: reload from the binary
        if vma.name.startswith("stack:") or vma.name.startswith("tls:"):
            eager.add(base)
        else:
            lazy.add(base)
    return eager, lazy


def _write_pages(process, pages: List[int], images: ImageSet,
                 in_parent: FrozenSet[int] = frozenset()) -> None:
    entries: List[PagemapEntry] = []
    blob = bytearray()
    run_start = None
    run_len = 0
    run_flags = 0
    for base in pages:
        flags = PE_PARENT if base in in_parent else 0
        if flags == 0:
            data = process.aspace.page(base)
            blob += bytes(data) if data is not None else bytes(PAGE_SIZE)
        if (run_start is not None and flags == run_flags
                and base == run_start + run_len * PAGE_SIZE):
            run_len += 1
        else:
            if run_start is not None:
                entries.append(PagemapEntry(run_start, run_len, run_flags))
            run_start = base
            run_len = 1
            run_flags = flags
    if run_start is not None:
        entries.append(PagemapEntry(run_start, run_len, run_flags))
    images.set_pagemap(PagemapImage(entries))
    images.set_pages(bytes(blob))


def _build_address_space(images: ImageSet, binary) -> AddressSpace:
    aspace = AddressSpace()
    mm = images.mm()
    try:
        for vma in mm.vmas:
            aspace.map(Vma(vma.start, vma.end, vma.prot, vma.name,
                           vma.file_backed, vma.file_path,
                           vma.file_offset))
        # Reload clean code pages from the (destination) binary — once
        # per text segment, into the file-backed VMA actually covering
        # it (not once per file-backed VMA of the whole layout).
        for segment in binary.segments:
            if segment.section != ".text":
                continue
            vma = aspace.find_vma(segment.vaddr)
            if vma is not None and vma.file_backed:
                aspace.write_code(segment.vaddr, binary.text)
    except MemoryError_ as exc:
        raise RestoreError(
            f"mm.img describes an invalid layout: {exc}") from exc
    # Overlay every dumped page (stacks, data, heap, TLS, and the
    # rewritten execution-context code pages).
    pagemap = images.pagemap()
    pages = images.pages()
    expected = pagemap.data_pages() * PAGE_SIZE
    if len(pages) < expected:
        raise RestoreError(
            f"pages-1.img holds {len(pages)} bytes but the pagemap "
            f"claims {pagemap.data_pages()} data page(s) "
            f"({expected} bytes)")
    index = 0
    for entry in pagemap.entries:
        if entry.in_parent:
            raise RestoreError(
                f"pagemap run at {entry.vaddr:#x} references a parent "
                f"checkpoint — materialize the delta through the "
                f"checkpoint store first")
        for i in range(entry.nr_pages):
            base = entry.vaddr + i * PAGE_SIZE
            if aspace.find_vma(base) is None:
                raise RestoreError(
                    f"pagemap run page {base:#x} falls outside every "
                    f"dumped VMA")
            offset = index * PAGE_SIZE
            aspace.install_page(base, pages[offset:offset + PAGE_SIZE])
            index += 1
    return aspace
