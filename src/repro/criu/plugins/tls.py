"""TLS plugin: thread-local storage invariants.

TLS state ships inside the core images (``tls_base``) and the tls VMAs
(mm + pages), so this plugin emits no section of its own — it exists to
own the TLS-specific verifier findings (``tls-vma``, ``tls-base``) and
to document that per-thread ``tp`` restore happens in the registers
plugin. It is also the template for a section-less resource plugin.
"""

from __future__ import annotations

from .base import CheckpointPlugin


class TlsPlugin(CheckpointPlugin):
    name = "tls"
    codes = ("tls-vma", "tls-base")
