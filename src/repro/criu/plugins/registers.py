"""Registers plugin: per-thread architectural state (``core-<tid>.img``).

Registers are stored as (DWARF number, value) pairs so the rewriter can
address them exactly the way the stackmaps do.
"""

from __future__ import annotations

from ...errors import RestoreError
from ...vm.cpu import ThreadContext, ThreadStatus
from ..images import CoreImage
from .base import CheckpointPlugin, DumpContext, RestoreContext


class RegistersPlugin(CheckpointPlugin):
    name = "registers"
    section_prefixes = ("core-",)
    codes = ("regs-incomplete", "regs-unknown", "eqpoint", "stack-walk",
             "pointer")
    code_prefixes = ("decode:core",)

    def dump(self, ctx: DumpContext, images) -> None:
        isa = ctx.process.isa
        for thread in ctx.live:
            regs = {isa.dwarf_of_index(i): value
                    for i, value in enumerate(thread.regs)}
            images.set_core(CoreImage(
                tid=thread.tid, arch=isa.name, pc=thread.pc,
                flags=thread.flags, tls_base=thread.tp,
                status=thread.status, regs=regs))

    def restore(self, ctx: RestoreContext, images) -> None:
        machine = ctx.machine
        process = ctx.process
        max_tid = 0
        for core in images.cores():
            if core.arch != machine.isa.name:
                raise RestoreError(
                    f"core-{core.tid} is {core.arch}, machine is "
                    f"{machine.isa.name}")
            thread = ThreadContext(core.tid, machine.isa)
            for dwarf, value in core.regs.items():
                try:
                    index = machine.isa.index_of_dwarf(dwarf)
                except KeyError:
                    raise RestoreError(
                        f"core-{core.tid}: DWARF register {dwarf} unknown "
                        f"to {machine.isa.name}") from None
                thread.regs[index] = value
            thread.pc = core.pc
            thread.flags = core.flags
            thread.tp = core.tls_base
            # Trapped threads resume running: the dumped pc already points
            # past the trap, at the equivalence point.
            thread.status = ThreadStatus.RUNNING
            process.threads[core.tid] = thread
            max_tid = max(max_tid, core.tid)
        process.next_tid = max_tid + 1
