"""Task plugin: process identity (``inventory.img``) and the Process
object itself on restore."""

from __future__ import annotations

from ...vm.kernel import Process
from ..images import InventoryImage
from .base import CheckpointPlugin, DumpContext, RestoreContext


class TaskPlugin(CheckpointPlugin):
    name = "task"
    sections = ("inventory.img",)
    codes = ("arch-unknown", "missing-file")
    code_prefixes = ("decode:inventory",)

    def dump(self, ctx: DumpContext, images) -> None:
        images.set_inventory(InventoryImage(
            pid=ctx.process.pid, arch=ctx.process.isa.name,
            source_name=ctx.process.binary.source_name,
            tids=sorted(t.tid for t in ctx.live),
            lazy=ctx.lazy,
            parent=ctx.parent if ctx.parent is not None else ""))

    def restore(self, ctx: RestoreContext, images) -> None:
        files_img = images.files_img()
        machine = ctx.machine
        process = Process(
            ctx.pid if ctx.pid is not None else machine.alloc_pid(),
            ctx.binary, files_img.exe_path, machine, aspace=ctx.aspace)
        process.heap_end = images.mm().heap_end
        ctx.process = process
