"""Sockets plugin: in-flight simulated connections (``sockets.img``).

The simulated kernel has no socket objects, so connection state lives in
an external deterministic broker (:class:`repro.group.ConnectionBroker`).
At a coordinated group cut, connections the bounded drain could not
retire are *journaled*: the coordinator passes each member's slice of
the broker's in-flight set through ``DumpContext.extra["connections"]``
and this plugin emits it as a new image section. On restore the
journaled connections are reattached to the process
(``process.restored_connections``) so the group layer can rebuild the
broker on the destination side.

This plugin is the worked example of the registry's extensibility
claim: a brand-new resource class — its own magic, wire schema, image
class, verify findings — without one line changed in the core
dump/restore drivers or the verifier.
"""

from __future__ import annotations

from typing import List, Optional

from ... import wire
from ..images import _decode, _wrap, register_magic
from .base import CheckpointPlugin, DumpContext, RestoreContext

MAGIC_SOCKETS = register_magic("sockets", 0x534F434B)

_CONN_SCHEMA = wire.Schema("connection", [
    wire.field(1, "cid", "int"),
    wire.field(2, "src_pid", "int"),
    wire.field(3, "dst_pid", "int"),
    wire.field(4, "payload", "str"),
])

_SOCKETS_SCHEMA = wire.Schema("sockets", [
    wire.field(1, "connections", "message", repeated=True,
               message=_CONN_SCHEMA),
])


class SocketsImage:
    """Journaled in-flight connections touching one process."""

    def __init__(self, connections: List[dict]):
        self.connections = [dict(c) for c in connections]

    def to_bytes(self) -> bytes:
        return _wrap("sockets", _SOCKETS_SCHEMA.encode(
            {"connections": self.connections}))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SocketsImage":
        data = _decode("sockets", _SOCKETS_SCHEMA, blob)
        return cls(data.get("connections", []))


def sockets_img(images) -> Optional[SocketsImage]:
    """The image set's sockets section, or None (section is optional:
    plain single-process dumps never carry one)."""
    blob = images.files.get("sockets.img")
    if blob is None:
        return None
    return SocketsImage.from_bytes(blob)


class SocketsPlugin(CheckpointPlugin):
    name = "sockets"
    sections = ("sockets.img",)
    codes = ("socket-dup", "socket-owner")
    code_prefixes = ("decode:sockets",)

    def dump(self, ctx: DumpContext, images) -> None:
        connections = ctx.extra.get("connections")
        if connections:
            images.files["sockets.img"] = \
                SocketsImage(connections).to_bytes()

    def restore(self, ctx: RestoreContext, images) -> None:
        image = sockets_img(images)
        if image is not None:
            ctx.process.restored_connections = list(image.connections)

    def verify(self, images, report, binary=None, store=None) -> None:
        from ...errors import ImageFormatError
        from ...verify.verifier import (PASS_SEMANTIC, PASS_STRUCTURAL,
                                        Finding)
        if "sockets.img" not in images.files:
            return
        report.checks += 1
        try:
            image = SocketsImage.from_bytes(images.files["sockets.img"])
        except ImageFormatError as exc:
            report.add(Finding(PASS_STRUCTURAL, "decode:sockets",
                               str(exc), plugin=self.name))
            return
        pid = images.inventory().pid
        seen = set()
        for conn in image.connections:
            report.checks += 1
            cid = conn.get("cid")
            if cid in seen:
                report.add(Finding(
                    PASS_SEMANTIC, "socket-dup",
                    f"connection {cid} journaled twice", plugin=self.name))
            seen.add(cid)
            if pid not in (conn.get("src_pid"), conn.get("dst_pid")):
                report.add(Finding(
                    PASS_SEMANTIC, "socket-owner",
                    f"connection {cid} does not touch pid {pid} "
                    f"({conn.get('src_pid')} -> {conn.get('dst_pid')})",
                    plugin=self.name))
