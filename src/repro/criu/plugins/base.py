"""Checkpoint plugin model (DMTCP-style per-resource hooks).

Every kind of process resource — task identity, registers, VMAs+pages,
TLS, open files, tmpfs artifacts, sockets — is owned by one
:class:`CheckpointPlugin`. A plugin contributes named image sections on
dump, validates and rebuilds its resource on restore, and exposes a
``verify`` hook so the restore guard (:mod:`repro.verify`) can verify,
repair, and quarantine *per plugin*. New resource classes register with
the :class:`~repro.criu.plugins.registry.PluginRegistry` without
touching the core dump/restore drivers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from ...errors import CheckpointError
from ...vm.cpu import ThreadStatus


class DumpContext:
    """Everything a plugin may need while dumping one process.

    ``extra`` carries caller-provided resource payloads that have no
    kernel-side representation (the simulated kernel has no sockets or
    tmpfs handles on the Process): the group coordinator passes
    ``connections`` for the sockets plugin, tests pass ``tmpfs_paths``
    for the tmpfs plugin. Plugins stash intermediate results on the
    context (``live``, ``lazy_pages``) for the driver to pick up.
    """

    def __init__(self, process, parent: Optional[str] = None,
                 parent_pages: Optional[Set[int]] = None,
                 dirty_pages: Optional[Set[int]] = None,
                 lazy: bool = False, extra: Optional[dict] = None):
        self.process = process
        self.parent = parent
        self.parent_pages = parent_pages
        self.dirty_pages = dirty_pages
        self.lazy = lazy
        self.extra = dict(extra or {})
        #: live (non-DEAD) threads, computed by :meth:`validate`
        self.live: List = []
        #: lazy dumps: pages left behind for the page server
        #: (page-aligned vaddr -> bytes), filled by the vmas plugin
        self.lazy_pages: Dict[int, bytes] = {}

    def validate(self, require_stopped: bool = True) -> None:
        """Call-contract checks shared by every dump entry point. Kept
        on the context (not in any plugin) so the error precedence is
        stable no matter how the registry is reordered or extended."""
        process = self.process
        if require_stopped and not process.stopped:
            raise CheckpointError(
                f"process {process.pid} must be SIGSTOPped before dumping")
        if process.exited:
            raise CheckpointError(f"process {process.pid} has exited")
        if self.parent is not None and (self.parent_pages is None
                                        or self.dirty_pages is None):
            raise CheckpointError(
                "delta dump needs both parent_pages and dirty_pages")
        self.live = [t for t in process.threads.values()
                     if t.status != ThreadStatus.DEAD]
        if not self.live:
            raise CheckpointError("no live threads to dump")


class RestoreContext:
    """Shared state threaded through the restore phases.

    ``pre_restore`` hooks only validate and load environment (the
    destination binary); ``restore`` hooks build — the address space,
    then the process, then its threads — in registry order, which is
    therefore *dependency* order (see
    :func:`~repro.criu.plugins.registry.default_registry`).
    """

    def __init__(self, machine, images, pid: Optional[int] = None,
                 extra: Optional[dict] = None):
        self.machine = machine
        self.images = images
        self.pid = pid
        self.extra = dict(extra or {})
        #: destination :class:`~repro.binfmt.delf.DelfBinary`,
        #: loaded by the files plugin's ``pre_restore``
        self.binary = None
        #: rebuilt address space (vmas plugin)
        self.aspace = None
        #: the process under construction (task plugin)
        self.process = None


class CheckpointPlugin:
    """One resource class's checkpoint/restore/verify hooks.

    Subclasses set :attr:`name`, declare the image sections they own
    (:attr:`sections` for exact file names, :attr:`section_prefixes`
    for families like ``core-<tid>.img``) and the verifier finding
    codes attributable to them (:attr:`codes` / :attr:`code_prefixes`),
    then override whichever phases their resource needs. Every hook
    defaults to a no-op so minimal plugins stay minimal.
    """

    #: unique plugin name (also the attribution tag on findings)
    name = "?"
    #: exact image-file names this plugin emits/consumes
    sections: tuple = ()
    #: image-file name prefixes (e.g. ``core-`` for per-thread files)
    section_prefixes: tuple = ()
    #: verifier finding codes this plugin owns
    codes: tuple = ()
    #: finding-code prefixes (e.g. ``decode:core``)
    code_prefixes: tuple = ()

    # -- dump ----------------------------------------------------------

    def pre_dump(self, ctx: DumpContext) -> None:
        """Validate that this resource is dumpable (process quiesced,
        arguments consistent). Must not mutate images."""

    def dump(self, ctx: DumpContext, images) -> None:
        """Emit this plugin's image section(s) into ``images``."""

    # -- restore -------------------------------------------------------

    def pre_restore(self, ctx: RestoreContext, images) -> None:
        """Validate this plugin's sections against the destination
        machine *before* the verifier runs and anything is built."""

    def restore(self, ctx: RestoreContext, images) -> None:
        """Rebuild this resource. Runs after the restore guard passed
        (or was explicitly skipped)."""

    # -- verify --------------------------------------------------------

    def verify(self, images, report, binary=None, store=None) -> None:
        """Add plugin-specific findings to an in-progress
        :class:`~repro.verify.VerifyReport`. Called by the restore
        guard after its structural pass found the image set decodable."""

    # -- ownership queries ----------------------------------------------

    def owns_file(self, name: str) -> bool:
        return (name in self.sections
                or any(name.startswith(p) for p in self.section_prefixes))

    def owns_code(self, code: str) -> bool:
        return (code in self.codes
                or any(code.startswith(p) for p in self.code_prefixes))


def frozen_in_parent(ctx: DumpContext,
                     dump_pages: Set[int]) -> FrozenSet[int]:
    """Pages that stay behind as PE_PARENT runs in a delta dump: held by
    the parent chain AND not written since. A page that is clean but
    newly selected (e.g. the pc moved into a fresh code page) still
    ships its data."""
    if ctx.parent is None:
        return frozenset()
    return frozenset(base for base in dump_pages
                     if base in ctx.parent_pages
                     and base not in ctx.dirty_pages)
