"""Ordered plugin registry driving dump, restore, and per-plugin verify.

The order is *restore dependency order*: the files plugin loads the
destination binary before the vmas plugin rebuilds the address space,
the address space exists before the task plugin creates the process,
and the process exists before the registers plugin rebuilds its
threads. Dump order is immaterial (an :class:`~repro.criu.ImageSet` is
an unordered dict of named files and every digest sorts them), so one
order serves both directions.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ...errors import CheckpointError
from .base import CheckpointPlugin, DumpContext, RestoreContext
from .files import FilesPlugin
from .registers import RegistersPlugin
from .sockets import SocketsPlugin
from .task import TaskPlugin
from .tls import TlsPlugin
from .tmpfs import TmpfsPlugin
from .vmas import VmasPlugin


class PluginRegistry:
    """An ordered set of :class:`CheckpointPlugin` instances."""

    def __init__(self, plugins=()):
        self._plugins: List[CheckpointPlugin] = []
        for plugin in plugins:
            self.register(plugin)

    def __iter__(self) -> Iterator[CheckpointPlugin]:
        return iter(self._plugins)

    def __len__(self) -> int:
        return len(self._plugins)

    def names(self) -> List[str]:
        return [p.name for p in self._plugins]

    def get(self, name: str) -> CheckpointPlugin:
        for plugin in self._plugins:
            if plugin.name == name:
                return plugin
        raise CheckpointError(f"no checkpoint plugin named {name!r}")

    def register(self, plugin: CheckpointPlugin,
                 before: Optional[str] = None,
                 after: Optional[str] = None) -> CheckpointPlugin:
        """Add a plugin, optionally anchored relative to an existing one
        (restore runs in registry order, so a plugin whose restore needs
        another's output registers ``after`` it)."""
        if any(p.name == plugin.name for p in self._plugins):
            raise CheckpointError(
                f"checkpoint plugin {plugin.name!r} already registered")
        if before is not None and after is not None:
            raise CheckpointError("pass before= or after=, not both")
        if before is not None:
            index = self._plugins.index(self.get(before))
        elif after is not None:
            index = self._plugins.index(self.get(after)) + 1
        else:
            index = len(self._plugins)
        self._plugins.insert(index, plugin)
        return plugin

    # -- attribution ------------------------------------------------------

    def plugin_for_code(self, code: str) -> Optional[str]:
        """Name of the plugin owning a verifier finding code."""
        for plugin in self._plugins:
            if plugin.owns_code(code):
                return plugin.name
        return None

    def plugin_for_file(self, name: str) -> Optional[str]:
        """Name of the plugin owning an image section."""
        for plugin in self._plugins:
            if plugin.owns_file(name):
                return plugin.name
        return None

    # -- driving ------------------------------------------------------------

    def dump(self, ctx: DumpContext, require_stopped: bool = True):
        from ..images import ImageSet
        ctx.validate(require_stopped)
        for plugin in self._plugins:
            plugin.pre_dump(ctx)
        images = ImageSet()
        for plugin in self._plugins:
            plugin.dump(ctx, images)
        return images

    def pre_restore(self, ctx: RestoreContext) -> None:
        for plugin in self._plugins:
            plugin.pre_restore(ctx, ctx.images)

    def restore(self, ctx: RestoreContext):
        for plugin in self._plugins:
            plugin.restore(ctx, ctx.images)
        return ctx.process

    def verify(self, images, report, binary=None, store=None) -> None:
        for plugin in self._plugins:
            plugin.verify(images, report, binary=binary, store=store)


def default_registry() -> PluginRegistry:
    """A fresh registry with the built-in resource plugins. Fresh (not a
    shared singleton) so callers can extend or reorder their copy
    without affecting anyone else; the built-ins are stateless."""
    return PluginRegistry([
        FilesPlugin(),
        VmasPlugin(),
        TaskPlugin(),
        RegistersPlugin(),
        TlsPlugin(),
        TmpfsPlugin(),
        SocketsPlugin(),
    ])
