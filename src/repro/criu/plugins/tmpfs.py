"""Tmpfs plugin: node-local file artifacts (``tmpfs.img``).

A process may depend on files it wrote to its node's tmpfs (a redis
append-only journal, an nginx access log). Callers name them through
``DumpContext.extra["tmpfs_paths"]``; this plugin snapshots their bytes
into a new image section and re-creates them on the destination's tmpfs
at restore. Like the sockets plugin, it registers its own magic, wire
schema, and findings without touching core code.
"""

from __future__ import annotations

from typing import Dict, Optional

from ... import wire
from ...errors import CheckpointError
from ..images import _decode, _wrap, register_magic
from .base import CheckpointPlugin, DumpContext, RestoreContext

MAGIC_TMPFS = register_magic("tmpfs", 0x544D5046)

_ENTRY_SCHEMA = wire.Schema("tmpfs_entry", [
    wire.field(1, "path", "str"),
    wire.field(2, "data", "bytes"),
])

_TMPFS_SCHEMA = wire.Schema("tmpfs", [
    wire.field(1, "entries", "message", repeated=True,
               message=_ENTRY_SCHEMA),
])


class TmpfsImage:
    """Snapshot of named tmpfs files (path -> bytes)."""

    def __init__(self, entries: Dict[str, bytes]):
        self.entries = dict(entries)

    def to_bytes(self) -> bytes:
        return _wrap("tmpfs", _TMPFS_SCHEMA.encode({
            "entries": [{"path": path, "data": self.entries[path]}
                        for path in sorted(self.entries)]}))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "TmpfsImage":
        data = _decode("tmpfs", _TMPFS_SCHEMA, blob)
        return cls({e.get("path", ""): e.get("data", b"")
                    for e in data.get("entries", [])})


def tmpfs_img(images) -> Optional[TmpfsImage]:
    blob = images.files.get("tmpfs.img")
    if blob is None:
        return None
    return TmpfsImage.from_bytes(blob)


class TmpfsPlugin(CheckpointPlugin):
    name = "tmpfs"
    sections = ("tmpfs.img",)
    codes = ("tmpfs-path",)
    code_prefixes = ("decode:tmpfs",)

    def pre_dump(self, ctx: DumpContext) -> None:
        for path in ctx.extra.get("tmpfs_paths", ()):
            if not ctx.process.machine.tmpfs.exists(path):
                raise CheckpointError(
                    f"tmpfs artifact {path!r} not present on "
                    f"{ctx.process.machine.name}")

    def dump(self, ctx: DumpContext, images) -> None:
        paths = ctx.extra.get("tmpfs_paths", ())
        if paths:
            tmpfs = ctx.process.machine.tmpfs
            entries = {path: tmpfs.read(path) for path in paths}
            images.files["tmpfs.img"] = TmpfsImage(entries).to_bytes()

    def restore(self, ctx: RestoreContext, images) -> None:
        image = tmpfs_img(images)
        if image is not None:
            for path, data in image.entries.items():
                ctx.machine.tmpfs.write(path, data)

    def verify(self, images, report, binary=None, store=None) -> None:
        from ...errors import ImageFormatError
        from ...verify.verifier import (PASS_SEMANTIC, PASS_STRUCTURAL,
                                        Finding)
        if "tmpfs.img" not in images.files:
            return
        report.checks += 1
        try:
            image = TmpfsImage.from_bytes(images.files["tmpfs.img"])
        except ImageFormatError as exc:
            report.add(Finding(PASS_STRUCTURAL, "decode:tmpfs",
                               str(exc), plugin=self.name))
            return
        for path in image.entries:
            report.checks += 1
            if not path or not path.startswith("/"):
                report.add(Finding(
                    PASS_SEMANTIC, "tmpfs-path",
                    f"tmpfs artifact has invalid path {path!r}",
                    plugin=self.name))
