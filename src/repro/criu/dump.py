"""Checkpoint: dump a stopped process into an :class:`ImageSet`.

Page-dump policy mirrors CRIU (paper §III-C): file-backed (code) VMAs
contribute only the *execution context* — the page(s) each thread's
program counter points into — because clean code pages reload from the
binary at restore. All other populated pages are dumped.
"""

from __future__ import annotations

from typing import List, Set

from ..errors import CheckpointError
from ..mem.paging import PAGE_SIZE, page_align_down
from ..vm.cpu import ThreadStatus
from ..vm.kernel import Process
from .images import (CoreImage, FilesImage, ImageSet, InventoryImage,
                     MmImage, PagemapEntry, PagemapImage)


def dump_process(process: Process, require_stopped: bool = True) -> ImageSet:
    """Dump ``process`` into a fresh image set."""
    if require_stopped and not process.stopped:
        raise CheckpointError(
            f"process {process.pid} must be SIGSTOPped before dumping")
    if process.exited:
        raise CheckpointError(f"process {process.pid} has exited")

    images = ImageSet()
    live = [t for t in process.threads.values()
            if t.status != ThreadStatus.DEAD]
    if not live:
        raise CheckpointError("no live threads to dump")

    images.set_inventory(InventoryImage(
        pid=process.pid, arch=process.isa.name,
        source_name=process.binary.source_name,
        tids=sorted(t.tid for t in live)))

    for thread in live:
        regs = {process.isa.dwarf_of_index(i): value
                for i, value in enumerate(thread.regs)}
        images.set_core(CoreImage(
            tid=thread.tid, arch=process.isa.name, pc=thread.pc,
            flags=thread.flags, tls_base=thread.tp, status=thread.status,
            regs=regs))

    images.set_mm(MmImage(process.aspace.vmas, process.heap_end))
    images.set_files_img(FilesImage(process.exe_path, process.isa.name))

    dump_pages = _select_pages(process)
    _write_pages(process, sorted(dump_pages), images)
    return images


def _select_pages(process: Process) -> Set[int]:
    """Page-aligned addresses to dump."""
    selected: Set[int] = set()
    exec_pages = {page_align_down(t.pc)
                  for t in process.threads.values()
                  if t.status != ThreadStatus.DEAD}
    for base, _data in process.aspace.populated_pages():
        vma = process.aspace.find_vma(base)
        if vma is None:
            continue
        if vma.file_backed:
            # Execution context only: the page under each thread's pc
            # (and its successor, since an instruction can straddle).
            if base in exec_pages or (base - PAGE_SIZE) in exec_pages:
                selected.add(base)
        else:
            selected.add(base)
    return selected


def _write_pages(process: Process, pages: List[int],
                 images: ImageSet) -> None:
    entries: List[PagemapEntry] = []
    blob = bytearray()
    run_start = None
    run_len = 0
    for base in pages:
        data = process.aspace.page(base)
        blob += bytes(data) if data is not None else bytes(PAGE_SIZE)
        if run_start is not None and base == run_start + run_len * PAGE_SIZE:
            run_len += 1
        else:
            if run_start is not None:
                entries.append(PagemapEntry(run_start, run_len))
            run_start = base
            run_len = 1
    if run_start is not None:
        entries.append(PagemapEntry(run_start, run_len))
    images.set_pagemap(PagemapImage(entries))
    images.set_pages(bytes(blob))
