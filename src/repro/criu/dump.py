"""Checkpoint: dump a stopped process into an :class:`ImageSet`.

Page-dump policy mirrors CRIU (paper §III-C): file-backed (code) VMAs
contribute only the *execution context* — the page(s) each thread's
program counter points into — because clean code pages reload from the
binary at restore. All other populated pages are dumped.

Incremental dumps (like CRIU's ``--prev-images-dir``): given a parent
checkpoint id, the set of page addresses the parent chain can resolve,
and the process's dirty-page set (``Process.harvest_dirty_pages``),
pages that are clean *and* available from the parent are emitted as
:data:`~repro.criu.images.PE_PARENT` pagemap runs with no data — the
checkpoint store (:mod:`repro.store`) resolves them by walking the
parent chain at materialize time.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set

from ..errors import CheckpointError
from ..mem.paging import PAGE_SIZE, page_align_down
from ..vm.cpu import ThreadStatus
from ..vm.kernel import Process
from .images import (PE_PARENT, CoreImage, FilesImage, ImageSet,
                     InventoryImage, MmImage, PagemapEntry, PagemapImage)


def dump_process(process: Process, require_stopped: bool = True,
                 parent: Optional[str] = None,
                 parent_pages: Optional[Set[int]] = None,
                 dirty_pages: Optional[Set[int]] = None) -> ImageSet:
    """Dump ``process`` into a fresh image set.

    With ``parent`` (a checkpoint id), ``parent_pages`` (addresses the
    parent chain holds data for) and ``dirty_pages`` (written since the
    parent dump), the result is a *delta* dump: unchanged pages present
    in the parent become PE_PARENT runs and ship no data.
    """
    if require_stopped and not process.stopped:
        raise CheckpointError(
            f"process {process.pid} must be SIGSTOPped before dumping")
    if process.exited:
        raise CheckpointError(f"process {process.pid} has exited")
    if parent is not None and (parent_pages is None or dirty_pages is None):
        raise CheckpointError(
            "delta dump needs both parent_pages and dirty_pages")

    images = ImageSet()
    live = [t for t in process.threads.values()
            if t.status != ThreadStatus.DEAD]
    if not live:
        raise CheckpointError("no live threads to dump")

    images.set_inventory(InventoryImage(
        pid=process.pid, arch=process.isa.name,
        source_name=process.binary.source_name,
        tids=sorted(t.tid for t in live),
        parent=parent if parent is not None else ""))

    for thread in live:
        regs = {process.isa.dwarf_of_index(i): value
                for i, value in enumerate(thread.regs)}
        images.set_core(CoreImage(
            tid=thread.tid, arch=process.isa.name, pc=thread.pc,
            flags=thread.flags, tls_base=thread.tp, status=thread.status,
            regs=regs))

    images.set_mm(MmImage(process.aspace.vmas, process.heap_end))
    images.set_files_img(FilesImage(process.exe_path, process.isa.name))

    dump_pages = _select_pages(process)
    in_parent: FrozenSet[int] = frozenset()
    if parent is not None:
        # A page stays behind only if the parent chain actually holds
        # it AND it has not been written since — a page that is clean
        # but newly selected (e.g. the pc moved into a fresh code page)
        # still ships its data.
        in_parent = frozenset(base for base in dump_pages
                              if base in parent_pages
                              and base not in dirty_pages)
    _write_pages(process, sorted(dump_pages), images, in_parent)
    return images


def _select_pages(process: Process) -> Set[int]:
    """Page-aligned addresses to dump."""
    selected: Set[int] = set()
    exec_pages = {page_align_down(t.pc)
                  for t in process.threads.values()
                  if t.status != ThreadStatus.DEAD}
    for base, _data in process.aspace.populated_pages():
        vma = process.aspace.find_vma(base)
        if vma is None:
            continue
        if vma.file_backed:
            # Execution context only: the page under each thread's pc
            # (and its successor, since an instruction can straddle).
            if base in exec_pages or (base - PAGE_SIZE) in exec_pages:
                selected.add(base)
        else:
            selected.add(base)
    return selected


def _write_pages(process: Process, pages: List[int], images: ImageSet,
                 in_parent: FrozenSet[int] = frozenset()) -> None:
    entries: List[PagemapEntry] = []
    blob = bytearray()
    run_start = None
    run_len = 0
    run_flags = 0
    for base in pages:
        flags = PE_PARENT if base in in_parent else 0
        if flags == 0:
            data = process.aspace.page(base)
            blob += bytes(data) if data is not None else bytes(PAGE_SIZE)
        if (run_start is not None and flags == run_flags
                and base == run_start + run_len * PAGE_SIZE):
            run_len += 1
        else:
            if run_start is not None:
                entries.append(PagemapEntry(run_start, run_len, run_flags))
            run_start = base
            run_len = 1
            run_flags = flags
    if run_start is not None:
        entries.append(PagemapEntry(run_start, run_len, run_flags))
    images.set_pagemap(PagemapImage(entries))
    images.set_pages(bytes(blob))
