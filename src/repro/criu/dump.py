"""Checkpoint: dump a stopped process into an :class:`ImageSet`.

Since the plugin refactor this module is a thin driver: the actual
per-resource dump logic lives in :mod:`repro.criu.plugins` — an ordered
registry of :class:`~repro.criu.plugins.CheckpointPlugin` hooks, each
emitting its own named image section(s). The page-dump and incremental
(PE_PARENT delta) policies are documented on, and implemented by, the
vmas plugin; output is byte-identical to the pre-plugin dumper.
"""

from __future__ import annotations

from typing import Optional, Set

from ..vm.kernel import Process
from .images import ImageSet
from .plugins.base import DumpContext
from .plugins.registry import PluginRegistry, default_registry
# Re-exported for callers that drive page selection directly (the lazy
# dumper historically lived on these; tests use them too).
from .plugins.vmas import _select_pages, _write_pages  # noqa: F401


def dump_process(process: Process, require_stopped: bool = True,
                 parent: Optional[str] = None,
                 parent_pages: Optional[Set[int]] = None,
                 dirty_pages: Optional[Set[int]] = None,
                 extra: Optional[dict] = None,
                 registry: Optional[PluginRegistry] = None) -> ImageSet:
    """Dump ``process`` into a fresh image set.

    With ``parent`` (a checkpoint id), ``parent_pages`` (addresses the
    parent chain holds data for) and ``dirty_pages`` (written since the
    parent dump), the result is a *delta* dump: unchanged pages present
    in the parent become PE_PARENT runs and ship no data.

    ``extra`` carries resource payloads for plugins beyond the kernel's
    own state (journaled ``connections`` for the sockets plugin,
    ``tmpfs_paths`` for the tmpfs plugin); ``registry`` substitutes a
    custom plugin registry for :func:`~repro.criu.plugins.default_registry`.
    """
    ctx = DumpContext(process, parent=parent, parent_pages=parent_pages,
                      dirty_pages=dirty_pages, extra=extra)
    return (registry or default_registry()).dump(ctx, require_stopped)
