"""Post-copy (lazy) migration support (paper §III-D3).

``dump_process_lazy`` dumps only the *minimal set that starts the
process*: task state (cores, mm, files) plus stack and TLS pages and the
execution-context code pages — exactly the set the paper notes is
"enough for cross-architecture process transformation". All remaining
populated pages stay behind in a :class:`PageServer` attached to the
source node; the restored process faults them in on demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import LazyPageError, PageServerDead
from ..mem.paging import PAGE_SIZE
from ..vm.kernel import Machine, Process
from .images import ImageSet
from .plugins.base import DumpContext
from .plugins.registry import PluginRegistry, default_registry
# Re-exported: the eager/lazy page split lives with the vmas plugin now.
from .plugins.vmas import _partition_pages  # noqa: F401
from .restore import restore_process


class PageServer:
    """Serves left-behind pages from the source node on demand.

    Keeps its own copies of the page contents (the source process may be
    torn down after migration). Records a request log — the paper reads
    the page server's log to estimate the indirect restoration cost for
    long-running servers like Redis.

    The log is capped at ``log_limit`` entries (pass ``0`` for
    unlimited): a long-running restored server faulting for hours would
    otherwise grow it without bound. Requests past the cap stop being
    *recorded* but are still *counted* — ``requests``, ``pages_served``
    and ``bytes_served`` stay exact, and ``log_dropped`` says how many
    entries the cap swallowed.
    """

    #: default cap on the request log's length
    DEFAULT_LOG_LIMIT = 4096

    def __init__(self, pages: Dict[int, bytes], node_name: str = "source",
                 log_limit: int = DEFAULT_LOG_LIMIT):
        self._pages = dict(pages)
        self.node_name = node_name
        self.requests = 0
        self.pages_served = 0
        self.bytes_served = 0
        self.log: List[Tuple[int, int]] = []   # (request index, vaddr)
        self.log_limit = log_limit
        self.log_dropped = 0
        #: a dead server raises :class:`PageServerDead` on every fetch —
        #: the chaos injector kills servers mid post-copy to exercise
        #: the pipeline's pre-copy fallback
        self.alive = True
        self._die_after: Optional[int] = None

    def _record(self, vaddr: int) -> None:
        if self.log_limit and len(self.log) >= self.log_limit:
            self.log_dropped += 1
        else:
            self.log.append((self.requests, vaddr))

    def remaining_pages(self) -> int:
        return len(self._pages)

    def remaining_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    def pending_pages(self) -> Dict[int, bytes]:
        """Copy of the not-yet-served pages (the store-backed migration
        path rehomes them into the source node's chunk store)."""
        return dict(self._pages)

    # -- failure model ----------------------------------------------------

    def schedule_death(self, after_requests: int) -> None:
        """Arm the server to die once ``after_requests`` requests have
        been answered (deterministic, so chaos runs replay exactly)."""
        self._die_after = after_requests

    def kill(self) -> None:
        """Take the server down immediately."""
        self.alive = False

    def _check_alive(self) -> None:
        if self._die_after is not None and self.requests >= self._die_after:
            self.alive = False
        if not self.alive:
            raise PageServerDead(
                f"page server on {self.node_name} is down "
                f"(after {self.requests} requests)")

    # -- serving ----------------------------------------------------------

    def _take(self, vaddr: int) -> Optional[bytes]:
        return self._pages.pop(vaddr, None)

    def fetch(self, vaddr: int, strict: bool = False) -> Optional[bytes]:
        """Serve one page.

        Raises :class:`PageServerDead` if the server is down, so a lazy
        restore distinguishes "server gone" from the (legitimate)
        "page was never populated" case, which returns ``None`` —
        pass ``strict=True`` to turn the latter into a typed
        :class:`LazyPageError` instead of silently zero-filling.
        """
        self._check_alive()
        self.requests += 1
        self._record(vaddr)
        data = self._take(vaddr)
        if data is None:
            if strict:
                raise LazyPageError(
                    f"page server on {self.node_name} does not own page "
                    f"{vaddr:#x} (never populated, or already served)")
            return None
        self.pages_served += 1
        self.bytes_served += len(data)
        return data


def dump_process_lazy(process: Process,
                      require_stopped: bool = True,
                      extra: Optional[dict] = None,
                      registry: Optional[PluginRegistry] = None
                      ) -> Tuple[ImageSet, PageServer]:
    """Minimal dump + a page server holding everything else.

    Runs the same plugin pipeline as :func:`~repro.criu.dump_process`
    with the context's ``lazy`` flag set: the vmas plugin writes only
    the eager page set and stashes the remainder on the context for the
    returned :class:`PageServer`.
    """
    ctx = DumpContext(process, lazy=True, extra=extra)
    images = (registry or default_registry()).dump(ctx, require_stopped)
    return images, PageServer(ctx.lazy_pages,
                              node_name=process.machine.name)


def restore_process_lazy(machine: Machine, images: ImageSet,
                         page_server: PageServer,
                         pid: Optional[int] = None,
                         verify: bool = True,
                         registry: Optional[PluginRegistry] = None
                         ) -> Process:
    """Restore a lazy checkpoint; missing pages fault in from the server.

    Routes through :func:`~repro.criu.restore_process` and therefore
    through the same restore guard as the eager path: with ``verify=``
    left on, a corrupt minimal image raises
    :class:`~repro.errors.VerifyError` *before* the process is built and
    the missing-page hook installed.
    """
    process = restore_process(machine, images, pid=pid, verify=verify,
                              registry=registry)
    lazy_vmas = [v for v in process.aspace.vmas
                 if not (v.file_backed or v.name.startswith("stack:")
                         or v.name.startswith("tls:"))]
    lazy_ranges = [(v.start, v.end) for v in lazy_vmas]

    def hook(base: int) -> Optional[bytes]:
        for start, end in lazy_ranges:
            if start <= base < end:
                return page_server.fetch(base)
        return None

    process.aspace.missing_page_hook = hook
    return process
