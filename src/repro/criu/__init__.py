"""CRIU-style checkpoint/restore for simulated processes.

Mirrors the structure of real CRIU images (paper §III-D2b):

=================  ========================================================
``inventory.img``  process-level metadata (pid, arch, thread list)
``core-<t>.img``   per-thread register state, TLS pointer, task status
``mm.img``         VMA list + heap break
``files.img``      opened files — here, the executable path and arch
``pagemap.img``    which virtual regions have dumped pages
``pages-1.img``    raw page contents (no wire encoding, like real CRIU)
``sockets.img``    journaled in-flight connections (group cuts; optional)
``tmpfs.img``      node-local file artifacts (optional)
=================  ========================================================

All ``.img`` files except ``pages-1.img`` are encoded with the
protobuf-like wire format and can be decoded to JSON and re-encoded with
the CRIT tool (``repro.criu.crit``), exactly as the paper extends CRIT
for rewriting.

Each image section is owned by one checkpoint plugin
(:mod:`repro.criu.plugins`, DMTCP-style): ``dump_process`` /
``restore_process`` are thin drivers over an ordered
:class:`~repro.criu.plugins.PluginRegistry`, so new resource classes
register without touching them.
"""

from .images import (CoreImage, FilesImage, ImageSet, InventoryImage,
                     MmImage, PagemapEntry, PagemapImage, register_magic)
from .plugins import (CheckpointPlugin, PluginRegistry, SocketsImage,
                      TmpfsImage, default_registry)
from .dump import dump_process
from .restore import restore_process
from .lazy import PageServer, dump_process_lazy, restore_process_lazy

__all__ = [
    "CoreImage", "FilesImage", "ImageSet", "InventoryImage", "MmImage",
    "PagemapEntry", "PagemapImage", "register_magic",
    "CheckpointPlugin", "PluginRegistry", "SocketsImage", "TmpfsImage",
    "default_registry",
    "dump_process", "restore_process",
    "PageServer", "dump_process_lazy", "restore_process_lazy",
]
