"""CRIU-style checkpoint/restore for simulated processes.

Mirrors the structure of real CRIU images (paper §III-D2b):

=================  ========================================================
``inventory.img``  process-level metadata (pid, arch, thread list)
``core-<t>.img``   per-thread register state, TLS pointer, task status
``mm.img``         VMA list + heap break
``files.img``      opened files — here, the executable path and arch
``pagemap.img``    which virtual regions have dumped pages
``pages-1.img``    raw page contents (no wire encoding, like real CRIU)
=================  ========================================================

All ``.img`` files except ``pages-1.img`` are encoded with the
protobuf-like wire format and can be decoded to JSON and re-encoded with
the CRIT tool (``repro.criu.crit``), exactly as the paper extends CRIT
for rewriting.
"""

from .images import (CoreImage, FilesImage, ImageSet, InventoryImage,
                     MmImage, PagemapEntry, PagemapImage)
from .dump import dump_process
from .restore import restore_process
from .lazy import PageServer, dump_process_lazy, restore_process_lazy

__all__ = [
    "CoreImage", "FilesImage", "ImageSet", "InventoryImage", "MmImage",
    "PagemapEntry", "PagemapImage", "dump_process", "restore_process",
    "PageServer", "dump_process_lazy", "restore_process_lazy",
]
