"""Typed CRIU image classes and their wire schemas."""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Optional

from .. import wire
from ..errors import ImageFormatError, MemoryError_, WireError
from ..mem.paging import PAGE_SIZE
from ..mem.vma import Vma

#: pagemap-entry flag: the run's page data lives in the *parent*
#: checkpoint, not in this image set's pages-1.img (incremental dumps,
#: like CRIU's PE_PARENT).
PE_PARENT = 1

#: magic values at the head of each encoded image (like CRIU's magics)
MAGIC_INVENTORY = 0x58313116
MAGIC_CORE = 0x5A4E494D
MAGIC_MM = 0x5746F78B
MAGIC_PAGEMAP = 0x56084025
MAGIC_FILES = 0x56303138

_MAGIC_BY_KIND = {
    "inventory": MAGIC_INVENTORY,
    "core": MAGIC_CORE,
    "mm": MAGIC_MM,
    "pagemap": MAGIC_PAGEMAP,
    "files": MAGIC_FILES,
}


def register_magic(kind: str, magic: int) -> int:
    """Register a new image kind's magic value.

    Checkpoint plugins that introduce new image sections (sockets,
    tmpfs, ...) register their magics here instead of editing this
    module — the wrap/unwrap helpers then work for them unchanged.
    Re-registering the same (kind, magic) pair is a no-op; a conflicting
    magic for a known kind is an error.
    """
    existing = _MAGIC_BY_KIND.get(kind)
    if existing is not None and existing != magic:
        raise ImageFormatError(
            f"image kind {kind!r} already registered with magic "
            f"{existing:#x}")
    _MAGIC_BY_KIND[kind] = magic
    return magic


def _wrap(kind: str, payload: bytes) -> bytes:
    return struct.pack("<I", _MAGIC_BY_KIND[kind]) + payload


def _unwrap(kind: str, blob: bytes) -> bytes:
    if len(blob) < 4:
        raise ImageFormatError(f"{kind}: truncated image")
    magic = struct.unpack_from("<I", blob)[0]
    if magic != _MAGIC_BY_KIND[kind]:
        raise ImageFormatError(
            f"{kind}: bad magic {magic:#x} (want "
            f"{_MAGIC_BY_KIND[kind]:#x})")
    return blob[4:]


def _decode(kind: str, schema: wire.Schema, blob: bytes,
            required=()) -> dict:
    """Unwrap + decode an image, folding every malformed-input failure
    (bad magic, truncated wire data, missing required fields) into
    :class:`ImageFormatError` so callers need exactly one except."""
    payload = _unwrap(kind, blob)
    try:
        data = schema.decode(payload)
    except WireError as exc:
        raise ImageFormatError(f"{kind}: corrupt image: {exc}") from exc
    for name in required:
        if name not in data:
            raise ImageFormatError(
                f"{kind}: missing required field {name!r}")
    return data


# -- inventory ---------------------------------------------------------------

_INVENTORY_SCHEMA = wire.Schema("inventory", [
    wire.field(1, "pid", "int"),
    wire.field(2, "arch", "str"),
    wire.field(3, "source_name", "str"),
    wire.field(4, "tids", "int", repeated=True),
    wire.field(5, "lazy", "int"),
    wire.field(6, "parent", "str"),
])


class InventoryImage:
    def __init__(self, pid: int, arch: str, source_name: str,
                 tids: List[int], lazy: bool = False, parent: str = ""):
        self.pid = pid
        self.arch = arch
        self.source_name = source_name
        self.tids = list(tids)
        self.lazy = lazy
        #: checkpoint id this dump is a delta against ("" = full dump)
        self.parent = parent

    def to_bytes(self) -> bytes:
        return _wrap("inventory", _INVENTORY_SCHEMA.encode({
            "pid": self.pid, "arch": self.arch,
            "source_name": self.source_name, "tids": self.tids,
            "lazy": int(self.lazy), "parent": self.parent}))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "InventoryImage":
        data = _decode("inventory", _INVENTORY_SCHEMA, blob,
                       required=("pid", "arch"))
        return cls(data["pid"], data["arch"], data.get("source_name", ""),
                   data.get("tids", []), bool(data.get("lazy", 0)),
                   data.get("parent", ""))


# -- core (per thread) ----------------------------------------------------------

_CORE_SCHEMA = wire.Schema("core", [
    wire.field(1, "tid", "int"),
    wire.field(2, "arch", "str"),
    wire.field(3, "pc", "int"),
    wire.field(4, "flags", "int"),
    wire.field(5, "tls_base", "int"),
    wire.field(6, "status", "str"),
    # Registers stored as (dwarf_number, value) pairs so the rewriter can
    # address them exactly the way the stackmaps do.
    wire.field(7, "reg_dwarf", "int", repeated=True),
    wire.field(8, "reg_value", "int", repeated=True),
])


class CoreImage:
    """One thread's dumped architectural state."""

    def __init__(self, tid: int, arch: str, pc: int, flags: int,
                 tls_base: int, status: str, regs: Dict[int, int]):
        self.tid = tid
        self.arch = arch
        self.pc = pc
        self.flags = flags
        self.tls_base = tls_base
        self.status = status
        #: dwarf register number -> signed value
        self.regs = dict(regs)

    def to_bytes(self) -> bytes:
        numbers = sorted(self.regs)
        return _wrap("core", _CORE_SCHEMA.encode({
            "tid": self.tid, "arch": self.arch, "pc": self.pc,
            "flags": self.flags, "tls_base": self.tls_base,
            "status": self.status,
            "reg_dwarf": numbers,
            "reg_value": [self.regs[n] for n in numbers]}))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CoreImage":
        data = _decode("core", _CORE_SCHEMA, blob,
                       required=("tid", "arch", "pc", "flags", "tls_base"))
        regs = dict(zip(data.get("reg_dwarf", []),
                        data.get("reg_value", [])))
        return cls(data["tid"], data["arch"], data["pc"], data["flags"],
                   data["tls_base"], data.get("status", "running"), regs)


# -- mm -----------------------------------------------------------------------

_VMA_SCHEMA = wire.Schema("vma", [
    wire.field(1, "start", "int"),
    wire.field(2, "end", "int"),
    wire.field(3, "prot", "int"),
    wire.field(4, "name", "str"),
    wire.field(5, "file_backed", "int"),
    wire.field(6, "file_path", "str"),
    wire.field(7, "file_offset", "int"),
])

_MM_SCHEMA = wire.Schema("mm", [
    wire.field(1, "vmas", "message", repeated=True, message=_VMA_SCHEMA),
    wire.field(2, "heap_end", "int"),
])


class MmImage:
    def __init__(self, vmas: List[Vma], heap_end: int):
        self.vmas = list(vmas)
        self.heap_end = heap_end

    def to_bytes(self) -> bytes:
        return _wrap("mm", _MM_SCHEMA.encode({
            "vmas": [v.to_dict() for v in self.vmas],
            "heap_end": self.heap_end}))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MmImage":
        data = _decode("mm", _MM_SCHEMA, blob)
        try:
            vmas = [Vma.from_dict(v) for v in data.get("vmas", [])]
        except KeyError as exc:
            raise ImageFormatError(
                f"mm: vma entry missing field {exc}") from exc
        except MemoryError_ as exc:
            raise ImageFormatError(f"mm: invalid vma: {exc}") from exc
        return cls(vmas, data.get("heap_end", 0))


# -- files ----------------------------------------------------------------------

_FILES_SCHEMA = wire.Schema("files", [
    wire.field(1, "exe_path", "str"),
    wire.field(2, "exe_arch", "str"),
])


class FilesImage:
    """Opened files. The entry that matters for Dapper is the executable:
    cross-ISA rewriting points it at the other architecture's binary."""

    def __init__(self, exe_path: str, exe_arch: str):
        self.exe_path = exe_path
        self.exe_arch = exe_arch

    def to_bytes(self) -> bytes:
        return _wrap("files", _FILES_SCHEMA.encode({
            "exe_path": self.exe_path, "exe_arch": self.exe_arch}))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "FilesImage":
        data = _decode("files", _FILES_SCHEMA, blob,
                       required=("exe_path",))
        return cls(data["exe_path"], data.get("exe_arch", ""))


# -- pagemap + pages ---------------------------------------------------------------

_PAGEMAP_ENTRY_SCHEMA = wire.Schema("pagemap_entry", [
    wire.field(1, "vaddr", "int"),
    wire.field(2, "nr_pages", "int"),
    wire.field(3, "flags", "int"),
])

_PAGEMAP_SCHEMA = wire.Schema("pagemap", [
    wire.field(1, "entries", "message", repeated=True,
               message=_PAGEMAP_ENTRY_SCHEMA),
])


class PagemapEntry:
    __slots__ = ("vaddr", "nr_pages", "flags")

    def __init__(self, vaddr: int, nr_pages: int, flags: int = 0):
        self.vaddr = vaddr
        self.nr_pages = nr_pages
        self.flags = flags

    @property
    def in_parent(self) -> bool:
        return bool(self.flags & PE_PARENT)

    def to_dict(self) -> dict:
        return {"vaddr": self.vaddr, "nr_pages": self.nr_pages,
                "flags": self.flags}

    @classmethod
    def from_dict(cls, data: dict) -> "PagemapEntry":
        return cls(data["vaddr"], data["nr_pages"],
                   data.get("flags", 0))

    def __repr__(self) -> str:
        tag = " parent" if self.in_parent else ""
        return f"<PagemapEntry {self.vaddr:#x} x{self.nr_pages}{tag}>"


class PagemapImage:
    """Index into ``pages-1.img``: runs of dumped pages in file order.

    Runs flagged :data:`PE_PARENT` are listed (the page *exists* in the
    checkpoint) but carry no data here — their contents live in the
    parent checkpoint, and only the checkpoint store can resolve them.
    """

    def __init__(self, entries: List[PagemapEntry]):
        self.entries = list(entries)

    def total_pages(self) -> int:
        return sum(e.nr_pages for e in self.entries)

    def data_pages(self) -> int:
        """Pages whose contents are in this image set's pages-1.img."""
        return sum(e.nr_pages for e in self.entries if not e.in_parent)

    def parent_pages(self) -> int:
        return sum(e.nr_pages for e in self.entries if e.in_parent)

    def is_delta(self) -> bool:
        return any(e.in_parent for e in self.entries)

    def page_addresses(self) -> List[int]:
        out = []
        for entry in self.entries:
            for i in range(entry.nr_pages):
                out.append(entry.vaddr + i * PAGE_SIZE)
        return out

    def to_bytes(self) -> bytes:
        return _wrap("pagemap", _PAGEMAP_SCHEMA.encode({
            "entries": [e.to_dict() for e in self.entries]}))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PagemapImage":
        data = _decode("pagemap", _PAGEMAP_SCHEMA, blob)
        try:
            entries = [PagemapEntry.from_dict(e)
                       for e in data.get("entries", [])]
        except KeyError as exc:
            raise ImageFormatError(
                f"pagemap: entry missing field {exc}") from exc
        return cls(entries)


# -- the image set ------------------------------------------------------------------

class ImageSet:
    """One checkpoint: named image files, loadable from / savable to tmpfs."""

    def __init__(self, files: Optional[Dict[str, bytes]] = None):
        self.files: Dict[str, bytes] = dict(files or {})

    # typed accessors (parse on demand, write back explicitly)

    def _blob(self, name: str) -> bytes:
        try:
            return self.files[name]
        except KeyError:
            raise ImageFormatError(
                f"image set has no {name}") from None

    def inventory(self) -> InventoryImage:
        return InventoryImage.from_bytes(self._blob("inventory.img"))

    def core(self, tid: int) -> CoreImage:
        return CoreImage.from_bytes(self._blob(f"core-{tid}.img"))

    def cores(self) -> List[CoreImage]:
        return [self.core(tid) for tid in self.inventory().tids]

    def mm(self) -> MmImage:
        return MmImage.from_bytes(self._blob("mm.img"))

    def files_img(self) -> FilesImage:
        return FilesImage.from_bytes(self._blob("files.img"))

    def pagemap(self) -> PagemapImage:
        return PagemapImage.from_bytes(self._blob("pagemap.img"))

    def pages(self) -> bytes:
        return self._blob("pages-1.img")

    def set_inventory(self, image: InventoryImage) -> None:
        self.files["inventory.img"] = image.to_bytes()

    def set_core(self, image: CoreImage) -> None:
        self.files[f"core-{image.tid}.img"] = image.to_bytes()

    def set_mm(self, image: MmImage) -> None:
        self.files["mm.img"] = image.to_bytes()

    def set_files_img(self, image: FilesImage) -> None:
        self.files["files.img"] = image.to_bytes()

    def set_pagemap(self, image: PagemapImage) -> None:
        self.files["pagemap.img"] = image.to_bytes()

    def set_pages(self, data: bytes) -> None:
        self.files["pages-1.img"] = bytes(data)

    # page lookup helpers

    def page_at(self, vaddr: int) -> Optional[bytes]:
        """Dumped page contents for a page-aligned address, if present.

        Pages flagged :data:`PE_PARENT` have no data in this image set
        (it is a delta dump) and return None — resolve them through the
        checkpoint store's parent chain instead.
        """
        index = 0           # counts only pages with data in pages-1.img
        for entry in self.pagemap().entries:
            span = entry.nr_pages * PAGE_SIZE
            if entry.vaddr <= vaddr < entry.vaddr + span:
                if entry.in_parent:
                    return None
                offset = (index * PAGE_SIZE) + (vaddr - entry.vaddr)
                return self.pages()[offset:offset + PAGE_SIZE]
            if not entry.in_parent:
                index += entry.nr_pages
        return None

    def is_delta(self) -> bool:
        """True when this image set is an incremental (delta) dump."""
        return self.pagemap().is_delta()

    def total_bytes(self) -> int:
        return sum(len(v) for v in self.files.values())

    def content_digest(self) -> str:
        """Order-independent blake2b over every image file — the
        transactional migration pipeline compares source and arrival
        digests to catch wire corruption before restoring."""
        h = hashlib.blake2b(digest_size=16)
        for name in sorted(self.files):
            h.update(name.encode("utf-8"))
            h.update(b"\x00")
            h.update(self.files[name])
            h.update(b"\x01")
        return h.hexdigest()

    # tmpfs I/O

    def save(self, tmpfs, prefix: str) -> int:
        total = 0
        for name, data in self.files.items():
            tmpfs.write(f"{prefix.rstrip('/')}/{name}", data)
            total += len(data)
        return total

    @classmethod
    def load(cls, tmpfs, prefix: str) -> "ImageSet":
        files = {}
        for path in tmpfs.listdir(prefix):
            name = path[len(prefix.rstrip('/')) + 1:]
            files[name] = tmpfs.read(path)
        if not files:
            raise ImageFormatError(f"no images under {prefix!r}")
        return cls(files)

    def __repr__(self) -> str:
        return f"<ImageSet {sorted(self.files)} {self.total_bytes()}B>"
