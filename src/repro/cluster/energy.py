"""Energy accounting: integrate node power over simulation intervals."""

from __future__ import annotations

from typing import Dict, Iterable

from .node import SimNode


class EnergyMeter:
    """Piecewise-constant power integration (the SURAIELEC watt meter)."""

    def __init__(self, nodes: Iterable[SimNode]):
        self.nodes = list(nodes)
        self.joules_by_node: Dict[str, float] = {n.name: 0.0
                                                 for n in self.nodes}
        self._last_time = 0.0

    def advance_to(self, now: float) -> None:
        """Accumulate energy for the interval since the last call, using
        the *current* per-node activity (call before changing state)."""
        dt = now - self._last_time
        if dt < 0:
            raise ValueError("energy meter moved backwards in time")
        if dt > 0:
            for node in self.nodes:
                self.joules_by_node[node.name] += node.power_watts() * dt
        self._last_time = now

    def total_joules(self) -> float:
        return sum(self.joules_by_node.values())

    def total_kilojoules(self) -> float:
        return self.total_joules() / 1e3

    def __repr__(self) -> str:
        per_node = ", ".join(f"{k}={v / 1e3:.1f}kJ"
                             for k, v in self.joules_by_node.items())
        return f"<EnergyMeter {per_node}>"
