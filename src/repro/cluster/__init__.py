"""Heterogeneous-cluster simulation (paper §IV-A-b, Fig. 8).

A discrete-event simulation of the paper's testbed — one Xeon server
plus up to three Raspberry Pi boards — processing an infinite queue of
batch jobs for a fixed wall-clock window. The eviction scheduler
migrates jobs to Pi boards when the server runs out of CPU resources;
per-benchmark speed ratios and migration latencies are *measured* from
real simulator runs, and the power model is calibrated to the paper's
watt-meter readings (108 W Xeon at 7 busy cores, 5.1 W Pi at 3 jobs).
"""

from .events import EventQueue
from .node import SimNode
from .network import Network
from .jobs import JobTemplate, measure_job_template
from .scheduler import EvictionScheduler, NodeHealth
from .energy import EnergyMeter
from .experiment import BatchExperiment, BatchResult

__all__ = ["EventQueue", "SimNode", "Network", "JobTemplate",
           "measure_job_template", "EvictionScheduler", "NodeHealth",
           "EnergyMeter", "BatchExperiment", "BatchResult"]
