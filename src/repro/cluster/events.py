"""A minimal discrete-event engine."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional, Tuple

from ..errors import ClusterError


class EventQueue:
    """Time-ordered event queue with stable FIFO tie-breaking.

    ``shard`` is the queue's identity in a sharded simulation
    (:class:`~repro.fleet.events.ShardedEventCore`): it sits in every
    heap tuple *between* the timestamp and the FIFO counter, so
    merging the fired-event traces of several shards by their heap
    keys ``(when, shard, seq)`` yields one canonical order that does
    not depend on which shard happened to be iterated first. A
    single-queue simulation leaves it at 0 and nothing changes.
    """

    def __init__(self, shard: int = 0):
        self._heap: list = []
        self._counter = itertools.count()
        self.shard = shard
        self.now = 0.0
        #: optional observer called as ``on_fire(when, label)`` just
        #: before each event's action runs — the flight recorder hooks
        #: this to journal the exact firing order the replay must match.
        self.on_fire: Optional[Callable[[float, str], None]] = None

    def schedule(self, when: float, action: Callable[[], None],
                 label: str = "") -> None:
        if when < self.now - 1e-12:
            raise ClusterError(
                f"cannot schedule event at {when} before now={self.now}")
        heapq.heappush(self._heap,
                       (when, self.shard, next(self._counter), label, action))

    def schedule_in(self, delay: float, action: Callable[[], None],
                    label: str = "") -> None:
        self.schedule(self.now + delay, action, label)

    def empty(self) -> bool:
        return not self._heap

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def peek_key(self) -> Optional[Tuple[float, int, int]]:
        """The next event's merge key ``(when, shard, seq)`` — what a
        multi-shard merge orders by."""
        if not self._heap:
            return None
        when, shard, seq, _label, _action = self._heap[0]
        return when, shard, seq

    def step(self) -> Tuple[float, str]:
        """Pop and run the next event; returns (time, label)."""
        if not self._heap:
            raise ClusterError("event queue is empty")
        when, _shard, _seq, label, action = heapq.heappop(self._heap)
        self.now = when
        if self.on_fire is not None:
            self.on_fire(when, label)
        action()
        return when, label

    def run_until(self, horizon: float, max_events: int = 10_000_000) -> int:
        """Run events up to ``horizon``; returns the number executed.

        ``now`` only advances past the last fired event to ``horizon``
        when every event at or before the horizon actually ran: if
        ``max_events`` stopped the loop early, still-queued events
        would otherwise be stranded in the past and their eventual
        ``schedule`` neighbors would raise "cannot schedule before
        now".
        """
        executed = 0
        while (self._heap and self._heap[0][0] <= horizon
               and executed < max_events):
            self.step()
            executed += 1
        if not self._heap or self._heap[0][0] > horizon:
            self.now = max(self.now, horizon)
        return executed
