"""The eviction scheduler (paper §IV-A-b).

"A simple scheduler to evict tasks to one Raspberry Pi or three
Raspberry Pis when the x86-64 server runs out of CPU resources (more
running jobs than CPU cores)."

Policy implemented here: the server always keeps its job slots full from
the infinite queue. Whenever a Pi has a free slot, the most recently
started server job (the one with the most remaining work, so migration
overhead amortizes best) is evicted to the Pi via a Dapper migration —
paying the measured migration latency — and the freed server slot
immediately takes the next queued job.

**Supervisor loop.** With a chaos ``injector`` attached, an eviction
migration can fail mid-flight. A failed eviction rolls the job back to
the head of the queue (its remaining work preserved — the next free
server slot resumes it), docks the target node's health, and — after
``max_node_failures`` consecutive failures — marks the node *unhealthy*:
the scheduler stops evicting toward it and probes it again after a
deterministic exponential backoff. A successful eviction resets the
node's failure count. Without an injector none of this draws RNG or
changes scheduling decisions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .energy import EnergyMeter
from .events import EventQueue
from .jobs import Job, JobTemplate
from .node import SimNode


class NodeHealth:
    """Per-node circuit breaker with deterministic half-open probes.

    Shared supervisor logic: the eviction scheduler (below) and the
    fleet's concurrent migration scheduler both dock a node's health on
    a failed migration toward it, stop routing work there after
    ``max_failures`` consecutive failures, and retry after an
    exponential backoff. ``failed(name)`` returns the probe delay when
    the breaker *trips* (the caller schedules :meth:`probe`), else
    ``None``; a success calls :meth:`recovered` and resets the count.
    """

    def __init__(self, max_failures: int = 3, backoff_s: float = 1.0):
        self.max_failures = max(1, int(max_failures))
        self.backoff_s = backoff_s
        self.failures: Dict[str, int] = {}
        self.unhealthy: Set[str] = set()

    def ok(self, name: str) -> bool:
        return name not in self.unhealthy

    def failed(self, name: str) -> Optional[float]:
        failures = self.failures.get(name, 0) + 1
        self.failures[name] = failures
        if failures >= self.max_failures and name not in self.unhealthy:
            self.unhealthy.add(name)
            # A node that keeps failing re-trips with a doubled delay.
            return self.backoff_s * (2 ** (failures - self.max_failures))
        return None

    def recovered(self, name: str) -> None:
        if self.failures.get(name):
            self.failures[name] = 0
        self.unhealthy.discard(name)

    def probe(self, name: str) -> None:
        """Half-open: allow work toward the node again; the next failure
        re-trips the breaker (with a longer backoff)."""
        self.unhealthy.discard(name)


class EvictionScheduler:
    def __init__(self, queue: EventQueue, server: SimNode,
                 pis: List[SimNode], template: JobTemplate,
                 meter: EnergyMeter,
                 min_remaining_fraction: float = 0.25,
                 injector=None, max_node_failures: int = 3,
                 retry_backoff_s: float = 1.0):
        self.queue = queue
        self.server = server
        self.pis = pis
        self.template = template
        self.meter = meter
        #: do not evict jobs that are nearly done — the migration
        #: overhead would not pay off
        self.min_remaining_fraction = min_remaining_fraction
        self.completed = 0
        self.evictions = 0           # successful evictions only
        self._server_jobs: List[tuple] = []     # (job, slot, finish_time)
        # -- supervisor state --
        self.injector = injector
        self.health = NodeHealth(max_failures=max_node_failures,
                                 backoff_s=retry_backoff_s)
        self.failed_evictions = 0
        #: rolled-back jobs waiting for a server slot, oldest first
        self._requeue: List[Job] = []

    # Pre-NodeHealth attribute names, kept as the public API.
    @property
    def max_node_failures(self) -> int:
        return self.health.max_failures

    @property
    def retry_backoff_s(self) -> float:
        return self.health.backoff_s

    @property
    def node_failures(self) -> Dict[str, int]:
        return self.health.failures

    @property
    def unhealthy(self) -> Set[str]:
        return self.health.unhealthy

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        for _ in range(self.server.free_slots()):
            self._start_server_job()
        self._try_evictions()

    def _start_server_job(self) -> None:
        if self._requeue:
            # A rolled-back eviction resumes first, with the remaining
            # fraction it had when its migration failed.
            job = self._requeue.pop(0)
        else:
            job = Job(self.template)
            job.started_at = self.queue.now
        job.node_name = self.server.name
        slot = self.server.place(job)
        finish = self.queue.now + job.remaining_seconds_on(
            self.server.profile)
        entry = (job, slot, finish)
        self._server_jobs.append(entry)
        self.queue.schedule(finish, lambda: self._server_job_done(entry),
                            f"server-done-{job.job_id}")

    def _server_job_done(self, entry) -> None:
        if entry not in self._server_jobs:
            return   # the job was evicted before finishing
        job, slot, _finish = entry
        self.meter.advance_to(self.queue.now)
        self._server_jobs.remove(entry)
        self.server.release(slot)
        self.completed += 1
        self._start_server_job()
        self._try_evictions()

    # -- eviction -----------------------------------------------------------------

    def _try_evictions(self) -> None:
        for pi in self.pis:
            if pi.name in self.unhealthy:
                continue
            while pi.free_slots() > 0 and pi.name not in self.unhealthy:
                entry = self._pick_eviction_candidate()
                if entry is None:
                    return
                self._evict(entry, pi)

    def _pick_eviction_candidate(self) -> Optional[tuple]:
        best = None
        for entry in self._server_jobs:
            job, _slot, finish = entry
            total = job.template.duration_on(self.server.profile)
            remaining = (finish - self.queue.now) / total
            if remaining < self.min_remaining_fraction:
                continue
            if best is None or finish > best[2]:
                best = entry
        return best

    def _evict(self, entry, pi: SimNode) -> None:
        job, slot, finish = entry
        self.meter.advance_to(self.queue.now)
        # Remaining work at the moment of eviction.
        total = job.template.duration_on(self.server.profile)
        job.remaining_fraction = max(0.0, (finish - self.queue.now) / total)
        self._server_jobs.remove(entry)
        self.server.release(slot)
        if (self.injector is not None
                and self.injector.eviction_fault(pi.name)):
            # The migration toward the Pi failed mid-flight: roll the
            # job back to the queue (the freed server slot resumes it
            # immediately) and dock the node's health.
            self.failed_evictions += 1
            self._requeue.append(job)
            self._node_failed(pi)
            self._start_server_job()
            return
        self._node_recovered(pi)
        self.evictions += 1
        # The freed server slot takes the next queued job immediately.
        self._start_server_job()
        # The Pi receives the job after the Dapper migration latency.
        job.node_name = pi.name
        pi_slot = pi.place(job)
        duration = (job.template.migration_seconds
                    + job.remaining_seconds_on(pi.profile))
        self.queue.schedule_in(
            duration, lambda: self._pi_job_done(pi, pi_slot),
            f"pi-done-{job.job_id}")

    def _pi_job_done(self, pi: SimNode, slot: int) -> None:
        self.meter.advance_to(self.queue.now)
        pi.release(slot)
        self.completed += 1
        self._try_evictions()

    # -- node health (supervisor) -------------------------------------------------

    def _node_failed(self, pi: SimNode) -> None:
        delay = self.health.failed(pi.name)
        if delay is not None:
            # Probe again after the breaker's deterministic exponential
            # backoff.
            self.queue.schedule_in(delay, lambda: self._probe_node(pi),
                                   f"probe-{pi.name}")

    def _node_recovered(self, pi: SimNode) -> None:
        self.health.recovered(pi.name)

    def _probe_node(self, pi: SimNode) -> None:
        # Half-open: the next failure re-trips the breaker (with a
        # longer backoff), the next success resets it.
        self.health.probe(pi.name)
        self._try_evictions()
