"""The eviction scheduler (paper §IV-A-b).

"A simple scheduler to evict tasks to one Raspberry Pi or three
Raspberry Pis when the x86-64 server runs out of CPU resources (more
running jobs than CPU cores)."

Policy implemented here: the server always keeps its job slots full from
the infinite queue. Whenever a Pi has a free slot, the most recently
started server job (the one with the most remaining work, so migration
overhead amortizes best) is evicted to the Pi via a Dapper migration —
paying the measured migration latency — and the freed server slot
immediately takes the next queued job.
"""

from __future__ import annotations

from typing import List, Optional

from .energy import EnergyMeter
from .events import EventQueue
from .jobs import Job, JobTemplate
from .node import SimNode


class EvictionScheduler:
    def __init__(self, queue: EventQueue, server: SimNode,
                 pis: List[SimNode], template: JobTemplate,
                 meter: EnergyMeter,
                 min_remaining_fraction: float = 0.25):
        self.queue = queue
        self.server = server
        self.pis = pis
        self.template = template
        self.meter = meter
        #: do not evict jobs that are nearly done — the migration
        #: overhead would not pay off
        self.min_remaining_fraction = min_remaining_fraction
        self.completed = 0
        self.evictions = 0
        self._server_jobs: List[tuple] = []     # (job, slot, finish_time)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        for _ in range(self.server.free_slots()):
            self._start_server_job()
        self._try_evictions()

    def _start_server_job(self) -> None:
        job = Job(self.template)
        job.started_at = self.queue.now
        job.node_name = self.server.name
        slot = self.server.place(job)
        finish = self.queue.now + job.remaining_seconds_on(
            self.server.profile)
        entry = (job, slot, finish)
        self._server_jobs.append(entry)
        self.queue.schedule(finish, lambda: self._server_job_done(entry),
                            f"server-done-{job.job_id}")

    def _server_job_done(self, entry) -> None:
        if entry not in self._server_jobs:
            return   # the job was evicted before finishing
        job, slot, _finish = entry
        self.meter.advance_to(self.queue.now)
        self._server_jobs.remove(entry)
        self.server.release(slot)
        self.completed += 1
        self._start_server_job()
        self._try_evictions()

    # -- eviction -----------------------------------------------------------------

    def _try_evictions(self) -> None:
        for pi in self.pis:
            while pi.free_slots() > 0:
                entry = self._pick_eviction_candidate()
                if entry is None:
                    return
                self._evict(entry, pi)

    def _pick_eviction_candidate(self) -> Optional[tuple]:
        best = None
        for entry in self._server_jobs:
            job, _slot, finish = entry
            total = job.template.duration_on(self.server.profile)
            remaining = (finish - self.queue.now) / total
            if remaining < self.min_remaining_fraction:
                continue
            if best is None or finish > best[2]:
                best = entry
        return best

    def _evict(self, entry, pi: SimNode) -> None:
        job, slot, finish = entry
        self.meter.advance_to(self.queue.now)
        # Remaining work at the moment of eviction.
        total = job.template.duration_on(self.server.profile)
        job.remaining_fraction = max(0.0, (finish - self.queue.now) / total)
        self._server_jobs.remove(entry)
        self.server.release(slot)
        self.evictions += 1
        # The freed server slot takes the next queued job immediately.
        self._start_server_job()
        # The Pi receives the job after the Dapper migration latency.
        job.node_name = pi.name
        pi_slot = pi.place(job)
        duration = (job.template.migration_seconds
                    + job.remaining_seconds_on(pi.profile))
        self.queue.schedule_in(
            duration, lambda: self._pi_job_done(pi, pi_slot),
            f"pi-done-{job.job_id}")

    def _pi_job_done(self, pi: SimNode, slot: int) -> None:
        self.meter.advance_to(self.queue.now)
        pi.release(slot)
        self.completed += 1
        self._try_evictions()
