"""Cluster network model: named links between machines, scp helper."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.costs import LinkProfile, ethernet_link, infiniband_link
from ..errors import ClusterError
from ..vm.kernel import Machine


class Network:
    """Links between named nodes, with a tmpfs-to-tmpfs scp primitive."""

    def __init__(self, default_link: Optional[LinkProfile] = None):
        self.default_link = default_link or infiniband_link()
        self._links: Dict[Tuple[str, str], LinkProfile] = {}

    def connect(self, a: str, b: str, link: LinkProfile,
                symmetric: bool = True) -> None:
        """Register a link between two nodes.

        ``symmetric=True`` (the default) installs both directions;
        pass ``False`` to model asymmetric paths (e.g. a throttled
        uplink from an edge board). Re-registering a direction with a
        *different* link is a configuration conflict and raises
        :class:`ClusterError`; re-registering the same profile is
        idempotent.
        """
        self._install(a, b, link)
        if symmetric:
            self._install(b, a, link)

    def _install(self, a: str, b: str, link: LinkProfile) -> None:
        existing = self._links.get((a, b))
        if existing is not None and not self._same_link(existing, link):
            raise ClusterError(
                f"conflicting link registration {a}->{b}: "
                f"{existing!r} already installed, got {link!r}")
        self._links[(a, b)] = link

    @staticmethod
    def _same_link(a: LinkProfile, b: LinkProfile) -> bool:
        if a is b:
            return True
        return vars(a) == vars(b)

    def link_between(self, a: str, b: str) -> LinkProfile:
        return self._links.get((a, b), self.default_link)

    def scp(self, src: Machine, dst: Machine, prefix: str,
            dest_prefix: Optional[str] = None) -> Tuple[int, float]:
        """Copy a tmpfs subtree between machines.

        Returns (bytes copied, simulated seconds).
        """
        if src is dst:
            raise ClusterError("scp between a machine and itself")
        nbytes = src.tmpfs.copy_tree(prefix, dst.tmpfs, dest_prefix)
        link = self.link_between(src.name, dst.name)
        return nbytes, link.transfer_seconds(nbytes)


def paper_testbed_network() -> Network:
    """InfiniBand between servers, 1 GbE to the Pi boards (paper §IV)."""
    network = Network(default_link=ethernet_link())
    network.connect("xeon", "xeon2", infiniband_link())
    return network
