"""Cluster network model: named links between machines, scp helper."""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..core.costs import LinkProfile, ethernet_link, infiniband_link
from ..errors import ClusterError, LinkDropFault
from ..vm.kernel import Machine


class Network:
    """Links between named nodes, with a tmpfs-to-tmpfs scp primitive.

    ``strict=True`` makes :meth:`link_between` raise for node pairs no
    link was registered for instead of silently falling back to
    ``default_link`` — topology typos fail loudly. ``injector`` (a
    :class:`~repro.chaos.FaultInjector`) schedules link faults; faults
    and partitions are consulted *before* any bytes are copied, so a
    failed scp never leaves partial state at the destination.
    """

    def __init__(self, default_link: Optional[LinkProfile] = None,
                 strict: bool = False, injector=None):
        self.default_link = default_link or infiniband_link()
        self.strict = strict
        self.injector = injector
        self._links: Dict[Tuple[str, str], LinkProfile] = {}
        self._partitioned: Set[Tuple[str, str]] = set()
        self._streams: Dict[str, int] = {}

    def connect(self, a: str, b: str, link: LinkProfile,
                symmetric: bool = True) -> None:
        """Register a link between two nodes.

        ``symmetric=True`` (the default) installs both directions;
        pass ``False`` to model asymmetric paths (e.g. a throttled
        uplink from an edge board). Re-registering a direction with a
        *different* link is a configuration conflict and raises
        :class:`ClusterError`; re-registering the same profile is
        idempotent.
        """
        self._install(a, b, link)
        if symmetric:
            self._install(b, a, link)

    def _install(self, a: str, b: str, link: LinkProfile) -> None:
        existing = self._links.get((a, b))
        if existing is not None and not self._same_link(existing, link):
            raise ClusterError(
                f"conflicting link registration {a}->{b}: "
                f"{existing!r} already installed, got {link!r}")
        self._links[(a, b)] = link

    @staticmethod
    def _same_link(a: LinkProfile, b: LinkProfile) -> bool:
        if a is b:
            return True
        return vars(a) == vars(b)

    def link_between(self, a: str, b: str,
                     strict: Optional[bool] = None) -> LinkProfile:
        """The registered link ``a``→``b``.

        In strict mode (per-call ``strict=True``, or the network-wide
        default) an unregistered pair raises :class:`ClusterError`
        instead of silently using ``default_link``.
        """
        link = self._links.get((a, b))
        if link is not None:
            return link
        if strict if strict is not None else self.strict:
            raise ClusterError(
                f"no link registered between {a!r} and {b!r} "
                f"(strict mode; known: "
                f"{sorted(set(x for pair in self._links for x in pair))})")
        return self.default_link

    # -- partitions -------------------------------------------------------

    def partition(self, a: str, b: str, symmetric: bool = True) -> None:
        """Cut the path between two nodes; scp raises until healed."""
        self._partitioned.add((a, b))
        if symmetric:
            self._partitioned.add((b, a))

    def heal(self, a: str, b: str, symmetric: bool = True) -> None:
        self._partitioned.discard((a, b))
        if symmetric:
            self._partitioned.discard((b, a))

    def is_partitioned(self, a: str, b: str) -> bool:
        return (a, b) in self._partitioned

    # -- stream accounting (fleet contention) ------------------------------

    def begin_stream(self, node: str) -> int:
        """Reserve one long-lived transfer stream terminating at
        ``node``; returns the active count *including* this one.

        The fleet's migration scheduler brackets every in-flight
        transfer with begin/end: a destination ingesting N migrations
        at once splits its NIC N ways, so each concurrent transfer's
        simulated seconds scale by the peak stream count it observed.
        """
        active = self._streams.get(node, 0) + 1
        self._streams[node] = active
        return active

    def end_stream(self, node: str) -> None:
        active = self._streams.get(node, 0)
        if active <= 0:
            raise ClusterError(f"no active stream to end at {node!r}")
        if active == 1:
            del self._streams[node]
        else:
            self._streams[node] = active - 1

    def active_streams(self, node: str) -> int:
        return self._streams.get(node, 0)

    # -- transfer ---------------------------------------------------------

    def scp(self, src: Machine, dst: Machine, prefix: str,
            dest_prefix: Optional[str] = None) -> Tuple[int, float]:
        """Copy a tmpfs subtree between machines.

        Returns (bytes copied, simulated seconds). The link — and any
        injected fault or standing partition — is consulted *before*
        the copy mutates the destination tmpfs: a dropped transfer
        leaves no partial subtree behind.
        """
        if src is dst:
            raise ClusterError("scp between a machine and itself")
        link = self.link_between(src.name, dst.name)
        if self.is_partitioned(src.name, dst.name):
            raise LinkDropFault(
                f"{src.name}->{dst.name} is partitioned",
                kind="partition", site="scp")
        factor = 1.0
        if self.injector is not None:
            factor = self.injector.link_fault(src.name, dst.name,
                                              site="scp")
        nbytes = src.tmpfs.copy_tree(prefix, dst.tmpfs, dest_prefix)
        return nbytes, link.transfer_seconds(nbytes) * factor


def paper_testbed_network() -> Network:
    """InfiniBand between servers, 1 GbE to the Pi boards (paper §IV)."""
    network = Network(default_link=ethernet_link())
    network.connect("xeon", "xeon2", infiniband_link())
    return network
