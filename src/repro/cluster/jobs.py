"""Batch-job templates measured from real simulator runs.

A :class:`JobTemplate` captures everything the scheduler needs about one
benchmark: per-node durations (derived from the *measured* cycle counts
of an actual run, scaled to the nominal class-A/B instruction count) and
the migration latency (from an actual end-to-end Dapper migration of the
same program).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..apps.registry import AppSpec
from ..core.costs import LinkProfile, NodeProfile, infiniband_link
from ..core.migration import MigrationPipeline
from ..isa import get_isa
from ..vm.kernel import Machine


class JobTemplate:
    def __init__(self, *, name: str, instructions: float,
                 cycles_per_instr: Dict[str, float],
                 migration_seconds: float):
        self.name = name
        #: nominal full-scale instruction count (class A/B)
        self.instructions = instructions
        #: measured average cycles per instruction, per arch
        self.cycles_per_instr = dict(cycles_per_instr)
        #: measured end-to-end Dapper migration latency
        self.migration_seconds = migration_seconds

    def duration_on(self, profile: NodeProfile) -> float:
        cpi = self.cycles_per_instr.get(profile.arch, 1.0)
        cycles = self.instructions * cpi
        return profile.seconds_for_cycles(cycles)

    def speed_ratio(self, fast: NodeProfile, slow: NodeProfile) -> float:
        return self.duration_on(slow) / self.duration_on(fast)

    def __repr__(self) -> str:
        return (f"<JobTemplate {self.name} {self.instructions:.2e} instr "
                f"mig={self.migration_seconds * 1e3:.0f}ms>")


def measure_job_template(spec: AppSpec, job_class: str = "B",
                         link: Optional[LinkProfile] = None,
                         warmup_steps: int = 4000) -> JobTemplate:
    """Run the app for real (small size) on both ISAs and migrate it once,
    then scale to the nominal class-A/B instruction count."""
    from ..core.migration import exe_path_for, install_program

    prog = spec.compile("small")
    cpi: Dict[str, float] = {}
    for arch in ("x86_64", "aarch64"):
        machine = Machine(get_isa(arch))
        install_program(machine, prog)
        process = machine.spawn_process(exe_path_for(spec.name, arch))
        machine.run_process(process, max_steps=30_000_000)
        cpi[arch] = process.cycle_total / max(1, process.instr_total)

    pipeline = MigrationPipeline(
        Machine(get_isa("x86_64"), name="xeon"),
        Machine(get_isa("aarch64"), name="rpi"),
        prog, link=link or infiniband_link())
    result = pipeline.run_and_migrate(warmup_steps=warmup_steps)

    instructions = (spec.class_b_instructions if job_class == "B"
                    else spec.class_a_instructions)
    return JobTemplate(name=spec.name, instructions=instructions,
                       cycles_per_instr=cpi,
                       migration_seconds=result.total_seconds)


class Job:
    """One running instance of a template.

    Pass an explicit ``job_id`` for deterministic identity: the
    process-global counter depends on every Job ever constructed in the
    interpreter, so anything that journals job ids (the fleet) must
    allocate them itself.
    """

    _next_id = 0

    def __init__(self, template: JobTemplate, job_id: Optional[int] = None):
        if job_id is None:
            Job._next_id += 1
            job_id = Job._next_id
        self.job_id = job_id
        self.template = template
        self.remaining_fraction = 1.0   # of the nominal instruction count
        self.started_at = 0.0
        self.node_name = ""

    def remaining_seconds_on(self, profile: NodeProfile) -> float:
        return self.remaining_fraction * self.template.duration_on(profile)

    def __repr__(self) -> str:
        return (f"<Job {self.job_id} {self.template.name} "
                f"{self.remaining_fraction:.2f} left on {self.node_name}>")
