"""Node model for the cluster simulation."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.costs import NodeProfile
from ..errors import ClusterError


class SimNode:
    """One machine in the discrete-event simulation.

    Tracks which job occupies each slot; the power draw at any instant
    follows the calibrated profile (idle + per-active-core).
    """

    def __init__(self, profile: NodeProfile, name: Optional[str] = None,
                 job_slots: Optional[int] = None):
        self.profile = profile
        self.name = name or profile.name
        #: max concurrently running jobs (the paper runs 7 job threads on
        #: the 8-core Xeon and 3 on each 4-core Pi)
        self.job_slots = job_slots if job_slots is not None \
            else max(1, profile.cores - 1)
        self.running: Dict[int, object] = {}    # slot -> job

    def free_slots(self) -> int:
        return self.job_slots - len(self.running)

    def busy_slots(self) -> int:
        return len(self.running)

    def utilization(self) -> float:
        """Fraction of job slots busy — the fleet scheduler's load and
        latency objectives both read this."""
        return len(self.running) / self.job_slots if self.job_slots else 1.0

    def place(self, job) -> int:
        for slot in range(self.job_slots):
            if slot not in self.running:
                self.running[slot] = job
                return slot
        raise ClusterError(f"{self.name}: no free job slot")

    def release(self, slot: int) -> None:
        if slot not in self.running:
            raise ClusterError(f"{self.name}: slot {slot} is not busy")
        del self.running[slot]

    def power_watts(self) -> float:
        return self.profile.power_watts(len(self.running))

    def seconds_for_instructions(self, instructions: float) -> float:
        """Single-threaded job duration on this node."""
        return instructions / (self.profile.freq_hz * self.profile.ipc)

    def __repr__(self) -> str:
        return (f"<SimNode {self.name} {self.busy_slots()}/"
                f"{self.job_slots} busy>")
