"""The 30-minute batch experiment (paper Fig. 8).

For each benchmark: process an infinite job queue for ``duration_s``
seconds on (a) the Xeon alone, (b) Xeon + 1 Pi, (c) Xeon + 3 Pis, and
report jobs completed, energy consumed, jobs/kJ, and the improvement of
each eviction configuration over the server-only baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.costs import NodeProfile, rpi_profile, xeon_profile
from .energy import EnergyMeter
from .events import EventQueue
from .jobs import JobTemplate
from .node import SimNode
from .scheduler import EvictionScheduler


class BatchResult:
    def __init__(self, *, benchmark: str, pis: int, duration_s: float,
                 completed: int, evictions: int, energy_kj: float):
        self.benchmark = benchmark
        self.pis = pis
        self.duration_s = duration_s
        self.completed = completed
        self.evictions = evictions
        self.energy_kj = energy_kj

    @property
    def jobs_per_kj(self) -> float:
        return self.completed / self.energy_kj if self.energy_kj else 0.0

    @property
    def throughput_per_hour(self) -> float:
        return self.completed * 3600.0 / self.duration_s

    def efficiency_gain_over(self, baseline: "BatchResult") -> float:
        return (self.jobs_per_kj / baseline.jobs_per_kj - 1.0) * 100.0

    def throughput_gain_over(self, baseline: "BatchResult") -> float:
        return (self.completed / baseline.completed - 1.0) * 100.0

    def __repr__(self) -> str:
        return (f"<BatchResult {self.benchmark} pis={self.pis} "
                f"jobs={self.completed} {self.energy_kj:.1f}kJ "
                f"{self.jobs_per_kj:.3f} jobs/kJ>")


class BatchExperiment:
    def __init__(self, template: JobTemplate, duration_s: float = 1800.0,
                 server_profile: Optional[NodeProfile] = None,
                 pi_profile: Optional[NodeProfile] = None,
                 server_slots: int = 7, pi_slots: int = 3,
                 injector=None):
        self.template = template
        self.duration_s = duration_s
        self.server_profile = server_profile or xeon_profile()
        self.pi_profile = pi_profile or rpi_profile()
        self.server_slots = server_slots
        self.pi_slots = pi_slots
        #: optional chaos FaultInjector: eviction migrations can fail
        #: mid-flight and the scheduler's supervisor loop re-queues them
        self.injector = injector

    def run(self, pis: int) -> BatchResult:
        queue = EventQueue()
        server = SimNode(self.server_profile, name="xeon",
                         job_slots=self.server_slots)
        pi_nodes = [SimNode(self.pi_profile, name=f"rpi{i}",
                            job_slots=self.pi_slots) for i in range(pis)]
        meter = EnergyMeter([server] + pi_nodes)
        scheduler = EvictionScheduler(queue, server, pi_nodes,
                                      self.template, meter,
                                      injector=self.injector)
        scheduler.start()
        queue.run_until(self.duration_s)
        meter.advance_to(self.duration_s)
        return BatchResult(
            benchmark=self.template.name, pis=pis,
            duration_s=self.duration_s, completed=scheduler.completed,
            evictions=scheduler.evictions,
            energy_kj=meter.total_kilojoules())

    def sweep(self, pi_counts: List[int] = (0, 1, 3)) -> Dict[int, BatchResult]:
        return {pis: self.run(pis) for pis in pi_counts}
