"""DELF — the reproduction's ELF-like binary container.

A DELF binary carries machine code for exactly one ISA plus the
compile-time metadata Dapper needs at rewrite time (paper §III-A):

* a symbol table whose addresses are *aligned across ISAs* by the linker
  (the unified global virtual address space of §III-D1),
* a ``.stackmaps`` section with live-value records at every equivalence
  point (the LLVM stackmap analogue),
* a ``.frames`` section with per-function frame layouts (the DWARF CFI
  analogue), and
* a TLS initialization template.
"""

from .symtab import Symbol, SymbolTable
from .stackmaps import EqPoint, LiveValue, StackMapSection, LOC_REG, LOC_STACK, LOC_BOTH
from .frames import FrameRecord, FrameSection, Slot
from .delf import DelfBinary, Segment

__all__ = [
    "Symbol", "SymbolTable", "EqPoint", "LiveValue", "StackMapSection",
    "LOC_REG", "LOC_STACK", "LOC_BOTH", "FrameRecord", "FrameSection",
    "Slot", "DelfBinary", "Segment",
]
