"""The ``.frames`` section — per-function frame layout metadata.

This is the reproduction's analogue of DWARF call-frame information
(paper §III-A uses DWARF + stackmaps). Both ISAs use the same frame
*convention* — ``[fp+8]`` return address, ``[fp+0]`` saved caller frame
pointer, slots at negative fp offsets, ``sp = fp - frame_size`` — but the
slot *assignment* (offsets, ordering, padding, frame size) is decided
independently by each backend, so the cross-ISA stack rewriter has real
re-layout work to do.

``pair_member`` marks slots the aarch64 backend accesses with ``ldp``/
``stp`` pair instructions; the stack shuffler excludes them (the paper
scopes out re-encoding pair instructions, which is why aarch64 shows
lower entropy in Fig. 10).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import wire
from ..errors import ImageFormatError

SLOT_PARAM = "param"
SLOT_LOCAL = "local"
SLOT_ARRAY = "array"
SLOT_SPILL = "spill"

#: fp-relative offset of the return address (both ISAs, by convention).
RET_ADDR_OFFSET = 8
#: fp-relative offset of the saved caller frame pointer.
SAVED_FP_OFFSET = 0

_SLOT_SCHEMA = wire.Schema("slot", [
    wire.field(1, "slot_id", "int"),
    wire.field(2, "name", "str"),
    wire.field(3, "offset", "int"),
    wire.field(4, "size", "int"),
    wire.field(5, "kind", "str"),
    wire.field(6, "is_pointer", "int"),
    wire.field(7, "pair_member", "int"),
])

_FRAME_SCHEMA = wire.Schema("frame", [
    wire.field(1, "func", "str"),
    wire.field(2, "addr", "int"),
    wire.field(3, "end_addr", "int"),
    wire.field(4, "frame_size", "int"),
    wire.field(5, "entry_eqpoint", "int"),
    wire.field(6, "slots", "message", repeated=True, message=_SLOT_SCHEMA),
])

_SECTION_SCHEMA = wire.Schema("frames", [
    wire.field(1, "frames", "message", repeated=True, message=_FRAME_SCHEMA),
])


class Slot:
    """One stack slot in a function's frame.

    ``offset`` is fp-relative (negative, pointing at the slot's *low*
    address). ``slot_id`` is assigned in the IR, so the same program
    variable has the same slot_id in both ISAs' frame records.
    """

    __slots__ = ("slot_id", "name", "offset", "size", "kind", "is_pointer",
                 "pair_member")

    def __init__(self, slot_id: int, name: str, offset: int, size: int,
                 kind: str = SLOT_LOCAL, is_pointer: bool = False,
                 pair_member: bool = False):
        if offset >= 0:
            raise ImageFormatError(
                f"slot {name!r}: offset must be negative (fp-relative), "
                f"got {offset}")
        self.slot_id = slot_id
        self.name = name
        self.offset = offset
        self.size = size
        self.kind = kind
        self.is_pointer = is_pointer
        self.pair_member = pair_member

    def contains(self, fp_offset: int) -> bool:
        """Does ``fp + fp_offset`` fall inside this slot?"""
        return self.offset <= fp_offset < self.offset + self.size

    def to_dict(self) -> dict:
        return {"slot_id": self.slot_id, "name": self.name,
                "offset": self.offset, "size": self.size, "kind": self.kind,
                "is_pointer": int(self.is_pointer),
                "pair_member": int(self.pair_member)}

    @classmethod
    def from_dict(cls, data: dict) -> "Slot":
        return cls(data["slot_id"], data["name"], data["offset"],
                   data["size"], data.get("kind", SLOT_LOCAL),
                   bool(data.get("is_pointer", 0)),
                   bool(data.get("pair_member", 0)))

    def __repr__(self) -> str:
        flags = ("P" if self.is_pointer else "") + \
                ("2" if self.pair_member else "")
        return (f"<Slot #{self.slot_id} {self.name} fp{self.offset:+d} "
                f"+{self.size} {self.kind}{' ' + flags if flags else ''}>")


class FrameRecord:
    """Frame layout of one function on one ISA."""

    __slots__ = ("func", "addr", "end_addr", "frame_size", "entry_eqpoint",
                 "slots")

    def __init__(self, func: str, addr: int, end_addr: int, frame_size: int,
                 entry_eqpoint: int, slots: Optional[List[Slot]] = None):
        self.func = func
        self.addr = addr
        self.end_addr = end_addr
        self.frame_size = frame_size
        self.entry_eqpoint = entry_eqpoint
        self.slots = list(slots or [])

    def slot_by_id(self, slot_id: int) -> Optional[Slot]:
        for slot in self.slots:
            if slot.slot_id == slot_id:
                return slot
        return None

    def slot_by_name(self, name: str) -> Optional[Slot]:
        for slot in self.slots:
            if slot.name == name:
                return slot
        return None

    def slot_containing(self, fp_offset: int) -> Optional[Slot]:
        for slot in self.slots:
            if slot.contains(fp_offset):
                return slot
        return None

    def to_dict(self) -> dict:
        return {"func": self.func, "addr": self.addr,
                "end_addr": self.end_addr, "frame_size": self.frame_size,
                "entry_eqpoint": self.entry_eqpoint,
                "slots": [s.to_dict() for s in self.slots]}

    @classmethod
    def from_dict(cls, data: dict) -> "FrameRecord":
        return cls(data["func"], data["addr"], data["end_addr"],
                   data["frame_size"], data.get("entry_eqpoint", -1),
                   [Slot.from_dict(s) for s in data.get("slots", [])])

    def __repr__(self) -> str:
        return (f"<Frame {self.func} @{self.addr:#x} size={self.frame_size} "
                f"slots={len(self.slots)}>")


class FrameSection:
    """All frame records of one binary."""

    def __init__(self, frames: Optional[List[FrameRecord]] = None):
        self.frames: List[FrameRecord] = list(frames or [])
        self.by_func: Dict[str, FrameRecord] = {f.func: f for f in self.frames}

    def add(self, frame: FrameRecord) -> FrameRecord:
        if frame.func in self.by_func:
            raise ImageFormatError(f"duplicate frame record for {frame.func!r}")
        self.frames.append(frame)
        self.by_func[frame.func] = frame
        return frame

    def get(self, func: str) -> FrameRecord:
        try:
            return self.by_func[func]
        except KeyError:
            raise ImageFormatError(f"no frame record for {func!r}") from None

    def containing(self, addr: int) -> Optional[FrameRecord]:
        for frame in self.frames:
            if frame.addr <= addr < frame.end_addr:
                return frame
        return None

    def __len__(self) -> int:
        return len(self.frames)

    def to_bytes(self) -> bytes:
        return _SECTION_SCHEMA.encode(
            {"frames": [f.to_dict() for f in self.frames]})

    @classmethod
    def from_bytes(cls, data: bytes) -> "FrameSection":
        decoded = _SECTION_SCHEMA.decode(data)
        return cls([FrameRecord.from_dict(d) for d in decoded["frames"]])
