"""The ``.stackmaps`` section — live-value records at equivalence points.

This is the reproduction's analogue of LLVM's
``llvm.experimental.stackmap`` records (paper §III-A): for every
equivalence point the compiler's middle-end emits one :class:`EqPoint`
with the *architecture-independent* live values and, after code
generation, their *architecture-specific* locations (DWARF register
number and/or frame-pointer-relative stack offset — Fig. 4).

Equivalence-point and value identifiers are assigned in the IR, before
the backends split, so records from the x86_64 and aarch64 binaries of
one program pair up one-to-one — that pairing is the register/stack
translation table the Dapper rewriter uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import wire
from ..errors import ImageFormatError

#: Entry eqpoints sit right after the function prologue + inline checker;
#: a thread parked by the checker trap resumes at ``addr``.
KIND_ENTRY = "entry"
#: Call-site eqpoints describe a *suspended caller frame*: ``addr`` is the
#: return address of the call instruction.
KIND_CALLSITE = "callsite"

LOC_REG = "reg"
LOC_STACK = "stack"
LOC_BOTH = "both"   # parameter at entry: live in arg register AND spill slot

_LIVE_SCHEMA = wire.Schema("live_value", [
    wire.field(1, "value_id", "int"),
    wire.field(2, "name", "str"),
    wire.field(3, "loc_type", "str"),
    wire.field(4, "dwarf_reg", "int"),
    wire.field(5, "stack_offset", "int"),
    wire.field(6, "is_pointer", "int"),
    wire.field(7, "size", "int"),
])

_EQPOINT_SCHEMA = wire.Schema("eqpoint", [
    wire.field(1, "eqpoint_id", "int"),
    wire.field(2, "func", "str"),
    wire.field(3, "kind", "str"),
    wire.field(4, "addr", "int"),
    wire.field(5, "trap_addr", "int"),
    wire.field(6, "live", "message", repeated=True, message=_LIVE_SCHEMA),
])

_SECTION_SCHEMA = wire.Schema("stackmaps", [
    wire.field(1, "eqpoints", "message", repeated=True,
               message=_EQPOINT_SCHEMA),
])


class LiveValue:
    """One live program value and where this ISA keeps it."""

    __slots__ = ("value_id", "name", "loc_type", "dwarf_reg", "stack_offset",
                 "is_pointer", "size")

    def __init__(self, value_id: int, name: str, loc_type: str,
                 dwarf_reg: Optional[int] = None,
                 stack_offset: Optional[int] = None,
                 is_pointer: bool = False, size: int = 8):
        if loc_type not in (LOC_REG, LOC_STACK, LOC_BOTH):
            raise ImageFormatError(f"bad live-value location {loc_type!r}")
        if loc_type in (LOC_REG, LOC_BOTH) and dwarf_reg is None:
            raise ImageFormatError(f"{name}: register location needs dwarf_reg")
        if loc_type in (LOC_STACK, LOC_BOTH) and stack_offset is None:
            raise ImageFormatError(f"{name}: stack location needs offset")
        self.value_id = value_id
        self.name = name
        self.loc_type = loc_type
        self.dwarf_reg = dwarf_reg
        self.stack_offset = stack_offset
        self.is_pointer = is_pointer
        self.size = size

    def in_register(self) -> bool:
        return self.loc_type in (LOC_REG, LOC_BOTH)

    def on_stack(self) -> bool:
        return self.loc_type in (LOC_STACK, LOC_BOTH)

    def to_dict(self) -> dict:
        return {
            "value_id": self.value_id, "name": self.name,
            "loc_type": self.loc_type,
            "dwarf_reg": -1 if self.dwarf_reg is None else self.dwarf_reg,
            "stack_offset": (0x7FFFFFFF if self.stack_offset is None
                             else self.stack_offset),
            "is_pointer": int(self.is_pointer), "size": self.size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LiveValue":
        dwarf = data.get("dwarf_reg", -1)
        offset = data.get("stack_offset", 0x7FFFFFFF)
        return cls(
            data["value_id"], data["name"], data["loc_type"],
            None if dwarf == -1 else dwarf,
            None if offset == 0x7FFFFFFF else offset,
            bool(data.get("is_pointer", 0)), data.get("size", 8))

    def __repr__(self) -> str:
        where = []
        if self.in_register():
            where.append(f"reg{self.dwarf_reg}")
        if self.on_stack():
            where.append(f"fp{self.stack_offset:+d}")
        ptr = "*" if self.is_pointer else ""
        return f"<Live {ptr}{self.name}#{self.value_id} {'/'.join(where)}>"


class EqPoint:
    """One equivalence point with its live-value records."""

    __slots__ = ("eqpoint_id", "func", "kind", "addr", "trap_addr", "live")

    def __init__(self, eqpoint_id: int, func: str, kind: str, addr: int,
                 trap_addr: int = 0, live: Optional[List[LiveValue]] = None):
        if kind not in (KIND_ENTRY, KIND_CALLSITE):
            raise ImageFormatError(f"bad eqpoint kind {kind!r}")
        self.eqpoint_id = eqpoint_id
        self.func = func
        self.kind = kind
        self.addr = addr
        self.trap_addr = trap_addr
        self.live = list(live or [])

    def live_by_id(self, value_id: int) -> Optional[LiveValue]:
        for value in self.live:
            if value.value_id == value_id:
                return value
        return None

    def to_dict(self) -> dict:
        return {"eqpoint_id": self.eqpoint_id, "func": self.func,
                "kind": self.kind, "addr": self.addr,
                "trap_addr": self.trap_addr,
                "live": [v.to_dict() for v in self.live]}

    @classmethod
    def from_dict(cls, data: dict) -> "EqPoint":
        return cls(data["eqpoint_id"], data["func"], data["kind"],
                   data["addr"], data.get("trap_addr", 0),
                   [LiveValue.from_dict(v) for v in data.get("live", [])])

    def __repr__(self) -> str:
        return (f"<EqPoint #{self.eqpoint_id} {self.kind} {self.func} "
                f"@{self.addr:#x} live={len(self.live)}>")


class StackMapSection:
    """All equivalence points of one binary, with fast lookups."""

    def __init__(self, eqpoints: Optional[List[EqPoint]] = None):
        self.eqpoints: List[EqPoint] = list(eqpoints or [])
        self._reindex()

    def _reindex(self) -> None:
        self.by_id: Dict[int, EqPoint] = {}
        self.by_addr: Dict[int, EqPoint] = {}
        self.by_trap: Dict[int, EqPoint] = {}
        for point in self.eqpoints:
            if point.eqpoint_id in self.by_id:
                raise ImageFormatError(
                    f"duplicate eqpoint id {point.eqpoint_id}")
            self.by_id[point.eqpoint_id] = point
            self.by_addr[point.addr] = point
            if point.kind == KIND_ENTRY and point.trap_addr:
                self.by_trap[point.trap_addr] = point

    def add(self, point: EqPoint) -> EqPoint:
        self.eqpoints.append(point)
        self._reindex()
        return point

    def entry_for(self, func: str) -> Optional[EqPoint]:
        for point in self.eqpoints:
            if point.kind == KIND_ENTRY and point.func == func:
                return point
        return None

    def for_func(self, func: str) -> List[EqPoint]:
        return [p for p in self.eqpoints if p.func == func]

    def __len__(self) -> int:
        return len(self.eqpoints)

    def to_bytes(self) -> bytes:
        return _SECTION_SCHEMA.encode(
            {"eqpoints": [p.to_dict() for p in self.eqpoints]})

    @classmethod
    def from_bytes(cls, data: bytes) -> "StackMapSection":
        decoded = _SECTION_SCHEMA.decode(data)
        return cls([EqPoint.from_dict(d) for d in decoded["eqpoints"]])
