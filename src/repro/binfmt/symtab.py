"""Symbol tables for DELF binaries."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .. import wire
from ..errors import LinkError

KIND_FUNC = "func"
KIND_OBJECT = "object"
KIND_TLS = "tls"

_SYMBOL_SCHEMA = wire.Schema("symbol", [
    wire.field(1, "name", "str"),
    wire.field(2, "addr", "int"),
    wire.field(3, "size", "int"),
    wire.field(4, "kind", "str"),
    wire.field(5, "section", "str"),
])

_TABLE_SCHEMA = wire.Schema("symtab", [
    wire.field(1, "symbols", "message", repeated=True, message=_SYMBOL_SCHEMA),
])


class Symbol:
    """One named address: a function, a global object, or a TLS slot.

    For ``tls`` symbols ``addr`` is the offset *within the TLS block*, not
    a virtual address.
    """

    __slots__ = ("name", "addr", "size", "kind", "section")

    def __init__(self, name: str, addr: int, size: int, kind: str,
                 section: str = ""):
        self.name = name
        self.addr = addr
        self.size = size
        self.kind = kind
        self.section = section

    def to_dict(self) -> dict:
        return {"name": self.name, "addr": self.addr, "size": self.size,
                "kind": self.kind, "section": self.section}

    @classmethod
    def from_dict(cls, data: dict) -> "Symbol":
        return cls(data["name"], data["addr"], data["size"], data["kind"],
                   data.get("section", ""))

    def __repr__(self) -> str:
        return f"<Symbol {self.name} {self.kind} @{self.addr:#x} +{self.size}>"


class SymbolTable:
    """Name-indexed collection of symbols with address lookup."""

    def __init__(self, symbols: Optional[List[Symbol]] = None):
        self._by_name: Dict[str, Symbol] = {}
        for sym in symbols or []:
            self.add(sym)

    def add(self, symbol: Symbol) -> Symbol:
        if symbol.name in self._by_name:
            raise LinkError(f"duplicate symbol {symbol.name!r}")
        self._by_name[symbol.name] = symbol
        return symbol

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(sorted(self._by_name.values(), key=lambda s: s.addr))

    def get(self, name: str) -> Symbol:
        try:
            return self._by_name[name]
        except KeyError:
            raise LinkError(f"undefined symbol {name!r}") from None

    def lookup(self, name: str) -> Optional[Symbol]:
        return self._by_name.get(name)

    def address_of(self, name: str) -> int:
        return self.get(name).addr

    def find_containing(self, addr: int, kind: str = KIND_FUNC) -> Optional[Symbol]:
        """Symbol whose ``[addr, addr+size)`` range contains ``addr``."""
        for sym in self._by_name.values():
            if sym.kind == kind and sym.addr <= addr < sym.addr + sym.size:
                return sym
        return None

    def functions(self) -> List[Symbol]:
        return [s for s in self if s.kind == KIND_FUNC]

    def tls_symbols(self) -> List[Symbol]:
        return [s for s in self._by_name.values() if s.kind == KIND_TLS]

    # -- serialization ---------------------------------------------------

    def to_bytes(self) -> bytes:
        return _TABLE_SCHEMA.encode(
            {"symbols": [s.to_dict() for s in self]})

    @classmethod
    def from_bytes(cls, data: bytes) -> "SymbolTable":
        decoded = _TABLE_SCHEMA.decode(data)
        return cls([Symbol.from_dict(d) for d in decoded["symbols"]])
