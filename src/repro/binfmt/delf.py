"""The DELF binary container.

One DELF file = machine code + data for one ISA + all the Dapper
metadata sections. Files are serialized with the same wire format the
CRIU-style images use, prefixed with a magic and an ISA tag.

Address-space layout (shared by both ISAs — the linker aligns all symbol
addresses, creating the paper's unified global virtual address space):

====================  ==========================================
``0x0000_0040_0000``  ``.text`` (RX, file-backed: CRIU skips most
                      code pages at dump time)
``0x0000_0060_0000``  ``.data`` + ``.bss`` (RW)
``0x0000_1000_0000``  heap (grows up via the ``sbrk`` syscall)
``0x0000_7FFF_0000``  main-thread stack top (grows down);
                      additional thread stacks below, 1 MiB apart
====================  ==========================================
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import wire
from ..errors import LoaderError
from ..mem.vma import Prot
from .frames import FrameSection
from .stackmaps import StackMapSection
from .symtab import SymbolTable

DELF_MAGIC = b"DELF"
DELF_VERSION = 1

TEXT_BASE = 0x400000
DATA_BASE = 0x600000
HEAP_BASE = 0x10000000
STACK_TOP = 0x7FFF0000
THREAD_STACK_SIZE = 0x100000      # 1 MiB per thread
THREAD_STACK_GAP = 0x10000        # guard gap between thread stacks

_SEGMENT_SCHEMA = wire.Schema("segment", [
    wire.field(1, "vaddr", "int"),
    wire.field(2, "size", "int"),
    wire.field(3, "prot", "int"),
    wire.field(4, "section", "str"),
])

_BINARY_SCHEMA = wire.Schema("delf", [
    wire.field(1, "version", "int"),
    wire.field(2, "arch", "str"),
    wire.field(3, "entry", "int"),
    wire.field(4, "source_name", "str"),
    wire.field(5, "text", "bytes"),
    wire.field(6, "data", "bytes"),
    wire.field(7, "symtab", "bytes"),
    wire.field(8, "stackmaps", "bytes"),
    wire.field(9, "frames", "bytes"),
    wire.field(10, "tls_template", "bytes"),
    wire.field(11, "segments", "message", repeated=True,
               message=_SEGMENT_SCHEMA),
    wire.field(12, "extra_sections", "bytes"),
])

_EXTRA_SCHEMA = wire.Schema("extra_sections", [
    wire.field(1, "name", "str", repeated=True),
    wire.field(2, "data", "bytes", repeated=True),
])


class Segment:
    """One loadable region."""

    __slots__ = ("vaddr", "size", "prot", "section")

    def __init__(self, vaddr: int, size: int, prot: int, section: str):
        self.vaddr = vaddr
        self.size = size
        self.prot = prot
        self.section = section

    def to_dict(self) -> dict:
        return {"vaddr": self.vaddr, "size": self.size, "prot": self.prot,
                "section": self.section}

    @classmethod
    def from_dict(cls, data: dict) -> "Segment":
        return cls(data["vaddr"], data["size"], data["prot"],
                   data["section"])

    def __repr__(self) -> str:
        return (f"<Segment {self.section} @{self.vaddr:#x} +{self.size:#x} "
                f"{Prot.describe(self.prot)}>")


class DelfBinary:
    """A linked, loadable program image for one ISA."""

    def __init__(self, *, arch: str, entry: int, source_name: str,
                 text: bytes, data: bytes, symtab: SymbolTable,
                 stackmaps: StackMapSection, frames: FrameSection,
                 tls_template: bytes = b"",
                 segments: Optional[List[Segment]] = None,
                 extra_sections: Optional[Dict[str, bytes]] = None):
        self.arch = arch
        self.entry = entry
        self.source_name = source_name
        self.text = text
        self.data = data
        self.symtab = symtab
        self.stackmaps = stackmaps
        self.frames = frames
        self.tls_template = tls_template
        self.segments = segments or self._default_segments()
        self.extra_sections = dict(extra_sections or {})

    def _default_segments(self) -> List[Segment]:
        return [
            Segment(TEXT_BASE, len(self.text), Prot.RX, ".text"),
            Segment(DATA_BASE, len(self.data), Prot.RW, ".data"),
        ]

    @property
    def tls_size(self) -> int:
        return len(self.tls_template)

    def section_data(self, name: str) -> bytes:
        if name == ".text":
            return self.text
        if name == ".data":
            return self.data
        if name in self.extra_sections:
            return self.extra_sections[name]
        raise LoaderError(f"no section {name!r}")

    def code_at(self, addr: int, length: int) -> bytes:
        """Slice of ``.text`` by virtual address."""
        offset = addr - TEXT_BASE
        if offset < 0 or offset + length > len(self.text):
            raise LoaderError(f"code range {addr:#x}+{length} outside .text")
        return self.text[offset:offset + length]

    # -- serialization ---------------------------------------------------

    def to_bytes(self) -> bytes:
        extra = _EXTRA_SCHEMA.encode({
            "name": list(self.extra_sections.keys()),
            "data": list(self.extra_sections.values()),
        })
        payload = _BINARY_SCHEMA.encode({
            "version": DELF_VERSION,
            "arch": self.arch,
            "entry": self.entry,
            "source_name": self.source_name,
            "text": self.text,
            "data": self.data,
            "symtab": self.symtab.to_bytes(),
            "stackmaps": self.stackmaps.to_bytes(),
            "frames": self.frames.to_bytes(),
            "tls_template": self.tls_template,
            "segments": [s.to_dict() for s in self.segments],
            "extra_sections": extra,
        })
        return DELF_MAGIC + payload

    @classmethod
    def from_bytes(cls, blob: bytes) -> "DelfBinary":
        if blob[:4] != DELF_MAGIC:
            raise LoaderError("bad DELF magic")
        decoded = _BINARY_SCHEMA.decode(blob[4:])
        if decoded.get("version") != DELF_VERSION:
            raise LoaderError(f"unsupported DELF version "
                              f"{decoded.get('version')}")
        extra_raw = _EXTRA_SCHEMA.decode(decoded.get("extra_sections", b""))
        extra = dict(zip(extra_raw["name"], extra_raw["data"]))
        return cls(
            arch=decoded["arch"],
            entry=decoded["entry"],
            source_name=decoded.get("source_name", ""),
            text=decoded["text"],
            data=decoded["data"],
            symtab=SymbolTable.from_bytes(decoded["symtab"]),
            stackmaps=StackMapSection.from_bytes(decoded["stackmaps"]),
            frames=FrameSection.from_bytes(decoded["frames"]),
            tls_template=decoded.get("tls_template", b""),
            segments=[Segment.from_dict(s) for s in decoded["segments"]],
            extra_sections=extra,
        )

    def __repr__(self) -> str:
        return (f"<DelfBinary {self.source_name} [{self.arch}] "
                f"text={len(self.text)}B data={len(self.data)}B "
                f"eqpoints={len(self.stackmaps)}>")
