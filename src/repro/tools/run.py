"""run — execute a DELF binary on a simulated machine.

Examples::

    python -m repro.tools.run build/app.x86_64.delf
    python -m repro.tools.run build/app.aarch64.delf --max-steps 2000000
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..binfmt.delf import DelfBinary
from ..isa import get_isa
from ..vm import Machine
from ._cli import guarded


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dapper-run",
        description="Run a DELF binary on a simulated machine.")
    parser.add_argument("binary", help="a .delf file produced by dapperc")
    parser.add_argument("--max-steps", type=int, default=50_000_000)
    parser.add_argument("--stats", action="store_true",
                        help="print instruction/cycle counts to stderr")
    return parser


def _run(args: argparse.Namespace) -> int:
    with open(args.binary, "rb") as handle:
        binary = DelfBinary.from_bytes(handle.read())
    machine = Machine(get_isa(binary.arch))
    machine.tmpfs.write("/bin/app", binary.to_bytes())
    process = machine.spawn_process("/bin/app")
    machine.run_process(process, max_steps=args.max_steps)
    sys.stdout.write(process.stdout())
    if args.stats:
        print(f"[{binary.arch}] instructions={process.instr_total} "
              f"cycles={process.cycle_total} exit={process.exit_code}",
              file=sys.stderr)
    return process.exit_code or 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return guarded("dapper-run", lambda: _run(args))


if __name__ == "__main__":
    raise SystemExit(main())
