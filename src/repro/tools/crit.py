"""crit — the CRIU image tool CLI (paper §II: decode / encode / show).

Operates on a directory of ``.img`` files (as written by
``repro.tools.migrate --keep-images`` or by saving an ImageSet to disk).

Examples::

    python -m repro.tools.crit show images/
    python -m repro.tools.crit decode images/core-1.img
    python -m repro.tools.crit encode core-1.json images/core-1.img
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..criu import crit as critlib
from ..criu.images import ImageSet
from ..errors import ReproError
from ._cli import guarded


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crit", description="CRIU image tool: decode, encode, show.")
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="pretty-print an image directory")
    show.add_argument("directory")

    decode = sub.add_parser("decode", help="one image file → JSON on stdout")
    decode.add_argument("image")

    encode = sub.add_parser("encode", help="JSON file → image file")
    encode.add_argument("json_file")
    encode.add_argument("image")
    return parser


def load_image_set(directory: str) -> ImageSet:
    files = {}
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".img"):
            with open(os.path.join(directory, entry), "rb") as handle:
                files[entry] = handle.read()
    if not files:
        raise ReproError(f"no .img files in {directory!r}")
    return ImageSet(files)


def _run(args: argparse.Namespace) -> int:
    if args.command == "show":
        print(critlib.show(load_image_set(args.directory)))
    elif args.command == "decode":
        with open(args.image, "rb") as handle:
            blob = handle.read()
        decoded = critlib.decode_image(os.path.basename(args.image),
                                       blob)
        print(json.dumps(decoded, indent=2, sort_keys=True))
    elif args.command == "encode":
        with open(args.json_file) as handle:
            data = json.load(handle)
        blob = critlib.encode_image(os.path.basename(args.image), data)
        with open(args.image, "wb") as handle:
            handle.write(blob)
        print(f"wrote {args.image} ({len(blob)} bytes)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return guarded("crit", lambda: _run(args))


if __name__ == "__main__":
    raise SystemExit(main())
