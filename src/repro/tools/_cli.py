"""Shared CLI plumbing: one error convention for every repro tool.

Every tool reports a handled failure the same way — a single
``<prog>: error: <message>`` line on stderr and a nonzero exit status,
never a traceback. The repo's typed :class:`~repro.errors.ReproError`
taxonomy is the contract: anything the substrate can reject is already
folded into it, so a traceback escaping a tool is a bug by definition
(and ``tests/test_cli_tools.py`` treats it as one).
"""

from __future__ import annotations

import sys
from typing import Callable

from ..errors import ReproError

#: exit status for a handled error (argparse itself uses 2 for usage)
EXIT_ERROR = 1

#: what a CLI command may legitimately raise: the typed error taxonomy,
#: OS-level I/O failures, and ValueError for malformed user-supplied
#: payloads (json.JSONDecodeError subclasses it).
HANDLED = (ReproError, OSError, ValueError)


def fail(prog: str, exc: BaseException) -> int:
    """Report one handled error in the shared format."""
    print(f"{prog}: error: {exc}", file=sys.stderr)
    return EXIT_ERROR


def guarded(prog: str, command: Callable[[], int]) -> int:
    """Run one CLI command under the shared error convention."""
    try:
        return command()
    except HANDLED as exc:
        return fail(prog, exc)
