"""migrate — compile, run and live-migrate a DapperC program across ISAs.

Examples::

    python -m repro.tools.migrate app.dc
    python -m repro.tools.migrate app.dc --from aarch64 --to x86_64 --lazy
    python -m repro.tools.migrate app.dc --warmup 20000 --keep-images out/
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..compiler import compile_source
from ..core.migration import MigrationPipeline, exe_path_for, \
    install_program
from ..isa import ISAS, get_isa
from ..vm import Machine
from ._cli import guarded


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dapper-migrate",
        description="Compile a DapperC program, run it, and live-migrate "
                    "it across ISAs mid-run; verifies the migrated output "
                    "against a native run.")
    parser.add_argument("source", help="DapperC source file")
    parser.add_argument("--from", dest="src_arch", default="x86_64",
                        choices=sorted(ISAS))
    parser.add_argument("--to", dest="dst_arch", default="aarch64",
                        choices=sorted(ISAS))
    parser.add_argument("--warmup", type=int, default=5000,
                        help="instructions to run before migrating")
    parser.add_argument("--lazy", action="store_true",
                        help="post-copy (lazy) migration")
    parser.add_argument("--keep-images", metavar="DIR",
                        help="write the rewritten image files to DIR")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress program output")
    return parser


def _run(args: argparse.Namespace) -> int:
    with open(args.source) as handle:
        source = handle.read()
    name = os.path.splitext(os.path.basename(args.source))[0]
    program = compile_source(source, name)

    reference_machine = Machine(get_isa(args.src_arch))
    install_program(reference_machine, program)
    reference = reference_machine.spawn_process(
        exe_path_for(name, args.src_arch))
    reference_machine.run_process(reference)

    pipeline = MigrationPipeline(
        Machine(get_isa(args.src_arch), name="src"),
        Machine(get_isa(args.dst_arch), name="dst"), program)
    result = pipeline.run_and_migrate(warmup_steps=args.warmup,
                                      lazy=args.lazy)

    if not args.quiet:
        sys.stdout.write(result.combined_output())
    stages = ", ".join(f"{k}={v * 1e3:.2f}ms"
                       for k, v in result.stage_seconds.items())
    print(f"[migration {args.src_arch} → {args.dst_arch}"
          f"{' lazy' if args.lazy else ''}] {stages}", file=sys.stderr)
    print(f"[rewrite] {result.stats}", file=sys.stderr)
    match = result.combined_output() == reference.stdout()
    print(f"[verify] output identical to native run: {match}",
          file=sys.stderr)

    if args.keep_images:
        os.makedirs(args.keep_images, exist_ok=True)
        for filename, blob in sorted(result.images.files.items()):
            with open(os.path.join(args.keep_images, filename), "wb") as f:
                f.write(blob)
        print(f"[images] wrote {len(result.images.files)} files to "
              f"{args.keep_images}", file=sys.stderr)
    return 0 if match else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.src_arch == args.dst_arch:
        print("dapper-migrate: --from and --to must differ",
              file=sys.stderr)
        return 2
    return guarded("dapper-migrate", lambda: _run(args))


if __name__ == "__main__":
    raise SystemExit(main())
