"""dapperc — the DapperC compiler driver CLI.

Examples::

    python -m repro.tools.dapperc app.dc -o build/app
    python -m repro.tools.dapperc app.dc --arch x86_64 --symbols
    python -m repro.tools.dapperc app.dc --dump-ir
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..compiler import compile_source
from ..compiler.irgen import lower
from ..compiler.passes import run_middle_end
from ..errors import ReproError
from ..isa import ISAS, get_isa


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dapperc",
        description="Compile DapperC source into DELF binaries with "
                    "equivalence points, stackmaps and aligned symbols.")
    parser.add_argument("source", help="DapperC source file")
    parser.add_argument("-o", "--output",
                        help="output path prefix (default: source stem); "
                             "binaries land at <prefix>.<arch>.delf")
    parser.add_argument("--arch", choices=sorted(ISAS), action="append",
                        help="target only this ISA (repeatable; "
                             "default: all)")
    parser.add_argument("--name", help="program name (default: source stem)")
    parser.add_argument("--no-arm-pairs", action="store_true",
                        help="disable ldp/stp emission on aarch64 "
                             "(maximizes shuffle entropy)")
    parser.add_argument("--dump-ir", action="store_true",
                        help="print the middle-end IR instead of compiling")
    parser.add_argument("--symbols", action="store_true",
                        help="print the (aligned) symbol table")
    parser.add_argument("--stackmaps", action="store_true",
                        help="print the equivalence-point records")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"dapperc: cannot read {args.source}: {exc}", file=sys.stderr)
        return 2
    stem = os.path.splitext(os.path.basename(args.source))[0]
    name = args.name or stem
    prefix = args.output or stem

    try:
        if args.dump_ir:
            program = lower(source, name)
            run_middle_end(program)
            print(program.dump())
            return 0
        isas = None
        if args.arch:
            isas = {arch: get_isa(arch) for arch in args.arch}
        compiled = compile_source(source, name, isas=isas,
                                  arm_stack_pairs=not args.no_arm_pairs)
    except ReproError as exc:
        print(f"dapperc: error: {exc}", file=sys.stderr)
        return 1

    for arch, binary in sorted(compiled.binaries.items()):
        out_path = f"{prefix}.{arch}.delf"
        out_dir = os.path.dirname(out_path)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(out_path, "wb") as handle:
            handle.write(binary.to_bytes())
        print(f"wrote {out_path}: text={len(binary.text)}B "
              f"data={len(binary.data)}B eqpoints={len(binary.stackmaps)}")
        if args.symbols:
            for symbol in binary.symtab:
                print(f"  {symbol.addr:#010x} {symbol.kind:7s} "
                      f"{symbol.size:6d} {symbol.name}")
        if args.stackmaps:
            for point in binary.stackmaps.eqpoints:
                print(f"  eq#{point.eqpoint_id:<4d} {point.kind:9s} "
                      f"{point.func:20s} @{point.addr:#x} "
                      f"live={len(point.live)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
