"""store — checkpoint-store CLI (put / get / ls / stat / gc / verify,
plus recover / scrub / sweep for crash-consistent dir-backend stores).

Operates on two on-disk layouts, auto-detected per store directory:

* **legacy** — ``chunks/`` + ``index.json``, as written by
  :meth:`repro.store.CheckpointStore.save_dir`; mutations rewrite the
  whole index (not crash-safe).
* **dir** — the crash-consistent backend
  (:class:`repro.store.DirBackend` over :class:`repro.store.OsDisk`):
  content-addressed chunk files installed via write-tmp/fsync/rename
  plus a write-ahead intent log (``wal``). Every mutation is durable
  when the command returns, and ``recover`` reopens the store after a
  crash at any point.

Checkpoint image directories are ``.img`` files (the format ``crit``
and ``migrate --keep-images`` use).

Examples::

    python -m repro.tools.store put  mystore/ images/ --backend dir
    python -m repro.tools.store ls   mystore/
    python -m repro.tools.store get  mystore/ <checkpoint-id> out-images/
    python -m repro.tools.store recover mystore/
    python -m repro.tools.store scrub   mystore/ --binary app.delf
    python -m repro.tools.store sweep   images/ --ops put,delete,gc
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..errors import ReproError
from ..store import CheckpointStore, DirBackend, OsDisk
from ._cli import guarded
from .crit import load_image_set


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="store",
        description="Content-addressed checkpoint store tool.")
    sub = parser.add_subparsers(dest="command", required=True)

    put = sub.add_parser("put", help="store an image directory as a "
                                     "checkpoint")
    put.add_argument("store_dir")
    put.add_argument("image_dir")
    put.add_argument("--parent", default=None,
                     help="checkpoint id this dump is a delta against")
    put.add_argument("--codec", default="zlib",
                     help="codec when creating a new store "
                          "(default: zlib)")
    put.add_argument("--backend", choices=("legacy", "dir"),
                     default="legacy",
                     help="layout when creating a new store: 'dir' is "
                          "the crash-consistent WAL backend (default: "
                          "legacy index.json; existing stores are "
                          "auto-detected)")

    get = sub.add_parser("get", help="materialize a checkpoint into an "
                                     "image directory")
    get.add_argument("store_dir")
    get.add_argument("checkpoint")
    get.add_argument("out_dir")
    get.add_argument("--verify", action="store_true",
                     help="run the restore guard over the materialized "
                          "set against this checkpoint's page manifest")
    get.add_argument("--binary", metavar="DELF",
                     help="DELF binary for --verify's semantic pass")

    ls = sub.add_parser("ls", help="list checkpoints")
    ls.add_argument("store_dir")

    stat = sub.add_parser("stat", help="dedup/compression statistics")
    stat.add_argument("store_dir")

    gc = sub.add_parser("gc", help="delete a checkpoint (optional) and "
                                   "sweep unreferenced chunks")
    gc.add_argument("store_dir")
    gc.add_argument("--delete", default=None, metavar="CHECKPOINT",
                    help="unregister this checkpoint first")

    verify = sub.add_parser("verify", help="fsck: re-hash every chunk "
                                           "and audit the refcounts")
    verify.add_argument("store_dir")

    recover = sub.add_parser(
        "recover", help="crash-recover a dir-backend store: roll the "
                        "WAL forward/back, quarantine torn chunks, "
                        "sweep orphans, fsck")
    recover.add_argument("store_dir")

    scrub = sub.add_parser(
        "scrub", help="incremental integrity scrub: re-hash chunks "
                      "(memory and disk copies) and rebuild corrupt "
                      "text pages from the binary")
    scrub.add_argument("store_dir")
    scrub.add_argument("--binary", metavar="DELF",
                       help="DELF binary used to rebuild corrupt "
                            "text-page chunks")
    scrub.add_argument("--start", default="",
                       help="resume cursor from a previous window")
    scrub.add_argument("--limit", type=int, default=None, metavar="N",
                       help="scrub at most N chunks this window")

    sweep = sub.add_parser(
        "sweep", help="systematic crash-point sweep: crash a simulated "
                      "store at every durability site of each op and "
                      "prove recovery")
    sweep.add_argument("image_dir",
                       help="checkpoint image directory used as the "
                            "workload")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--ops", default="put,put_group,delete,gc,adopt",
                       help="comma-separated ops to sweep (default: "
                            "put,put_group,delete,gc,adopt)")
    return parser


def _dir_backend(path: str) -> DirBackend:
    return DirBackend(OsDisk(path))


def _is_dir_backend(path: str) -> bool:
    return os.path.exists(os.path.join(path, "wal"))


def _open_store(path: str, codec: str = "zlib", create: bool = False,
                backend: str = "auto") -> CheckpointStore:
    if backend == "dir" or (backend == "auto" and _is_dir_backend(path)):
        be = _dir_backend(path)
        if be.has_wal():
            store, _report = CheckpointStore.recover(be)
            return store
        if not create:
            raise ReproError(f"no store at {path!r} (missing wal)")
        return CheckpointStore(codec=codec, backend=be)
    if os.path.exists(os.path.join(path, "index.json")):
        return CheckpointStore.load_dir(path)
    if not create:
        raise ReproError(f"no store at {path!r} (missing index.json)")
    return CheckpointStore(codec=codec)


def _resolve_id(store: CheckpointStore, prefix: str) -> str:
    matches = [cid for cid in store.checkpoint_ids()
               if cid.startswith(prefix)]
    if not matches:
        raise ReproError(f"no checkpoint matching {prefix!r}")
    if len(matches) > 1:
        raise ReproError(f"ambiguous checkpoint prefix {prefix!r} "
                         f"({len(matches)} matches)")
    return matches[0]


def _run(args: argparse.Namespace) -> int:
    if args.command == "put":
        backend = args.backend if args.backend == "dir" else "auto"
        store = _open_store(args.store_dir, codec=args.codec,
                            create=True, backend=backend)
        images = load_image_set(args.image_dir)
        parent = (_resolve_id(store, args.parent)
                  if args.parent else None)
        result = store.put(images, parent=parent)
        if not store.durable:
            store.save_dir(args.store_dir)
        kind = "delta" if result.delta else "full"
        print(f"{result.checkpoint_id} {kind} "
              f"new_chunks={result.new_chunks} "
              f"dup_chunks={result.dup_chunks} "
              f"physical+={result.new_physical_bytes}B "
              f"logical={result.logical_bytes}B")
    elif args.command == "get":
        store = _open_store(args.store_dir)
        cid = _resolve_id(store, args.checkpoint)
        binary = None
        if args.binary:
            from ..binfmt.delf import DelfBinary
            with open(args.binary, "rb") as fh:
                binary = DelfBinary.from_bytes(fh.read())
        images = store.materialize(cid, verify=args.verify,
                                   binary=binary)
        os.makedirs(args.out_dir, exist_ok=True)
        for name, blob in sorted(images.files.items()):
            with open(os.path.join(args.out_dir, name), "wb") as fh:
                fh.write(blob)
        print(f"materialized {cid} -> {args.out_dir} "
              f"({images.total_bytes()}B, "
              f"{len(images.files)} files)")
    elif args.command == "ls":
        store = _open_store(args.store_dir)
        for cid in store.checkpoint_ids():
            manifest = store.manifest(cid)
            parent = manifest.get("parent", "") or "-"
            print(f"{cid} arch={manifest.get('arch', '?')} "
                  f"pages={len(manifest['pages'])} "
                  f"parent={parent[:12] if parent != '-' else '-'}")
        if not store.checkpoint_ids():
            print("(no checkpoints)")
    elif args.command == "stat":
        stats = _open_store(args.store_dir).stats()
        for key in ("checkpoints", "chunks", "logical_bytes",
                    "unique_bytes", "physical_bytes"):
            print(f"{key:15} {stats[key]}")
        print(f"{'dedup_ratio':15} {stats['dedup_ratio']:.2f}x")
    elif args.command == "gc":
        store = _open_store(args.store_dir)
        if args.delete:
            cid = _resolve_id(store, args.delete)
            store.delete(cid)
            print(f"deleted {cid}")
        count, freed = store.gc()
        if not store.durable:
            store.save_dir(args.store_dir)
        print(f"gc: reclaimed {count} chunks, {freed}B")
    elif args.command == "verify":
        problems = _open_store(args.store_dir).verify()
        for problem in problems:
            print(problem)
        if problems:
            print(f"FAILED: {len(problems)} problem(s)")
            return 1
        print("store is clean")
    elif args.command == "recover":
        if not _is_dir_backend(args.store_dir):
            raise ReproError(f"{args.store_dir!r} is not a dir-backend "
                             f"store (no wal); only dir-backend stores "
                             f"are crash-recoverable")
        store, report = CheckpointStore.recover(_dir_backend(args.store_dir))
        print(f"recovered {len(report.checkpoints)} checkpoint(s) "
              f"({'clean' if report.clean else 'with damage handled'})")
        for name in ("quarantined", "damaged", "rolled_back",
                     "aborted_group_members", "orphans_swept",
                     "tmp_swept"):
            value = getattr(report, name)
            count = len(value) if isinstance(value, list) else value
            if count:
                print(f"  {name:22} {count}")
        if report.tail_cut:
            print(f"  {'wal_tail_cut':22} {report.tail_cut}B")
        for problem in report.fsck:
            print(f"  fsck: {problem}")
        if report.fsck:
            print(f"FAILED: {len(report.fsck)} fsck problem(s) after "
                  f"recovery")
            return 1
    elif args.command == "scrub":
        store = _open_store(args.store_dir)
        binary = None
        if args.binary:
            from ..binfmt.delf import DelfBinary
            with open(args.binary, "rb") as fh:
                binary = DelfBinary.from_bytes(fh.read())
        report = store.scrub(binary=binary, start=args.start,
                             limit=args.limit)
        print(f"scrubbed {report.scanned} chunk(s) "
              f"({report.logical_bytes}B logical): "
              f"{len(report.corrupt)} corrupt, "
              f"{len(report.repaired)} repaired, "
              f"{len(report.quarantined)} quarantined")
        if report.cursor:
            print(f"  next window: --start {report.cursor}")
        unrepaired = set(report.corrupt) - set(report.repaired)
        if unrepaired:
            for digest in sorted(unrepaired):
                print(f"  UNREPAIRED {digest}")
            return 1
    elif args.command == "sweep":
        return _run_sweep(args)
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    from ..chaos import sweep as crash_sweep
    from ..store.transfer import plan_transfer, ship

    images = load_image_set(args.image_dir)

    def op_put():
        return (lambda store: None,
                lambda store, ctx: store.put(images), True)

    def op_put_group():
        def setup(store):
            return store.put(images).checkpoint_id
        return (setup,
                lambda store, cid: store.put_group([cid], label="cli"),
                True)

    def op_delete():
        def setup(store):
            return store.put(images).checkpoint_id
        return (setup, lambda store, cid: store.delete(cid), True)

    def op_gc():
        def setup(store):
            return store.put(images).checkpoint_id

        def op(store, cid):
            store.delete(cid)
            store.gc()
        return (setup, op, False)

    def op_adopt():
        def op(store, ctx):
            src = CheckpointStore()
            cid = src.put(images).checkpoint_id
            ship(src, store, plan_transfer(src, store, cid))
        return (lambda store: None, op, False)

    builders = {"put": op_put, "put_group": op_put_group,
                "delete": op_delete, "gc": op_gc, "adopt": op_adopt}
    ops = [name.strip() for name in args.ops.split(",") if name.strip()]
    for name in ops:
        if name not in builders:
            raise ReproError(f"unknown sweep op {name!r}; known: "
                             f"{', '.join(sorted(builders))}")
    failures = 0
    total_sites = 0
    for name in ops:
        setup, op, atomic = builders[name]()
        result = crash_sweep(setup, op, label=name, seed=args.seed,
                             atomic=atomic)
        total_sites += len(result.sites)
        bad = result.failures()
        failures += len(bad)
        print(f"{name:10} {len(result.sites):3} site(s) "
              f"{'ok' if result.ok else f'{len(bad)} FAILED'}")
        for trial in bad:
            for problem in trial.problems:
                print(f"  #{trial.index} {trial.site}: {problem}")
    verdict = ("all recovered" if not failures
               else f"{failures} FAILURE(S)")
    print(f"sweep: {total_sites} crash site(s) across {len(ops)} "
          f"op(s), {verdict}")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return guarded("store", lambda: _run(args))


if __name__ == "__main__":
    sys.exit(main())
