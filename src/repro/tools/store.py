"""store — checkpoint-store CLI (put / get / ls / stat / gc / verify).

Operates on an on-disk store directory (``chunks/`` + ``index.json``,
as written by :meth:`repro.store.CheckpointStore.save_dir`) and on
checkpoint image directories of ``.img`` files (the format ``crit``
and ``migrate --keep-images`` use).

Examples::

    python -m repro.tools.store put  mystore/ images/
    python -m repro.tools.store ls   mystore/
    python -m repro.tools.store get  mystore/ <checkpoint-id> out-images/
    python -m repro.tools.store stat mystore/
    python -m repro.tools.store gc   mystore/
    python -m repro.tools.store verify mystore/
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..errors import ReproError
from ..store import CheckpointStore
from ._cli import guarded
from .crit import load_image_set


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="store",
        description="Content-addressed checkpoint store tool.")
    sub = parser.add_subparsers(dest="command", required=True)

    put = sub.add_parser("put", help="store an image directory as a "
                                     "checkpoint")
    put.add_argument("store_dir")
    put.add_argument("image_dir")
    put.add_argument("--parent", default=None,
                     help="checkpoint id this dump is a delta against")
    put.add_argument("--codec", default="zlib",
                     help="codec when creating a new store "
                          "(default: zlib)")

    get = sub.add_parser("get", help="materialize a checkpoint into an "
                                     "image directory")
    get.add_argument("store_dir")
    get.add_argument("checkpoint")
    get.add_argument("out_dir")
    get.add_argument("--verify", action="store_true",
                     help="run the restore guard over the materialized "
                          "set against this checkpoint's page manifest")
    get.add_argument("--binary", metavar="DELF",
                     help="DELF binary for --verify's semantic pass")

    ls = sub.add_parser("ls", help="list checkpoints")
    ls.add_argument("store_dir")

    stat = sub.add_parser("stat", help="dedup/compression statistics")
    stat.add_argument("store_dir")

    gc = sub.add_parser("gc", help="delete a checkpoint (optional) and "
                                   "sweep unreferenced chunks")
    gc.add_argument("store_dir")
    gc.add_argument("--delete", default=None, metavar="CHECKPOINT",
                    help="unregister this checkpoint first")

    verify = sub.add_parser("verify", help="fsck: re-hash every chunk "
                                           "and audit the refcounts")
    verify.add_argument("store_dir")
    return parser


def _open_store(path: str, codec: str = "zlib",
                create: bool = False) -> CheckpointStore:
    if os.path.exists(os.path.join(path, "index.json")):
        return CheckpointStore.load_dir(path)
    if not create:
        raise ReproError(f"no store at {path!r} (missing index.json)")
    return CheckpointStore(codec=codec)


def _resolve_id(store: CheckpointStore, prefix: str) -> str:
    matches = [cid for cid in store.checkpoint_ids()
               if cid.startswith(prefix)]
    if not matches:
        raise ReproError(f"no checkpoint matching {prefix!r}")
    if len(matches) > 1:
        raise ReproError(f"ambiguous checkpoint prefix {prefix!r} "
                         f"({len(matches)} matches)")
    return matches[0]


def _run(args: argparse.Namespace) -> int:
    if args.command == "put":
        store = _open_store(args.store_dir, codec=args.codec,
                            create=True)
        images = load_image_set(args.image_dir)
        parent = (_resolve_id(store, args.parent)
                  if args.parent else None)
        result = store.put(images, parent=parent)
        store.save_dir(args.store_dir)
        kind = "delta" if result.delta else "full"
        print(f"{result.checkpoint_id} {kind} "
              f"new_chunks={result.new_chunks} "
              f"dup_chunks={result.dup_chunks} "
              f"physical+={result.new_physical_bytes}B "
              f"logical={result.logical_bytes}B")
    elif args.command == "get":
        store = _open_store(args.store_dir)
        cid = _resolve_id(store, args.checkpoint)
        binary = None
        if args.binary:
            from ..binfmt.delf import DelfBinary
            with open(args.binary, "rb") as fh:
                binary = DelfBinary.from_bytes(fh.read())
        images = store.materialize(cid, verify=args.verify,
                                   binary=binary)
        os.makedirs(args.out_dir, exist_ok=True)
        for name, blob in sorted(images.files.items()):
            with open(os.path.join(args.out_dir, name), "wb") as fh:
                fh.write(blob)
        print(f"materialized {cid} -> {args.out_dir} "
              f"({images.total_bytes()}B, "
              f"{len(images.files)} files)")
    elif args.command == "ls":
        store = _open_store(args.store_dir)
        for cid in store.checkpoint_ids():
            manifest = store.manifest(cid)
            parent = manifest.get("parent", "") or "-"
            print(f"{cid} arch={manifest.get('arch', '?')} "
                  f"pages={len(manifest['pages'])} "
                  f"parent={parent[:12] if parent != '-' else '-'}")
        if not store.checkpoint_ids():
            print("(no checkpoints)")
    elif args.command == "stat":
        stats = _open_store(args.store_dir).stats()
        for key in ("checkpoints", "chunks", "logical_bytes",
                    "unique_bytes", "physical_bytes"):
            print(f"{key:15} {stats[key]}")
        print(f"{'dedup_ratio':15} {stats['dedup_ratio']:.2f}x")
    elif args.command == "gc":
        store = _open_store(args.store_dir)
        if args.delete:
            cid = _resolve_id(store, args.delete)
            store.delete(cid)
            print(f"deleted {cid}")
        count, freed = store.gc()
        store.save_dir(args.store_dir)
        print(f"gc: reclaimed {count} chunks, {freed}B")
    elif args.command == "verify":
        problems = _open_store(args.store_dir).verify()
        for problem in problems:
            print(problem)
        if problems:
            print(f"FAILED: {len(problems)} problem(s)")
            return 1
        print("store is clean")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return guarded("store", lambda: _run(args))


if __name__ == "__main__":
    sys.exit(main())
