"""repro-fleet — thousand-node migration storms from the command line.

Runs one :class:`~repro.fleet.FleetStorm`: open-loop nginx/redis
traffic on a sharded fleet, a load spike, a rolling-update wave of
concurrent live migrations under a bounded in-flight cap, and optional
chaos (stage crashes, link drops/latency, whole-node loss feeding the
rollback path).

Examples::

    python -m repro.tools.fleet --nodes 200 --shards 8 --duration 60
    python -m repro.tools.fleet --nodes 16 --shards 4 --crash 0.03 \\
        --pskill 0.01 --check --replay-check
    python -m repro.tools.fleet --nodes 1000 --services 900 \\
        --max-in-flight 128 --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from ..chaos import KINDS, FaultPlan
from ._cli import guarded


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Traffic-driven fleet migration storm: concurrent "
                    "live migrations under load, chaos, and a "
                    "complete-or-rollback invariant.")
    parser.add_argument("--nodes", type=int, default=64,
                        help="fleet size (default 64)")
    parser.add_argument("--shards", type=int, default=4,
                        help="event-core shards (results are "
                             "shard-count invariant)")
    parser.add_argument("--services", type=int, default=0,
                        help="serving instances (0 = one per node)")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds (default 60)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fleet seed (chaos + traffic jitter)")
    parser.add_argument("--max-in-flight", type=int, default=16,
                        help="concurrent migration cap (default 16)")
    parser.add_argument("--wave", type=float, default=0.3, metavar="F",
                        help="fraction of services in the rolling-"
                             "update wave (default 0.3)")
    parser.add_argument("--update-group", type=int, default=0,
                        metavar="N",
                        help="submit the update wave as coordinated "
                             "groups of N (commit together or roll "
                             "back together; default 0 = solo)")
    parser.add_argument("--spike", type=float, default=3.0, metavar="X",
                        help="load-spike factor (default 3.0)")
    parser.add_argument("--durable", action="store_true",
                        help="nodes hold crash-consistent stores: a "
                             "migration whose checkpoint durably landed "
                             "survives its source node's death and "
                             "completes from the recovered store "
                             "instead of rolling back")
    for kind in KINDS:
        parser.add_argument(f"--{kind}", type=float, default=0.0,
                            metavar="P",
                            help=f"chaos {kind} probability in [0, 1]")
    parser.add_argument("--record", metavar="PATH",
                        help="save the storm's flight-recorder journal "
                             "to PATH")
    parser.add_argument("--replay-check", action="store_true",
                        help="re-execute the storm from its own journal "
                             "and assert bit-identity")
    parser.add_argument("--check", action="store_true",
                        help="re-run at 1 shard and assert the journal "
                             "event stream matches (shard invariance)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full result as JSON on stdout")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the summary line")
    return parser


def _build_spec(args: argparse.Namespace) -> Tuple[object, str]:
    from ..fleet import FleetSpec
    spec = FleetSpec(seed=args.seed, nodes=args.nodes, shards=args.shards,
                     services=args.services, duration=args.duration,
                     max_in_flight=args.max_in_flight,
                     update_fraction=args.wave, spike_factor=args.spike,
                     update_group=args.update_group,
                     durable=int(args.durable))
    probabilities = {kind: getattr(args, kind) for kind in KINDS}
    chaos = ""
    if any(probabilities.values()):
        chaos = FaultPlan(args.seed, **probabilities).to_spec()
    return spec, chaos


def _recorded_storm(spec, chaos: str):
    """One storm run with an attached flight recorder; returns the
    (metrics, finalized journal) pair from the same simulation."""
    from ..fleet import FleetStorm
    from ..replay.engine import fleet_header
    from ..replay.recorder import FlightRecorder
    plan = FaultPlan.from_spec(chaos) if chaos else None
    recorder = FlightRecorder(digest_every=0, record_syscalls=False)
    recorder.journal.header.update(fleet_header(spec.to_spec(), chaos))
    storm = FleetStorm(spec, plan, recorder=recorder)
    result = storm.run()
    recorder.finalize(0 if result.invariant_ok else 1)
    return result, recorder.journal


def _run(args: argparse.Namespace) -> int:
    from ..fleet import FleetSpec
    from ..replay.engine import Replayer, record_fleet

    spec, chaos = _build_spec(args)
    result, journal = _recorded_storm(spec, chaos)
    failures = 0

    if args.record:
        journal.save(args.record)
        if not args.quiet:
            print(f"[fleet] journal: {args.record} "
                  f"({len(journal.events)} events)")

    if args.replay_check:
        replayed = Replayer(journal).run()
        identical = replayed.journal.to_bytes() == journal.to_bytes()
        print(f"[replay-check] journal "
              f"{'replays bit-identically' if identical else 'DIVERGED'}",
              file=sys.stderr)
        if not identical:
            failures += 1

    if args.check:
        single = FleetSpec.from_spec(spec.to_spec())
        single.shards = 1
        other = record_fleet(single.to_spec(), chaos=chaos).journal
        # Headers differ (the spec strings name different shard
        # counts); everything *recorded* must not.
        invariant = other.events == journal.events
        print(f"[shard-check] {spec.shards} shard(s) vs 1: event "
              f"streams {'identical' if invariant else 'DIVERGED'}",
              file=sys.stderr)
        if not invariant:
            failures += 1

    if not result.invariant_ok:
        failures += 1

    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    elif not args.quiet:
        d = result.to_dict()
        m = d["migrations"]
        print(f"  nodes={d['nodes']} shards={d['shards']} "
              f"services={d['services']} barriers={d['barriers']}")
        print(f"  migrations: {m['started']} started, "
              f"{m['completed']} completed, {m['rolled_back']} rolled "
              f"back (peak {m['peak_in_flight']} in flight)")
        if m["groups_committed"] or m["groups_aborted"]:
            print(f"  groups: {m['groups_committed']} committed, "
                  f"{m['groups_aborted']} aborted")
        print(f"  latency ms: p50={d['latency_ms']['p50']} "
              f"p99={d['latency_ms']['p99']} "
              f"p99_storm={d['latency_ms']['p99_storm']}")
        if d["chaos"]:
            print(f"  chaos: {d['chaos']} "
                  f"({d['node_losses']} node loss(es))")
    print(f"[fleet] {result.events_total} events in "
          f"{result.wall_s:.2f}s wall "
          f"({result.events_per_sec_wall:,.0f} ev/s), "
          f"{result.completed}/{result.started} migrations completed, "
          f"{result.rolled_back} rolled back, "
          f"invariant {'OK' if result.invariant_ok else 'VIOLATED'}")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return guarded("repro-fleet", lambda: _run(args))


if __name__ == "__main__":
    raise SystemExit(main())
