"""Command-line tools.

* ``python -m repro.tools.dapperc`` — compile DapperC source into DELF
  binaries for both ISAs (the paper's modified LLVM/Clang + gold link).
* ``python -m repro.tools.crit`` — decode / show CRIU-style image files
  (the paper's CRIT tool).
* ``python -m repro.tools.run`` — execute a DELF binary on a simulated
  machine.
* ``python -m repro.tools.migrate`` — compile, run, and live-migrate a
  program across ISAs, printing the stage breakdown.
* ``python -m repro.tools.replay`` — flight recorder: record a run into
  a journal, replay it bit-identically (either engine), diff two
  journals down to the first diverging quantum, seek to an instruction
  count, or summarize a journal.
"""
