"""repro-debug — time-travel debugger: a DAP server over a journal.

Examples::

    # record a faulty run, then serve it to any DAP client over TCP
    python -m repro.tools.replay record app.dc -o crash.jrn
    python -m repro.tools.debug crash.jrn --port 4711

    # let the OS pick a port (printed as "listening on HOST:PORT")
    python -m repro.tools.debug crash.jrn

    # stdio transport, for editors that spawn debug adapters
    python -m repro.tools.debug crash.jrn --stdio

A truncated journal (the recorder crashed mid-run) is accepted: the
complete event prefix is debugged, with a warning on stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..debug.server import run_stdio, run_tcp
from ..debug.session import DebugSession
from ..errors import JournalTruncated
from ..replay import Journal
from ._cli import guarded

PROG = "repro-debug"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="serve the Debug Adapter Protocol over a recorded "
                    "journal (time-travel debugging)")
    parser.add_argument("journal", help="journal file to debug")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port to listen on (default: OS-"
                             "assigned, printed on startup)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP listen address")
    parser.add_argument("--stdio", action="store_true",
                        help="speak DAP over stdin/stdout instead of "
                             "TCP")
    parser.add_argument("--snapshot-every", type=int, default=32,
                        help="snapshot cadence in scheduling slices "
                             "(reverse-seek cost is O(this gap))")
    parser.add_argument("--engine",
                        choices=["blocks", "interp", "chains"],
                        help="execution engine for the capture pass")
    return parser


def _load_journal(path: str) -> Journal:
    try:
        return Journal.load(path)
    except JournalTruncated as exc:
        print(f"{PROG}: warning: journal is truncated "
              f"(recorder died at instruction {exc.last_instr}); "
              f"debugging the complete prefix", file=sys.stderr)
        return exc.journal


def _main(args: argparse.Namespace) -> int:
    journal = _load_journal(args.journal)
    session = DebugSession(journal,
                           snapshot_every=args.snapshot_every,
                           engine=args.engine)
    print(f"{PROG}: timeline ready: "
          f"{session.total_instructions} instructions, "
          f"{session.total_slices} slices, "
          f"{len(session.snapshots)} snapshots", file=sys.stderr)
    if args.stdio:
        run_stdio(session)
        return 0

    def announce(host: str, port: int) -> None:
        print(f"{PROG}: listening on {host}:{port}", flush=True)

    run_tcp(session, host=args.host, port=args.port,
            announce=announce)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return guarded(PROG, lambda: _main(args))


if __name__ == "__main__":
    sys.exit(main())
