"""repro-replay — flight-recorder CLI: record, replay, diff, seek, show.

Examples::

    # record a benchmark app (or any DapperC source file) into a journal
    python -m repro.tools.replay record dhrystone -o dhry.jrn
    python -m repro.tools.replay record app.dc --scenario migrate \\
        --src-arch x86_64 --dst-arch aarch64 -o mig.jrn

    # re-execute and verify bit-identity (optionally on the other engine)
    python -m repro.tools.replay replay dhry.jrn --engine interp

    # pinpoint the first diverging quantum between two journals
    python -m repro.tools.replay diff good.jrn bad.jrn

    # reconstruct machine state at one or more instruction counts
    # (a single re-execution pauses at each target in order)
    python -m repro.tools.replay seek dhry.jrn --instr 2000 --instr 5000

    # summarize a journal
    python -m repro.tools.replay show dhry.jrn
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..errors import ReproError
from ..replay import (BitFlip, Journal, Replayer, ReplaySession,
                      pinpoint_by_reexecution, pinpoint_divergence,
                      record_migrate, record_rerandomize, record_run)
from ..replay.journal import KIND_NAMES
from ._cli import guarded


def _load_source(spec: str) -> tuple:
    """Resolve ``spec`` as a benchmark-app name or a DapperC file path."""
    if os.path.exists(spec):
        with open(spec, "r", encoding="utf-8") as handle:
            name = os.path.splitext(os.path.basename(spec))[0]
            return handle.read(), name
    from ..apps.registry import get_app
    try:
        app = get_app(spec)
    except KeyError as exc:
        raise ReproError(str(exc)) from None
    return app.source("small"), app.name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-replay",
        description="Deterministic record/replay of simulated VM runs.")
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="record a run into a journal")
    rec.add_argument("program",
                     help="benchmark app name (e.g. dhrystone) or a "
                          "DapperC source file")
    rec.add_argument("-o", "--output", required=True,
                     help="journal file to write")
    rec.add_argument("--scenario", default="run",
                     choices=["run", "migrate", "rerandomize"])
    rec.add_argument("--arch", "--src-arch", dest="src_arch",
                     default="x86_64")
    rec.add_argument("--dst-arch", default="aarch64",
                     help="destination ISA (migrate scenario)")
    rec.add_argument("--engine", default="blocks",
                     choices=["blocks", "interp", "chains"])
    rec.add_argument("--quantum", type=int, default=64)
    rec.add_argument("--digest-every", type=int, default=1,
                     help="emit a state digest every N scheduling slices")
    rec.add_argument("--warmup", type=int, default=5000,
                     help="instructions before migrating (migrate)")
    rec.add_argument("--lazy", action="store_true",
                     help="post-copy restore (migrate)")
    rec.add_argument("--store", action="store_true",
                     help="route the transfer through the "
                          "content-addressed checkpoint store (migrate)")
    rec.add_argument("--interval", type=int, default=2000,
                     help="instructions per shuffle epoch (rerandomize)")
    rec.add_argument("--seed", type=int, default=0,
                     help="RNG seed (rerandomize)")
    rec.add_argument("--max-steps", type=int, default=50_000_000)
    rec.add_argument("--fault-slice", type=int,
                     help="inject a bit flip at this scheduling slice")
    rec.add_argument("--fault-addr", type=lambda v: int(v, 0),
                     help="address of the byte to flip")
    rec.add_argument("--fault-bit", type=int, default=0,
                     help="bit index to flip (default 0)")

    rep = sub.add_parser("replay",
                         help="re-execute a journal and verify bit-identity")
    rep.add_argument("journal")
    rep.add_argument("--engine", choices=["blocks", "interp", "chains"],
                     help="override the execution engine")
    rep.add_argument("-o", "--output",
                     help="also write the replay's journal here")

    diff = sub.add_parser("diff",
                          help="pinpoint the first divergence between "
                               "two journals")
    diff.add_argument("journal_a")
    diff.add_argument("journal_b")
    diff.add_argument("--mem-limit", type=int, default=64,
                      help="max memory byte diffs to report")

    seek = sub.add_parser("seek",
                          help="re-execute up to one or more instruction "
                               "counts and dump thread state at each")
    seek.add_argument("journal")
    seek.add_argument("--instr", type=int, required=True, action="append",
                      help="pause once this many instructions have retired "
                           "(repeatable; one re-execution serves all "
                           "targets in ascending order)")
    seek.add_argument("--engine", choices=["blocks", "interp", "chains"])

    show = sub.add_parser("show", help="summarize a journal")
    show.add_argument("journal")
    show.add_argument("--events", action="store_true",
                      help="dump every event")
    return parser


def _fault_from(args: argparse.Namespace) -> Optional[BitFlip]:
    if args.fault_slice is None:
        return None
    if args.fault_addr is None:
        raise ReproError("--fault-slice needs --fault-addr")
    return BitFlip(args.fault_slice, args.fault_addr, args.fault_bit)


def _cmd_record(args: argparse.Namespace) -> int:
    source, name = _load_source(args.program)
    common = dict(engine=args.engine, quantum=args.quantum,
                  digest_every=args.digest_every,
                  max_steps=args.max_steps, fault=_fault_from(args))
    if args.scenario == "run":
        result = record_run(source, name, arch=args.src_arch, **common)
    elif args.scenario == "migrate":
        result = record_migrate(source, name, src_arch=args.src_arch,
                                dst_arch=args.dst_arch, warmup=args.warmup,
                                lazy=args.lazy, store=args.store, **common)
    else:
        result = record_rerandomize(source, name, arch=args.src_arch,
                                    interval=args.interval, seed=args.seed,
                                    **common)
    result.journal.save(args.output)
    summary = result.journal.summary()
    print(f"recorded {name} [{args.scenario}]: exit={result.exit_code} "
          f"slices={result.recorder.slices} "
          f"instr={result.recorder.instructions} "
          f"digests={summary.get('digest', 0)} -> {args.output}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    journal = Journal.load(args.journal)
    result = Replayer(journal, engine=args.engine).run()
    if args.output:
        result.journal.save(args.output)
    report = pinpoint_divergence(journal, result.journal,
                                 engine_b=args.engine)
    engine = args.engine or journal.header.get("engine", "blocks")
    if report is None:
        recorded = len(journal.digest_stream())
        replayed = len(result.journal.digest_stream())
        print(f"replay OK on engine={engine}: "
              f"{min(recorded, replayed)} digests bit-identical")
        return 0
    print(f"replay DIVERGED on engine={engine}:")
    print(report.format())
    return 1


def _cmd_diff(args: argparse.Namespace) -> int:
    journal_a = Journal.load(args.journal_a)
    journal_b = Journal.load(args.journal_b)
    report = pinpoint_divergence(journal_a, journal_b,
                                 mem_limit=args.mem_limit)
    if report is None:
        print("journals agree (digest streams identical on the "
              "common prefix)")
        return 0
    print(report.format())
    return 1


def _print_state(snapshot: dict) -> None:
    for (mi, pid), proc in sorted(snapshot.items()):
        print(f"  machine {mi} pid {pid} [{proc['isa']}] "
              f"heap_end={proc['heap_end']:#x} "
              f"instr={proc['instr_total']}")
        for tid, thread in sorted(proc["threads"].items()):
            regs = " ".join(f"r{i}={v:#x}"
                            for i, v in enumerate(thread["regs"]))
            print(f"    tid {tid} pc={thread['pc']:#x} "
                  f"status={thread['status']} {regs}")


def _cmd_seek(args: argparse.Namespace) -> int:
    journal = Journal.load(args.journal)
    targets = sorted(set(args.instr))
    missed: List[int] = []
    with ReplaySession(journal, engine=args.engine) as session:
        for target in targets:
            if not session.run_until(target):
                missed = targets[targets.index(target):]
                break
            print(f"state at instr>={target} "
                  f"(instr={session.instructions} "
                  f"slices={session.slices}):")
            _print_state(session.state())
    if missed:
        exit_code = session.result.exit_code if session.result else None
        print(f"run completed (exit={exit_code}) before "
              f"instruction {missed[0]}", file=sys.stderr)
        return 1
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    journal = Journal.load(args.journal)
    header = journal.header
    print(f"journal {args.journal}: {header.get('program')} "
          f"[{header.get('scenario')}] engine={header.get('engine')} "
          f"src_arch={header.get('src_arch')}"
          + (f" dst_arch={header['dst_arch']}"
             if "dst_arch" in header else ""))
    print(f"  instructions={journal.instructions()} "
          f"exit={journal.exit_code()}")
    print("  events:", " ".join(f"{k}={v}" for k, v
                                in sorted(journal.summary().items())))
    if args.events:
        for event in journal.events:
            kind = KIND_NAMES.get(event["kind"], str(event["kind"]))
            rest = {k: (v.hex() if isinstance(v, bytes) else v)
                    for k, v in event.items() if k != "kind"}
            print(f"  {kind:10s} {rest}")
    return 0


_COMMANDS = {
    "record": _cmd_record,
    "replay": _cmd_replay,
    "diff": _cmd_diff,
    "seek": _cmd_seek,
    "show": _cmd_show,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return guarded("repro-replay", lambda: _COMMANDS[args.command](args))


if __name__ == "__main__":
    raise SystemExit(main())
