"""repro-group — coordinated group checkpoints from the command line.

Runs one two-phase group checkpoint-and-migrate (an nginx worker pool
plus a redis backend quiesced at a consistent cut, drained inside a
bounded budget, prepared into one group manifest, committed atomically)
— or, with ``--chaos``, the full chaos sweep: one forced fault per
protocol phase plus seeded probabilistic trials, asserting the
commit-or-resume invariant on every one.

Examples::

    python -m repro.tools.group --workers 3 --conns 12 --drain 6
    python -m repro.tools.group --fault commit --record group.journal
    python -m repro.tools.group --chaos --trials 8 --crash 0.25 \\
        --replay-check
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..chaos import KINDS, FaultPlan
from ..group.spec import FAULT_PHASES, GroupSpec
from ._cli import guarded


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-group",
        description="Coordinated group checkpoint: quiesce, drain, "
                    "prepare, commit — any fault at any phase aborts "
                    "cleanly with every member resumed at the cut.")
    parser.add_argument("--workers", type=int, default=2,
                        help="nginx worker-pool size (default 2)")
    parser.add_argument("--conns", type=int, default=8,
                        help="simulated in-flight connections "
                             "(default 8)")
    parser.add_argument("--drain", type=int, default=4,
                        help="drain budget: connections served to "
                             "completion before the cut; the rest are "
                             "journaled into sockets.img (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="connection-broker seed")
    parser.add_argument("--warmup", type=int, default=4000,
                        help="instructions each member runs before the "
                             "cut (default 4000)")
    parser.add_argument("--fault", default="", metavar="PHASE",
                        help="force a coordinator fault at a protocol "
                             f"phase ({', '.join(FAULT_PHASES)})")
    parser.add_argument("--record", metavar="PATH",
                        help="save the run's flight-recorder journal "
                             "to PATH")
    parser.add_argument("--replay-check", action="store_true",
                        help="replay the recorded journal and assert "
                             "its digest / RNG / fault / group event "
                             "streams are bit-identical")
    parser.add_argument("--chaos", action="store_true",
                        help="chaos-harness mode: forced-fault sweep "
                             "over every protocol phase plus seeded "
                             "probabilistic trials")
    parser.add_argument("--trials", type=int, default=0,
                        help="probabilistic trials in --chaos mode")
    parser.add_argument("--seed0", type=int, default=0,
                        help="first trial seed in --chaos mode")
    for kind in KINDS:
        parser.add_argument(f"--{kind}", type=float, default=0.0,
                            metavar="P",
                            help=f"chaos {kind} probability in [0, 1]")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the summary line")
    return parser


def _spec(args: argparse.Namespace, fault: str = "") -> GroupSpec:
    return GroupSpec(workers=args.workers, conns=args.conns,
                     drain=args.drain, seed=args.seed,
                     warmup=args.warmup, fault=fault)


def _streams(result):
    from ..replay import journal as jn
    events = result.journal.events
    return (result.journal.digest_stream(),
            [(e["label"], e["a"]) for e in events
             if e["kind"] == jn.EV_RNG],
            [(e["label"], e["a"], e["b"]) for e in events
             if e["kind"] == jn.EV_FAULT],
            [(e["label"], e["a"], e["b"]) for e in events
             if e["kind"] == jn.EV_GROUP])


def _replay_check(recorded) -> bool:
    """Replay a recorded group run from its own journal and compare
    the digest / RNG / fault / group-protocol event streams."""
    from ..replay.engine import Replayer
    replayed = Replayer(recorded.journal).run()
    ok = True
    for name, a, b in zip(("digest", "rng", "fault", "group"),
                          _streams(recorded), _streams(replayed)):
        if a != b:
            print(f"[replay-check] {name} stream DIVERGED "
                  f"({len(a)} vs {len(b)} events)", file=sys.stderr)
            ok = False
    if ok:
        phases = ", ".join(label for label, _, _ in _streams(recorded)[3])
        print(f"[replay-check] journal replays bit-identically "
              f"({phases})", file=sys.stderr)
    return ok


def _run_one(args: argparse.Namespace, chaos_spec: str) -> int:
    """One group run through the flight recorder; prints the protocol
    trace and reports commit or clean abort."""
    from ..replay import journal as jn
    from ..replay.engine import record_group
    spec = _spec(args, fault=args.fault)
    recorded = record_group(spec.to_spec(), chaos=chaos_spec)
    group_events = [(e["label"], e["a"], e["b"]) for e in
                    recorded.journal.of_kind(jn.EV_GROUP)]
    if not args.quiet:
        for label, a, b in group_events:
            print(f"  {label}  members={a} detail={b}")
    last = group_events[-1][0] if group_events else "?"
    outcome = ("committed" if last.startswith("group:committed")
               else "aborted" if last.startswith("group:aborted")
               else last)
    print(f"[group] {spec.to_spec()}"
          f"{' chaos=' + chaos_spec if chaos_spec else ''}: {outcome}, "
          f"exit {recorded.exit_code}")
    if args.record:
        recorded.journal.save(args.record)
        print(f"[group] journal saved to {args.record}")
    if args.replay_check and not _replay_check(recorded):
        return 1
    return recorded.exit_code or 0


def _run_chaos(args: argparse.Namespace, probabilities: dict) -> int:
    """The chaos sweep: one forced fault per protocol phase, a
    fault-free control, and optional seeded probabilistic trials."""
    from ..group.chaos import GroupChaosHarness
    if args.trials > 0 and not any(probabilities.values()):
        raise ValueError("probabilistic trials need at least one "
                         "fault probability (e.g. --crash 0.25)")
    harness = GroupChaosHarness(_spec(args))
    trials = harness.sweep_phases()
    if args.trials > 0:
        trials += harness.run_trials(args.trials, seed0=args.seed0,
                                     **probabilities)
    failed = [t for t in trials if not t.ok]
    committed = sum(1 for t in trials if t.outcome == "committed")
    resumed = sum(1 for t in trials if t.outcome == "resumed")
    if not args.quiet:
        for t in trials:
            mark = "ok " if t.ok else "FAIL"
            which = (f"fault={t.phase}" if t.phase
                     else f"seed={t.seed}" if t.faults else "control")
            extra = f" ({t.detail})" if t.detail else ""
            print(f"  {which:<14} {t.outcome:<9} [{mark}] "
                  f"faults={t.faults or '{}'}{extra}")
    print(f"[group-chaos] {len(trials)} trials "
          f"({len(FAULT_PHASES)} forced phases + control"
          f"{f' + {args.trials} seeded' if args.trials else ''}): "
          f"{committed} committed, {resumed} resumed, "
          f"{len(failed)} invariant violation(s)")
    if failed:
        return 1
    if args.replay_check:
        from ..replay.engine import record_group
        spec = _spec(args, fault=FAULT_PHASES[0])
        if not _replay_check(record_group(spec.to_spec())):
            return 1
    return 0


def _run(args: argparse.Namespace) -> int:
    probabilities = {kind: getattr(args, kind) for kind in KINDS}
    if args.chaos:
        return _run_chaos(args, probabilities)
    chaos_spec = (FaultPlan(args.seed, **probabilities).to_spec()
                  if any(probabilities.values()) else "")
    return _run_one(args, chaos_spec)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return guarded("repro-group", lambda: _run(args))


if __name__ == "__main__":
    raise SystemExit(main())
