"""repro-verify — the restore guard as a CLI: verify / doctor / quarantine.

Judges a directory of ``.img`` files (as written by ``dapper-migrate
--keep-images`` or ``store get``) with the multi-pass image verifier,
repairs what it can, and quarantines what it cannot.

Examples::

    # snapshot the sender-side ground truth next to a healthy dump
    python -m repro.tools.verify fingerprint images/ -o images.fp

    # judge an image set (semantic pass needs the linked binary)
    python -m repro.tools.verify verify images/ --binary app.aarch64.delf

    # repair in place, or quarantine with a machine-readable diagnosis
    python -m repro.tools.verify doctor images/ --binary app.aarch64.delf \\
        --digests images.fp --quarantine quarantine/

    # inspect / drop quarantined images
    python -m repro.tools.verify quarantine ls quarantine/
    python -m repro.tools.verify quarantine rm quarantine/ <id>
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Optional

from ..binfmt.delf import DelfBinary
from ..errors import VerifyError
from ..store import CheckpointStore
from ..verify import (DIAGNOSIS_FILE, ImageVerifier, Quarantine,
                      image_page_digests)
from ._cli import guarded
from .crit import load_image_set


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Multi-pass state-image verifier with auto-repair "
                    "and quarantine (the restore guard).")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sources(p):
        p.add_argument("--binary", metavar="DELF",
                       help="linked DELF binary: enables the semantic "
                            "pass and binary-sourced page repair")
        p.add_argument("--digests", metavar="FILE",
                       help="fingerprint file (see the fingerprint "
                            "command): per-page digest manifest to "
                            "check the bytes against")
        p.add_argument("--expect", metavar="DIGEST",
                       help="expected whole-set content digest")
        p.add_argument("--store", metavar="DIR",
                       help="checkpoint store directory: resolves delta "
                            "parents and re-fetches repair pages by "
                            "digest")

    verify = sub.add_parser("verify", help="judge an image directory")
    verify.add_argument("image_dir")
    add_sources(verify)

    doctor = sub.add_parser(
        "doctor", help="verify, repair in place what has a known-good "
                       "source, quarantine the rest")
    doctor.add_argument("image_dir")
    add_sources(doctor)
    doctor.add_argument("--quarantine", metavar="DIR",
                        help="quarantine directory (default: a "
                             "'quarantine' sibling of the image dir)")

    fp = sub.add_parser(
        "fingerprint", help="print (or save) the whole-set digest and "
                            "per-page manifest of a healthy dump")
    fp.add_argument("image_dir")
    fp.add_argument("-o", "--output", help="write JSON here instead of "
                                           "stdout")

    q = sub.add_parser("quarantine", help="inspect the quarantine area")
    q.add_argument("action", choices=["ls", "rm"])
    q.add_argument("quarantine_dir")
    q.add_argument("qid", nargs="?",
                   help="quarantined image id (rm; prefixes allowed)")
    return parser


def _verifier_from(args: argparse.Namespace) -> ImageVerifier:
    binary = None
    if args.binary:
        with open(args.binary, "rb") as fh:
            binary = DelfBinary.from_bytes(fh.read())
    digests: Optional[Dict[int, str]] = None
    if args.digests:
        with open(args.digests) as fh:
            manifest = json.load(fh)
        digests = {int(vaddr, 0): digest
                   for vaddr, digest in manifest.get("pages", {}).items()}
        if args.expect is None and "content_digest" in manifest:
            args.expect = manifest["content_digest"]
    store = CheckpointStore.load_dir(args.store) if args.store else None
    return ImageVerifier(binary=binary, store=store, page_digests=digests,
                         expected_digest=args.expect)


def _print_report(report) -> None:
    for finding in report.findings + report.notes:
        where = (f" @{finding.vaddr:#x}" if finding.vaddr is not None
                 else "")
        print(f"  [{finding.pass_name}/{finding.code}] "
              f"{finding.severity}{where}: {finding.message}")
    print(report.summary())


def _resolve_qid(quarantine: Quarantine, prefix: str) -> str:
    matches = [qid for qid in quarantine.ids() if qid.startswith(prefix)]
    if not matches:
        raise VerifyError(f"no quarantined image matching {prefix!r}")
    if len(matches) > 1:
        raise VerifyError(f"ambiguous quarantine id {prefix!r} "
                          f"({len(matches)} matches)")
    return matches[0]


def _cmd_verify(args: argparse.Namespace) -> int:
    images = load_image_set(args.image_dir)
    report = _verifier_from(args).verify(images)
    _print_report(report)
    return 0 if report.ok else 1


def _cmd_doctor(args: argparse.Namespace) -> int:
    images = load_image_set(args.image_dir)
    fixed, report = _verifier_from(args).repair(images)
    if fixed is not None and not report.repaired:
        print(f"image is healthy ({report.checks} checks, passes: "
              f"{'+'.join(report.passes_run)})")
        return 0
    if fixed is not None:
        for name, blob in sorted(fixed.files.items()):
            with open(os.path.join(args.image_dir, name), "wb") as fh:
                fh.write(blob)
        pages = ", ".join(f"{f.vaddr:#x}" for f in report.repaired)
        print(f"repaired {len(report.repaired)} page(s) in place "
              f"({pages}); image verifies clean")
        return 0
    qdir = args.quarantine or os.path.join(
        os.path.dirname(os.path.abspath(args.image_dir.rstrip("/"))),
        "quarantine")
    quarantine = Quarantine.at_dir(qdir)
    qid = quarantine.add(images, report,
                         reason=f"doctor {args.image_dir}")
    _print_report(report)
    print(f"unrepairable: quarantined as {qid} under {qdir} "
          f"(diagnosis: {os.path.join(qdir, qid, DIAGNOSIS_FILE)})")
    return 1


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    images = load_image_set(args.image_dir)
    manifest = {
        "content_digest": images.content_digest(),
        "pages": {f"{vaddr:#x}": digest
                  for vaddr, digest in
                  sorted(image_page_digests(images).items())},
    }
    blob = json.dumps(manifest, indent=1, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(blob + "\n")
        print(f"fingerprint of {len(manifest['pages'])} page(s) -> "
              f"{args.output}")
    else:
        print(blob)
    return 0


def _cmd_quarantine(args: argparse.Namespace) -> int:
    quarantine = Quarantine.at_dir(args.quarantine_dir)
    if args.action == "ls":
        qids = quarantine.ids()
        for qid in qids:
            diagnosis = quarantine.diagnosis(qid)
            findings = diagnosis.get("findings", [])
            first = findings[0]["message"] if findings else "?"
            print(f"{qid} pass={diagnosis.get('failing_pass', '?')} "
                  f"findings={len(findings)}: {first}")
        if not qids:
            print("(quarantine is empty)")
        return 0
    if not args.qid:
        raise VerifyError("quarantine rm needs an image id")
    qid = _resolve_qid(quarantine, args.qid)
    removed = quarantine.remove(qid)
    print(f"removed {qid} ({removed} files)")
    return 0


_COMMANDS = {
    "verify": _cmd_verify,
    "doctor": _cmd_doctor,
    "fingerprint": _cmd_fingerprint,
    "quarantine": _cmd_quarantine,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return guarded("repro-verify", lambda: _COMMANDS[args.command](args))


if __name__ == "__main__":
    raise SystemExit(main())
