"""chaos — seeded fault-injection trials against the migration pipeline.

Runs N seeded chaos trials and asserts the transactional invariant:
every migration either **completes** (byte-identical output + settled
memory vs a fault-free reference) or **rolls back** to a resumable
source (destination swept clean: no images, no orphan chunks, no
half-restored process) — never anything in between.

Examples::

    python -m repro.tools.chaos --trials 20 --drop 0.3 --corrupt 0.2
    python -m repro.tools.chaos --lazy --pskill 0.8 --trials 10
    python -m repro.tools.chaos --store --drop 0.4 --partition 0.15 \\
        --replay-check
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..apps.registry import get_app
from ..chaos import KINDS, FaultPlan
from ..chaos.harness import ChaosHarness
from ..errors import ReproError
from ._cli import guarded


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dapper-chaos",
        description="Seeded chaos trials: every migration completes "
                    "byte-identically or rolls back to a resumable "
                    "source.")
    parser.add_argument("--app", default="kmeans",
                        help="registered app to migrate (default kmeans)")
    parser.add_argument("--trials", type=int, default=10,
                        help="number of seeded trials")
    parser.add_argument("--seed0", type=int, default=0,
                        help="first seed (trials use seed0..seed0+N-1)")
    for kind in KINDS:
        parser.add_argument(f"--{kind}", type=float, default=0.0,
                            metavar="P",
                            help=f"{kind} fault probability in [0, 1]")
    parser.add_argument("--lazy", action="store_true",
                        help="post-copy (lazy) migrations")
    parser.add_argument("--store", action="store_true",
                        help="content-addressed store transfer")
    parser.add_argument("--retry-budget", type=int, default=3,
                        help="attempts per stage before rollback")
    parser.add_argument("--warmup", type=int, default=5000,
                        help="instructions to run before migrating")
    parser.add_argument("--verify-gate", action="store_true",
                        help="disable the transfer's own arrival digest "
                             "check so corrupt faults reach (and must "
                             "be caught by) the restore guard")
    parser.add_argument("--replay-check", action="store_true",
                        help="record the first faulted seed with the "
                             "flight recorder and assert its journal "
                             "replays bit-identically")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the summary line")
    return parser


def _replay_check(args, probabilities, faulted_seed: int) -> bool:
    """Record one faulted migration, replay it from its own journal,
    and compare the digest / RNG / fault event streams."""
    from ..replay import journal as jn
    from ..replay.engine import Replayer, record_migrate

    spec = FaultPlan(faulted_seed, **probabilities).to_spec()
    source = get_app(args.app).source("small")
    recorded = record_migrate(source, args.app, warmup=args.warmup,
                              lazy=args.lazy, store=args.store,
                              chaos=spec, retries=args.retry_budget)
    replayed = Replayer(recorded.journal).run()

    def streams(res):
        events = res.journal.events
        return (res.journal.digest_stream(),
                [(e["label"], e["a"]) for e in events
                 if e["kind"] == jn.EV_RNG],
                [(e["label"], e["a"], e["b"]) for e in events
                 if e["kind"] == jn.EV_FAULT])
    names = ("digest", "rng", "fault")
    ok = True
    for name, a, b in zip(names, streams(recorded), streams(replayed)):
        if a != b:
            print(f"[replay-check] {name} stream DIVERGED "
                  f"({len(a)} vs {len(b)} events)", file=sys.stderr)
            ok = False
    if ok:
        faults = sum(1 for e in recorded.journal.events
                     if e["kind"] == jn.EV_FAULT)
        print(f"[replay-check] seed {faulted_seed} ({spec}): journal "
              f"replays bit-identically ({faults} fault event(s))",
              file=sys.stderr)
    return ok


def _run(args: argparse.Namespace, probabilities: dict) -> int:
    try:
        harness = ChaosHarness(args.app, lazy=args.lazy,
                               use_store=args.store, warmup=args.warmup,
                               retry_budget=args.retry_budget,
                               verify_gate=args.verify_gate)
    except KeyError as exc:  # unknown app name from the registry
        raise ReproError(exc.args[0]) from None
    trials = harness.run_trials(args.trials, seed0=args.seed0,
                                **probabilities)

    failed = [t for t in trials if not t.ok]
    completed = sum(1 for t in trials if t.outcome == "completed")
    rolled = sum(1 for t in trials if t.outcome == "rolled-back")
    fallbacks = sum(1 for t in trials if t.fallback)
    repaired = sum(t.repaired_pages for t in trials)
    quarantined = sum(1 for t in trials if t.quarantined)
    fired = sum(sum(t.faults.values()) for t in trials)
    if not args.quiet:
        for t in trials:
            mark = "ok " if t.ok else "FAIL"
            extra = f" ({t.detail})" if t.detail else ""
            print(f"  seed {t.seed:>4}  {t.outcome:<11} [{mark}] "
                  f"faults={t.faults or '{}'}{extra}")
    print(f"[chaos] {args.app}{' lazy' if args.lazy else ''}"
          f"{' store' if args.store else ''}"
          f"{' verify-gate' if args.verify_gate else ''}: "
          f"{len(trials)} trials, "
          f"{completed} completed, {rolled} rolled back, "
          f"{fallbacks} pre-copy fallback(s), {repaired} page(s) "
          f"repaired, {quarantined} quarantine(s), {fired} faults fired, "
          f"{len(failed)} invariant violation(s)")
    if failed:
        return 1

    if args.replay_check:
        faulted = next((t.seed for t in trials if t.faults), None)
        if faulted is None:
            print("[replay-check] skipped: no trial fired a fault",
                  file=sys.stderr)
        elif not _replay_check(args, probabilities, faulted):
            return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    probabilities = {kind: getattr(args, kind) for kind in KINDS}
    if not any(probabilities.values()):
        print("dapper-chaos: no fault probabilities given "
              "(e.g. --drop 0.3)", file=sys.stderr)
        return 2
    return guarded("dapper-chaos", lambda: _run(args, probabilities))


if __name__ == "__main__":
    raise SystemExit(main())
