"""Security evaluation substrate (paper §IV-B, §IV-C).

* :mod:`repro.security.gadgets` — ROP gadget scanner over DELF binaries
  (both ISAs), used for the attack-surface comparison of Fig. 11.
* :mod:`repro.security.attacker` — the shared attack model: an attacker
  who learns stack-slot offsets from the unshuffled binary and replays
  out-of-bounds write payloads against a (possibly shuffled) process.
* :mod:`repro.security.dop` — Min-DOP-style data-oriented attack.
* :mod:`repro.security.bopc` — BOPC-style payload synthesis and replay.
* :mod:`repro.security.cves` — CVE-2015-4335 (Redis) and CVE-2013-2028
  (Nginx) style exploit simulations.
"""

from .gadgets import count_gadgets, gadget_reduction
from .attacker import AttackOutcome, StackAttack, run_attack_trials

__all__ = ["count_gadgets", "gadget_reduction", "AttackOutcome",
           "StackAttack", "run_attack_trials"]
