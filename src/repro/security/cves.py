"""CVE exploit simulations (paper §IV-B).

* **CVE-2015-4335** (Redis ≤ 3.0.1 / the paper's v5.4.0 build): the
  ``redis-rce`` exploit loads unsafe Lua bytecode through ``loadstring``
  ROP gadgets, bootstrapped from arbitrary stack read/write. Against our
  Redis-like server the exploit must control the command dispatcher's
  frame — the operation selector, the normalized key, and the trace
  word feeding the gadget chain.
* **CVE-2013-2028** (Nginx 1.3.9): a stack buffer overflow in chunked
  transfer decoding. The synthetic arbitrary-code-execution exploit
  overflows the static handler's frame to control its response
  descriptor fields.

Both exploits are built from the deployed binary's layout and replayed
through the shared :class:`~repro.security.attacker.StackAttack`
machinery; Dapper's shuffling relocates the targeted allocations and
breaks the chains.
"""

from __future__ import annotations

from ..apps.registry import get_app
from .attacker import StackAttack


def build_redis_cve_2015_4335(arch: str = "x86_64") -> StackAttack:
    """The redis-rce style exploit against the KV server's dispatcher."""
    program = get_app("redis").compile("small")
    return StackAttack(
        program, arch, victim_func="dispatch",
        target_slots=["kind", "normalized", "trace"],
        payload_values=[9, 0x1C3, 0x6C75615F])   # force DEL path + gadget ids


def build_nginx_cve_2013_2028(arch: str = "x86_64") -> StackAttack:
    """The chunked-encoding stack overflow against the static handler."""
    program = get_app("nginx").compile("small")
    return StackAttack(
        program, arch, victim_func="handle_static",
        target_slots=["status", "body", "chunked", "ttl"],
        payload_values=[200, 0x41414141, 1, 0x7FFF])
