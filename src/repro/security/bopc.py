"""BOPC: block-oriented programming payload synthesis (paper §IV-B).

The Block-Oriented Programming Compiler takes an attacker payload in a
high-level language (SPL) and stitches it out of the victim's own basic
blocks — "functional blocks" performing the payload's statements and
"dispatcher blocks" connecting them. The paper runs BOPC against the
Nginx server for memory/register read/write and ``execve`` payloads and
shows Dapper's shuffling breaks the synthesized chains.

This module reproduces the pipeline mechanically:

1. **SPL payload** — a list of abstract statements,
2. **gadget discovery** — scan the victim function's code for
   fp-relative load/store instructions: stores are write-functional
   blocks, loads are read-functional blocks, keyed by the slot they
   touch,
3. **synthesis** — bind each SPL statement to a discovered block,
   yielding the concrete fp-relative offsets the chain dereferences,
4. **replay** — drive the chain against a (possibly shuffled) victim:
   the chain works iff every bound offset still addresses the slot it
   was synthesized for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..binfmt.delf import DelfBinary, TEXT_BASE
from ..compiler.driver import CompiledProgram
from ..errors import SecurityHarnessError
from ..isa import get_isa
from .attacker import StackAttack

#: SPL statement kinds the harness supports (a subset of BOPC's SPL).
SPL_WRITE_MEM = "write_mem"
SPL_READ_MEM = "read_mem"
SPL_WRITE_REG = "write_reg"
SPL_READ_REG = "read_reg"
SPL_EXECVE = "execve"


class SplStatement:
    def __init__(self, kind: str, var: Optional[str] = None,
                 value: int = 0):
        self.kind = kind
        self.var = var
        self.value = value

    def __repr__(self) -> str:
        return f"<SPL {self.kind} {self.var or ''}>"


class FunctionalBlock:
    """One discovered block: an instruction touching a stack slot."""

    def __init__(self, addr: int, kind: str, slot_name: str,
                 fp_offset: int):
        self.addr = addr
        self.kind = kind            # 'write' or 'read'
        self.slot_name = slot_name
        self.fp_offset = fp_offset

    def __repr__(self) -> str:
        return (f"<Block {self.kind} {self.slot_name} fp{self.fp_offset:+d} "
                f"@{self.addr:#x}>")


def discover_blocks(binary: DelfBinary, func: str) -> List[FunctionalBlock]:
    """Scan one function's code for slot-addressed functional blocks."""
    isa = get_isa(binary.arch)
    fp_index = isa.reg(isa.abi.frame_pointer)
    record = binary.frames.get(func)
    blocks: List[FunctionalBlock] = []
    start = record.addr - TEXT_BASE
    end = min(record.end_addr - TEXT_BASE, len(binary.text))
    offset = start
    while offset < end:
        instr = isa.decode(binary.text, offset, TEXT_BASE + offset)
        if instr.op in ("load", "store") and instr.rn == fp_index \
                and instr.imm is not None and instr.imm < 0:
            slot = record.slot_containing(instr.imm)
            if slot is not None:
                kind = "write" if instr.op == "store" else "read"
                blocks.append(FunctionalBlock(instr.addr, kind, slot.name,
                                              instr.imm))
        offset += instr.size
    return blocks


class SynthesizedPayload:
    """The output of BOPC synthesis: statements bound to blocks."""

    def __init__(self, func: str,
                 bindings: List[Tuple[SplStatement, FunctionalBlock]]):
        self.func = func
        self.bindings = bindings

    def target_slots(self) -> List[str]:
        return [block.slot_name for _stmt, block in self.bindings]

    def learned_offsets(self) -> Dict[str, int]:
        return {block.slot_name: block.fp_offset
                for _stmt, block in self.bindings}

    def __repr__(self) -> str:
        return f"<SynthesizedPayload {self.func} x{len(self.bindings)}>"


def synthesize(binary: DelfBinary, func: str,
               payload: List[SplStatement]) -> SynthesizedPayload:
    """Bind an SPL payload to functional blocks of ``func``.

    Register statements bind to write blocks (registers are loaded from
    stack references in the paper's chains); ``execve`` needs a write
    block for the argument vector plus a read block for the dispatcher.
    """
    blocks = discover_blocks(binary, func)
    writes = [b for b in blocks if b.kind == "write"]
    reads = [b for b in blocks if b.kind == "read"]
    used: set = set()

    def take(pool: List[FunctionalBlock], var: Optional[str]
             ) -> FunctionalBlock:
        for block in pool:
            if block.slot_name in used:
                continue
            if var is not None and block.slot_name != var:
                continue
            used.add(block.slot_name)
            return block
        raise SecurityHarnessError(
            f"BOPC: no unbound functional block for {var!r} in {func}")

    bindings: List[Tuple[SplStatement, FunctionalBlock]] = []
    for stmt in payload:
        if stmt.kind in (SPL_WRITE_MEM, SPL_WRITE_REG):
            bindings.append((stmt, take(writes, stmt.var)))
        elif stmt.kind in (SPL_READ_MEM, SPL_READ_REG):
            bindings.append((stmt, take(reads, stmt.var)))
        elif stmt.kind == SPL_EXECVE:
            bindings.append((stmt, take(writes, None)))
            bindings.append((SplStatement(SPL_READ_MEM), take(reads, None)))
        else:
            raise SecurityHarnessError(f"unknown SPL kind {stmt.kind!r}")
    return SynthesizedPayload(func, bindings)


def build_bopc_attack(program: CompiledProgram, arch: str, func: str,
                      payload: List[SplStatement]) -> StackAttack:
    """Synthesize a payload against the deployed binary and wrap it as a
    replayable stack attack."""
    synthesized = synthesize(program.binary(arch), func, payload)
    slots = synthesized.target_slots()
    return StackAttack(program, arch, victim_func=func, target_slots=slots,
                       payload_values=[0xB0BC0000 + i
                                       for i in range(len(slots))])


def nginx_payloads() -> Dict[str, List[SplStatement]]:
    """The payload set the paper runs against Nginx."""
    return {
        "mem_write": [SplStatement(SPL_WRITE_MEM, "status"),
                      SplStatement(SPL_WRITE_MEM, "body")],
        "mem_read": [SplStatement(SPL_READ_MEM, "status"),
                     SplStatement(SPL_READ_MEM, "body")],
        "reg_write": [SplStatement(SPL_WRITE_REG, "state"),
                      SplStatement(SPL_WRITE_REG, "upstream")],
        "execve": [SplStatement(SPL_EXECVE)],
    }
