"""Min-DOP: a minimal data-oriented-programming attack (paper §IV-B).

Mirrors the synthetic vulnerable server of the Min-DOP artifact the
paper evaluates: a request loop whose handler holds exploit-sensitive
non-control data (a privilege flag, a secret pointer, a length guard)
adjacent to an overflowable buffer. The exploit uses an integer
underflow to get an out-of-bounds stack write, then chains arbitrary
reads/writes into a privilege-escalation + data-leak payload.

The DOP payload needs **three** stack allocations placed correctly —
the paper's headline number: with 4 bits of shuffle entropy the attack
succeeds with probability 0.125³ ≈ 0.19 %.
"""

from __future__ import annotations

from ..compiler import compile_source
from .attacker import StackAttack

#: The vulnerable server, DapperC port of the Min-DOP victim.
MIN_DOP_SOURCE = """
global int request_queue[64];
global int leak_sink;
global int lcg_state;

func lcg_next() -> int {
    lcg_state = (lcg_state * 1664525 + 1013904223) % 2147483648;
    return lcg_state;
}

// The vulnerable request handler: `buffer` can be overflowed through the
// unchecked `length` (integer underflow in the original), reaching the
// exploit-sensitive locals around it.
func handle_request(int req) -> int {
    int buffer[4];
    int is_admin;
    int secret_ptr;
    int length_guard;
    int session_id;
    int reply_code;
    int audit_mark;
    int scratch_a;
    int scratch_b;
    is_admin = 0;
    secret_ptr = 7777;
    length_guard = 4;
    session_id = req % 1000;
    reply_code = 200;
    audit_mark = req % 17;
    scratch_a = req / 3;
    scratch_b = req / 5;
    buffer[0] = req % 256;
    buffer[1] = (req / 256) % 256;
    buffer[2] = audit_mark;
    buffer[3] = session_id % 256;
    if (is_admin == 1) {
        leak_sink = secret_ptr;
    }
    return reply_code + buffer[0] + scratch_a - scratch_a
           + scratch_b - scratch_b + length_guard - length_guard;
}

func main() -> int {
    int i; int acc;
    lcg_state = 1337;
    acc = 0;
    i = 0;
    while (i < 2000) {
        request_queue[i % 64] = lcg_next();
        acc = (acc + handle_request(request_queue[i % 64])) % 1000000007;
        i = i + 1;
    }
    print(acc);
    return 0;
}
"""

#: The three allocations the DOP gadget chain must control: flip the
#: privilege flag, redirect the secret pointer, disable the length guard.
MIN_DOP_TARGETS = ["is_admin", "secret_ptr", "length_guard"]


def build_min_dop_attack(arch: str = "x86_64") -> StackAttack:
    program = compile_source(MIN_DOP_SOURCE, "min-dop")
    return StackAttack(program, arch, victim_func="handle_request",
                       target_slots=MIN_DOP_TARGETS,
                       payload_values=[1, 0xDEAD, 0x7FFFFFFF])
