"""The shared attack model for §IV-B's security evaluation.

All three attack families the paper evaluates (Min-DOP, BOPC payloads,
and the Redis/Nginx CVE exploits) reduce to the same primitive: the
attacker studies the *deployed binary's* layout offline to learn where
exploit-sensitive stack allocations live relative to the frame pointer,
then uses a memory-corruption primitive (out-of-bounds stack write /
arbitrary read-write) to hit those offsets in the running process.

Dapper's stack shuffling invalidates exactly that knowledge: the victim
runs under a permuted frame layout the attacker has not seen, so the
payload's writes land in the wrong slots (paper: "relocation of
exploit-sensitive data around the overflowed buffer, resulting in
incorrect gadget chaining and dispatching").

:class:`StackAttack` reproduces this mechanically:

1. learn target-slot offsets from the *reference* (unshuffled) binary,
2. park a victim process at an equivalence point in the target function,
3. optionally shuffle it with Dapper (unknown seed),
4. apply the payload writes at the learned fp-relative offsets,
5. succeed iff every targeted slot — located via the *actual* layout —
   now holds the attacker's value.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..binfmt.delf import DelfBinary
from ..compiler.driver import CompiledProgram
from ..core.entropy import frame_entropy_bits, guess_probability
from ..core.policies.stack_shuffle import StackShufflePolicy
from ..core.rewriter import ImageMemory, ProcessRewriter
from ..core.runtime import DapperRuntime
from ..criu.restore import restore_process
from ..errors import SecurityHarnessError
from ..isa import get_isa
from ..vm.kernel import Machine


class AttackOutcome:
    def __init__(self, *, succeeded: bool, slots_hit: int, slots_needed: int,
                 shuffled: bool, entropy_bits: int):
        self.succeeded = succeeded
        self.slots_hit = slots_hit
        self.slots_needed = slots_needed
        self.shuffled = shuffled
        self.entropy_bits = entropy_bits

    def __repr__(self) -> str:
        return (f"<AttackOutcome {'HIT' if self.succeeded else 'mitigated'} "
                f"{self.slots_hit}/{self.slots_needed} "
                f"{'shuffled' if self.shuffled else 'unprotected'}>")


class StackAttack:
    """One attack campaign against one function of one program."""

    def __init__(self, program: CompiledProgram, arch: str,
                 victim_func: str, target_slots: List[str],
                 payload_values: Optional[List[int]] = None):
        self.program = program
        self.arch = arch
        self.victim_func = victim_func
        self.target_slots = list(target_slots)
        self.payload_values = payload_values or [
            0x41414141 + i for i in range(len(target_slots))]
        if len(self.payload_values) != len(self.target_slots):
            raise SecurityHarnessError("one payload value per target slot")
        self.reference_binary = program.binary(arch)
        # Offline phase: learn fp-relative offsets from the deployed binary.
        record = self.reference_binary.frames.get(victim_func)
        self.learned_offsets: Dict[str, int] = {}
        for name in self.target_slots:
            slot = record.slot_by_name(name)
            if slot is None:
                raise SecurityHarnessError(
                    f"{victim_func} has no slot {name!r}")
            self.learned_offsets[name] = slot.offset
        self.entropy_bits = frame_entropy_bits(record)

    # -- victim setup -------------------------------------------------------

    def _park_victim(self, machine: Machine,
                     max_steps: int = 20_000_000):
        """Run the program until a thread parks at the victim function's
        entry equivalence point."""
        from ..core.migration import exe_path_for, install_program
        install_program(machine, self.program)
        process = machine.spawn_process(
            exe_path_for(self.program.name, self.arch))
        runtime = DapperRuntime(machine, process)
        entry = self.reference_binary.stackmaps.entry_for(self.victim_func)
        if entry is None:
            raise SecurityHarnessError(
                f"{self.victim_func} has no entry equivalence point")
        # Park at successive equivalence points until one is the victim
        # function's entry (the runtime lets the end-user pick when to
        # transform, §III).
        for _ in range(4096):
            runtime.pause_at_equivalence_points(max_steps)
            if any(t.pc == entry.addr for t in process.live_threads()):
                return runtime, process
            runtime.resume()
        raise SecurityHarnessError("victim never reached the target function")

    # -- one attack trial --------------------------------------------------------

    def run_trial(self, shuffle_seed: Optional[int]) -> AttackOutcome:
        """Execute one end-to-end trial; ``shuffle_seed=None`` attacks an
        unprotected process."""
        machine = Machine(get_isa(self.arch), name="victim-host")
        runtime, process = self._park_victim(machine)
        entry = self.reference_binary.stackmaps.entry_for(self.victim_func)

        if shuffle_seed is None:
            active_binary = self.reference_binary
            victim = process
            machine_live = machine
            runtime_obj = runtime
        else:
            images = runtime.checkpoint()
            runtime.kill_source()
            policy = StackShufflePolicy(
                self.reference_binary, seed=shuffle_seed,
                dst_exe_path=f"/bin/{self.program.name}.{self.arch}.shuf")
            ProcessRewriter().rewrite(images, policy)
            machine.tmpfs.write(policy.dst_exe_path,
                                policy.shuffled_binary.to_bytes())
            victim = restore_process(machine, images)
            active_binary = policy.shuffled_binary
            machine_live = machine
            runtime_obj = None

        # The victim thread parked at the function entry.
        thread = next(t for t in victim.live_threads()
                      if t.pc == entry.addr)
        fp = thread.fp

        # Exploit phase: OOB writes at the offsets learned offline.
        for name, value in zip(self.target_slots, self.payload_values):
            victim.aspace.write_u64(fp + self.learned_offsets[name], value)

        # Did the payload land? Check via the *actual* deployed layout.
        actual = active_binary.frames.get(self.victim_func)
        hits = 0
        for name, value in zip(self.target_slots, self.payload_values):
            slot = actual.slot_by_name(name)
            if victim.aspace.read_u64(fp + slot.offset) == value:
                hits += 1
        # Clean up the parked victim.
        if runtime_obj is not None:
            runtime_obj.resume()
        machine_live.kill(victim)
        return AttackOutcome(
            succeeded=(hits == len(self.target_slots)),
            slots_hit=hits, slots_needed=len(self.target_slots),
            shuffled=shuffle_seed is not None,
            entropy_bits=self.entropy_bits)

    def expected_success_probability(self) -> float:
        """Paper's analytic estimate: (1/2n)^k for k targeted allocations."""
        return guess_probability(self.entropy_bits) ** len(self.target_slots)


def run_attack_trials(attack: StackAttack, trials: int,
                      seed: int = 7) -> Tuple[int, float]:
    """Run ``trials`` shuffled-victim attacks with fresh shuffle seeds.

    Returns (successes, empirical success rate).
    """
    rng = random.Random(seed)
    successes = 0
    for _ in range(trials):
        outcome = attack.run_trial(shuffle_seed=rng.randrange(1 << 30))
        if outcome.succeeded:
            successes += 1
    return successes, successes / trials if trials else 0.0
