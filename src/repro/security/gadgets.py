"""ROP gadget counting (paper §IV-C, Fig. 11).

Measures the attack surface of a program binary the way the paper does:
count the ROP gadgets reachable in its executable code.

* **x86_64** (variable-length): Galileo-style backward walk — for every
  ``ret`` (0xC3) byte, every start offset within a lookback window that
  decodes cleanly to an instruction sequence ending exactly at the
  ``ret`` is one gadget. Misaligned decodes count, as on real x86.
* **aarch64** (fixed-width): for every ``ret`` word, each suffix of up
  to ``max_insns`` valid preceding instruction words is one gadget.
"""

from __future__ import annotations

from typing import Dict

from ..binfmt.delf import DelfBinary
from ..isa import get_isa

_X86_LOOKBACK = 20
_ARM_MAX_INSNS = 5


def count_gadgets(binary: DelfBinary) -> int:
    if binary.arch == "x86_64":
        return _count_x86(binary.text)
    if binary.arch == "aarch64":
        return _count_arm(binary.text)
    raise ValueError(f"unknown arch {binary.arch}")


def _count_x86(text: bytes) -> int:
    isa = get_isa("x86_64")
    total = 0
    for i, byte in enumerate(text):
        if byte != 0xC3:
            continue
        start_min = max(0, i - _X86_LOOKBACK)
        for start in range(start_min, i):
            if _decodes_to_ret(isa, text, start, i):
                total += 1
    return total


def _decodes_to_ret(isa, text: bytes, start: int, ret_at: int) -> bool:
    offset = start
    while offset < ret_at:
        try:
            instr = isa.decode(text, offset, offset)
        except Exception:
            return False
        if instr.op in ("ret", "trap"):
            return False    # ends early — counted from its own start
        offset += instr.size
    return offset == ret_at


def _count_arm(text: bytes) -> int:
    isa = get_isa("aarch64")
    ret_word = isa.ret_bytes
    total = 0
    for i in range(0, len(text) - 3, 4):
        if bytes(text[i:i + 4]) != ret_word:
            continue
        # Each valid suffix of preceding instructions is one gadget.
        length = 1
        while length <= _ARM_MAX_INSNS:
            start = i - length * 4
            if start < 0:
                break
            try:
                instr = isa.decode(text, start, start)
            except Exception:
                break
            if instr.op in ("ret", "trap", "b", "call"):
                break
            length += 1
            total += 1
    return total


def gadget_reduction(dapper_binary: DelfBinary,
                     baseline_binary: DelfBinary) -> float:
    """Percentage reduction of Dapper's binary vs a baseline's (Fig. 11)."""
    base = count_gadgets(baseline_binary)
    ours = count_gadgets(dapper_binary)
    if base == 0:
        return 0.0
    return (1.0 - ours / base) * 100.0


def gadget_counts_by_arch(binaries: Dict[str, DelfBinary]) -> Dict[str, int]:
    return {arch: count_gadgets(b) for arch, b in binaries.items()}
