"""K-means clustering, in DapperC (paper §IV).

Integer-coordinate Lloyd iterations: assign each point to its nearest
centroid, recompute centroids, repeat. Deterministic LCG-generated
points, checksummed assignments.
"""

from __future__ import annotations


def kmeans_source(points: int = 60, k: int = 4, dims: int = 2,
                  iters: int = 5) -> str:
    return f"""
// k-means clustering: {points} points, k={k}, {iters} Lloyd iterations.
global int px[{points * dims}];
global int assign_to[{points}];
global int centroid[{k * dims}];
global int csum[{k * dims}];
global int ccount[{k}];
global int lcg_state;

func lcg_next() -> int {{
    lcg_state = (lcg_state * 1664525 + 1013904223) % 2147483648;
    return lcg_state;
}}

func dist2(int p, int c) -> int {{
    int d; int acc; int diff;
    acc = 0;
    d = 0;
    while (d < {dims}) {{
        diff = px[p * {dims} + d] - centroid[c * {dims} + d];
        acc = acc + diff * diff;
        d = d + 1;
    }}
    return acc;
}}

func assign_point(int p) -> int {{
    int c; int best; int best_d; int dd;
    best = 0;
    best_d = dist2(p, 0);
    c = 1;
    while (c < {k}) {{
        dd = dist2(p, c);
        if (dd < best_d) {{
            best_d = dd;
            best = c;
        }}
        c = c + 1;
    }}
    return best;
}}

func update_centroids() {{
    int i; int c; int d;
    i = 0;
    while (i < {k * dims}) {{
        csum[i] = 0;
        i = i + 1;
    }}
    i = 0;
    while (i < {k}) {{
        ccount[i] = 0;
        i = i + 1;
    }}
    i = 0;
    while (i < {points}) {{
        c = assign_to[i];
        ccount[c] = ccount[c] + 1;
        d = 0;
        while (d < {dims}) {{
            csum[c * {dims} + d] = csum[c * {dims} + d]
                                   + px[i * {dims} + d];
            d = d + 1;
        }}
        i = i + 1;
    }}
    c = 0;
    while (c < {k}) {{
        if (ccount[c] > 0) {{
            d = 0;
            while (d < {dims}) {{
                centroid[c * {dims} + d] = csum[c * {dims} + d] / ccount[c];
                d = d + 1;
            }}
        }}
        c = c + 1;
    }}
}}

func main() -> int {{
    int i; int it; int acc;
    lcg_state = 777;
    i = 0;
    while (i < {points * dims}) {{
        px[i] = lcg_next() % 1000;
        i = i + 1;
    }}
    i = 0;
    while (i < {k * dims}) {{
        centroid[i] = lcg_next() % 1000;
        i = i + 1;
    }}
    it = 0;
    while (it < {iters}) {{
        i = 0;
        while (i < {points}) {{
            assign_to[i] = assign_point(i);
            i = i + 1;
        }}
        update_centroids();
        it = it + 1;
    }}
    acc = 0;
    i = 0;
    while (i < {points}) {{
        acc = (acc * 7 + assign_to[i]) % 1000000007;
        i = i + 1;
    }}
    print(acc);
    print(centroid[0]);
    return 0;
}}
"""
