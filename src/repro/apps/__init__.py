"""Benchmark workloads, written in DapperC (paper §IV).

Each app mirrors the algorithmic skeleton and memory/compute pattern of
its namesake — NPB kernels (CG, MG, EP, FT, IS), Linpack, Dhrystone,
PARSEC-style multi-threaded apps, a Redis-like key/value store, an
Nginx-like web server, and K-means — adapted to DapperC's integer-only
arithmetic (fixed-point or modular arithmetic where the original uses
floats; documented per app). Every app:

* prints a deterministic checksum stream, so migrated runs are verified
  byte-for-byte against native runs,
* keeps its hot loops calling helper functions, so threads always reach
  equivalence points,
* carries nominal full-scale instruction counts (class A/B) that feed
  the cluster timing/energy model.
"""

from .registry import AppSpec, get_app, all_apps, apps_by_category

__all__ = ["AppSpec", "get_app", "all_apps", "apps_by_category"]
