"""PARSEC-style multi-threaded C applications, in DapperC (paper Fig. 6).

Three pthread-parallel kernels mirroring the C members of the PARSEC
suite the paper migrates:

* **blackscholes** — per-option pricing over a shared option table;
  the closed-form float formula is replaced by a fixed-point rational
  approximation with the same per-element independent-loop structure.
* **swaptions** — Monte-Carlo path simulation per swaption (LCG paths,
  integer accumulation).
* **streamcluster** — online clustering: distance evaluations of points
  against a shared set of centers.

Each spawns ``threads`` workers over a global work array, guards shared
accumulators with a lock, joins, and prints a checksum — so migrated
multi-threaded runs verify byte-for-byte.
"""

from __future__ import annotations


def blackscholes_source(options: int = 64, threads: int = 3) -> str:
    chunk = options // threads
    return f"""
// PARSEC blackscholes — per-option pricing, {threads} worker threads.
global int spot[{options}];
global int strike[{options}];
global int vol[{options}];
global int prices[{options}];
global int mtx;
global int checksum;
global int lcg_state;

func lcg_next() -> int {{
    lcg_state = (lcg_state * 1664525 + 1013904223) % 2147483648;
    return lcg_state;
}}

func price_option(int s, int k, int v) -> int {{
    int intrinsic; int time_value; int p;
    intrinsic = s - k;
    if (intrinsic < 0) {{ intrinsic = 0; }}
    time_value = (v * s) / (1000 + (k * 1000) / (s + 1));
    p = intrinsic + time_value;
    return p;
}}

func worker(int tid) {{
    int i; int lo; int hi; int local_sum;
    lo = tid * {chunk};
    hi = lo + {chunk};
    local_sum = 0;
    i = lo;
    while (i < hi) {{
        prices[i] = price_option(spot[i], strike[i], vol[i]);
        local_sum = (local_sum + prices[i]) % 1000000007;
        i = i + 1;
    }}
    lock(&mtx);
    checksum = (checksum + local_sum) % 1000000007;
    unlock(&mtx);
}}

func main() -> int {{
    int i; int tids[{threads}];
    lcg_state = 20080601;
    i = 0;
    while (i < {options}) {{
        spot[i] = 500 + (lcg_next() % 1000);
        strike[i] = 500 + (lcg_next() % 1000);
        vol[i] = 100 + (lcg_next() % 400);
        i = i + 1;
    }}
    i = 0;
    while (i < {threads}) {{
        tids[i] = spawn(worker, i);
        i = i + 1;
    }}
    i = 0;
    while (i < {threads}) {{
        join(tids[i]);
        i = i + 1;
    }}
    print(checksum);
    print(prices[0] + prices[{options} - 1]);
    return 0;
}}
"""


def swaptions_source(swaptions: int = 12, paths: int = 40,
                     threads: int = 3) -> str:
    chunk = swaptions // threads
    return f"""
// PARSEC swaptions — Monte-Carlo pricing, {threads} worker threads.
global int notional[{swaptions}];
global int results[{swaptions}];
global int mtx;
global int done_count;

func path_value(int seed, int notional_v) -> int {{
    int state; int step; int rate; int value;
    state = seed;
    rate = 500;
    value = 0;
    step = 0;
    while (step < 16) {{
        state = (state * 1103515245 + 12345) % 2147483648;
        rate = rate + (state % 21) - 10;
        if (rate < 1) {{ rate = 1; }}
        value = value + (notional_v * rate) / 10000;
        step = step + 1;
    }}
    return value;
}}

func simulate(int idx) -> int {{
    int p; int acc;
    acc = 0;
    p = 0;
    while (p < {paths}) {{
        acc = (acc + path_value(idx * 7919 + p, notional[idx]))
              % 1000000007;
        p = p + 1;
    }}
    return acc;
}}

func worker(int tid) {{
    int i; int lo; int hi;
    lo = tid * {chunk};
    hi = lo + {chunk};
    i = lo;
    while (i < hi) {{
        results[i] = simulate(i);
        i = i + 1;
    }}
    lock(&mtx);
    done_count = done_count + 1;
    unlock(&mtx);
}}

func main() -> int {{
    int i; int acc; int tids[{threads}];
    i = 0;
    while (i < {swaptions}) {{
        notional[i] = 1000 + i * 137;
        i = i + 1;
    }}
    i = 0;
    while (i < {threads}) {{
        tids[i] = spawn(worker, i);
        i = i + 1;
    }}
    i = 0;
    while (i < {threads}) {{
        join(tids[i]);
        i = i + 1;
    }}
    acc = 0;
    i = 0;
    while (i < {swaptions}) {{
        acc = (acc * 31 + results[i]) % 1000000007;
        i = i + 1;
    }}
    print(done_count);
    print(acc);
    return 0;
}}
"""


def streamcluster_source(points: int = 48, centers: int = 4,
                         threads: int = 3, dims: int = 4) -> str:
    chunk = points // threads
    return f"""
// PARSEC streamcluster — assign points to nearest centers, {threads} threads.
global int coords[{points * dims}];
global int center_coords[{centers * dims}];
global int assignment[{points}];
global int cost_total;
global int mtx;
global int lcg_state;

func lcg_next() -> int {{
    lcg_state = (lcg_state * 1664525 + 1013904223) % 2147483648;
    return lcg_state;
}}

func distance2(int p, int c) -> int {{
    int d; int acc; int diff;
    acc = 0;
    d = 0;
    while (d < {dims}) {{
        diff = coords[p * {dims} + d] - center_coords[c * {dims} + d];
        acc = acc + diff * diff;
        d = d + 1;
    }}
    return acc;
}}

func nearest(int p) -> int {{
    int c; int best; int best_d; int dist;
    best = 0;
    best_d = distance2(p, 0);
    c = 1;
    while (c < {centers}) {{
        dist = distance2(p, c);
        if (dist < best_d) {{
            best_d = dist;
            best = c;
        }}
        c = c + 1;
    }}
    lock(&mtx);
    cost_total = (cost_total + best_d) % 1000000007;
    unlock(&mtx);
    return best;
}}

func worker(int tid) {{
    int i; int lo; int hi;
    lo = tid * {chunk};
    hi = lo + {chunk};
    i = lo;
    while (i < hi) {{
        assignment[i] = nearest(i);
        i = i + 1;
    }}
}}

func main() -> int {{
    int i; int acc; int tids[{threads}];
    lcg_state = 424242;
    i = 0;
    while (i < {points * dims}) {{
        coords[i] = lcg_next() % 1000;
        i = i + 1;
    }}
    i = 0;
    while (i < {centers * dims}) {{
        center_coords[i] = lcg_next() % 1000;
        i = i + 1;
    }}
    i = 0;
    while (i < {threads}) {{
        tids[i] = spawn(worker, i);
        i = i + 1;
    }}
    i = 0;
    while (i < {threads}) {{
        join(tids[i]);
        i = i + 1;
    }}
    acc = 0;
    i = 0;
    while (i < {points}) {{
        acc = (acc * 7 + assignment[i]) % 1000000007;
        i = i + 1;
    }}
    print(cost_total);
    print(acc);
    return 0;
}}
"""
