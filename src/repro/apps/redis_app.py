"""A Redis-like in-memory key/value store, in DapperC (paper §IV).

Mirrors the data path of a small Redis (v5-era) server: a heap-allocated
open-addressing hash table, a command dispatcher processing a synthetic
SET/GET/DEL workload (the stand-in for networked clients), and periodic
stats. The server's main loop is the paper's "infinite loop" — the
benchmark harness checkpoints it mid-stream at configurable database
sizes (Fig. 7's small/medium/large Redis instances).

The command-processing functions carry realistic numbers of locals,
which is what gives the Redis binaries their mid-range stack-shuffle
entropy in Fig. 10 (between Nginx's large handlers and the lean NPB
kernels).
"""

from __future__ import annotations


def redis_source(commands: int = 300, table_slots: int = 256,
                 report_every: int = 100) -> str:
    return f"""
// redis-like KV server: open-addressing hash table on the heap.
global int *table_keys;
global int *table_vals;
global int *table_used;
global int db_size;
global int stat_sets;
global int stat_gets;
global int stat_dels;
global int stat_hits;
global int lcg_state;

func lcg_next() -> int {{
    lcg_state = (lcg_state * 1664525 + 1013904223) % 2147483648;
    return lcg_state;
}}

func hash_key(int key) -> int {{
    int h; int mixed;
    mixed = key * 2654435761;
    h = mixed % {table_slots};
    if (h < 0) {{ h = h + {table_slots}; }}
    return h;
}}

func ht_probe(int key) -> int {{
    // Returns the slot holding `key`, or the first free slot.
    int idx; int steps; int slot;
    idx = hash_key(key);
    steps = 0;
    slot = 0 - 1;
    while (steps < {table_slots}) {{
        if (table_used[idx] == 0) {{
            return idx;
        }}
        if (table_keys[idx] == key) {{
            return idx;
        }}
        idx = (idx + 1) % {table_slots};
        steps = steps + 1;
    }}
    return slot;
}}

func cmd_set(int key, int val) -> int {{
    int slot; int was_new; int old_val; int delta;
    slot = ht_probe(key);
    if (slot < 0) {{ return 0; }}
    was_new = 0;
    old_val = 0;
    if (table_used[slot] == 0) {{
        was_new = 1;
        db_size = db_size + 1;
    }} else {{
        old_val = table_vals[slot];
    }}
    delta = val - old_val;
    table_keys[slot] = key;
    table_vals[slot] = val;
    table_used[slot] = 1;
    stat_sets = stat_sets + 1;
    return was_new + delta - delta;
}}

func cmd_get(int key) -> int {{
    int slot; int found; int value; int probes;
    slot = ht_probe(key);
    found = 0;
    value = 0 - 1;
    probes = slot;
    if (slot >= 0) {{
        if (table_used[slot] == 1) {{
            if (table_keys[slot] == key) {{
                found = 1;
                value = table_vals[slot];
            }}
        }}
    }}
    stat_gets = stat_gets + 1;
    if (found == 1) {{ stat_hits = stat_hits + 1; }}
    return value + probes - probes;
}}

func cmd_del(int key) -> int {{
    int slot; int removed; int back; int cursor;
    slot = ht_probe(key);
    removed = 0;
    back = 0;
    cursor = slot;
    if (slot >= 0) {{
        if (table_used[slot] == 1) {{
            if (table_keys[slot] == key) {{
                table_used[slot] = 2;   // tombstone
                db_size = db_size - 1;
                removed = 1;
            }}
        }}
    }}
    stat_dels = stat_dels + 1;
    return removed + back + cursor - cursor - back;
}}

func dispatch(int op, int key, int val) -> int {{
    int result; int kind; int normalized; int trace;
    kind = op % 10;
    normalized = key % 10000;
    if (normalized < 0) {{ normalized = 0 - normalized; }}
    trace = kind * 100000 + normalized;
    result = 0;
    if (kind < 6) {{
        result = cmd_set(normalized, val);
    }} else {{
        if (kind < 9) {{
            result = cmd_get(normalized);
        }} else {{
            result = cmd_del(normalized);
        }}
    }}
    return result + trace - trace;
}}

func report() {{
    print(db_size);
    print(stat_hits);
}}

func main() -> int {{
    int i; int op; int key; int val; int acc;
    table_keys = sbrk({table_slots} * 8);
    table_vals = sbrk({table_slots} * 8);
    table_used = sbrk({table_slots} * 8);
    lcg_state = 50400;
    acc = 0;
    i = 0;
    while (i < {commands}) {{
        op = lcg_next();
        key = lcg_next();
        val = lcg_next() % 100000;
        acc = (acc * 31 + dispatch(op, key, val)) % 1000000007;
        if (i % {report_every} == {report_every} - 1) {{
            report();
        }}
        i = i + 1;
    }}
    print(acc);
    print(stat_sets + stat_gets + stat_dels);
    return 0;
}}
"""
