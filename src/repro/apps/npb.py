"""NAS Parallel Benchmark kernels (serial version), in DapperC.

Five of the suite's kernels, with the same algorithmic skeletons:

* **CG** — conjugate-gradient-style iteration: banded matrix-vector
  products, dot products, residual updates (fixed-point integers).
* **MG** — multigrid V-cycle on a 1-D grid: restrict, smooth, prolong.
* **EP** — embarrassingly parallel: LCG pseudo-random pair generation
  with annulus tallies.
* **FT** — spectral method: an exact integer number-theoretic transform
  (the NTT is the integer-exact analogue of the FFT the original uses).
* **IS** — integer sort: bucket/counting sort of LCG-generated keys
  (the original IS is also a counting sort).

Each ``source(n)`` returns DapperC source scaled by a problem-size
parameter; ``CLASS_A``/``CLASS_B`` give the per-kernel sizes used by the
benchmark harnesses.
"""

from __future__ import annotations

# LCG constants (Numerical Recipes) used across the suite for
# deterministic, ISA-independent pseudo-randomness.
_LCG = """
global int lcg_state;

func lcg_next() -> int {
    lcg_state = (lcg_state * 1664525 + 1013904223) % 2147483648;
    return lcg_state;
}
"""


def cg_source(n: int = 24, iters: int = 6) -> str:
    return f"""
// NPB CG (serial) — banded-matrix conjugate-gradient skeleton,
// fixed-point integer arithmetic (scale 1000).
global int mat_diag[{n}];
global int mat_off[{n}];
{_LCG}

func init_system(int n) {{
    int i;
    i = 0;
    while (i < n) {{
        mat_diag[i] = 4000 + (lcg_next() % 1000);
        mat_off[i] = 500 + (lcg_next() % 500);
        i = i + 1;
    }}
}}

func matvec(int *x, int *y, int n) {{
    int i;
    int acc;
    i = 0;
    while (i < n) {{
        acc = mat_diag[i] * x[i];
        if (i > 0) {{ acc = acc - mat_off[i] * x[i - 1]; }}
        if (i < n - 1) {{ acc = acc - mat_off[i + 1] * x[i + 1]; }}
        y[i] = acc / 1000;
        i = i + 1;
    }}
}}

func dot(int *a, int *b, int n) -> int {{
    int i;
    int acc;
    acc = 0;
    i = 0;
    while (i < n) {{
        acc = acc + (a[i] * b[i]) / 1000;
        i = i + 1;
    }}
    return acc;
}}

func axpy(int *y, int *x, int alpha, int n) {{
    int i;
    i = 0;
    while (i < n) {{
        y[i] = y[i] + (alpha * x[i]) / 1000;
        i = i + 1;
    }}
}}

func main() -> int {{
    int x[{n}];
    int r[{n}];
    int p[{n}];
    int q[{n}];
    int i; int it; int rho; int alpha; int denom;
    lcg_state = 12345;
    init_system({n});
    i = 0;
    while (i < {n}) {{
        x[i] = 1000;
        r[i] = 1000 + (lcg_next() % 200);
        p[i] = r[i];
        i = i + 1;
    }}
    it = 0;
    while (it < {iters}) {{
        matvec(&p[0], &q[0], {n});
        rho = dot(&r[0], &r[0], {n});
        denom = dot(&p[0], &q[0], {n});
        if (denom == 0) {{ denom = 1; }}
        alpha = (rho * 1000) / denom;
        axpy(&x[0], &p[0], alpha, {n});
        axpy(&r[0], &q[0], 0 - alpha, {n});
        print(dot(&r[0], &r[0], {n}));
        it = it + 1;
    }}
    print(dot(&x[0], &x[0], {n}));
    return 0;
}}
"""


def mg_source(n: int = 32, cycles: int = 3) -> str:
    half = n // 2
    return f"""
// NPB MG (serial) — 1-D multigrid V-cycle skeleton: smooth, restrict,
// prolong; integer arithmetic.
global int fine[{n}];
global int coarse[{half}];
global int rhs[{n}];
{_LCG}

func smooth(int *u, int *f, int n) {{
    int i;
    i = 1;
    while (i < n - 1) {{
        u[i] = (u[i - 1] + u[i + 1] + f[i]) / 3;
        i = i + 1;
    }}
}}

func restrict_grid(int *u, int *c, int n) {{
    int i;
    i = 0;
    while (i < n / 2) {{
        c[i] = (u[2 * i] + u[2 * i + 1]) / 2;
        i = i + 1;
    }}
}}

func prolong(int *c, int *u, int n) {{
    int i;
    i = 0;
    while (i < n / 2) {{
        u[2 * i] = u[2 * i] + c[i] / 2;
        u[2 * i + 1] = u[2 * i + 1] + c[i] / 2;
        i = i + 1;
    }}
}}

func residual_norm(int *u, int n) -> int {{
    int i;
    int acc;
    acc = 0;
    i = 0;
    while (i < n) {{
        if (u[i] < 0) {{ acc = acc - u[i]; }} else {{ acc = acc + u[i]; }}
        i = i + 1;
    }}
    return acc;
}}

func main() -> int {{
    int c; int i;
    lcg_state = 54321;
    i = 0;
    while (i < {n}) {{
        fine[i] = lcg_next() % 1000;
        rhs[i] = lcg_next() % 100;
        i = i + 1;
    }}
    c = 0;
    while (c < {cycles}) {{
        smooth(&fine[0], &rhs[0], {n});
        restrict_grid(&fine[0], &coarse[0], {n});
        smooth(&coarse[0], &rhs[0], {half});
        prolong(&coarse[0], &fine[0], {n});
        smooth(&fine[0], &rhs[0], {n});
        print(residual_norm(&fine[0], {n}));
        c = c + 1;
    }}
    return 0;
}}
"""


def ep_source(pairs: int = 400) -> str:
    return f"""
// NPB EP (serial) — pseudo-random pair generation with annulus tallies.
global int tally[10];
{_LCG}

func classify(int x, int y) -> int {{
    int d;
    d = (x * x + y * y) / 1000000;
    if (d > 9) {{ d = 9; }}
    if (d < 0) {{ d = 0; }}
    return d;
}}

func main() -> int {{
    int i; int x; int y; int bucket;
    lcg_state = 271828;
    i = 0;
    while (i < {pairs}) {{
        x = (lcg_next() % 2000) - 1000;
        y = (lcg_next() % 2000) - 1000;
        bucket = classify(x, y);
        tally[bucket] = tally[bucket] + 1;
        i = i + 1;
    }}
    i = 0;
    while (i < 10) {{
        print(tally[i]);
        i = i + 1;
    }}
    return 0;
}}
"""


def ft_source(log_n: int = 4, rounds: int = 2) -> str:
    # Number-theoretic transform over Z_p with p = 257, generator 3.
    # For p=257 the multiplicative order of 3 is 256, so any power-of-two
    # size up to 256 has a principal root: w = 3^(256 / n) mod 257.
    n = 1 << log_n
    return f"""
// NPB FT (serial) — spectral transform: exact integer NTT mod 257.
global int data[{n}];
global int temp[{n}];
{_LCG}

func powmod(int base, int e, int m) -> int {{
    int acc; int b;
    acc = 1;
    b = base % m;
    while (e > 0) {{
        if (e % 2 == 1) {{ acc = (acc * b) % m; }}
        b = (b * b) % m;
        e = e / 2;
    }}
    return acc;
}}

func ntt_pass(int *src, int *dst, int n, int w) {{
    int k; int j; int acc; int wk;
    k = 0;
    while (k < n) {{
        acc = 0;
        j = 0;
        while (j < n) {{
            wk = powmod(w, (k * j) % 256, 257);
            acc = (acc + src[j] * wk) % 257;
            j = j + 1;
        }}
        dst[k] = acc;
        k = k + 1;
    }}
}}

func checksum(int *a, int n) -> int {{
    int i; int acc;
    acc = 0;
    i = 0;
    while (i < n) {{
        acc = (acc * 31 + a[i]) % 1000000007;
        i = i + 1;
    }}
    return acc;
}}

func main() -> int {{
    int i; int r; int w;
    lcg_state = 314159;
    i = 0;
    while (i < {n}) {{
        data[i] = lcg_next() % 257;
        i = i + 1;
    }}
    w = powmod(3, 256 / {n}, 257);
    r = 0;
    while (r < {rounds}) {{
        ntt_pass(&data[0], &temp[0], {n}, w);
        i = 0;
        while (i < {n}) {{ data[i] = temp[i]; i = i + 1; }}
        print(checksum(&data[0], {n}));
        r = r + 1;
    }}
    return 0;
}}
"""


def is_source(keys: int = 256, buckets: int = 32) -> str:
    return f"""
// NPB IS (serial) — counting/bucket sort of LCG keys, like the original.
global int key_array[{keys}];
global int counts[{buckets}];
global int sorted[{keys}];
{_LCG}

func generate(int n, int buckets) {{
    int i;
    i = 0;
    while (i < n) {{
        key_array[i] = lcg_next() % buckets;
        i = i + 1;
    }}
}}

func count_keys(int n) {{
    int i;
    i = 0;
    while (i < n) {{
        counts[key_array[i]] = counts[key_array[i]] + 1;
        i = i + 1;
    }}
}}

func scan_counts(int buckets) {{
    int i;
    i = 1;
    while (i < buckets) {{
        counts[i] = counts[i] + counts[i - 1];
        i = i + 1;
    }}
}}

func scatter(int n) {{
    int i; int k; int pos;
    i = n - 1;
    while (i >= 0) {{
        k = key_array[i];
        counts[k] = counts[k] - 1;
        pos = counts[k];
        sorted[pos] = k;
        i = i - 1;
    }}
}}

func verify(int n) -> int {{
    int i; int ok;
    ok = 1;
    i = 1;
    while (i < n) {{
        if (sorted[i - 1] > sorted[i]) {{ ok = 0; }}
        i = i + 1;
    }}
    return ok;
}}

func main() -> int {{
    lcg_state = 161803;
    generate({keys}, {buckets});
    count_keys({keys});
    scan_counts({buckets});
    scatter({keys});
    print(verify({keys}));
    print(sorted[0] + sorted[{keys} - 1] * 1000);
    return 0;
}}
"""
