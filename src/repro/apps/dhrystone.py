"""Dhrystone, in DapperC.

The classic synthetic integer benchmark: a fixed mix of assignments,
integer arithmetic, control flow, function calls, and array/pointer
operations, iterated in a main loop. The structure below keeps the
original's proc/func decomposition (Proc1..Proc8, Func1..Func3 flavour)
so the call-heavy profile — and therefore the equivalence-point density —
matches the original's character.
"""

from __future__ import annotations


def dhrystone_source(runs: int = 50) -> str:
    return f"""
// Dhrystone 2.1-style synthetic integer benchmark.
global int int_glob;
global int bool_glob;
global int arr1_glob[16];
global int arr2_glob[16];

func func1(int ch1, int ch2) -> int {{
    int ch1_loc;
    ch1_loc = ch1;
    if (ch1_loc != ch2) {{
        return 0;
    }}
    return 1;
}}

func func2(int s1, int s2) -> int {{
    int int_loc;
    int_loc = 1;
    while (int_loc <= 1) {{
        if (func1(s1 + int_loc, s2) == 0) {{
            int_loc = int_loc + 1;
        }} else {{
            int_loc = int_loc + 10;
        }}
    }}
    if (int_loc > 1) {{
        return 1;
    }}
    return 0;
}}

func func3(int enum_par) -> int {{
    if (enum_par == 2) {{ return 1; }}
    return 0;
}}

func proc7(int a, int b, int *out) {{
    int tmp;
    tmp = a + 2;
    *out = b + tmp;
}}

func proc8(int *arr1, int *arr2, int pos, int val) {{
    int idx; int i;
    idx = pos + 5;
    arr1[idx % 16] = val;
    arr1[(idx + 1) % 16] = arr1[idx % 16];
    arr1[(idx + 30) % 16] = idx;
    i = idx;
    while (i <= idx + 1) {{
        arr2[i % 16] = idx;
        i = i + 1;
    }}
    arr2[(idx + 5) % 16] = arr2[(idx + 5) % 16] + 1;
    int_glob = 5;
}}

func proc6(int enum_par) -> int {{
    int enum_loc;
    enum_loc = enum_par;
    if (func3(enum_par) == 0) {{ enum_loc = 3; }}
    if (enum_par == 0) {{ enum_loc = 0; }}
    if (enum_par == 1) {{
        if (int_glob > 100) {{ enum_loc = 0; }} else {{ enum_loc = 3; }}
    }}
    return enum_loc;
}}

func proc5() {{
    bool_glob = 0;
}}

func proc4() {{
    int bool_loc;
    bool_loc = 1;
    bool_glob = bool_loc | bool_glob;
}}

func proc2(int *int_par) {{
    int int_loc;
    int enum_loc;
    int_loc = *int_par + 10;
    enum_loc = 0;
    while (enum_loc == 0) {{
        int_loc = int_loc - 1;
        *int_par = int_loc - int_glob;
        enum_loc = 1;
    }}
}}

func proc1(int run) -> int {{
    int int1; int int2; int int3;
    int1 = 2;
    int2 = 3;
    proc7(int1, int2, &int3);
    proc8(&arr1_glob[0], &arr2_glob[0], int1, int3);
    proc4();
    proc5();
    if (func2(run % 7, 3) == 1) {{
        proc6(1);
    }}
    proc2(&int1);
    return int1 + int3;
}}

func main() -> int {{
    int run; int acc;
    acc = 0;
    run = 0;
    while (run < {runs}) {{
        acc = (acc + proc1(run)) % 1000000007;
        run = run + 1;
    }}
    print(acc);
    print(int_glob);
    print(arr2_glob[7]);
    return 0;
}}
"""
