"""Linpack, in DapperC.

The Linpack benchmark factorizes a dense linear system and solves it.
Floating-point Gaussian elimination is replaced by an *exact* linear
solve over the prime field Z_10007 (modular inverses via Fermat's little
theorem), preserving the O(n³) factorization + O(n²) solve structure and
the dense row-operation memory pattern while staying integer-exact
across ISAs.
"""

from __future__ import annotations

_P = 10007


def linpack_source(n: int = 10) -> str:
    return f"""
// Linpack — dense LU-style solve over Z_{_P} (exact integer arithmetic).
global int a[{n * n}];
global int b[{n}];
global int x[{n}];
global int lcg_state;

func lcg_next() -> int {{
    lcg_state = (lcg_state * 1664525 + 1013904223) % 2147483648;
    return lcg_state;
}}

func powmod(int base, int e) -> int {{
    int acc; int bb;
    acc = 1;
    bb = base % {_P};
    while (e > 0) {{
        if (e % 2 == 1) {{ acc = (acc * bb) % {_P}; }}
        bb = (bb * bb) % {_P};
        e = e / 2;
    }}
    return acc;
}}

func inverse(int v) -> int {{
    return powmod(v, {_P} - 2);
}}

func pivot_row(int col, int n) -> int {{
    int r;
    r = col;
    while (r < n) {{
        if (a[r * n + col] != 0) {{ return r; }}
        r = r + 1;
    }}
    return 0 - 1;
}}

func swap_rows(int r1, int r2, int n) {{
    int j; int t;
    j = 0;
    while (j < n) {{
        t = a[r1 * n + j];
        a[r1 * n + j] = a[r2 * n + j];
        a[r2 * n + j] = t;
        j = j + 1;
    }}
    t = b[r1];
    b[r1] = b[r2];
    b[r2] = t;
}}

func eliminate(int col, int n) {{
    int r; int j; int factor; int inv;
    inv = inverse(a[col * n + col]);
    r = col + 1;
    while (r < n) {{
        factor = (a[r * n + col] * inv) % {_P};
        j = col;
        while (j < n) {{
            a[r * n + j] = ((a[r * n + j] - factor * a[col * n + j])
                            % {_P} + {_P}) % {_P};
            j = j + 1;
        }}
        b[r] = ((b[r] - factor * b[col]) % {_P} + {_P}) % {_P};
        r = r + 1;
    }}
}}

func back_substitute(int n) {{
    int r; int j; int acc;
    r = n - 1;
    while (r >= 0) {{
        acc = b[r];
        j = r + 1;
        while (j < n) {{
            acc = ((acc - a[r * n + j] * x[j]) % {_P} + {_P}) % {_P};
            j = j + 1;
        }}
        x[r] = (acc * inverse(a[r * n + r])) % {_P};
        r = r - 1;
    }}
}}

func residual(int n) -> int {{
    int r; int j; int acc; int bad;
    bad = 0;
    r = 0;
    while (r < n) {{
        acc = 0;
        j = 0;
        while (j < n) {{
            acc = (acc + a[r * n + j] * x[j]) % {_P};
            j = j + 1;
        }}
        r = r + 1;
    }}
    return bad;
}}

func main() -> int {{
    int i; int p; int col; int sum;
    lcg_state = 90125;
    i = 0;
    while (i < {n * n}) {{
        a[i] = 1 + (lcg_next() % ({_P} - 1));
        i = i + 1;
    }}
    i = 0;
    while (i < {n}) {{
        b[i] = 1 + (lcg_next() % ({_P} - 1));
        i = i + 1;
    }}
    col = 0;
    while (col < {n}) {{
        p = pivot_row(col, {n});
        if (p != col) {{ swap_rows(col, p, {n}); }}
        eliminate(col, {n});
        col = col + 1;
    }}
    back_substitute({n});
    sum = 0;
    i = 0;
    while (i < {n}) {{
        sum = (sum * 31 + x[i]) % 1000000007;
        print(x[i]);
        i = i + 1;
    }}
    print(sum);
    return 0;
}}
"""
