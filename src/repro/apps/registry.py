"""Registry of benchmark applications.

Each :class:`AppSpec` names an app, provides DapperC source at ``small``
(fast CI) and ``medium`` (benchmark) problem sizes, and carries nominal
full-scale instruction counts for NPB classes A and B — these drive the
cluster timing/energy model exactly the way the paper's full-size runs
drive its wall clocks (our simulator executes reduced sizes; the
*shapes* come from real measured quantities).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Optional

from ..compiler import CompiledProgram, compile_source
from . import dhrystone, kmeans, linpack, nginx_app, npb, parsec, redis_app


class AppSpec:
    def __init__(self, *, name: str, category: str,
                 sources: Dict[str, Callable[[], str]],
                 threads: int = 1,
                 class_a_instructions: float = 0.0,
                 class_b_instructions: float = 0.0,
                 class_b_footprint: float = 4e6):
        self.name = name
        self.category = category
        self._sources = sources
        self.threads = threads
        self.class_a_instructions = class_a_instructions
        self.class_b_instructions = class_b_instructions
        #: nominal resident memory at a class-B checkpoint (bytes); the
        #: benchmark harnesses scale measured image sizes up to this so
        #: stage latencies reflect full-size footprints (paper §IV-A)
        self.class_b_footprint = class_b_footprint

    def source(self, size: str = "small") -> str:
        try:
            return self._sources[size]()
        except KeyError:
            raise KeyError(f"{self.name}: no size {size!r}; "
                           f"have {sorted(self._sources)}") from None

    def compile(self, size: str = "small") -> CompiledProgram:
        return _compile_cached(self.name, size)

    def __repr__(self) -> str:
        return f"<AppSpec {self.name} [{self.category}]>"


_REGISTRY: Dict[str, AppSpec] = {}


def _register(spec: AppSpec) -> AppSpec:
    _REGISTRY[spec.name] = spec
    return spec


@lru_cache(maxsize=None)
def _compile_cached(name: str, size: str) -> CompiledProgram:
    spec = _REGISTRY[name]
    return compile_source(spec.source(size), name)


def get_app(name: str) -> AppSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown app {name!r}; "
                       f"known: {sorted(_REGISTRY)}") from None


def all_apps() -> List[AppSpec]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def apps_by_category(category: str) -> List[AppSpec]:
    return [a for a in all_apps() if a.category == category]


# -- NPB kernels (serial; class A/B nominal instruction counts) ----------------

_register(AppSpec(
    name="cg", category="npb",
    sources={"small": lambda: npb.cg_source(16, 4),
             "medium": lambda: npb.cg_source(48, 10)},
    class_a_instructions=5.2e10, class_b_instructions=2.1e11,
    class_b_footprint=5.5e+06))

_register(AppSpec(
    name="mg", category="npb",
    sources={"small": lambda: npb.mg_source(24, 2),
             "medium": lambda: npb.mg_source(64, 6)},
    class_a_instructions=4.4e10, class_b_instructions=1.8e11,
    class_b_footprint=7.5e+06))

_register(AppSpec(
    name="ep", category="npb",
    sources={"small": lambda: npb.ep_source(200),
             "medium": lambda: npb.ep_source(3000)},
    class_a_instructions=6.0e10, class_b_instructions=2.4e11,
    class_b_footprint=8.0e+05))

_register(AppSpec(
    name="ft", category="npb",
    sources={"small": lambda: npb.ft_source(3, 2),
             "medium": lambda: npb.ft_source(5, 3)},
    class_a_instructions=7.1e10, class_b_instructions=2.9e11,
    class_b_footprint=8.0e+06))

_register(AppSpec(
    name="is", category="npb",
    sources={"small": lambda: npb.is_source(128, 16),
             "medium": lambda: npb.is_source(1024, 64)},
    class_a_instructions=1.9e10, class_b_instructions=7.8e10,
    class_b_footprint=4.0e+06))

# -- other single-threaded benchmarks ------------------------------------------

_register(AppSpec(
    name="linpack", category="hpc",
    sources={"small": lambda: linpack.linpack_source(8),
             "medium": lambda: linpack.linpack_source(16)},
    class_a_instructions=3.6e10, class_b_instructions=1.5e11,
    class_b_footprint=3.0e+06))

_register(AppSpec(
    name="dhrystone", category="hpc",
    sources={"small": lambda: dhrystone.dhrystone_source(40),
             "medium": lambda: dhrystone.dhrystone_source(400),
             # long enough to measure steady-state engine throughput
             # rather than tier-up warmup (~2M retired instructions)
             "large": lambda: dhrystone.dhrystone_source(3000)},
    class_a_instructions=1.2e10, class_b_instructions=4.8e10,
    class_b_footprint=5.0e+05))

_register(AppSpec(
    name="kmeans", category="hpc",
    sources={"small": lambda: kmeans.kmeans_source(40, 3, 2, 3),
             "medium": lambda: kmeans.kmeans_source(200, 6, 3, 8)},
    class_a_instructions=2.8e10, class_b_instructions=1.1e11,
    class_b_footprint=2.0e+06))

# -- PARSEC-style multi-threaded apps ---------------------------------------------

_register(AppSpec(
    name="blackscholes", category="parsec", threads=3,
    sources={"small": lambda: parsec.blackscholes_source(48, 3),
             "medium": lambda: parsec.blackscholes_source(192, 3)},
    class_a_instructions=3.1e10, class_b_instructions=1.2e11,
    class_b_footprint=4.5e+06))

_register(AppSpec(
    name="swaptions", category="parsec", threads=3,
    sources={"small": lambda: parsec.swaptions_source(9, 24, 3),
             "medium": lambda: parsec.swaptions_source(24, 80, 3)},
    class_a_instructions=4.5e10, class_b_instructions=1.7e11,
    class_b_footprint=3.5e+06))

_register(AppSpec(
    name="streamcluster", category="parsec", threads=3,
    sources={"small": lambda: parsec.streamcluster_source(36, 4, 3),
             "medium": lambda: parsec.streamcluster_source(120, 6, 3)},
    class_a_instructions=3.9e10, class_b_instructions=1.6e11,
    class_b_footprint=6.0e+06))

# -- servers -------------------------------------------------------------------------

_register(AppSpec(
    name="redis", category="server",
    sources={"small": lambda: redis_app.redis_source(200, 128),
             "medium": lambda: redis_app.redis_source(900, 512),
             "db-small": lambda: redis_app.redis_source(300, 128, 150),
             "db-medium": lambda: redis_app.redis_source(600, 512, 200),
             "db-large": lambda: redis_app.redis_source(1200, 2048, 400)},
    class_a_instructions=2.2e10, class_b_instructions=8.5e10,
    class_b_footprint=6.5e+06))

_register(AppSpec(
    name="nginx", category="server",
    sources={"small": lambda: nginx_app.nginx_source(160),
             "medium": lambda: nginx_app.nginx_source(600)},
    class_a_instructions=2.6e10, class_b_instructions=9.5e10,
    class_b_footprint=2.2e+06))
