"""An Nginx-like web server, in DapperC (paper §IV).

Mirrors the request path of a small Nginx (v1.3-era) worker: a synthetic
accept loop (the stand-in for networked clients), request parsing into a
header structure, virtual-host routing, static- and dynamic-content
handlers with an LRU-ish response cache, and access logging. The
handlers are deliberately the beefiest functions in the suite — many
live scalars per frame — which is what gives Nginx the highest
stack-shuffle entropy in the paper's Fig. 10.
"""

from __future__ import annotations


def nginx_source(requests: int = 240, cache_slots: int = 32,
                 report_every: int = 80) -> str:
    return f"""
// nginx-like worker: parse -> route -> handle -> log.
global int cache_tag[{cache_slots}];
global int cache_body[{cache_slots}];
global int cache_age[{cache_slots}];
global int clock_tick;
global int stat_requests;
global int stat_2xx;
global int stat_4xx;
global int stat_cache_hits;
global int access_log_hash;
global int lcg_state;

func lcg_next() -> int {{
    lcg_state = (lcg_state * 1664525 + 1013904223) % 2147483648;
    return lcg_state;
}}

func parse_request(int raw, int *method, int *path, int *version, int *host) {{
    int cursor; int token; int checksum; int length; int flags; int depth;
    cursor = raw;
    token = cursor % 4;
    *method = token;
    cursor = cursor / 4;
    length = cursor % 64;
    *path = cursor % 100000;
    cursor = cursor / 16;
    flags = cursor % 8;
    *version = 1 + (flags % 2);
    depth = (length + flags) % 5;
    *host = cursor % 4;
    checksum = token + length + flags + depth;
    clock_tick = clock_tick + 1 + checksum - checksum;
}}

func route(int host, int path) -> int {{
    int vhost; int prefix; int rule; int fallback; int weight; int decision;
    vhost = host % 4;
    prefix = path % 8;
    fallback = 0;
    weight = vhost * 8 + prefix;
    rule = weight % 3;
    decision = rule;
    if (prefix >= 6) {{ decision = 2; fallback = 1; }}
    if (vhost == 3) {{ decision = decision % 2; }}
    return decision + fallback - fallback;
}}

func cache_lookup(int tag) -> int {{
    int slot; int found; int body; int age; int probe; int scan;
    slot = tag % {cache_slots};
    if (slot < 0) {{ slot = slot + {cache_slots}; }}
    found = 0 - 1;
    body = 0;
    probe = slot;
    scan = 0;
    while (scan < 4) {{
        age = cache_age[probe];
        if (cache_tag[probe] == tag) {{
            if (age > 0) {{
                found = probe;
                body = cache_body[probe];
                scan = 99;
            }}
        }}
        probe = (probe + 1) % {cache_slots};
        scan = scan + 1;
    }}
    if (found >= 0) {{
        stat_cache_hits = stat_cache_hits + 1;
        return body;
    }}
    return 0 - 1;
}}

func cache_insert(int tag, int body) {{
    int slot; int victim; int oldest; int probe; int scan; int age;
    slot = tag % {cache_slots};
    if (slot < 0) {{ slot = slot + {cache_slots}; }}
    victim = slot;
    oldest = cache_age[slot];
    probe = slot;
    scan = 0;
    while (scan < 4) {{
        age = cache_age[probe];
        if (age < oldest) {{
            oldest = age;
            victim = probe;
        }}
        probe = (probe + 1) % {cache_slots};
        scan = scan + 1;
    }}
    cache_tag[victim] = tag;
    cache_body[victim] = body;
    cache_age[victim] = clock_tick;
}}

func handle_static(int path, int version) -> int {{
    int tag; int body; int status; int size; int etag; int chunked;
    int encoding; int ttl;
    tag = path * 2 + version;
    body = cache_lookup(tag);
    status = 200;
    chunked = version % 2;
    encoding = (path + version) % 3;
    ttl = 60 + (path % 240);
    if (body < 0) {{
        size = 512 + (path % 4096);
        etag = (path * 31 + size) % 1000000007;
        body = (etag + encoding) % 1000000007;
        cache_insert(tag, body);
    }}
    if (path % 17 == 0) {{
        status = 404;
    }}
    return status * 1000000 + (body % 1000000) + ttl + chunked
           - ttl - chunked;
}}

func handle_dynamic(int path, int method, int version) -> int {{
    int status; int body; int work; int step; int state; int upstream;
    int latency; int retries;
    status = 200;
    state = path + method * 7;
    body = 0;
    work = 8 + (path % 8);
    upstream = (path + version) % 4;
    latency = 0;
    retries = 0;
    step = 0;
    while (step < work) {{
        state = (state * 1103515245 + 12345) % 2147483648;
        body = (body * 33 + state % 97) % 1000000007;
        latency = latency + 1;
        step = step + 1;
    }}
    if (method == 3) {{
        status = 403;
    }}
    if (upstream == 3) {{
        retries = 1;
    }}
    return status * 1000000 + (body % 1000000) + latency + retries
           - latency - retries;
}}

func log_request(int method, int path, int status) {{
    int line; int level; int truncated;
    level = 0;
    if (status >= 400) {{ level = 1; }}
    line = method * 1000003 + path * 31 + status + level;
    truncated = line % 1000000007;
    access_log_hash = (access_log_hash * 131 + truncated) % 1000000007;
}}

func serve_one(int raw) -> int {{
    int method; int path; int version; int host;
    int decision; int response; int status;
    parse_request(raw, &method, &path, &version, &host);
    decision = route(host, path);
    if (decision == 0) {{
        response = handle_static(path, version);
    }} else {{
        response = handle_dynamic(path, method, version);
    }}
    status = response / 1000000;
    if (status < 400) {{
        stat_2xx = stat_2xx + 1;
    }} else {{
        stat_4xx = stat_4xx + 1;
    }}
    log_request(method, path, status);
    stat_requests = stat_requests + 1;
    return response;
}}

func report() {{
    print(stat_requests);
    print(stat_cache_hits);
}}

func main() -> int {{
    int i; int raw; int acc;
    lcg_state = 1309;
    acc = 0;
    i = 0;
    while (i < {requests}) {{
        raw = lcg_next();
        acc = (acc * 31 + serve_one(raw)) % 1000000007;
        if (i % {report_every} == {report_every} - 1) {{
            report();
        }}
        i = i + 1;
    }}
    print(acc);
    print(stat_2xx);
    print(stat_4xx);
    print(access_log_hash);
    return 0;
}}
"""
