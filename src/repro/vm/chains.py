"""Tier-3 execution: trace linking and compiled superblock chains.

The tier-2 engine (:mod:`repro.vm.blocks`) compiles each hot superblock
into one generated function, but every trace still returns to the
Python dispatch loop in ``run_thread``, and every generated line pays
the signed-i64 canonicalization idiom (``& U64M`` plus the ``v >> 63``
sign fix) that keeping register state in the architectural ``regs``
list forces on it. This module removes both costs: when a compiled
trace has stayed hot, its side-exit and terminator targets that are
themselves hot compiled traces are *linked* — their bodies are patched
into one generated **chain** function, so whole webs of traces execute
in a single Python call, over register state held in function locals
in a cheaper representation.

Four mechanisms carry the speedup:

* **Trace linking.** A chain is built over a *web*: the hot compiled
  blocks reachable along static successor edges (side-exit targets,
  both arms of a two-way ``bcc`` terminator, the fall-through tail of
  a length-split trace, and call return addresses) from a canonical
  root, up to ``MAX_CHAIN_BLOCKS`` of them. Each becomes a labelled
  *segment* of one generated trampoline function; an in-chain transfer
  is a label assignment + ``continue`` instead of a return to
  ``run_thread``. ``ret`` terminators link dynamically: the computed
  return pc is compared against the chain's known call-return heads,
  so a call+return inside a hot loop never leaves the chain. Every
  segment block shares the one compiled chain — each gets an entry
  handler that starts the trampoline at its own label, so a web of N
  hot traces costs one ``compile()``, not N.
* **Loop-closing jumps.** A backward-``bcc`` terminator whose target
  is in the chain compiles into a native Python loop edge: the
  generated ``while 1:`` re-enters the target segment directly.
  Register state lives in *function locals* for the whole chain
  (``r5`` instead of ``regs[5]``), and is spilled to the
  ``ThreadContext`` only at chain exits — quantum boundaries, unlinked
  side exits, and faults.
* **Metered arms: exact entry and exit at any op.** Each segment is
  emitted twice: a *fast* arm (no per-op checks, entered only when the
  whole trace fits the remaining budget) and a *metered* arm that can
  start at any op index ``K`` and retires exactly up to the budget,
  leaving ``pc`` mid-trace. Chains therefore consume the quantum
  **exactly**: a boundary that lands mid-trace is taken inside the
  chain (metered exit), and the next quantum re-enters the chain at
  that op (metered entry) via ``Process.chain_entries`` — the
  per-process map from every interior trace pc to its ``(run, label,
  K)`` resume point. Without this, every quantum boundary would seed a
  fresh overlapping trace one phase over (the quantum *drifts* through
  the loop), and the block cache fills with near-duplicate traces that
  fragment the webs and churn the chain caches.
* **Cheap value representation + inline-cached memory.** Chain locals
  hold registers as *canonical u64* (the architectural ``regs`` list
  holds signed i64). That kills the per-op sign-fix: ``add`` is one
  masked addition, bitwise ops and ``lsr`` need no mask at all, loads
  use the ``unpack_from`` result as-is, and addresses need no
  canonicalization. Signed compares use the sign-flip identity
  ``(a ^ 2**63) - (b ^ 2**63)`` — one line — and the flags local holds
  that raw difference (only its sign is architectural; it is
  normalized to {-1, 0, 1} when spilled). Every load/store site keeps
  a folded last-page hit test (``addr - cached_base`` in range); loads
  additionally share a chain-level *hot VMA* cache (``VL``/``VH``
  bounds filled in by the slow path), so a load walking a multi-page
  array skips the full page-table walk on every page of the hot
  mapping. Stores deliberately do **not** use the VMA cache: a store's
  first touch of each page must go through ``write_u64`` so dirty-page
  tracking observes it (the per-site page cache preserves exactly that
  property; see ``Process.start_dirty_tracking``).

Correctness invariants, each inherited from tier-2 and preserved:

* **Exact quantum boundaries.** The chain retires exactly
  ``min(budget, instructions to the first unlinked exit or fault)``:
  fast arms are only entered when their whole trace fits, and the
  metered arm stops op-for-op at the budget with ``pc`` mid-trace.
  Retired counts per scheduling slice are therefore instruction-for-
  instruction identical to the per-step engine, which keeps the flight
  recorder's per-quantum digests bit-identical across all three tiers.
* **OSR-style deopt on faults.** A fault mid-chain reconstructs exact
  per-instruction state: the handler normalizes and spills the
  register locals (everything retired so far is architecturally
  visible), positions ``pc`` at the faulting op via the flat fault
  table, and accounts the retired prefix — bit-for-bit what
  ``interp.step`` would have left behind.
* **No kernel entries.** Chains are built from blocks, and blocks
  never contain ``syscall``/``trap``; thread status, process exit, and
  code versions cannot change inside a chain, so the eqpoint-park and
  scheduling invariants of tier-2 carry over unchanged.
* **Invalidation.** A chain hangs off its :class:`~.blocks.Block` in
  ``process.block_cache``, and its resume points live in
  ``process.chain_entries``; every invalidation that drops blocks
  (``invalidate_code`` version bumps, dirty-tracking epochs) clears
  both, and the shared chain *factory* cache is keyed by full segment
  content (absolute pcs, decoded ops, terminators), so a rewritten
  process can never bind or resume a stale chain.
"""

from __future__ import annotations

import struct
import sys
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from ..errors import SegmentationFault
from ..mem.paging import LAST_U64_SLOT, PAGE_MASK
from .interp import CpuFault
from . import blocks as _b

if TYPE_CHECKING:
    from .blocks import Block
    from .kernel import Process

#: Upper bound on linked blocks per chain. Large enough that the hot
#: region of a call-heavy loop body (Dhrystone's main loop spans some
#: forty blocks across its ``Proc_*`` calls) closes into a single
#: chain rather than ping-ponging between several, each switch paying
#: a register spill/reload; small enough that one generated function
#: stays tractable for the bytecode compiler.
MAX_CHAIN_BLOCKS = 64

#: Dispatches of a block's compiled (tier-2) function before chain
#: formation is attempted. By then every block on the hot path has
#: itself been through tier-2 warmup, so the successor walk links the
#: whole loop in one attempt — chain factories are large generated
#: functions, so building them for regions that are not genuinely hot
#: (e.g. short-lived fuzz programs) costs more than it saves. Tests
#: lower this to force chains; steady-state benchmarks lower it to
#: shorten warmup.
CHAIN_THRESHOLD = 8

#: Cached "this block heads no chain" decision (no linkable successor,
#: or the block is a drifted duplicate outside the canonical web),
#: stored on ``Block.chain``.
NO_CHAIN = object()

_U64M = 0xFFFFFFFFFFFFFFFF
_TWO64 = 1 << 64
_SIGN = 1 << 63
_U64S = struct.Struct("<Q")

if sys.byteorder == "little":
    def _cast_page(page):
        """Word view of one page: ``view[slot]`` is the u64 at byte
        offset ``slot * 8``. On little-endian hosts a zero-copy
        ``'Q'``-cast memoryview — the chain fast path's subscripts
        compile to plain ``BINARY_SUBSCR``/``STORE_SUBSCR`` instead of
        struct calls."""
        return memoryview(page).cast("Q")
else:                                      # pragma: no cover
    class _WordView:
        """Big-endian fallback: same subscript protocol, guest order
        (little-endian) preserved via the explicit ``<Q`` struct."""
        __slots__ = ("raw",)

        def __init__(self, page):
            self.raw = page

        def __getitem__(self, slot):
            return _U64S.unpack_from(self.raw, slot * 8)[0]

        def __setitem__(self, slot, value):
            _U64S.pack_into(self.raw, slot * 8, value)

    def _cast_page(page):
        return _WordView(page)
_PM = PAGE_MASK
_LS = LAST_U64_SLOT

#: chain shape -> (exec'd ``_make`` factory, fault tables). Keyed by
#: segment *content* (absolute pcs, ops, immediates, terminators), so
#: every process running byte-identical code shares one compiled chain
#: and only pays the per-process closure binding.
_CHAIN_FACTORY_CACHE: dict = {}

#: Counters for the bench harness (see ``chain_cache_info``).
chain_stats = {"built": 0, "bound": 0, "unlinked": 0}


def chain_cache_info() -> dict:
    """Chain-compiler statistics, exposed for benchmarks and tests."""
    info = dict(chain_stats)
    info["factories"] = len(_CHAIN_FACTORY_CACHE)
    return info


# -- chain graph collection ----------------------------------------------------


def _static_successors(block: "Block") -> List[int]:
    """Every statically-known pc execution can reach right after (or
    from inside) ``block``: side-exit targets, call return addresses
    (the dynamic ``ret`` link-back candidates), both arms of a two-way
    ``bcc`` terminator, and the fall-through tail of a length-split
    trace. ``ret`` contributes nothing — its successor is dynamic.
    Memoized on the block: relink checks walk webs often.
    """
    out = block.succ_pcs
    if out is not None:
        return out
    out = []
    for k, instr in enumerate(block.instrs):
        if instr.op == "bcc":
            out.append(instr.target)
        elif instr.op == "call":
            out.append(block.pcs[k] + instr.size)
    term = block.term_instr
    n = block.body_len
    if term is None:
        out.append(block.pcs[n])
    elif term.op == "b":
        out.append(term.target)
    elif term.op == "bcc":
        out.append(term.target)
        out.append(block.pcs[n] + term.size)
    block.succ_pcs = out
    return out


def _seg_key(isa_name: str, blk: "Block"):
    """Memoized per-block factory key: epoch-driven relinking rebuilds
    chain keys often enough that recomputing the per-instruction tuple
    each time would dominate the (cheap) rebind."""
    k = blk.chain_key
    if k is None:
        k = blk.chain_key = _b._factory_key(isa_name, blk, False)
    return k


def _hot_block(cache: dict, version: int, pc: int):
    """The block at ``pc`` iff it is link-eligible: present, current,
    compiled by tier-2, not demoted, and non-empty. Cold or demoted
    targets stay chain exits — linking them would compile code that
    never proved hot (or that tier-2 already refused)."""
    blk = cache.get(pc)
    if (blk is None or blk.version != version or blk.fn is None
            or blk.demoted or blk.full <= 0):
        return None
    return blk


def _collect_web(cache: dict, version: int, root: "Block",
                 cap: int) -> List["Block"]:
    """Hot compiled blocks reachable from ``root`` along static
    successor edges, breadth-first, at most ``cap`` of them."""
    seen = {root.pc}
    segs: List["Block"] = [root]
    cursor = 0
    while cursor < len(segs):
        blk = segs[cursor]
        cursor += 1
        for target in _static_successors(blk):
            if target in seen or len(segs) >= cap:
                continue
            cand = _hot_block(cache, version, target)
            if cand is None:
                continue
            seen.add(target)
            segs.append(cand)
    return segs


def build_chain(process: "Process", head: "Block", cache: dict):
    """Link the canonical hot web around ``head`` into one chain,
    returning ``head``'s entry handler ``chain(thread, regs, budget)
    -> retired`` — or :data:`NO_CHAIN` when ``head`` should stay on
    tier-2 (no in-chain edge exists, or ``head`` is outside the
    canonical web). Every linked block is given its own entry handler
    into the same compiled trampoline, and every *interior* pc of
    every segment is registered in ``process.chain_entries`` as a
    metered resume point, so a quantum boundary parked mid-trace
    re-enters the chain instead of seeding a duplicate trace.

    The segment set and order are *canonicalized*: because backward
    branches terminate traces (see :func:`_decode_trace`), every
    member of a strongly-connected hot region has the *same* forward
    closure, so collecting ``head``'s closure and sorting it by pc
    yields one factory-cache key for the whole web no matter which
    member triggered the build. The only blocks that break this
    symmetry are quantum-drift duplicates — traces that start at an
    *interior* pc of a web member because a quantum boundary once
    parked mid-trace. Those are detected exactly (``head.pc`` appears
    in another member's ``pcs[1:]``) and refused rather than given a
    private near-duplicate chain: they keep executing on tier-2 and
    control re-enters the web's chain at the next real boundary
    (usually immediately, through the member's ``chain_entries``
    resume point at this very pc).
    """
    version = process.code_version
    segs = _collect_web(cache, version, head, MAX_CHAIN_BLOCKS)
    if len(segs) > 1:
        for blk in segs:
            if blk is not head and head.pc in blk.pcs[1:]:
                # ``head`` starts at an *interior* pc of another web
                # member: it is a quantum-drift duplicate — a mid-trace
                # suffix compiled when a quantum boundary once parked
                # inside that member. Chaining it would mint one
                # near-duplicate factory per drift phase; refused, it
                # executes on tier-2 until control re-enters the web's
                # chain (usually immediately, through the member's
                # chain_entries resume point at this very pc).
                chain_stats["unlinked"] += 1
                return NO_CHAIN
        segs.sort(key=lambda blk: blk.pc)
    web = tuple(blk.pc for blk in segs)
    existing = head.chain
    if (existing is not None and existing is not NO_CHAIN
            and head.chain_web == web):
        # Epoch-driven relink, but the web did not actually grow: the
        # bound chain is still the right one (block contents are
        # immutable per code version). The caller already restamped
        # the epoch, so the walk is not repeated until the next
        # tier-up event.
        return existing
    labels: Dict[int, int] = {blk.pc: j for j, blk in enumerate(segs)}
    ret_targets: Set[int] = set()
    for blk in segs:
        for k, instr in enumerate(blk.instrs):
            if instr.op == "call":
                ret_targets.add(blk.pcs[k] + instr.size)
    linked = len(segs) > 1 or any(
        t in labels for t in _static_successors(segs[0])) or (
        segs[0].term_instr is not None and segs[0].term_instr.op == "ret"
        and segs[0].pc in ret_targets)
    if not linked:
        chain_stats["unlinked"] += 1
        return NO_CHAIN

    isa = process.isa
    key = (isa.name, "chain", tuple(_seg_key(isa.name, blk)
                                    for blk in segs))
    entry = _CHAIN_FACTORY_CACHE.get(key)
    if entry is None:
        text, consts = _emit_chain(isa, segs, labels, ret_targets)
        code = _b._CODE_CACHE.get(text)
        if code is None:
            code = compile(text, f"<chain@{segs[0].pc:#x}>", "exec")
            _b._CODE_CACHE[text] = code
        ns: dict = {}
        exec(code, ns)
        entry = (ns["_make"], consts)
        _CHAIN_FACTORY_CACHE[key] = entry
        chain_stats["built"] += 1
    factory, (fpcs, foff, fcoff, segcp) = entry
    chain_stats["bound"] += 1
    aspace = process.aspace
    run = factory(process, aspace._pages, aspace.read_u64, aspace.write_u64,
                  aspace.find_vma, _cast_page, _U64S.unpack_from,
                  fpcs, foff, fcoff, segcp, CpuFault, SegmentationFault)
    epoch = process.hot_epoch
    entries = process.chain_entries
    nsegs = len(segs)
    result = NO_CHAIN
    for j, blk in enumerate(segs):
        enter = run if j == 0 else _entry_handler(run, j)
        if blk.pc == head.pc:
            result = enter
        # Overwrite, don't keep: an existing handler on a member block
        # was built at an older hot epoch (or in the same pass) and the
        # fresh web is at least as complete.
        blk.chain = enter
        blk.chain_m = (run, nsegs + j)
        blk.chain_epoch = epoch
        blk.chain_web = web
        # Interior pcs (and the terminator's own pc) resume through
        # the metered arm; the successor pc past a trace's end is the
        # next block's business, not a resume point of this one.
        pcs = blk.pcs
        lim = blk.body_len + (1 if blk.term_instr is not None else 0)
        for k in range(1, lim):
            entries[pcs[k]] = (run, nsegs + j, k)
    return result


def _entry_handler(run, label: int):
    """An entry into ``run``'s trampoline at ``label`` — how non-head
    segments reuse the head's compiled chain."""
    def enter(thread, regs, budget):
        return run(thread, regs, budget, label)
    return enter


# -- chain code generation -----------------------------------------------------
#
# One chain compiles into ONE function: a ``while 1:`` trampoline with
# two arms per linked segment. Labels 0..S-1 are the *fast* arms — no
# per-op checks, entered only when the whole trace fits the remaining
# budget. Labels S..2S-1 are the *metered* arms — every op is guarded
# so execution can start at op index ``K`` (quantum-boundary resume)
# and stops exactly when the retired count reaches the budget, parking
# ``pc`` mid-trace. Register locals hold canonical u64; ``f`` holds
# the raw compare difference (sign-accurate); ``n``/``c`` batch the
# retired instruction/cycle counts; every exit path sets ``pc`` and
# breaks to a single spill epilogue that re-canonicalizes to signed
# i64. The flat fault tables (PCS/OFF/COFF indexed by ``i``, which
# each potentially-faulting slow path sets) let the handlers
# reconstruct the exact per-instruction state of whichever segment
# faulted; the metered arm pre-subtracts its skip count from ``n``/
# ``c`` so the same static tables stay exact there too.


def _scan_registers(isa, segs) -> Tuple[set, set, bool]:
    """Registers read / written anywhere in the chain, plus TLS use."""
    abi = isa.abi
    sp = isa.reg(abi.stack_pointer)
    fp = isa.reg(abi.frame_pointer)
    lr = (isa.reg(abi.link_register)
          if abi.link_register is not None else None)
    reads: set = set()
    writes: set = set()
    uses_tp = False
    for blk in segs:
        for instr in blk.instrs:
            op = instr.op
            rd, rn, rm = instr.rd, instr.rn, instr.rm
            if op == "mov":
                reads.add(rn); writes.add(rd)
            elif op in ("movi", "movi_full", "movz"):
                writes.add(rd)
            elif op in _b._MOVK_SHIFTS:
                reads.add(rd); writes.add(rd)
            elif op == "load":
                reads.add(rn); writes.add(rd)
            elif op == "store":
                reads.add(rn); reads.add(rd)
            elif op == "ldp":
                reads.add(fp); writes.add(rd); writes.add(rm)
            elif op == "stp":
                reads.add(fp); reads.add(rd); reads.add(rm)
            elif op in ("lea", "addi"):
                reads.add(rn); writes.add(rd)
            elif op == "push":
                reads.add(sp); writes.add(sp); reads.add(rd)
            elif op == "pop":
                reads.add(sp); writes.add(sp); writes.add(rd)
            elif op == "cmp":
                reads.add(rn); reads.add(rm)
            elif op == "cmpi":
                reads.add(rn)
            elif op == "tlsload":
                writes.add(rd); uses_tp = True
            elif op == "tlsstore":
                reads.add(rd); uses_tp = True
            elif op == "call":
                if lr is None:
                    reads.add(sp); writes.add(sp)
                else:
                    writes.add(lr)
            elif op in ("b", "nop", "bcc"):
                pass
            else:                          # ALU: binops / shifts / div
                reads.add(rn); reads.add(rm); writes.add(rd)
        term = blk.term_instr
        if term is not None and term.op == "ret":
            if lr is None:
                reads.add(sp); writes.add(sp)
            else:
                reads.add(lr)
    return reads, writes, uses_tp


#: Bitwise binops need no mask under the u64 representation (operands
#: canonical u64 keep results in range); arithmetic ones do.
_MASKLESS_BINOPS = frozenset(("and", "orr", "eor"))

#: Page-base sentinel for cold memory-site caches: far enough outside
#: the u64 address range that ``addr - sentinel`` can never land in
#: [0, LAST_U64_SLOT], so the first access always takes the slow path.
_COLD_PAGE = 1 << 70


def _off(base: str, imm: int) -> str:
    """Unmasked address expression ``base ± imm`` for a memory site."""
    if not imm:
        return base
    return f"{base} - {-imm}" if imm < 0 else f"{base} + {imm}"


def _emit_chain(isa, segs, labels: Dict[int, int],
                ret_targets: Set[int]) -> Tuple[str, tuple]:
    abi = isa.abi
    sp = isa.reg(abi.stack_pointer)
    fp = isa.reg(abi.frame_pointer)
    lr = (isa.reg(abi.link_register)
          if abi.link_register is not None else None)
    nsegs = len(segs)
    reads, writes, uses_tp = _scan_registers(isa, segs)
    used = sorted(reads | writes)
    spilled = sorted(writes)

    body: List[Tuple[int, str]] = []       # (indent units, text)
    sites: List[str] = []                  # closure cell names, in pairs
    fpcs: List[int] = []                   # flat fault tables, indexed by i
    foff: List[int] = []
    fcoff: List[int] = []

    def emit(depth: int, text: str) -> None:
        body.append((depth, text))

    def spill_lines(depth: int) -> None:
        for idx in spilled:
            emit(depth, f"regs[{idx}] = "
                        f"r{idx} - {_TWO64} if r{idx} >> 63 else r{idx}")
        emit(depth, "thread.flags = (f > 0) - (f < 0)")

    def new_site() -> Tuple[str, str]:
        pair = (f"p{len(sites) // 2}", f"s{len(sites) // 2}")
        sites.extend(pair)
        return pair

    def fault_index(pc: int, off: int, coff: int) -> int:
        fpcs.append(pc)
        foff.append(off)
        fcoff.append(coff)
        return len(fpcs) - 1

    def read(depth: int, pc: int, off: int, coff: int,
             addr: str, dest: str) -> None:
        # The hit test folds the page-base compare, the straddle check,
        # the alignment check, and the offset computation into one
        # subtraction and one mask: ``o = addr - cached_base`` has no
        # bits outside ``LAST_U64_SLOT`` iff the access is an aligned
        # word wholly inside the cached page, and the data move is then
        # a plain subscript on the page's ``'Q'``-cast memoryview — no
        # struct call, no tuple. ``addr`` is deliberately unmasked (one
        # AND saved per access) — a wrapped address falls off the fast
        # path and is masked in the slow arm, as do the (compiler-never-
        # emitted) misaligned words. Misses consult the chain's hot VMA
        # (``VL``/``VH``): a full-word access inside its bounds is known
        # readable, so one page-dict probe replaces the whole read_u64
        # walk (missing pages still take the walk: under lazy post-copy
        # an absent store is not proof of zeros).
        p, s = new_site()
        fi = fault_index(pc, off, coff)
        emit(depth, f"if not (o := {addr} - {p}) & {~_LS}:")
        emit(depth + 1, f"{dest} = {s}[o >> 3]")
        emit(depth, "else:")
        emit(depth + 1, f"a = (o + {p}) & {_U64M}")
        emit(depth + 1, f"o = a & {_PM}")
        emit(depth + 1, f"if VL <= a and a + 8 <= VH and o <= {_LS}:")
        emit(depth + 2, "q = PAGES_GET(a - o)")
        emit(depth + 2, "if q is None:")
        emit(depth + 3, f"i = {fi}")
        emit(depth + 3, f"{dest} = RU(a)")
        emit(depth + 2, "else:")
        emit(depth + 3, f"{dest} = UPK(q, o)[0]")
        emit(depth + 3, f"{p} = a - o")
        emit(depth + 3, f"{s} = MQ(q)")
        emit(depth + 1, "else:")
        emit(depth + 2, f"i = {fi}")
        emit(depth + 2, f"{dest} = RU(a)")
        emit(depth + 2, "q = PAGES_GET(a - o)")
        emit(depth + 2, "if q is not None:")
        emit(depth + 3, f"{p} = a - o")
        emit(depth + 3, f"{s} = MQ(q)")
        emit(depth + 2, "w = FV(a)")
        emit(depth + 2,
             "if w is not None and w.readable and a + 8 <= w.end:")
        emit(depth + 3, "VL = w.start")
        emit(depth + 3, "VH = w.end")

    def write(depth: int, pc: int, off: int, coff: int,
              addr: str, value: str) -> None:
        # Same folded hit test as ``read``. Stores keep only the
        # per-site page cache: the first touch of every page per
        # binding must reach write_u64 so dirty-page tracking marks it
        # (chains are dropped when tracking starts, exactly like tier-2
        # blocks).
        p, s = new_site()
        fi = fault_index(pc, off, coff)
        emit(depth, f"if not (o := {addr} - {p}) & {~_LS}:")
        emit(depth + 1, f"{s}[o >> 3] = {value}")
        emit(depth, "else:")
        emit(depth + 1, f"a = (o + {p}) & {_U64M}")
        emit(depth + 1, f"o = a & {_PM}")
        emit(depth + 1, f"i = {fi}")
        emit(depth + 1, f"WU(a, {value})")
        emit(depth + 1, "q = PAGES_GET(a - o)")
        emit(depth + 1, "if q is not None:")
        emit(depth + 2, f"{p} = a - o")
        emit(depth + 2, f"{s} = MQ(q)")

    def transition(depth: int, target: int, add_n: int, add_c: int) -> None:
        """Leave the current segment for ``target``: enter the fast arm
        when the target's whole trace fits the remaining budget, its
        metered arm when any budget remains (it parks ``pc`` exactly at
        the boundary), else exit with ``pc`` at the target."""
        if add_n:
            emit(depth, f"n += {add_n}")
            emit(depth, f"c += {add_c}")
        j = labels.get(target)
        if j is not None:
            emit(depth, f"if budget - n >= {segs[j].full}:")
            emit(depth + 1, f"L = {j}")
            emit(depth + 1, "continue")
            emit(depth, "if budget > n:")
            emit(depth + 1, f"L = {nsegs + j}")
            emit(depth + 1, "K = 0")
            emit(depth + 1, "continue")
        emit(depth, f"pc = {target}")
        emit(depth, "break")

    def emit_segment(j: int, blk, metered: bool, base: int) -> None:
        pcs = blk.pcs
        cp = blk.cost_prefix
        nb = blk.body_len
        if metered:
            # Pre-subtract the skipped prefix: every static accounting
            # constant below (side exits, segment totals, fault table
            # offsets) then stays exact without knowing K, and the
            # budget stop is the single compare ``e == k``.
            emit(base, "n -= K")
            emit(base, f"c -= CP{j}[K]")
            emit(base, "e = budget - n")
        for k, instr in enumerate(blk.instrs):
            op = instr.op
            rd, rn, rm = instr.rd, instr.rn, instr.rm
            imm = instr.imm if instr.imm is not None else 0
            if op in ("nop", "b"):         # extension b: pc baked in pcs
                if metered and k:
                    emit(base, f"if e == {k}: pc = {pcs[k]};"
                               f" c += {cp[k]}; n = budget; break")
                continue
            if metered:
                emit(base, f"if K <= {k}:")
                d = base + 1
                if k:
                    # Budget exhausted here: the retired total is the
                    # budget by definition (e == k solves exactly
                    # that), and the cycle prefix of this arm pass is
                    # cp[k] (K's share was pre-subtracted).
                    emit(d, f"if e == {k}: pc = {pcs[k]};"
                            f" c += {cp[k]}; n = budget; break")
            else:
                d = base
            if op == "bcc":
                # Side exit: taken, account the exact prefix and either
                # continue at a linked segment or spill out.
                sym = _b._COND_SYMS[instr.cond]
                emit(d, f"if f {sym} 0:")
                transition(d + 1, instr.target, k + 1, cp[k + 1])
            elif op == "mov":
                emit(d, f"r{rd} = r{rn}")
            elif op in ("movi", "movi_full"):
                emit(d, f"r{rd} = {imm & _U64M}")
            elif op == "movz":
                emit(d, f"r{rd} = {imm & 0xFFFF}")
            elif op in _b._MOVK_SHIFTS:
                shift = _b._MOVK_SHIFTS[op]
                keep = _U64M & ~(0xFFFF << shift)
                part = (imm & 0xFFFF) << shift
                emit(d, f"r{rd} = (r{rd} & {keep}) | {part}")
            elif op == "load":
                read(d, pcs[k], k, cp[k], _off(f"r{rn}", imm), f"r{rd}")
            elif op == "store":
                write(d, pcs[k], k, cp[k], _off(f"r{rn}", imm), f"r{rd}")
            elif op == "ldp":
                emit(d, f"t = r{fp}")
                read(d, pcs[k], k, cp[k], _off("t", imm), f"r{rd}")
                read(d, pcs[k], k, cp[k], _off("t", imm + 8), f"r{rm}")
            elif op == "stp":
                emit(d, f"t = r{fp}")
                write(d, pcs[k], k, cp[k], _off("t", imm), f"r{rd}")
                write(d, pcs[k], k, cp[k], _off("t", imm + 8), f"r{rm}")
            elif op in ("lea", "addi"):
                emit(d, f"r{rd} = (r{rn} + {imm}) & {_U64M}"
                     if imm else f"r{rd} = r{rn}")
            elif op == "push":
                emit(d, f"r{sp} = (r{sp} - 8) & {_U64M}")
                write(d, pcs[k], k, cp[k], f"r{sp}", f"r{rd}")
            elif op == "pop":
                read(d, pcs[k], k, cp[k], f"r{sp}", f"r{rd}")
                if rd != sp:               # pop sp: no post-increment
                    emit(d, f"r{sp} = (r{sp} + 8) & {_U64M}")
            elif op == "cmp":
                # Signed compare via the sign-flip identity; f keeps
                # the raw difference (sign-accurate, normalized only
                # when spilled).
                emit(d, f"f = (r{rn} ^ {_SIGN}) - (r{rm} ^ {_SIGN})")
            elif op == "cmpi":
                emit(d,
                     f"f = (r{rn} ^ {_SIGN}) - {(imm & _U64M) ^ _SIGN}")
            elif op == "tlsload":
                read(d, pcs[k], k, cp[k], _off("tp", imm), f"r{rd}")
            elif op == "tlsstore":
                write(d, pcs[k], k, cp[k], _off("tp", imm), f"r{rd}")
            elif op in _MASKLESS_BINOPS:
                emit(d, f"r{rd} = r{rn} {_b._BINOP_SYMS[op]} r{rm}")
            elif op in _b._BINOP_SYMS:
                emit(d, f"r{rd} = (r{rn} {_b._BINOP_SYMS[op]} r{rm})"
                        f" & {_U64M}")
            elif op == "lsl":
                emit(d, f"r{rd} = (r{rn} << (r{rm} & 63)) & {_U64M}")
            elif op == "lsr":
                emit(d, f"r{rd} = r{rn} >> (r{rm} & 63)")
            elif op in ("sdiv", "srem"):
                msg = ("integer division by zero" if op == "sdiv"
                       else "integer remainder by zero")
                emit(d, f"x = r{rn} - {_TWO64} if r{rn} >> 63 else r{rn}")
                emit(d, f"y = r{rm} - {_TWO64} if r{rm} >> 63 else r{rm}")
                emit(d, "if y == 0:")
                emit(d + 1, f"thread.pc = {pcs[k]}")
                spill_lines(d + 1)
                emit(d + 1, f"thread.instr_count += n + {k}")
                emit(d + 1, f"process.instr_total += n + {k}")
                emit(d + 1, f"process.cycle_total += c + {cp[k]}")
                emit(d + 1, f"raise CpuFault(thread, {msg!r})")
                emit(d, "v = abs(x) // abs(y)" if op == "sdiv"
                     else "v = abs(x) % abs(y)")
                if op == "sdiv":
                    emit(d, f"r{rd} = (-v if (x < 0) != (y < 0) else v)"
                            f" & {_U64M}")
                else:
                    emit(d, f"r{rd} = (-v if x < 0 else v) & {_U64M}")
            elif op == "call":             # extension call: pc baked in
                return_to = pcs[k] + instr.size
                if lr is None:             # x86: push the return address
                    emit(d, f"r{sp} = (r{sp} - 8) & {_U64M}")
                    write(d, pcs[k], k, cp[k], f"r{sp}", str(return_to))
                else:                      # arm: link register
                    emit(d, f"r{lr} = {return_to}")

        total = nb
        cycles = cp[nb]
        term = blk.term_instr
        if term is not None:
            total += 1
            cycles += blk.term_cost
            if metered:
                # The budget may end right before the terminator.
                emit(base, f"if e == {nb}: pc = {pcs[nb]};"
                           f" c += {cp[nb]}; n = budget; break")
        if term is None:                   # length-split trace: fall through
            transition(base, pcs[nb], total, cycles)
        elif term.op == "b":               # loop-closing back-edge
            transition(base, term.target, total, cycles)
        elif term.op == "bcc":             # loop-closing two-way terminator
            emit(base, f"n += {total}")
            emit(base, f"c += {cycles}")
            sym = _b._COND_SYMS[term.cond]
            emit(base, f"if f {sym} 0:")
            transition(base + 1, term.target, 0, 0)
            transition(base, pcs[nb] + term.size, 0, 0)
        else:                              # ret: dynamic link via return pc
            # The pop executes *before* the segment's accounting is
            # added to ``n``/``c``: a faulting pop must account only
            # the ``nb``-op prefix (via the fault table), exactly like
            # a faulting body op.
            if lr is None:                 # x86: pop the return pc
                read(base, pcs[nb], nb, cp[nb], f"r{sp}", "pc")
                emit(base, f"r{sp} = (r{sp} + 8) & {_U64M}")
            else:                          # arm: link register
                emit(base, f"pc = r{lr}")
            emit(base, f"n += {total}")
            emit(base, f"c += {cycles}")
            for target in sorted(ret_targets):
                j2 = labels.get(target)
                if j2 is None:
                    continue
                emit(base, f"if pc == {target}:")
                emit(base + 1, f"if budget - n >= {segs[j2].full}:")
                emit(base + 2, f"L = {j2}")
                emit(base + 2, "continue")
                emit(base + 1, "if budget > n:")
                emit(base + 2, f"L = {nsegs + j2}")
                emit(base + 2, "K = 0")
                emit(base + 2, "continue")
                emit(base + 1, "break")
            emit(base, "break")

    # Label dispatch is a binary tree over [0, 2 * nsegs) — fast arms
    # are labels [0, nsegs), metered arms [nsegs, 2 * nsegs) — so a
    # transition costs ~log2 compares instead of a linear label scan.
    # Leaves carry no equality test: every label reaching the loop top
    # (entry handlers, transitions, chain_entries resume points) is a
    # valid arm index, so the range pins the arm exactly.
    def emit_dispatch(lo: int, hi: int, depth: int) -> None:
        if hi - lo == 1:
            j = lo % nsegs
            emit_segment(j, segs[j], lo >= nsegs, depth)
            return
        mid = (lo + hi) // 2
        emit(depth, f"if L < {mid}:")
        emit_dispatch(lo, mid, depth + 1)
        emit(depth, "else:")
        emit_dispatch(mid, hi, depth + 1)

    emit_dispatch(0, 2 * nsegs, 0)

    # -- assemble ----------------------------------------------------------
    src = ["def _make(process, pages, RU, WU, FV, MQ, UPK, PCS, OFF, COFF,"
           " SEGCP, CpuFault, SegmentationFault):",
           "    PAGES_GET = pages.get"]
    for j in range(nsegs):
        src.append(f"    CP{j} = SEGCP[{j}]")
    for cell in sites:
        cold = _COLD_PAGE if cell[0] == "p" else None
        src.append(f"    {cell} = {cold}")
    src.append("    VL = 1")
    src.append("    VH = 0")
    src.append("    def run(thread, regs, budget, L=0, K=0):")
    if sites:
        src.append("        nonlocal " + ", ".join(sites + ["VL", "VH"]))
    for idx in used:
        src.append(f"        r{idx} = regs[{idx}] & {_U64M}")
    src.append("        f = thread.flags")
    if uses_tp:
        src.append("        tp = thread.tp")
    src.append("        n = 0")
    src.append("        c = 0")
    src.append("        i = 0")
    src.append("        try:")
    src.append("            while 1:")
    for depth, text in body:
        src.append("                " + "    " * depth + text)
    src.append("        except CpuFault:")
    src.append("            raise")        # div: accounted + spilled inline
    if sites:
        handlers = (
            ("        except SegmentationFault as exc:",
             "            raise CpuFault(thread, str(exc)) from exc"),
            ("        except Exception:",  # e.g. a dead lazy-page server
             "            raise"),
        )
        for opener, reraise in handlers:
            src.append(opener)
            src.append("            thread.pc = PCS[i]")
            for idx in spilled:
                src.append(f"            regs[{idx}] = "
                           f"r{idx} - {_TWO64} if r{idx} >> 63 else r{idx}")
            src.append("            thread.flags = (f > 0) - (f < 0)")
            src.append("            k = n + OFF[i]")
            src.append("            thread.instr_count += k")
            src.append("            process.instr_total += k")
            src.append("            process.cycle_total += c + COFF[i]")
            src.append(reraise)
    src.append("        thread.pc = pc")
    for idx in spilled:
        src.append(f"        regs[{idx}] = "
                   f"r{idx} - {_TWO64} if r{idx} >> 63 else r{idx}")
    src.append("        thread.flags = (f > 0) - (f < 0)")
    src.append("        thread.instr_count += n")
    src.append("        process.instr_total += n")
    src.append("        process.cycle_total += c")
    src.append("        return n")
    src.append("    return run")
    segcp = tuple(tuple(blk.cost_prefix) for blk in segs)
    return "\n".join(src), (tuple(fpcs), tuple(foff), tuple(fcoff), segcp)
