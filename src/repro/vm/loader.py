"""DELF loader: map a binary into a fresh address space."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..binfmt.delf import DelfBinary
from ..errors import LoaderError
from ..mem import AddressSpace, Prot, Vma
from ..mem.paging import PAGE_SIZE, page_align_up

if TYPE_CHECKING:
    from .kernel import Process

#: Base of the per-thread TLS area region (one page per thread).
TLS_REGION_BASE = 0x20000000
TLS_AREA_SIZE = PAGE_SIZE


def load_binary(binary: DelfBinary, exe_path: str) -> AddressSpace:
    """Create an address space with the binary's segments mapped.

    The ``.text`` mapping is file-backed: CRIU will not dump its clean
    pages (they reload from ``exe_path`` at restore; paper §III-C).
    """
    aspace = AddressSpace()
    for segment in binary.segments:
        if segment.size == 0:
            continue
        end = page_align_up(segment.vaddr + segment.size)
        file_backed = segment.section == ".text"
        aspace.map(Vma(segment.vaddr, end, segment.prot,
                       name=segment.section, file_backed=file_backed,
                       file_path=exe_path if file_backed else "",
                       file_offset=0))
        data = binary.section_data(segment.section)
        aspace.write_code(segment.vaddr, data)
    return aspace


def tls_area_for(tid: int) -> int:
    """Virtual base address of thread ``tid``'s TLS area."""
    return TLS_REGION_BASE + (tid - 1) * TLS_AREA_SIZE


def setup_tls(process: "Process", tid: int) -> int:
    """Map and initialize a TLS area; returns the thread pointer value.

    The TLS *block* (template contents) is placed at
    ``tp + abi.tls_block_offset`` — the per-ISA libc displacement the
    Dapper rewriter adjusts on cross-ISA transformation (paper §III-C).
    """
    base = tls_area_for(tid)
    block_offset = process.isa.abi.tls_block_offset
    template = process.binary.tls_template
    if block_offset + len(template) > TLS_AREA_SIZE:
        raise LoaderError("TLS template too large for TLS area")
    process.aspace.map(Vma(base, base + TLS_AREA_SIZE, Prot.RW,
                           name=f"tls:{tid}"))
    if template:
        process.aspace.write(base + block_offset, template)
    return base
