"""The simulated machine: CPUs, threads, a small kernel, ptrace, tmpfs.

One :class:`~repro.vm.kernel.Machine` models one physical node with one
ISA (like the paper's x86 Xeon server or aarch64 Raspberry Pi). It runs
processes compiled to DELF binaries, schedules their threads round-robin
with a fixed instruction quantum (deterministic), dispatches syscalls,
and exposes the ptrace-like tracer interface the Dapper runtime monitor
is built on.
"""

from .cpu import ThreadContext, ThreadStatus
from .kernel import Machine, Process
from .loader import load_binary
from .tmpfs import TmpFs
from .ptrace import Tracer

__all__ = ["ThreadContext", "ThreadStatus", "Machine", "Process",
           "load_binary", "TmpFs", "Tracer"]
