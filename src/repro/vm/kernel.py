"""The simulated kernel: processes, threads, scheduler, syscalls, signals.

One :class:`Machine` is one node with one ISA. Scheduling is round-robin
over runnable threads with a fixed instruction quantum, which makes every
execution deterministic — the cross-ISA migration tests rely on that.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .. import sysabi
from ..binfmt.delf import (DelfBinary, HEAP_BASE, STACK_TOP,
                           THREAD_STACK_GAP, THREAD_STACK_SIZE)
from ..errors import KernelError
from ..mem import AddressSpace, Prot, Vma
from ..mem.paging import PAGE_SIZE, page_align_up
from .cpu import ThreadContext, ThreadStatus, to_u64
from . import blocks, interp
from .loader import load_binary, setup_tls
from .tmpfs import TmpFs


class Process:
    """One simulated process."""

    def __init__(self, pid: int, binary: DelfBinary, exe_path: str,
                 machine: "Machine", aspace: Optional[AddressSpace] = None):
        self.pid = pid
        self.binary = binary
        self.exe_path = exe_path
        self.machine = machine
        self.isa = machine.isa
        self.aspace = aspace if aspace is not None else load_binary(
            binary, exe_path)
        self.threads: Dict[int, ThreadContext] = {}
        self.next_tid = 1
        self.exited = False
        self.exit_code: Optional[int] = None
        self.output: List[str] = []
        self.heap_end = HEAP_BASE
        self.locks: Dict[int, int] = {}        # lock addr -> holder tid
        self.stopped = False                   # SIGSTOP state
        self.instr_total = 0
        self.cycle_total = 0
        self.decode_cache: Dict[int, tuple] = {}
        self.block_cache: Dict[int, "blocks.Block"] = {}
        # Mid-trace resume points into compiled tier-3 chains:
        # pc -> (chain run, metered label, op index). Cleared together
        # with block_cache — a stale entry could skip dirty-tracking's
        # first-touch writes or execute pre-rewrite code.
        self.chain_entries: Dict[int, tuple] = {}
        self.code_version = 0
        # Bumped whenever a block tiers up to a compiled trace; tier-3
        # chains stamped with an older epoch relink on next dispatch so
        # webs formed mid-warmup grow to cover newly-hot successors.
        self.hot_epoch = 0
        # Content hash of the executable pages, computed lazily by the
        # superblock engine to share decoded traces across processes
        # running identical code (see blocks._content_key).
        self.trace_content_key: Optional[bytes] = None
        # Any privileged code write (failure injection, in-place live
        # patches) must discard predecoded instructions and superblocks.
        self.aspace.code_write_hook = self.invalidate_code

    # -- thread management -------------------------------------------------

    def alloc_tid(self) -> int:
        tid = self.next_tid
        self.next_tid += 1
        return tid

    def live_threads(self) -> List[ThreadContext]:
        return [t for t in self.threads.values()
                if t.status != ThreadStatus.DEAD]

    def runnable_threads(self) -> List[ThreadContext]:
        if self.stopped or self.exited:
            return []
        return [t for t in self.threads.values() if t.runnable()]

    def stdout(self) -> str:
        return "".join(self.output)

    def invalidate_code(self) -> None:
        self.code_version += 1
        self.decode_cache.clear()
        self.block_cache.clear()
        self.chain_entries.clear()

    # -- dirty-page tracking (incremental checkpoints) ----------------------

    def start_dirty_tracking(self) -> None:
        """Record pages written from now on (see repro.store).

        The superblock engine's generated memory sites cache a (page
        base, page store) pair and bypass the address-space slow path on
        a hit, so the block cache is reset here: every site's first
        access after this point re-enters the slow path, which marks the
        page, and later in-place hits cannot dirty a page the slow path
        has not already marked. Decoded traces are untouched
        (``code_version`` does not move), so re-binding is cheap.
        """
        self.aspace.start_dirty_tracking()
        self.block_cache.clear()
        self.chain_entries.clear()

    def stop_dirty_tracking(self) -> None:
        self.aspace.stop_dirty_tracking()

    def harvest_dirty_pages(self) -> set:
        """Dirty pages since tracking started; begins a fresh epoch."""
        dirty = self.aspace.harvest_dirty()
        self.block_cache.clear()
        self.chain_entries.clear()
        return dirty

    def tls_disable_addr(self, thread: ThreadContext) -> int:
        return (thread.tp + self.isa.abi.tls_block_offset
                + sysabi.TLS_DISABLE_OFFSET)

    def __repr__(self) -> str:
        return (f"<Process {self.pid} {self.binary.source_name} "
                f"[{self.isa.name}] threads={len(self.live_threads())}>")


class Machine:
    """One simulated node: an ISA, a kernel, a tmpfs, and processes."""

    def __init__(self, isa, name: str = "node", quantum: int = 64,
                 block_engine: bool = True, chain_engine: bool = True):
        self.isa = isa
        self.name = name
        self.quantum = quantum
        #: execute via predecoded superblocks (repro.vm.blocks); False
        #: falls back to per-instruction interp.step — semantics are
        #: identical, this exists for the speed benchmark and debugging.
        self.block_engine = block_engine
        #: additionally link hot compiled traces into chains
        #: (repro.vm.chains, tier 3); False caps execution at tier 2.
        #: Only consulted when block_engine is on; semantics identical.
        self.chain_engine = chain_engine
        self.tmpfs = TmpFs()
        self.processes: Dict[int, Process] = {}
        self.next_pid = 100
        #: called on every SIGTRAP: (process, thread) -> None
        self.trap_hooks: List[Callable] = []
        #: attached flight recorder (repro.replay.recorder) or None.
        #: Zero-overhead when off: the kernel tests ``is None`` once per
        #: scheduling slice / syscall, never per instruction.
        self.recorder = None

    # -- process lifecycle ---------------------------------------------------

    def install_binary(self, binary: DelfBinary, path: str) -> str:
        if binary.arch != self.isa.name:
            raise KernelError(
                f"binary is {binary.arch}, machine is {self.isa.name}")
        self.tmpfs.write(path, binary.to_bytes())
        return path

    def spawn_process(self, path: str) -> Process:
        """Load a DELF from tmpfs and start it (main thread at entry)."""
        binary = DelfBinary.from_bytes(self.tmpfs.read(path))
        if binary.arch != self.isa.name:
            raise KernelError(
                f"binary is {binary.arch}, machine is {self.isa.name}")
        pid = self.next_pid
        self.next_pid += 1
        process = Process(pid, binary, path, self)
        self.processes[pid] = process
        self._create_thread(process, pc=binary.entry, arg=None,
                            return_to=0)
        if self.recorder is not None:
            self.recorder.on_spawn(self, process)
        return process

    def adopt_process(self, process: Process) -> None:
        """Register a process built externally (the CRIU restore path)."""
        self.processes[process.pid] = process
        if self.recorder is not None:
            self.recorder.on_restore(self, process)

    def alloc_pid(self) -> int:
        pid = self.next_pid
        self.next_pid += 1
        return pid

    def _create_thread(self, process: Process, pc: int, arg: Optional[int],
                       return_to: int) -> ThreadContext:
        tid = process.alloc_tid()
        thread = ThreadContext(tid, self.isa)
        stack_top = thread_stack_top(tid)
        stack_base = stack_top - THREAD_STACK_SIZE
        process.aspace.map(Vma(stack_base, stack_top, Prot.RW,
                               name=f"stack:{tid}"))
        thread.sp = stack_top - 16
        thread.fp = 0
        thread.pc = pc
        thread.tp = setup_tls(process, tid)
        if self.isa.abi.link_register is None:
            # x86-style: the return address sits on the stack at entry.
            process.aspace.write_u64(to_u64(thread.sp), return_to)
        else:
            thread.set(self.isa.abi.link_register, return_to)
        if arg is not None:
            thread.set(self.isa.abi.arg_regs[0], arg)
        process.threads[tid] = thread
        return thread

    # -- scheduling ---------------------------------------------------------------

    def step_all(self, budget: int) -> int:
        """Round-robin all runnable threads; returns instructions executed."""
        executed = 0
        processes = self.processes
        quantum = self.quantum
        run = self._run_thread
        while executed < budget:
            # Sole-thread fast loop: with one process owning one
            # thread, a scheduling pass degenerates to "slice that
            # thread again", so skip the per-pass snapshot lists. Every
            # condition that could add a schedulable entity (spawn,
            # fork) or retire this one is re-checked between slices;
            # the slice stream is identical to the general pass.
            if len(processes) == 1:
                process = next(iter(processes.values()))
                if len(process.threads) == 1:
                    thread = next(iter(process.threads.values()))
                    while (executed < budget
                           and len(process.threads) == 1
                           and len(processes) == 1
                           and not process.stopped and not process.exited
                           and thread.runnable()):
                        q = budget - executed
                        if q > quantum:
                            q = quantum
                        done = run(process, thread, q)
                        executed += done
                        if not done:
                            return executed
                    if executed >= budget:
                        return executed
            ran = False
            for process in list(processes.values()):
                threads = process.runnable_threads()
                if len(threads) > 1:       # deterministic round-robin order
                    threads.sort(key=_BY_TID)
                for thread in threads:
                    q = budget - executed
                    if q > quantum:
                        q = quantum
                    if q <= 0:
                        return executed
                    done = run(process, thread, q)
                    executed += done
                    if done:
                        ran = True
            if not ran:
                break
        return executed

    def _run_thread(self, process: Process, thread: ThreadContext,
                    quantum: int) -> int:
        if self.block_engine:
            count = blocks.run_thread(self, process, thread, quantum)
        else:
            count = 0
            while (count < quantum and thread.runnable()
                   and not process.stopped and not process.exited):
                interp.step(self, process, thread)
                count += 1
        # The recorder sees identical slice streams from both engines:
        # the superblock engine retires instruction-for-instruction
        # identical counts to the per-step loop at every slice boundary.
        if self.recorder is not None and count:
            self.recorder.on_slice(self, process, thread, quantum, count)
        return count

    def run_process(self, process: Process, max_steps: int = 50_000_000) -> int:
        """Run until the process exits. Returns its exit code."""
        remaining = max_steps
        while not process.exited and remaining > 0:
            done = self.step_all(min(remaining, 100_000))
            if done == 0:
                raise KernelError(
                    f"process {process.pid} wedged: no runnable threads "
                    f"but not exited")
            remaining -= done
        if not process.exited:
            raise KernelError(f"process {process.pid} exceeded {max_steps} steps")
        return process.exit_code

    def has_runnable(self) -> bool:
        return any(p.runnable_threads() for p in self.processes.values())

    # -- signals ----------------------------------------------------------------

    def sigstop(self, process: Process) -> None:
        process.stopped = True

    def sigcont(self, process: Process) -> None:
        process.stopped = False

    def kill(self, process: Process) -> None:
        for thread in process.threads.values():
            thread.status = ThreadStatus.DEAD
        process.exited = True
        if process.exit_code is None:
            process.exit_code = -9
        self.processes.pop(process.pid, None)
        if self.recorder is not None:
            self.recorder.on_kill(self, process)

    def on_trap(self, process: Process, thread: ThreadContext) -> None:
        if self.recorder is not None:
            self.recorder.on_trap(self, process, thread)
        for hook in self.trap_hooks:
            hook(process, thread)

    # -- syscalls -----------------------------------------------------------------

    def dispatch_syscall(self, process: Process, thread: ThreadContext,
                         number: int, args: List[int]) -> Optional[int]:
        handler = _SYSCALLS.get(number)
        if handler is None:
            raise KernelError(f"unknown syscall {number}")
        result = handler(self, process, thread, args)
        if self.recorder is not None:
            self.recorder.on_syscall(self, process, thread, number, args,
                                     result)
        return result


def _BY_TID(thread: ThreadContext) -> int:
    return thread.tid


def thread_stack_top(tid: int) -> int:
    return STACK_TOP - (tid - 1) * (THREAD_STACK_SIZE + THREAD_STACK_GAP)


# -- syscall handlers ----------------------------------------------------------

def _sys_print_int(machine, process, thread, args):
    process.output.append(f"{args[0]}\n")
    return 0


def _sys_print_char(machine, process, thread, args):
    process.output.append(chr(args[0] & 0x10FFFF))
    return 0


def _sys_exit(machine, process, thread, args):
    process.exited = True
    process.exit_code = args[0]
    for t in process.threads.values():
        t.status = ThreadStatus.DEAD
    return 0


def _sys_sbrk(machine, process, thread, args):
    size = args[0]
    if size < 0:
        raise KernelError("sbrk: negative size")
    old = process.heap_end
    new_end = old + size
    mapped_end = page_align_up(process.heap_end)
    need_end = page_align_up(new_end)
    if need_end > mapped_end:
        heap_vma = process.aspace.vma_by_name("heap")
        if heap_vma is None:
            process.aspace.map(Vma(HEAP_BASE, need_end, Prot.RW, name="heap"))
        else:
            heap_vma.end = need_end
    process.heap_end = new_end
    return old


def _sys_spawn(machine, process, thread, args):
    fn_addr, arg = args[0], args[1]
    exit_stub = process.binary.symtab.address_of(sysabi.RT_THREAD_EXIT)
    new = machine._create_thread(process, pc=fn_addr, arg=arg,
                                 return_to=exit_stub)
    return new.tid


def _sys_try_join(machine, process, thread, args):
    tid = args[0]
    target = process.threads.get(tid)
    if target is None or target.status == ThreadStatus.DEAD:
        return 1
    return 0


def _sys_try_lock(machine, process, thread, args):
    addr = to_u64(args[0])
    holder = process.locks.get(addr)
    if holder is not None:
        return 0
    process.locks[addr] = thread.tid
    process.aspace.write_u64(addr, thread.tid)
    # Disable the checker while inside the critical section (paper §III-B):
    # the holder of a lock must never be parked at an equivalence point.
    disable_addr = process.tls_disable_addr(thread)
    count = process.aspace.read_u64(disable_addr)
    process.aspace.write_u64(disable_addr, count + 1)
    return 1


def _sys_unlock(machine, process, thread, args):
    addr = to_u64(args[0])
    holder = process.locks.get(addr)
    if holder != thread.tid:
        raise KernelError(
            f"thread {thread.tid} unlocking lock {addr:#x} held by {holder}")
    del process.locks[addr]
    process.aspace.write_u64(addr, 0)
    disable_addr = process.tls_disable_addr(thread)
    count = process.aspace.read_u64(disable_addr)
    if count == 0:
        raise KernelError("unlock: disable counter underflow")
    process.aspace.write_u64(disable_addr, count - 1)
    return 0


def _sys_yield(machine, process, thread, args):
    return 0


def _sys_thread_exit(machine, process, thread, args):
    thread.status = ThreadStatus.DEAD
    return 0


def _sys_gettid(machine, process, thread, args):
    return thread.tid


def _sys_now(machine, process, thread, args):
    return process.instr_total


_SYSCALLS = {
    sysabi.SYS_PRINT_INT: _sys_print_int,
    sysabi.SYS_PRINT_CHAR: _sys_print_char,
    sysabi.SYS_EXIT: _sys_exit,
    sysabi.SYS_SBRK: _sys_sbrk,
    sysabi.SYS_SPAWN: _sys_spawn,
    sysabi.SYS_TRY_JOIN: _sys_try_join,
    sysabi.SYS_TRY_LOCK: _sys_try_lock,
    sysabi.SYS_UNLOCK: _sys_unlock,
    sysabi.SYS_YIELD: _sys_yield,
    sysabi.SYS_THREAD_EXIT: _sys_thread_exit,
    sysabi.SYS_GETTID: _sys_gettid,
    sysabi.SYS_NOW: _sys_now,
}
