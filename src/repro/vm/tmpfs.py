"""An in-memory filesystem.

The Dapper runtime checkpoints into ``tmpfs`` to avoid disk latency
(paper §III-B); every simulated machine owns one of these, holding both
program binaries and CRIU image files. ``scp`` between machines is a
byte copy whose size feeds the network cost model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..errors import LoaderError


class TmpFs:
    """Flat path → bytes store with directory-prefix conventions."""

    def __init__(self):
        self._files: Dict[str, bytes] = {}

    def write(self, path: str, data: bytes) -> None:
        self._files[path] = bytes(data)

    def read(self, path: str) -> bytes:
        try:
            return self._files[path]
        except KeyError:
            raise LoaderError(f"tmpfs: no such file {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def remove(self, path: str) -> None:
        self._files.pop(path, None)

    def listdir(self, prefix: str) -> List[str]:
        prefix = prefix.rstrip("/") + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def size(self, path: str) -> int:
        return len(self.read(path))

    def total_size(self, paths: Iterable[str]) -> int:
        return sum(self.size(p) for p in paths)

    def copy_tree(self, prefix: str, other: "TmpFs",
                  dest_prefix: str = None) -> int:
        """Copy all files under ``prefix`` into another tmpfs.

        Returns the number of bytes copied (the 'scp' payload size).
        """
        dest_prefix = prefix if dest_prefix is None else dest_prefix
        total = 0
        for path in self.listdir(prefix):
            rel = path[len(prefix.rstrip('/')) + 1:]
            data = self.read(path)
            other.write(f"{dest_prefix.rstrip('/')}/{rel}", data)
            total += len(data)
        return total
